// Blocked/streaming container tests (paper §V-A.3: by-block compression of
// fields larger than device memory).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hh"
#include "core/metrics.hh"
#include "core/streaming.hh"

namespace {

using namespace szp;

std::vector<float> field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.03f * dist(rng);
    x = acc;
  }
  return v;
}

StreamingConfig config_with(std::size_t max_slab, double eb = 1e-3) {
  StreamingConfig cfg;
  cfg.base.eb = ErrorBound::relative(eb);
  cfg.max_slab_elems = max_slab;
  return cfg;
}

class StreamingRanks : public ::testing::TestWithParam<int> {};

TEST_P(StreamingRanks, RoundTripAcrossSlabs) {
  const int rank = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(40000)
                      : rank == 2 ? Extents::d2(60, 500)
                                  : Extents::d3(24, 30, 40);
  const auto data = field(ext, static_cast<std::uint32_t>(rank));

  const StreamingCompressor comp(config_with(5000));
  const auto c = comp.compress(data, ext);
  EXPECT_GT(c.stats.slabs.size(), 1u);  // actually partitioned

  const auto d = StreamingCompressor::decompress(c.bytes);
  EXPECT_EQ(d.extents, ext);
  ASSERT_EQ(d.data.size(), data.size());
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(Ranks, StreamingRanks, ::testing::Values(1, 2, 3));

TEST(Streaming, MatchesSingleShotQuality) {
  // Slabbed compression must honor the same absolute bound the single-shot
  // compressor resolves, because the relative bound is resolved field-wide.
  const Extents ext = Extents::d2(80, 100);
  const auto data = field(ext, 5);

  CompressConfig single_cfg;
  single_cfg.eb = ErrorBound::relative(1e-3);
  const auto single = Compressor(single_cfg).compress(data, ext);

  const auto streamed = StreamingCompressor(config_with(1000)).compress(data, ext);
  EXPECT_DOUBLE_EQ(streamed.stats.eb_abs, single.stats.eb_abs);

  const auto d = StreamingCompressor::decompress(streamed.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, single.stats.eb_abs);
}

TEST(Streaming, SlabCountAndCoverage) {
  const Extents ext = Extents::d3(10, 8, 9);  // 720 elems, plane = 72
  const auto data = field(ext, 6);
  const auto c = StreamingCompressor(config_with(200)).compress(data, ext);
  // thickness = 200/72 = 2 -> 5 slabs of nz=2.
  EXPECT_EQ(c.stats.slabs.size(), 5u);
  EXPECT_EQ(StreamingCompressor::slab_count(c.bytes), 5u);
  std::size_t covered = 0;
  for (const auto& s : c.stats.slabs) {
    EXPECT_EQ(s.offset, covered);
    covered += s.extents.count();
  }
  EXPECT_EQ(covered, ext.count());
}

TEST(Streaming, PartialSlabAccess) {
  const Extents ext = Extents::d2(64, 128);
  const auto data = field(ext, 7);
  const auto c = StreamingCompressor(config_with(128 * 16)).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 4u);

  SlabInfo info;
  const auto slab2 = StreamingCompressor::decompress_slab(c.bytes, 2, &info);
  EXPECT_EQ(info.offset, 2u * 16 * 128);
  ASSERT_EQ(slab2.data.size(), 16u * 128);
  // The slab matches the corresponding region of the original.
  for (std::size_t i = 0; i < slab2.data.size(); ++i) {
    EXPECT_NEAR(slab2.data[i], data[info.offset + i], c.stats.eb_abs) << i;
  }

  EXPECT_THROW((void)StreamingCompressor::decompress_slab(c.bytes, 4), std::out_of_range);
}

TEST(Streaming, UnevenFinalSlab) {
  const Extents ext = Extents::d1(1050);  // 3 slabs: 400, 400, 250
  const auto data = field(ext, 8);
  const auto c = StreamingCompressor(config_with(400)).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 3u);
  EXPECT_EQ(c.stats.slabs[2].extents.nx, 250u);
  const auto d = StreamingCompressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

TEST(Streaming, DoubleFieldsSupported) {
  const Extents ext = Extents::d1(5000);
  std::vector<double> data(ext.count());
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double acc = 0.0;
  for (auto& x : data) {
    acc = 0.99 * acc + 0.03 * dist(rng);
    x = acc;
  }
  const auto c = StreamingCompressor(config_with(1024, 1e-5)).compress(data, ext);
  const auto d = StreamingCompressor::decompress(c.bytes);
  ASSERT_EQ(d.dtype, DType::kFloat64);
  EXPECT_LT(compare_fields(data, d.data_f64).max_abs_error, c.stats.eb_abs);
}

TEST(Streaming, PerSlabWorkflowSelection) {
  // A field whose first half is constant and second half is noise: with
  // auto workflow, slabs choose different codecs.
  const Extents ext = Extents::d1(40000);
  std::vector<float> data(ext.count(), 1.0f);
  std::mt19937 rng(12);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::size_t i = ext.count() / 2; i < ext.count(); ++i) data[i] = dist(rng);

  StreamingConfig cfg = config_with(10000, 1e-3);
  cfg.base.workflow = Workflow::kAuto;
  const auto c = StreamingCompressor(cfg).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 4u);
  // Constant slabs route to the sub-bit rANS stage.  On the 10k-element
  // noise slabs the wide-alphabet Huffman codebook (~5 KB) and rANS model
  // table (~4 KB) sink both entropy coders, so the cost model takes the
  // LZ+Huffman tier whose framing is a few hundred bytes — per-slab
  // selection picks a different codec than whole-field selection would.
  EXPECT_EQ(c.stats.slabs.front().workflow, Workflow::kRans);
  EXPECT_EQ(c.stats.slabs.back().workflow, Workflow::kLzh);
  EXPECT_GT(c.stats.slabs.front().ratio, c.stats.slabs.back().ratio);
  // The mixed-codec container must still round-trip within the bound.
  const auto d = StreamingCompressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

TEST(StreamingParallel, WorkerSweepKeepsContainersByteIdentical) {
  // The pipeline's worker count must never leak into the container: sweep
  // 1, 2, and hardware_concurrency workers (plus a serial reference) and
  // require identical bytes from all of them.
  const Extents ext = Extents::d2(48, 400);
  const auto data = field(ext, 21);
  StreamingConfig cfg = config_with(2400);

  cfg.parallel = false;
  const auto reference = StreamingCompressor(cfg).compress(data, ext);
  ASSERT_GT(reference.stats.slabs.size(), 4u);
  EXPECT_EQ(reference.stats.workers_used, 1u);

  cfg.parallel = true;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, hw}) {
    cfg.workers = workers;
    const auto c = StreamingCompressor(cfg).compress(data, ext);
    EXPECT_EQ(c.bytes, reference.bytes) << workers << " workers";
    EXPECT_LE(c.stats.workers_used, workers);
    EXPECT_GE(c.stats.workers_used, 1u);
  }
}

TEST(StreamingParallel, QueueWindowOneStillPacksInOrder) {
  // queue_window=1 forces the tightest compress/pack lockstep the engine
  // supports — maximal contention on the claim throttle and the packer
  // role — without changing a single container byte.
  const Extents ext = Extents::d1(30000);
  const auto data = field(ext, 22);
  StreamingConfig cfg = config_with(2500);
  cfg.parallel = false;
  const auto reference = StreamingCompressor(cfg).compress(data, ext);

  cfg.parallel = true;
  cfg.workers = 4;
  cfg.queue_window = 1;
  const auto c = StreamingCompressor(cfg).compress(data, ext);
  EXPECT_EQ(c.bytes, reference.bytes);
}

TEST(StreamingParallel, PerCallConfigOverrideMatchesConstructedConfig) {
  // One warm instance serving per-call configs must produce byte-identical
  // containers to instances constructed with those configs — the override
  // swaps the orchestration settings, never the compression result.
  const Extents ext = Extents::d2(40, 500);
  const auto data = field(ext, 31);

  StreamingConfig serial_cfg = config_with(3000);
  serial_cfg.parallel = false;
  StreamingConfig parallel_cfg = serial_cfg;
  parallel_cfg.parallel = true;
  parallel_cfg.workers = 3;

  const StreamingCompressor shared(parallel_cfg);
  const auto via_serial_override = shared.compress(data, ext, serial_cfg);
  const auto via_parallel_override = shared.compress(data, ext, parallel_cfg);
  const auto dedicated = StreamingCompressor(serial_cfg).compress(data, ext);

  EXPECT_EQ(via_serial_override.bytes, dedicated.bytes);
  EXPECT_EQ(via_parallel_override.bytes, dedicated.bytes);
}

TEST(StreamingParallel, SerialAndParallelDecompressAgree) {
  // cfg.parallel must genuinely serialize the read side too, and both modes
  // must reconstruct the identical field.
  const Extents ext = Extents::d1(25000);
  const auto data = field(ext, 23);
  const auto c = StreamingCompressor(config_with(3000)).compress(data, ext);

  StreamingConfig serial_cfg;
  serial_cfg.parallel = false;
  const auto serial = StreamingCompressor::decompress(c.bytes, serial_cfg);

  StreamingConfig parallel_cfg;
  parallel_cfg.parallel = true;
  parallel_cfg.workers = 4;
  const auto parallel = StreamingCompressor::decompress(c.bytes, parallel_cfg);

  ASSERT_EQ(serial.data.size(), data.size());
  EXPECT_EQ(serial.data, parallel.data);
  EXPECT_LT(compare_fields(data, serial.data).max_abs_error, c.stats.eb_abs);
}

TEST(StreamingParallel, MidSlabDecodeErrorIsDeterministic) {
  // Corrupt one mid-index slab and decode repeatedly with a parallel
  // config: the surfaced DecodeError must be byte-for-byte the same every
  // run, regardless of worker interleaving.
  const Extents ext = Extents::d1(20000);
  const auto data = field(ext, 24);
  auto c = StreamingCompressor(config_with(3000)).compress(data, ext);
  ASSERT_GE(c.stats.slabs.size(), 5u);

  const auto idx = StreamingCompressor::index(c.bytes);
  const auto& victim = idx.slabs[2];
  const std::size_t pos =
      static_cast<std::size_t>(victim.bytes.data() - c.bytes.data()) + victim.bytes.size() / 2;
  c.bytes[pos] ^= 0xFF;  // invalidates slab 2's checksum, nothing else

  StreamingConfig cfg;
  cfg.parallel = true;
  cfg.workers = 4;
  std::string first_message;
  for (int run = 0; run < 4; ++run) {
    try {
      (void)StreamingCompressor::decompress(c.bytes, cfg);
      FAIL() << "corrupt slab was accepted on run " << run;
    } catch (const DecodeError& e) {
      if (run == 0) {
        first_message = e.what();
      } else {
        EXPECT_EQ(first_message, std::string(e.what())) << "run " << run;
      }
    }
  }
}

TEST(StreamingParallel, MidSlabCompressFaultIsDeterministic) {
  // A non-finite value in a mid-index slab under an absolute bound faults
  // inside the overlapped pipeline (the field-range scan is skipped for
  // absolute bounds, so the *slab's own* compress pass detects it).  The
  // error must surface identically on every run.
  const Extents ext = Extents::d1(24000);
  auto data = field(ext, 25);
  data[2 * 3000 + 17] = std::nanf("");  // inside slab 2 of 8

  StreamingConfig cfg;
  cfg.base.eb = ErrorBound::absolute(1e-3);
  cfg.max_slab_elems = 3000;
  cfg.parallel = true;
  cfg.workers = 4;
  const StreamingCompressor comp(cfg);

  std::string first_message;
  for (int run = 0; run < 4; ++run) {
    try {
      (void)comp.compress(data, ext);
      FAIL() << "non-finite slab was accepted on run " << run;
    } catch (const std::invalid_argument& e) {
      if (run == 0) {
        first_message = e.what();
      } else {
        EXPECT_EQ(first_message, std::string(e.what())) << "run " << run;
      }
    }
  }
}

TEST(StreamingParallel, CompressManyFanOutStaysOneLevel) {
  // Fields fan out across workers; each nested per-field compress must
  // detect the outer region and run single-worker, keeping the fan-out
  // explicitly one-level (observable via stats.workers_used).
  StreamingConfig cfg = config_with(1000);
  cfg.parallel = true;
  cfg.workers = 4;
  const StreamingCompressor comp(cfg);

  const std::vector<Extents> exts{Extents::d1(4096), Extents::d1(6000), Extents::d1(2500)};
  std::vector<std::vector<float>> storage;
  storage.reserve(exts.size());
  std::vector<std::span<const float>> fields;
  for (std::size_t f = 0; f < exts.size(); ++f) {
    storage.push_back(field(exts[f], static_cast<std::uint32_t>(30 + f)));
    fields.emplace_back(storage.back());
  }

  const auto batch = comp.compress_many(fields, exts);
  ASSERT_EQ(batch.size(), exts.size());
  for (std::size_t f = 0; f < batch.size(); ++f) {
    EXPECT_EQ(batch[f].stats.workers_used, 1u) << "field " << f;
    EXPECT_EQ(batch[f].bytes, comp.compress(fields[f], exts[f]).bytes) << "field " << f;
  }
}

TEST(StreamingParallel, AutoSlabThicknessTracksWorkers) {
  // Opt-in heuristic sizing: with auto_slab_thickness the plan targets ~3
  // slabs per worker (still capped by max_slab_elems), and serial/parallel
  // plans stay identical because the worker count resolves independently
  // of cfg.parallel.
  const Extents ext = Extents::d1(60000);
  const auto data = field(ext, 26);
  StreamingConfig cfg = config_with(std::size_t{1} << 22);
  cfg.auto_slab_thickness = true;
  cfg.workers = 2;

  cfg.parallel = true;
  const auto parallel = StreamingCompressor(cfg).compress(data, ext);
  EXPECT_EQ(parallel.stats.slabs.size(), 6u);  // 3 x 2 workers

  cfg.parallel = false;
  const auto serial = StreamingCompressor(cfg).compress(data, ext);
  EXPECT_EQ(serial.bytes, parallel.bytes);
}

TEST(StreamingParallel, PhaseTimingsAreReported) {
  const Extents ext = Extents::d1(20000);
  const auto data = field(ext, 27);
  const auto c = StreamingCompressor(config_with(3000)).compress(data, ext);
  // A relative bound forces the field-range scan; compression and packing
  // always run.  Timings are nonnegative wall-clock readings.
  EXPECT_GE(c.stats.phases.range_seconds, 0.0);
  EXPECT_GT(c.stats.phases.compress_seconds, 0.0);
  EXPECT_GE(c.stats.phases.pack_seconds, 0.0);
  EXPECT_GE(c.stats.workers_used, 1u);
}

TEST(StreamingParallel, NonFiniteRejectedInBothEbModes) {
  const Extents ext = Extents::d1(8000);
  auto data = field(ext, 28);
  data[4321] = std::numeric_limits<float>::infinity();

  // Relative bound: the whole-field range scan rejects it up front.
  StreamingConfig rel = config_with(1000);
  EXPECT_THROW((void)StreamingCompressor(rel).compress(data, ext), std::invalid_argument);

  // Absolute bound: the scan is skipped, but the slab's own compress pass
  // still rejects it — in serial and parallel mode alike.
  StreamingConfig abs = config_with(1000);
  abs.base.eb = ErrorBound::absolute(1e-3);
  abs.parallel = false;
  EXPECT_THROW((void)StreamingCompressor(abs).compress(data, ext), std::invalid_argument);
  abs.parallel = true;
  abs.workers = 2;
  EXPECT_THROW((void)StreamingCompressor(abs).compress(data, ext), std::invalid_argument);
}

TEST(Streaming, RejectsBadInput) {
  const StreamingCompressor comp;
  std::vector<float> tiny(10, 1.0f);
  EXPECT_THROW((void)comp.compress(tiny, Extents::d1(11)), std::invalid_argument);

  // A single row/plane bigger than the slab limit is a configuration error
  // (slabs split only along the slowest axis).
  StreamingConfig cfg = config_with(5);
  std::vector<float> plane(100, 1.0f);
  EXPECT_THROW((void)StreamingCompressor(cfg).compress(plane, Extents::d2(10, 10)),
               std::invalid_argument);

  std::vector<std::uint8_t> junk{1, 2, 3, 4};
  EXPECT_THROW((void)StreamingCompressor::decompress(junk), std::runtime_error);
}

}  // namespace
