// Blocked/streaming container tests (paper §V-A.3: by-block compression of
// fields larger than device memory).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/metrics.hh"
#include "core/streaming.hh"

namespace {

using namespace szp;

std::vector<float> field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.03f * dist(rng);
    x = acc;
  }
  return v;
}

StreamingConfig config_with(std::size_t max_slab, double eb = 1e-3) {
  StreamingConfig cfg;
  cfg.base.eb = ErrorBound::relative(eb);
  cfg.max_slab_elems = max_slab;
  return cfg;
}

class StreamingRanks : public ::testing::TestWithParam<int> {};

TEST_P(StreamingRanks, RoundTripAcrossSlabs) {
  const int rank = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(40000)
                      : rank == 2 ? Extents::d2(60, 500)
                                  : Extents::d3(24, 30, 40);
  const auto data = field(ext, static_cast<std::uint32_t>(rank));

  const StreamingCompressor comp(config_with(5000));
  const auto c = comp.compress(data, ext);
  EXPECT_GT(c.stats.slabs.size(), 1u);  // actually partitioned

  const auto d = StreamingCompressor::decompress(c.bytes);
  EXPECT_EQ(d.extents, ext);
  ASSERT_EQ(d.data.size(), data.size());
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(Ranks, StreamingRanks, ::testing::Values(1, 2, 3));

TEST(Streaming, MatchesSingleShotQuality) {
  // Slabbed compression must honor the same absolute bound the single-shot
  // compressor resolves, because the relative bound is resolved field-wide.
  const Extents ext = Extents::d2(80, 100);
  const auto data = field(ext, 5);

  CompressConfig single_cfg;
  single_cfg.eb = ErrorBound::relative(1e-3);
  const auto single = Compressor(single_cfg).compress(data, ext);

  const auto streamed = StreamingCompressor(config_with(1000)).compress(data, ext);
  EXPECT_DOUBLE_EQ(streamed.stats.eb_abs, single.stats.eb_abs);

  const auto d = StreamingCompressor::decompress(streamed.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, single.stats.eb_abs);
}

TEST(Streaming, SlabCountAndCoverage) {
  const Extents ext = Extents::d3(10, 8, 9);  // 720 elems, plane = 72
  const auto data = field(ext, 6);
  const auto c = StreamingCompressor(config_with(200)).compress(data, ext);
  // thickness = 200/72 = 2 -> 5 slabs of nz=2.
  EXPECT_EQ(c.stats.slabs.size(), 5u);
  EXPECT_EQ(StreamingCompressor::slab_count(c.bytes), 5u);
  std::size_t covered = 0;
  for (const auto& s : c.stats.slabs) {
    EXPECT_EQ(s.offset, covered);
    covered += s.extents.count();
  }
  EXPECT_EQ(covered, ext.count());
}

TEST(Streaming, PartialSlabAccess) {
  const Extents ext = Extents::d2(64, 128);
  const auto data = field(ext, 7);
  const auto c = StreamingCompressor(config_with(128 * 16)).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 4u);

  SlabInfo info;
  const auto slab2 = StreamingCompressor::decompress_slab(c.bytes, 2, &info);
  EXPECT_EQ(info.offset, 2u * 16 * 128);
  ASSERT_EQ(slab2.data.size(), 16u * 128);
  // The slab matches the corresponding region of the original.
  for (std::size_t i = 0; i < slab2.data.size(); ++i) {
    EXPECT_NEAR(slab2.data[i], data[info.offset + i], c.stats.eb_abs) << i;
  }

  EXPECT_THROW((void)StreamingCompressor::decompress_slab(c.bytes, 4), std::out_of_range);
}

TEST(Streaming, UnevenFinalSlab) {
  const Extents ext = Extents::d1(1050);  // 3 slabs: 400, 400, 250
  const auto data = field(ext, 8);
  const auto c = StreamingCompressor(config_with(400)).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 3u);
  EXPECT_EQ(c.stats.slabs[2].extents.nx, 250u);
  const auto d = StreamingCompressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

TEST(Streaming, DoubleFieldsSupported) {
  const Extents ext = Extents::d1(5000);
  std::vector<double> data(ext.count());
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double acc = 0.0;
  for (auto& x : data) {
    acc = 0.99 * acc + 0.03 * dist(rng);
    x = acc;
  }
  const auto c = StreamingCompressor(config_with(1024, 1e-5)).compress(data, ext);
  const auto d = StreamingCompressor::decompress(c.bytes);
  ASSERT_EQ(d.dtype, DType::kFloat64);
  EXPECT_LT(compare_fields(data, d.data_f64).max_abs_error, c.stats.eb_abs);
}

TEST(Streaming, PerSlabWorkflowSelection) {
  // A field whose first half is constant and second half is noise: with
  // auto workflow, slabs choose different codecs.
  const Extents ext = Extents::d1(40000);
  std::vector<float> data(ext.count(), 1.0f);
  std::mt19937 rng(12);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::size_t i = ext.count() / 2; i < ext.count(); ++i) data[i] = dist(rng);

  StreamingConfig cfg = config_with(10000, 1e-3);
  cfg.base.workflow = Workflow::kAuto;
  const auto c = StreamingCompressor(cfg).compress(data, ext);
  ASSERT_EQ(c.stats.slabs.size(), 4u);
  EXPECT_NE(c.stats.slabs.front().workflow, Workflow::kHuffman);
  EXPECT_EQ(c.stats.slabs.back().workflow, Workflow::kHuffman);
  EXPECT_GT(c.stats.slabs.front().ratio, c.stats.slabs.back().ratio);
}

TEST(Streaming, RejectsBadInput) {
  const StreamingCompressor comp;
  std::vector<float> tiny(10, 1.0f);
  EXPECT_THROW((void)comp.compress(tiny, Extents::d1(11)), std::invalid_argument);

  // A single row/plane bigger than the slab limit is a configuration error
  // (slabs split only along the slowest axis).
  StreamingConfig cfg = config_with(5);
  std::vector<float> plane(100, 1.0f);
  EXPECT_THROW((void)StreamingCompressor(cfg).compress(plane, Extents::d2(10, 10)),
               std::invalid_argument);

  std::vector<std::uint8_t> junk{1, 2, 3, 4};
  EXPECT_THROW((void)StreamingCompressor::decompress(junk), std::runtime_error);
}

}  // namespace
