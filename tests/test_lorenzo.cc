// Lorenzo predictor tests: dual-quantization correctness, the partial-sum
// reconstruction theorem (paper §IV-B), the error-bound invariant, outlier
// schemes, and chunk-boundary handling.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "core/predictor/lorenzo.hh"
#include "sim/sparse.hh"

namespace {

using namespace szp;

std::vector<float> random_field(const Extents& ext, std::uint32_t seed, float amplitude = 1.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-amplitude, amplitude);
  std::vector<float> v(ext.count());
  // Smooth-ish random walk along x so most residuals are small but not all.
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.98f * acc + 0.1f * dist(rng);
    x = acc + 0.02f * dist(rng);
  }
  return v;
}

/// Full fine-grained round trip through the cuSZ+ residual scheme.
std::vector<float> roundtrip_fine(std::span<const float> data, const Extents& ext, double eb,
                                  const QuantConfig& qcfg, const ReconstructConfig& rcfg) {
  auto res = lorenzo_construct(data, ext, eb, qcfg, OutlierScheme::kResidual);
  auto sparse = sim::dense_to_sparse<qdiff_t>(
      std::span<const qdiff_t>(res.outlier_dense.data(), res.outlier_dense.size()));

  std::vector<qdiff_t> qprime(ext.count());
  fuse_quant_codes(std::span<const quant_t>(res.quant.data(), res.quant.size()),
                   qcfg.radius(), qprime);
  sim::scatter_add(sparse, std::span<qdiff_t>(qprime));

  std::vector<float> out(ext.count());
  lorenzo_reconstruct_fused(qprime, ext, eb, out, rcfg);
  return out;
}

/// Round trip through the cuSZ value scheme + coarse reconstruction.
std::vector<float> roundtrip_coarse(std::span<const float> data, const Extents& ext, double eb,
                                    const QuantConfig& qcfg) {
  auto res = lorenzo_construct(data, ext, eb, qcfg, OutlierScheme::kValue,
                               ConstructVariant::kBaseline);
  std::vector<float> out(ext.count());
  lorenzo_reconstruct_coarse(std::span<const quant_t>(res.quant.data(), res.quant.size()),
                             std::span<const qdiff_t>(res.outlier_dense.data(),
                                                      res.outlier_dense.size()),
                             ext, eb, qcfg, out);
  return out;
}

double max_error(std::span<const float> a, std::span<const float> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

Extents extents_for(int rank, bool ragged) {
  // Ragged sizes are deliberately not multiples of the chunk shapes.
  switch (rank) {
    case 1: return Extents::d1(ragged ? 1000 : 1024);
    case 2: return Extents::d2(ragged ? 37 : 32, ragged ? 53 : 48);
    default: return Extents::d3(ragged ? 11 : 16, ragged ? 19 : 16, ragged ? 21 : 24);
  }
}

// ---- Error-bound property sweep: rank x eb x raggedness ------------------

class LorenzoRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

// Raw kernels guarantee error <= eb (+ float32 output rounding); the strict
// `< eb` contract is enforced one level up by the Compressor's margin.
constexpr double kFloatRounding = 1e-6;

TEST_P(LorenzoRoundTrip, FineGrainedHonorsErrorBound) {
  const auto [rank, eb, ragged] = GetParam();
  const Extents ext = extents_for(rank, ragged);
  const auto data = random_field(ext, static_cast<std::uint32_t>(rank * 100 + ragged));
  const auto out = roundtrip_fine(data, ext, eb, QuantConfig{}, ReconstructConfig{});
  EXPECT_LE(max_error(data, out), eb + kFloatRounding) << "rank=" << rank << " eb=" << eb;
}

TEST_P(LorenzoRoundTrip, CoarseBaselineHonorsErrorBound) {
  const auto [rank, eb, ragged] = GetParam();
  const Extents ext = extents_for(rank, ragged);
  const auto data = random_field(ext, static_cast<std::uint32_t>(rank * 100 + 50 + ragged));
  const auto out = roundtrip_coarse(data, ext, eb, QuantConfig{});
  EXPECT_LE(max_error(data, out), eb + kFloatRounding) << "rank=" << rank << " eb=" << eb;
}

TEST_P(LorenzoRoundTrip, FineAndCoarseAgreeExactly) {
  // Both schemes reconstruct the same prequantized integers, so their float
  // outputs must agree bit-for-bit.
  const auto [rank, eb, ragged] = GetParam();
  const Extents ext = extents_for(rank, ragged);
  const auto data = random_field(ext, static_cast<std::uint32_t>(rank * 1000 + ragged));
  const auto fine = roundtrip_fine(data, ext, eb, QuantConfig{}, ReconstructConfig{});
  const auto coarse = roundtrip_coarse(data, ext, eb, QuantConfig{});
  EXPECT_EQ(fine, coarse);
}

INSTANTIATE_TEST_SUITE_P(
    RankEbRagged, LorenzoRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Bool()));

// ---- Reconstruction variants (Table II ablation) -------------------------

class ReconstructVariants
    : public ::testing::TestWithParam<std::tuple<int, ReconstructVariant, std::size_t>> {};

TEST_P(ReconstructVariants, AllVariantsProduceIdenticalOutput) {
  const auto [rank, variant, seq] = GetParam();
  if (variant == ReconstructVariant::kCoarseChunkSerial) GTEST_SKIP();
  const Extents ext = extents_for(rank, true);
  const auto data = random_field(ext, 99);
  const double eb = 1e-3;

  const auto reference = roundtrip_fine(data, ext, eb, QuantConfig{}, ReconstructConfig{});
  ReconstructConfig rcfg{variant, seq};
  const auto out = roundtrip_fine(data, ext, eb, QuantConfig{}, rcfg);
  EXPECT_EQ(out, reference);
}

INSTANTIATE_TEST_SUITE_P(
    VariantSeq, ReconstructVariants,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(ReconstructVariant::kNaivePartialSum,
                                         ReconstructVariant::kOptimizedPartialSum),
                       ::testing::Values(std::size_t{1}, std::size_t{4}, std::size_t{8},
                                         std::size_t{16})));

// ---- Hand-verified partial-sum theorem -----------------------------------

TEST(Lorenzo, PartialSumEqualsSerialReconstruction2D) {
  // 4x4 single chunk; quant residuals chosen by hand.  The paper's theorem:
  // d[y,x] = sum_{j<=y} sum_{i<=x} q'[j,i].
  const Extents ext = Extents::d2(4, 4);
  std::vector<qdiff_t> qprime{1, 0, 2, -1, 0, 3, 0, 0, -2, 0, 1, 0, 0, 0, 0, 4};
  const auto q0 = qprime;  // keep a copy
  std::vector<float> out(16);
  lorenzo_reconstruct_fused(qprime, ext, 0.5, out, {});  // 2eb = 1 => out == sums

  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 4; ++x) {
      qdiff_t sum = 0;
      for (std::size_t j = 0; j <= y; ++j)
        for (std::size_t i = 0; i <= x; ++i) sum += q0[j * 4 + i];
      EXPECT_EQ(out[y * 4 + x], static_cast<float>(sum)) << "y=" << y << " x=" << x;
    }
  }
}

TEST(Lorenzo, ConstantFieldNeedsOneCodePerChunkRow) {
  // A constant field prequantizes to a constant integer; within each chunk
  // only position (0,0,..) carries a nonzero residual (the boundary is 0).
  const Extents ext = Extents::d1(512);
  std::vector<float> data(512, 10.0f);
  auto res = lorenzo_construct(data, ext, 0.01, QuantConfig{});
  const auto r = static_cast<quant_t>(QuantConfig{}.radius());
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    if (res.quant[i] != r) ++nonzero;
  }
  EXPECT_EQ(nonzero, 2u);  // one per 256-chunk
  EXPECT_EQ(res.quant[0], r + 500);  // round(10/0.02) = 500
  EXPECT_EQ(res.quant[256], r + 500);
}

TEST(Lorenzo, OutliersUseResidualSpaceInPlusScheme) {
  // A huge isolated spike must overflow the quantizer and land in the
  // outlier stream as a residual, with the quant-code parked at radius.
  const Extents ext = Extents::d1(256);
  std::vector<float> data(256, 0.0f);
  data[100] = 1000.0f;
  const double eb = 0.01;
  auto res = lorenzo_construct(data, ext, eb, QuantConfig{});
  const auto r = static_cast<quant_t>(QuantConfig{}.radius());

  EXPECT_EQ(res.quant[100], r);
  EXPECT_EQ(res.outlier_dense[100], 50000);   // round(1000/0.02) - 0
  EXPECT_EQ(res.quant[101], r);
  EXPECT_EQ(res.outlier_dense[101], -50000);  // back down
  // And the round trip still honors the bound.
  const auto out = roundtrip_fine(data, ext, eb, QuantConfig{}, {});
  EXPECT_LE(max_error(data, out), eb + kFloatRounding);
}

TEST(Lorenzo, ValueSchemeUsesPlaceholderZero) {
  const Extents ext = Extents::d1(256);
  std::vector<float> data(256, 0.0f);
  data[100] = 1000.0f;
  auto res = lorenzo_construct(data, ext, 0.01, QuantConfig{}, OutlierScheme::kValue);
  EXPECT_EQ(res.quant[100], 0);
  EXPECT_EQ(res.outlier_dense[100], 50000);  // prequantized *value*
}

TEST(Lorenzo, ChunksAreIndependent) {
  // Mutating data in one chunk must not change quant-codes in another.
  const Extents ext = Extents::d1(1024);
  auto data = random_field(ext, 5);
  auto base = lorenzo_construct(data, ext, 1e-3, QuantConfig{});
  data[700] += 100.0f;  // chunk 2
  auto mutated = lorenzo_construct(data, ext, 1e-3, QuantConfig{});
  for (std::size_t i = 0; i < 512; ++i) {  // chunks 0-1 untouched
    EXPECT_EQ(base.quant[i], mutated.quant[i]) << "i=" << i;
  }
}

TEST(Lorenzo, SmallerCapacityProducesMoreOutliers) {
  const Extents ext = Extents::d2(64, 64);
  const auto data = random_field(ext, 12, 5.0f);
  const double eb = 1e-4;
  auto big = lorenzo_construct(data, ext, eb, QuantConfig{4096});
  auto small = lorenzo_construct(data, ext, eb, QuantConfig{16});
  const auto nnz = [](const LorenzoConstructResult& r) {
    std::size_t c = 0;
    for (const auto v : r.outlier_dense) c += v != 0 ? 1u : 0u;
    return c;
  };
  EXPECT_GE(nnz(small), nnz(big));
  EXPECT_GT(nnz(small), 0u);
  // Both still reconstruct within bound.
  for (const auto cap : {std::uint32_t{16}, std::uint32_t{4096}}) {
    const auto out = roundtrip_fine(data, ext, eb, QuantConfig{cap}, {});
    EXPECT_LE(max_error(data, out), eb + kFloatRounding) << "cap=" << cap;
  }
}

TEST(Lorenzo, InvalidArgumentsThrow) {
  const Extents ext = Extents::d1(100);
  std::vector<float> data(50);
  EXPECT_THROW((void)lorenzo_construct(data, ext, 1e-3, QuantConfig{}),
               std::invalid_argument);
  std::vector<float> ok(100);
  EXPECT_THROW((void)lorenzo_construct(ok, ext, -1.0, QuantConfig{}), std::invalid_argument);
  EXPECT_THROW((void)lorenzo_construct(ok, ext, 1e-3, QuantConfig{7}), std::invalid_argument);

  std::vector<qdiff_t> q(100);
  std::vector<float> out(99);
  EXPECT_THROW((void)lorenzo_reconstruct_fused(q, ext, 1e-3, out, {}), std::invalid_argument);
}

TEST(Lorenzo, MinimalSizes) {
  for (const int rank : {1, 2, 3}) {
    Extents ext = rank == 1 ? Extents::d1(1) : rank == 2 ? Extents::d2(1, 1) : Extents::d3(1, 1, 1);
    std::vector<float> data{3.14159f};
    const auto out = roundtrip_fine(data, ext, 1e-4, QuantConfig{}, {});
    EXPECT_LE(max_error(data, out), 1e-4 + kFloatRounding);
  }
}

}  // namespace
