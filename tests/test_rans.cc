// rANS entropy coder and LZ77+rANS (Zstd stand-in) tests.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "core/serialize.hh"
#include "lossless/lzr.hh"
#include "core/rans.hh"

namespace {

using namespace szp;
using namespace szp::lossless;

std::vector<std::uint16_t> skewed_symbols(std::size_t n, double p_top, std::size_t alphabet,
                                          std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet - 1);
  std::vector<std::uint16_t> v(n);
  for (auto& s : v) {
    s = u(rng) < p_top ? static_cast<std::uint16_t>(0) : static_cast<std::uint16_t>(pick(rng));
  }
  return v;
}

std::vector<std::uint64_t> counts_of(std::span<const std::uint16_t> syms, std::size_t alphabet) {
  std::vector<std::uint64_t> c(alphabet, 0);
  for (const auto s : syms) ++c[s];
  return c;
}

// ---- Model ------------------------------------------------------------------

TEST(RansModel, FrequenciesSumToScaleAndKeepEverySymbol) {
  for (const double p : {0.01, 0.5, 0.99, 0.9999}) {
    const auto syms = skewed_symbols(100000, p, 300, 1);
    const auto model = RansModel::build(counts_of(syms, 300));
    std::uint32_t total = 0;
    std::size_t live = 0;
    for (std::size_t s = 0; s < 300; ++s) {
      total += model.freq(s);
      live += model.freq(s) > 0 ? 1u : 0u;
    }
    EXPECT_EQ(total, RansModel::kProbScale) << p;
    // Every occurring symbol keeps a nonzero slot (encodability).
    const auto counts = counts_of(syms, 300);
    for (std::size_t s = 0; s < 300; ++s) {
      if (counts[s] > 0) EXPECT_GT(model.freq(s), 0u) << "p=" << p << " s=" << s;
    }
  }
}

TEST(RansModel, SlotTableIsConsistent) {
  const auto syms = skewed_symbols(20000, 0.7, 50, 2);
  const auto model = RansModel::build(counts_of(syms, 50));
  for (std::uint32_t slot = 0; slot < RansModel::kProbScale; ++slot) {
    const auto s = model.symbol_at(slot);
    EXPECT_GE(slot, model.cum(s));
    EXPECT_LT(slot, model.cum(s) + model.freq(s));
  }
}

TEST(RansModel, SerializationRoundTrip) {
  const auto syms = skewed_symbols(50000, 0.9, 1024, 3);
  const auto model = RansModel::build(counts_of(syms, 1024));
  ByteWriter w;
  model.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto restored = RansModel::deserialize(r);
  ASSERT_EQ(restored.alphabet_size(), model.alphabet_size());
  for (std::size_t s = 0; s < 1024; ++s) {
    EXPECT_EQ(restored.freq(s), model.freq(s));
  }
}

TEST(RansModel, RejectsDegenerateInput) {
  std::vector<std::uint64_t> zeros(16, 0);
  EXPECT_THROW((void)RansModel::build(zeros), std::invalid_argument);
  EXPECT_THROW((void)RansModel::build({}), std::invalid_argument);
}

// ---- Coder -------------------------------------------------------------------

class RansRoundTrip : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(RansRoundTrip, EncodeDecodeIdentity) {
  const auto [n, p_top] = GetParam();
  const auto syms = skewed_symbols(n, p_top, 512, static_cast<std::uint32_t>(n));
  const auto model = RansModel::build(counts_of(syms, 512));
  const auto bytes = rans_encode(syms, model);
  const auto decoded = rans_decode(bytes, syms.size(), model);
  EXPECT_EQ(decoded, syms);
}

INSTANTIATE_TEST_SUITE_P(SizesSkews, RansRoundTrip,
                         ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{100},
                                                              std::size_t{65536}),
                                            ::testing::Values(0.1, 0.9, 0.999)));

TEST(Rans, BeatsHuffmanFloorOnVerySkewedData) {
  // p1 = 0.999: entropy ~ 0.014 bits/symbol.  Huffman is stuck at >= 1 bit;
  // rANS's fractional bits get close to the entropy.
  const auto syms = skewed_symbols(200000, 0.999, 64, 7);
  const auto model = RansModel::build(counts_of(syms, 64));
  const auto bytes = rans_encode(syms, model);
  const double bits_per_symbol =
      static_cast<double>(bytes.size()) * 8.0 / static_cast<double>(syms.size());
  EXPECT_LT(bits_per_symbol, 0.1);
}

TEST(Rans, ApproachesEntropyOnUniformData) {
  std::mt19937 rng(8);
  std::vector<std::uint16_t> syms(100000);
  for (auto& s : syms) s = static_cast<std::uint16_t>(rng() % 256);
  const auto model = RansModel::build(counts_of(syms, 256));
  const auto bytes = rans_encode(syms, model);
  const double bits = static_cast<double>(bytes.size()) * 8.0 / static_cast<double>(syms.size());
  EXPECT_NEAR(bits, 8.0, 0.1);
}

TEST(Rans, SingleSymbolStreamCostsAlmostNothing) {
  std::vector<std::uint16_t> syms(100000, 5);
  std::vector<std::uint64_t> counts(16, 0);
  counts[5] = syms.size();
  const auto model = RansModel::build(counts);
  const auto bytes = rans_encode(syms, model);
  EXPECT_LE(bytes.size(), 8u);  // just the state flush
  EXPECT_EQ(rans_decode(bytes, syms.size(), model), syms);
}

TEST(Rans, CorruptStreamIsDetected) {
  const auto syms = skewed_symbols(5000, 0.6, 64, 9);
  const auto model = RansModel::build(counts_of(syms, 64));
  auto bytes = rans_encode(syms, model);
  bytes.resize(bytes.size() / 2);  // truncate
  bool failed = false;
  try {
    const auto decoded = rans_decode(bytes, syms.size(), model);
    failed = decoded != syms;
  } catch (const std::runtime_error&) {
    failed = true;
  }
  EXPECT_TRUE(failed);
}

// ---- LZR (Zstd stand-in) -----------------------------------------------------

std::vector<std::uint8_t> bytes_of(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Lzr, RoundTripAssorted) {
  for (const auto& s : {std::string{""}, std::string{"x"}, std::string{"aaa"},
                        std::string{"the quick brown fox the quick brown fox"}}) {
    const auto input = bytes_of(s);
    EXPECT_EQ(lzr_decompress(lzr_compress(input)), input) << "'" << s << "'";
  }
}

TEST(Lzr, RoundTripRandomAndRepetitive) {
  std::mt19937 rng(10);
  std::vector<std::uint8_t> random(80000);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(lzr_decompress(lzr_compress(random)), random);

  std::vector<std::uint8_t> rep;
  for (int i = 0; i < 60000; ++i) rep.push_back(static_cast<std::uint8_t>("abcabd"[i % 6]));
  const auto c = lzr_compress(rep);
  EXPECT_LT(c.size(), rep.size() / 20);
  EXPECT_EQ(lzr_decompress(c), rep);
}

TEST(Lzr, OverlappingMatches) {
  std::vector<std::uint8_t> input(50000, 'z');
  EXPECT_EQ(lzr_decompress(lzr_compress(input)), input);
}

TEST(Lzr, CorruptInputThrows) {
  const auto c = lzr_compress(bytes_of("hello hello hello"));
  auto bad = c;
  bad[0] ^= 0xff;
  EXPECT_THROW((void)lzr_decompress(bad), std::runtime_error);
  std::vector<std::uint8_t> truncated(c.begin(), c.begin() + 10);
  EXPECT_THROW((void)lzr_decompress(truncated), std::runtime_error);
}

TEST(Lzr, SkewedDataBeatsLzhEntropyStage) {
  // A byte stream dominated by one value with sparse structure: rANS's
  // fractional bits should out-compress Huffman's integer code lengths.
  std::mt19937 rng(11);
  std::vector<std::uint8_t> input(120000, 0);
  for (auto& b : input) {
    if (rng() % 64 == 0) b = static_cast<std::uint8_t>(rng() % 256);
  }
  const double rans_ratio = lzr_ratio(input);
  EXPECT_GT(rans_ratio, 5.0);
}

}  // namespace
