// Compressibility-analysis tests: entropy/redundancy bounds, madogram
// smoothness, and the RLE-vs-VLE workflow selector (paper §III-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/analysis/entropy.hh"
#include "core/analysis/madogram.hh"
#include "core/analysis/selector.hh"

namespace {

using namespace szp;

TEST(Entropy, UniformDistributionHitsLog2N) {
  std::vector<std::uint64_t> freq(256, 100);
  const auto s = entropy_stats(freq);
  EXPECT_NEAR(s.entropy_bits, 8.0, 1e-12);
  EXPECT_NEAR(s.p1, 1.0 / 256.0, 1e-12);
  EXPECT_EQ(s.total, 25600u);
}

TEST(Entropy, SingleSymbolIsZeroEntropy) {
  std::vector<std::uint64_t> freq(16, 0);
  freq[3] = 500;
  const auto s = entropy_stats(freq);
  EXPECT_EQ(s.entropy_bits, 0.0);
  EXPECT_EQ(s.p1, 1.0);
  EXPECT_EQ(s.top_symbol, 3u);
  // R- = 1 - H(1,0) = 1, so the ⟨b⟩ lower bound is 1 bit — Huffman's floor.
  EXPECT_DOUBLE_EQ(s.avg_bits_lower(), 1.0);
}

TEST(Entropy, EmptyHistogram) {
  std::vector<std::uint64_t> freq(8, 0);
  const auto s = entropy_stats(freq);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.entropy_bits, 0.0);
}

TEST(Entropy, RedundancyBoundsBehaveAsPublished) {
  // p1 = 0.5: R- = 1 - H(0.5) = 0; R+ = 0.586.
  std::vector<std::uint64_t> freq{50, 25, 25};
  const auto s = entropy_stats(freq);
  EXPECT_NEAR(s.p1, 0.5, 1e-12);
  EXPECT_NEAR(s.redundancy_lower, 0.0, 1e-12);
  EXPECT_NEAR(s.redundancy_upper, 0.586, 1e-12);

  // Below the Johnsen threshold (p1 <= 0.4) the lower bound is 0.
  std::vector<std::uint64_t> flat{30, 30, 40};
  EXPECT_EQ(entropy_stats(flat).redundancy_lower, 0.0);
}

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999, 1e-3);
}

// ---- Madogram --------------------------------------------------------------

TEST(Madogram, ConstantFieldIsPerfectlySmooth) {
  std::vector<std::uint16_t> data(5000, 7);
  const auto m = madogram(std::span<const std::uint16_t>(data));
  EXPECT_EQ(m.mean_roughness, 0.0);
  EXPECT_EQ(m.smoothness(), 1.0);
}

TEST(Madogram, AlternatingFieldIsMaximallyRoughAtOddDistances) {
  std::vector<std::uint16_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint16_t>(i & 1);
  MadogramConfig cfg;
  cfg.samples = 200000;
  const auto m = madogram(std::span<const std::uint16_t>(data), cfg);
  // Odd distances always differ; even distances never do.
  EXPECT_NEAR(m.binary_variance[0], 1.0, 1e-12);  // d=1
  EXPECT_NEAR(m.binary_variance[1], 0.0, 1e-12);  // d=2
  EXPECT_NEAR(m.mean_roughness, 0.5, 0.05);
}

TEST(Madogram, RandomWalkMadogramGrowsWithDistance) {
  // Fig 2a's structure: for a random walk, E|Z(a)-Z(a+d)| grows ~ sqrt(d),
  // so the regression slope is positive.
  std::mt19937 rng(11);
  std::normal_distribution<float> step(0.0f, 1.0f);
  std::vector<float> walk(20000);
  float acc = 0.0f;
  for (auto& x : walk) {
    acc += step(rng);
    x = acc;
  }
  MadogramConfig cfg;
  cfg.samples = 300000;
  const auto m = madogram(std::span<const float>(walk), cfg);
  EXPECT_GT(m.slope, 0.0);
  EXPECT_GT(m.abs_difference[150] + m.abs_difference[180], m.abs_difference[0]);
}

TEST(Madogram, DeterministicUnderSeed) {
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::sin(0.01f * static_cast<float>(i));
  const auto a = madogram(std::span<const float>(data));
  const auto b = madogram(std::span<const float>(data));
  EXPECT_EQ(a.mean_roughness, b.mean_roughness);
  EXPECT_EQ(a.abs_difference, b.abs_difference);
}

TEST(AdjacentRoughness, ExactCount) {
  std::vector<std::uint16_t> data{1, 1, 2, 2, 2, 3};  // 2 changes over 5 pairs
  EXPECT_DOUBLE_EQ(adjacent_roughness(data), 0.4);
  EXPECT_EQ(adjacent_roughness(std::vector<std::uint16_t>{5}), 0.0);
}

// ---- Selector ---------------------------------------------------------------

std::vector<std::uint64_t> histogram_with_p1(double p1, std::uint64_t total = 1000000) {
  // Mass p1 at the top symbol; remainder spread over 8 neighbors.
  std::vector<std::uint64_t> freq(1024, 0);
  freq[512] = static_cast<std::uint64_t>(p1 * static_cast<double>(total));
  const std::uint64_t rest = total - freq[512];
  for (int k = 1; k <= 4; ++k) {
    freq[512 + k] = rest / 8;
    freq[512 - k] = rest / 8;
  }
  return freq;
}

// Find a codec's rank (0 = best) in the decision's score table.
std::size_t rank_of(const WorkflowDecision& d, Workflow wf) {
  for (std::size_t i = 0; i < d.scores.size(); ++i) {
    if (d.scores[i].workflow == wf) return i;
  }
  ADD_FAILURE() << "workflow " << static_cast<int>(wf) << " missing from score table";
  return d.scores.size();
}

TEST(Selector, VerySmoothDataBreaksTheHuffmanFloor) {
  // ⟨b⟩ ≤ 1.09 is the paper's cue that Huffman is pinned at its 1-bit
  // floor.  The cost model generalizes the rule: every sub-bit codec —
  // rANS, RLE, RLE+VLE — must outrank Huffman here, and the winner is the
  // fractional-bit rANS stage (best projected ratio at competitive modeled
  // encode time).
  const auto d = select_workflow(histogram_with_p1(0.995));
  EXPECT_EQ(d.workflow, Workflow::kRans);
  EXPECT_LE(d.est_avg_bits, 1.09);
  const auto huffman_rank = rank_of(d, Workflow::kHuffman);
  EXPECT_LT(rank_of(d, Workflow::kRans), huffman_rank);
  EXPECT_LT(rank_of(d, Workflow::kRleVle), huffman_rank);  // the §III rule
  EXPECT_LT(rank_of(d, Workflow::kRle), huffman_rank);
}

TEST(Selector, RoughDataSelectsHuffman) {
  const auto d = select_workflow(histogram_with_p1(0.6));
  EXPECT_EQ(d.workflow, Workflow::kHuffman);
  EXPECT_GT(d.est_avg_bits, 1.09);
}

TEST(Selector, ScoreTableCoversEveryWorkflowOnce) {
  const auto d = select_workflow(histogram_with_p1(0.9));
  ASSERT_EQ(d.scores.size(), 7u);
  for (const auto wf : {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle, Workflow::kRans,
                        Workflow::kLz77, Workflow::kLzh, Workflow::kLzr}) {
    rank_of(d, wf);  // ADD_FAILUREs when absent
  }
  // Ranked best-first.
  for (std::size_t i = 1; i < d.scores.size(); ++i) {
    EXPECT_GE(d.scores[i - 1].score, d.scores[i].score);
  }
}

TEST(Selector, ObjectiveWeightsAreConfigurable) {
  // A pure-throughput objective must take the cheapest modeled encoder
  // (plain RLE: one pass, no codebook); a pure-ratio objective on the same
  // histogram must take the best projected ratio regardless of speed.
  SelectorConfig fast;
  fast.ratio_weight = 0.0;
  fast.throughput_weight = 1.0;
  const auto d_fast = select_workflow(histogram_with_p1(0.995), 4, fast);
  EXPECT_EQ(d_fast.workflow, Workflow::kRle);

  SelectorConfig dense;
  dense.ratio_weight = 1.0;
  dense.throughput_weight = 0.0;
  const auto d_dense = select_workflow(histogram_with_p1(0.995), 4, dense);
  double best_ratio = 0.0;
  for (const auto& s : d_dense.scores) best_ratio = std::max(best_ratio, s.est_ratio);
  EXPECT_EQ(d_dense.scores.front().est_ratio, best_ratio);
}

TEST(Selector, EstimatedVleCrRespectsTheFloatCeiling) {
  // ⟨b⟩ >= 1 bit means VLE alone cannot beat 32x for float data — the
  // ceiling the paper's Workflow-RLE is designed to break.
  const auto d = select_workflow(histogram_with_p1(0.9999));
  EXPECT_LE(d.est_vle_cr, 32.0 + 1e-9);
}

TEST(Selector, RleBitsEstimateTracksP1) {
  const auto smooth = select_workflow(histogram_with_p1(0.99));
  const auto rough = select_workflow(histogram_with_p1(0.7));
  EXPECT_LT(smooth.est_rle_bits, rough.est_rle_bits);
}

}  // namespace
