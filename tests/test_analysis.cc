// Compressibility-analysis tests: entropy/redundancy bounds, madogram
// smoothness, and the RLE-vs-VLE workflow selector (paper §III-B).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/analysis/entropy.hh"
#include "core/analysis/madogram.hh"
#include "core/analysis/selector.hh"

namespace {

using namespace szp;

TEST(Entropy, UniformDistributionHitsLog2N) {
  std::vector<std::uint64_t> freq(256, 100);
  const auto s = entropy_stats(freq);
  EXPECT_NEAR(s.entropy_bits, 8.0, 1e-12);
  EXPECT_NEAR(s.p1, 1.0 / 256.0, 1e-12);
  EXPECT_EQ(s.total, 25600u);
}

TEST(Entropy, SingleSymbolIsZeroEntropy) {
  std::vector<std::uint64_t> freq(16, 0);
  freq[3] = 500;
  const auto s = entropy_stats(freq);
  EXPECT_EQ(s.entropy_bits, 0.0);
  EXPECT_EQ(s.p1, 1.0);
  EXPECT_EQ(s.top_symbol, 3u);
  // R- = 1 - H(1,0) = 1, so the ⟨b⟩ lower bound is 1 bit — Huffman's floor.
  EXPECT_DOUBLE_EQ(s.avg_bits_lower(), 1.0);
}

TEST(Entropy, EmptyHistogram) {
  std::vector<std::uint64_t> freq(8, 0);
  const auto s = entropy_stats(freq);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.entropy_bits, 0.0);
}

TEST(Entropy, RedundancyBoundsBehaveAsPublished) {
  // p1 = 0.5: R- = 1 - H(0.5) = 0; R+ = 0.586.
  std::vector<std::uint64_t> freq{50, 25, 25};
  const auto s = entropy_stats(freq);
  EXPECT_NEAR(s.p1, 0.5, 1e-12);
  EXPECT_NEAR(s.redundancy_lower, 0.0, 1e-12);
  EXPECT_NEAR(s.redundancy_upper, 0.586, 1e-12);

  // Below the Johnsen threshold (p1 <= 0.4) the lower bound is 0.
  std::vector<std::uint64_t> flat{30, 30, 40};
  EXPECT_EQ(entropy_stats(flat).redundancy_lower, 0.0);
}

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999, 1e-3);
}

// ---- Madogram --------------------------------------------------------------

TEST(Madogram, ConstantFieldIsPerfectlySmooth) {
  std::vector<std::uint16_t> data(5000, 7);
  const auto m = madogram(std::span<const std::uint16_t>(data));
  EXPECT_EQ(m.mean_roughness, 0.0);
  EXPECT_EQ(m.smoothness(), 1.0);
}

TEST(Madogram, AlternatingFieldIsMaximallyRoughAtOddDistances) {
  std::vector<std::uint16_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint16_t>(i & 1);
  MadogramConfig cfg;
  cfg.samples = 200000;
  const auto m = madogram(std::span<const std::uint16_t>(data), cfg);
  // Odd distances always differ; even distances never do.
  EXPECT_NEAR(m.binary_variance[0], 1.0, 1e-12);  // d=1
  EXPECT_NEAR(m.binary_variance[1], 0.0, 1e-12);  // d=2
  EXPECT_NEAR(m.mean_roughness, 0.5, 0.05);
}

TEST(Madogram, RandomWalkMadogramGrowsWithDistance) {
  // Fig 2a's structure: for a random walk, E|Z(a)-Z(a+d)| grows ~ sqrt(d),
  // so the regression slope is positive.
  std::mt19937 rng(11);
  std::normal_distribution<float> step(0.0f, 1.0f);
  std::vector<float> walk(20000);
  float acc = 0.0f;
  for (auto& x : walk) {
    acc += step(rng);
    x = acc;
  }
  MadogramConfig cfg;
  cfg.samples = 300000;
  const auto m = madogram(std::span<const float>(walk), cfg);
  EXPECT_GT(m.slope, 0.0);
  EXPECT_GT(m.abs_difference[150] + m.abs_difference[180], m.abs_difference[0]);
}

TEST(Madogram, DeterministicUnderSeed) {
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::sin(0.01f * static_cast<float>(i));
  const auto a = madogram(std::span<const float>(data));
  const auto b = madogram(std::span<const float>(data));
  EXPECT_EQ(a.mean_roughness, b.mean_roughness);
  EXPECT_EQ(a.abs_difference, b.abs_difference);
}

TEST(AdjacentRoughness, ExactCount) {
  std::vector<std::uint16_t> data{1, 1, 2, 2, 2, 3};  // 2 changes over 5 pairs
  EXPECT_DOUBLE_EQ(adjacent_roughness(data), 0.4);
  EXPECT_EQ(adjacent_roughness(std::vector<std::uint16_t>{5}), 0.0);
}

// ---- Selector ---------------------------------------------------------------

std::vector<std::uint64_t> histogram_with_p1(double p1, std::uint64_t total = 1000000) {
  // Mass p1 at the top symbol; remainder spread over 8 neighbors.
  std::vector<std::uint64_t> freq(1024, 0);
  freq[512] = static_cast<std::uint64_t>(p1 * static_cast<double>(total));
  const std::uint64_t rest = total - freq[512];
  for (int k = 1; k <= 4; ++k) {
    freq[512 + k] = rest / 8;
    freq[512 - k] = rest / 8;
  }
  return freq;
}

TEST(Selector, VerySmoothDataSelectsRle) {
  const auto d = select_workflow(histogram_with_p1(0.995));
  EXPECT_EQ(d.workflow, Workflow::kRleVle);
  EXPECT_LE(d.est_avg_bits, 1.09);
}

TEST(Selector, RoughDataSelectsHuffman) {
  const auto d = select_workflow(histogram_with_p1(0.6));
  EXPECT_EQ(d.workflow, Workflow::kHuffman);
  EXPECT_GT(d.est_avg_bits, 1.09);
}

TEST(Selector, ThresholdIsConfigurable) {
  SelectorConfig cfg;
  cfg.avg_bits_threshold = 10.0;  // absurdly permissive: everything is RLE
  EXPECT_EQ(select_workflow(histogram_with_p1(0.5), 4, cfg).workflow, Workflow::kRleVle);

  cfg.avg_bits_threshold = 1.09;
  cfg.prefer_rle_vle = false;
  EXPECT_EQ(select_workflow(histogram_with_p1(0.999), 4, cfg).workflow, Workflow::kRle);
}

TEST(Selector, EstimatedVleCrRespectsTheFloatCeiling) {
  // ⟨b⟩ >= 1 bit means VLE alone cannot beat 32x for float data — the
  // ceiling the paper's Workflow-RLE is designed to break.
  const auto d = select_workflow(histogram_with_p1(0.9999));
  EXPECT_LE(d.est_vle_cr, 32.0 + 1e-9);
}

TEST(Selector, RleBitsEstimateTracksP1) {
  const auto smooth = select_workflow(histogram_with_p1(0.99));
  const auto rough = select_workflow(histogram_with_p1(0.7));
  EXPECT_LT(smooth.est_rle_bits, rough.est_rle_bits);
}

}  // namespace
