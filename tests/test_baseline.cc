// cuSZ baseline pipeline tests: it must be a correct compressor (the paper
// compares against it on equal quality terms), just a slower one.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baseline/cusz_ref.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"

namespace {

using namespace szp;
using baseline::CuszCompressor;
using baseline::CuszConfig;

std::vector<float> field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.05f * dist(rng);
    x = acc;
  }
  return v;
}

class BaselineSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BaselineSweep, RoundTripHonorsErrorBound) {
  const auto [rank, eb] = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(4000)
                      : rank == 2 ? Extents::d2(60, 70)
                                  : Extents::d3(12, 18, 20);
  const auto data = field(ext, static_cast<std::uint32_t>(rank));
  CuszConfig cfg;
  cfg.eb = ErrorBound::relative(eb);
  const auto c = CuszCompressor(cfg).compress(data, ext);
  const auto d = CuszCompressor::decompress(c.bytes);
  EXPECT_EQ(d.extents, ext);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(RankEb, BaselineSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1e-2, 1e-3, 1e-4)));

TEST(Baseline, SameQualityAsCuszPlus) {
  // Equal error bound => both reconstruct the same prequantized integers,
  // so the decompressed fields agree exactly (same data quality claim, §III).
  const Extents ext = Extents::d2(48, 64);
  const auto data = field(ext, 42);

  CompressConfig pcfg;
  pcfg.eb = ErrorBound::relative(1e-3);
  const auto plus = Compressor(pcfg).compress(data, ext);
  const auto plus_out = Compressor::decompress(plus.bytes);

  CuszConfig bcfg;
  bcfg.eb = ErrorBound::relative(1e-3);
  const auto base = CuszCompressor(bcfg).compress(data, ext);
  const auto base_out = CuszCompressor::decompress(base.bytes);

  EXPECT_EQ(plus_out.data, base_out.data);
}

TEST(Baseline, SimilarRatioToWorkflowHuffman) {
  // The value-space outlier encoding differs, but on well-behaved data the
  // two Huffman workflows should land within ~20% of each other.
  const Extents ext = Extents::d1(100000);
  const auto data = field(ext, 21);
  CompressConfig pcfg;
  pcfg.eb = ErrorBound::relative(1e-3);
  pcfg.workflow = Workflow::kHuffman;
  const auto plus = Compressor(pcfg).compress(data, ext);
  CuszConfig bcfg;
  bcfg.eb = ErrorBound::relative(1e-3);
  const auto base = CuszCompressor(bcfg).compress(data, ext);
  EXPECT_NEAR(plus.stats.ratio / base.stats.ratio, 1.0, 0.2);
}

TEST(Baseline, PipelineStagesPresent) {
  const Extents ext = Extents::d1(2000);
  const auto data = field(ext, 3);
  const auto c = CuszCompressor(CuszConfig{}).compress(data, ext);
  for (const char* stage :
       {"lorenzo_construct", "gather_outlier", "histogram", "huffman_book", "huffman_encode"}) {
    EXPECT_NE(c.stats.pipeline.find(stage), nullptr) << stage;
  }
  const auto d = CuszCompressor::decompress(c.bytes);
  EXPECT_NE(d.pipeline.find("lorenzo_reconstruct"), nullptr);
  // The baseline reconstruction is the coarse kernel: its cost is
  // chunk-parallel only.
  EXPECT_LT(d.pipeline.find("lorenzo_reconstruct")->cost.parallel_items, ext.count());
}

TEST(Baseline, RejectsBadArchive) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW((void)CuszCompressor::decompress(junk), std::runtime_error);
}

}  // namespace
