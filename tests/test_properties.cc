// Cross-cutting property tests: determinism, idempotence, corruption
// robustness under randomized mutation, and capacity/workflow sweeps on the
// full pipeline.
#include <gtest/gtest.h>

#include <random>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"

namespace {

using namespace szp;

std::vector<float> field(const Extents& ext, std::uint32_t seed, float noise = 0.002f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.04f * dist(rng);
    x = acc + noise * dist(rng);
  }
  return v;
}

TEST(Properties, CompressionIsDeterministic) {
  const Extents ext = Extents::d2(60, 70);
  const auto data = field(ext, 1);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const auto a = Compressor(cfg).compress(data, ext);
  const auto b = Compressor(cfg).compress(data, ext);
  EXPECT_EQ(a.bytes, b.bytes);  // byte-identical archives
}

TEST(Properties, DecompressionIsIdempotent) {
  const Extents ext = Extents::d3(10, 12, 14);
  const auto data = field(ext, 2);
  const auto c = Compressor(CompressConfig{}).compress(data, ext);
  const auto d1 = Compressor::decompress(c.bytes);
  const auto d2 = Compressor::decompress(c.bytes);
  EXPECT_EQ(d1.data, d2.data);
}

TEST(Properties, RecompressingDecompressedDataIsStable) {
  // Lossy-but-idempotent: compressing the decompressed field again at the
  // same absolute bound must reproduce it exactly (all values already sit
  // on the quantization grid).
  const Extents ext = Extents::d1(20000);
  const auto data = field(ext, 3);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const auto c1 = Compressor(cfg).compress(data, ext);
  const auto d1 = Compressor::decompress(c1.bytes);
  const auto c2 = Compressor(cfg).compress(d1.data, ext);
  const auto d2 = Compressor::decompress(c2.bytes);
  double max_drift = 0.0;
  for (std::size_t i = 0; i < d1.data.size(); ++i) {
    max_drift = std::max(max_drift,
                         std::abs(static_cast<double>(d1.data[i]) - d2.data[i]));
  }
  // Second-generation drift is bounded by the (tiny) strict-bound margin,
  // not by eb: values on the grid re-quantize to themselves.
  EXPECT_LT(max_drift, 1e-3 * 0.01);
}

TEST(Properties, RandomArchiveMutationsNeverSilentlyCorrupt) {
  const Extents ext = Extents::d2(40, 50);
  const auto data = field(ext, 4);
  const auto c = Compressor(CompressConfig{}).compress(data, ext);

  std::mt19937 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    auto mutated = c.bytes;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    // Every single-bit flip must be caught by the CRC.
    EXPECT_THROW((void)Compressor::decompress(mutated), std::runtime_error) << trial;
  }
}

TEST(Properties, RandomTruncationsNeverSilentlyCorrupt) {
  const Extents ext = Extents::d1(30000);
  const auto data = field(ext, 5);
  const auto c = Compressor(CompressConfig{}).compress(data, ext);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t keep = 1 + rng() % (c.bytes.size() - 1);
    std::vector<std::uint8_t> cut(c.bytes.begin(),
                                  c.bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)Compressor::decompress(cut), std::runtime_error) << keep;
  }
}

class CapacityWorkflowSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Workflow>> {};

TEST_P(CapacityWorkflowSweep, BoundHoldsAcrossQuantizerSizes) {
  const auto [cap, wf] = GetParam();
  const Extents ext = Extents::d2(48, 64);
  const auto data = field(ext, 6, 0.01f);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.quant.capacity = cap;
  cfg.workflow = wf;
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(
    CapWf, CapacityWorkflowSweep,
    ::testing::Combine(::testing::Values(std::uint32_t{16}, std::uint32_t{256},
                                         std::uint32_t{1024}, std::uint32_t{16384}),
                       ::testing::Values(Workflow::kHuffman, Workflow::kRleVle)));

TEST(Properties, LosslessCodecsAgreeOnContent) {
  // lzh and lzr must reproduce identical bytes from the same input — they
  // share the LZ parse, only the entropy stage differs.
  std::mt19937 rng(8);
  std::vector<std::uint8_t> input(60000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng() % 8 == 0 ? rng() % 256 : 0);
  const auto via_h = lossless::lzh_decompress(lossless::lzh_compress(input));
  const auto via_r = lossless::lzr_decompress(lossless::lzr_compress(input));
  EXPECT_EQ(via_h, input);
  EXPECT_EQ(via_r, input);
}

}  // namespace
