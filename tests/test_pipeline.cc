// Stage-pipeline architecture tests: golden archives pin the byte layout
// across the registry/workspace refactor, the workspace pool is checked for
// allocation-free steady state, parallel slab streaming must produce the
// same container as serial, and the registry's lookup/override contract is
// exercised end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/compressor.hh"
#include "core/pipeline/builtin.hh"
#include "core/pipeline/registry.hh"
#include "core/streaming.hh"
#include "data/io.hh"

namespace {

using namespace szp;

// The goldens were generated from this exact input (committed under
// tests/golden/, regenerated only on a deliberate format break).
std::vector<float> wave_f32(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017));
  }
  return v;
}

std::vector<double> wave_f64(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017);
  }
  return v;
}

std::vector<std::uint8_t> golden(const std::string& name) {
  return data::read_bytes(std::string(SZP_GOLDEN_DIR) + "/" + name);
}

struct GoldenCase {
  const char* predictor_name;
  PredictorKind predictor;
  const char* workflow_name;
  Workflow workflow;
};

class GoldenArchive : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenArchive, BitIdenticalAcrossRefactor) {
  const GoldenCase& gc = GetParam();
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = gc.workflow;
  cfg.predictor = gc.predictor;
  const Extents ext = Extents::d2(24, 20);
  const Compressor comp(cfg);

  const std::string stem =
      std::string(gc.predictor_name) + "__" + gc.workflow_name;
  EXPECT_EQ(comp.compress(wave_f32(ext.count()), ext).bytes, golden(stem + "__f32.szp"));
  EXPECT_EQ(comp.compress(wave_f64(ext.count()), ext).bytes, golden(stem + "__f64.szp"));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GoldenArchive,
    ::testing::Values(
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "huffman", Workflow::kHuffman},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "rle", Workflow::kRle},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "rlevle", Workflow::kRleVle},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "rans", Workflow::kRans},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "lz77", Workflow::kLz77},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "lzh", Workflow::kLzh},
        GoldenCase{"lorenzo", PredictorKind::kLorenzo, "lzr", Workflow::kLzr},
        GoldenCase{"regression", PredictorKind::kRegression, "huffman", Workflow::kHuffman},
        GoldenCase{"regression", PredictorKind::kRegression, "rle", Workflow::kRle},
        GoldenCase{"regression", PredictorKind::kRegression, "rlevle", Workflow::kRleVle},
        GoldenCase{"regression", PredictorKind::kRegression, "rans", Workflow::kRans},
        GoldenCase{"interp", PredictorKind::kInterpolation, "huffman", Workflow::kHuffman},
        GoldenCase{"interp", PredictorKind::kInterpolation, "rle", Workflow::kRle},
        GoldenCase{"interp", PredictorKind::kInterpolation, "rlevle", Workflow::kRleVle},
        GoldenCase{"interp", PredictorKind::kInterpolation, "rans", Workflow::kRans}),
    [](const auto& info) {
      return std::string(info.param.predictor_name) + "_" + info.param.workflow_name;
    });

TEST(GoldenArchive, StreamingContainerBitIdentical) {
  StreamingConfig scfg;
  scfg.base.eb = ErrorBound::absolute(1e-3);
  scfg.max_slab_elems = 512;
  const Extents ext = Extents::d1(2048);
  const auto c = StreamingCompressor(scfg).compress(wave_f32(ext.count()), ext);
  EXPECT_EQ(c.bytes, golden("streaming__auto__f32.szpc"));
}

TEST(GoldenArchive, GoldenStillDecodesWithinBound) {
  const auto d = Compressor::decompress(golden("lorenzo__huffman__f32.szp"));
  const auto data = wave_f32(d.extents.count());
  ASSERT_EQ(d.data.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LT(std::abs(d.data[i] - data[i]), 1e-3) << "element " << i;
  }
}

// --- Workspace pool ---------------------------------------------------------

TEST(WorkspacePool, SteadyStateStopsAllocating) {
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const Extents ext = Extents::d2(64, 50);
  const auto data = wave_f32(ext.count());
  const Compressor comp(cfg);

  // Warm-up: the pool creates its one workspace and the buffers grow to
  // their steady-state capacity.
  (void)comp.compress(data, ext);
  (void)comp.compress(data, ext);
  const auto warm = comp.workspace_stats();
  EXPECT_EQ(warm.created, 1u);

  for (int i = 0; i < 8; ++i) (void)comp.compress(data, ext);
  const auto steady = comp.workspace_stats();
  EXPECT_EQ(steady.created, warm.created) << "steady-state compress created a new workspace";
  EXPECT_EQ(steady.grow_events, warm.grow_events)
      << "steady-state compress grew a pooled buffer";
  EXPECT_EQ(steady.leases, warm.leases + 8);
}

TEST(WorkspacePool, GrowEventsSettleAcrossWorkflowsAndSizes) {
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const Compressor comp(cfg);
  const Extents ext = Extents::d1(4000);
  const auto data = wave_f32(ext.count());
  const auto run_all = [&] {
    for (const Workflow wf : {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle,
                              Workflow::kRans}) {
      CompressConfig c = cfg;
      c.workflow = wf;
      (void)comp.compress(std::span<const float>(data), ext, c);
    }
  };
  run_all();
  const auto warm = comp.workspace_stats();
  run_all();
  run_all();
  const auto steady = comp.workspace_stats();
  EXPECT_EQ(steady.created, warm.created);
  EXPECT_EQ(steady.grow_events, warm.grow_events);
}

TEST(WorkspacePool, ExplicitLeaseReusedAcrossCalls) {
  // The streaming pipeline's per-worker pattern: lease one workspace, pass
  // it to the explicit-workspace compress overload for many calls.  The
  // archives must be identical to pool-leased compression, and the pool
  // must see exactly one lease for the whole batch.
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const Extents ext = Extents::d1(2048);
  const auto data = wave_f32(ext.count());
  const Compressor comp(cfg);

  const auto pooled = comp.compress(data, ext);
  const auto leases_before = comp.workspace_stats().leases;
  {
    auto lease = comp.lease_workspace();
    for (int i = 0; i < 5; ++i) {
      const auto c = comp.compress(std::span<const float>(data), ext, cfg, *lease);
      EXPECT_EQ(c.bytes, pooled.bytes) << "call " << i;
    }
  }
  EXPECT_EQ(comp.workspace_stats().leases, leases_before + 1);
}

TEST(WorkspacePool, CopiedCompressorStartsCold) {
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const Compressor a(cfg);
  const Extents ext = Extents::d1(1024);
  (void)a.compress(wave_f32(ext.count()), ext);
  const Compressor b(a);  // copies config only
  EXPECT_EQ(b.workspace_stats().created, 0u);
  EXPECT_EQ(b.config().eb.value, a.config().eb.value);
}

// --- Parallel slab streaming ------------------------------------------------

TEST(StreamingParallel, ContainerMatchesSerialByteForByte) {
  const Extents ext = Extents::d1(40000);
  const auto data = wave_f32(ext.count());
  StreamingConfig scfg;
  scfg.base.eb = ErrorBound::absolute(1e-3);
  scfg.max_slab_elems = 3000;

  scfg.parallel = false;
  const auto serial = StreamingCompressor(scfg).compress(data, ext);
  scfg.parallel = true;
  const auto parallel = StreamingCompressor(scfg).compress(data, ext);

  ASSERT_GT(serial.stats.slabs.size(), 4u);
  EXPECT_EQ(serial.bytes, parallel.bytes);
  ASSERT_EQ(serial.stats.slabs.size(), parallel.stats.slabs.size());
  for (std::size_t i = 0; i < serial.stats.slabs.size(); ++i) {
    EXPECT_EQ(serial.stats.slabs[i].offset, parallel.stats.slabs[i].offset);
    EXPECT_EQ(serial.stats.slabs[i].workflow, parallel.stats.slabs[i].workflow);
  }
}

TEST(StreamingParallel, CompressManyMatchesPerFieldCalls) {
  StreamingConfig scfg;
  scfg.base.eb = ErrorBound::absolute(1e-3);
  scfg.max_slab_elems = 1000;
  const StreamingCompressor comp(scfg);

  const std::vector<Extents> exts{Extents::d1(4096), Extents::d2(30, 100), Extents::d1(2500)};
  std::vector<std::vector<float>> storage;
  storage.reserve(exts.size());
  std::vector<std::span<const float>> fields;
  for (const auto& e : exts) {
    storage.push_back(wave_f32(e.count()));
    fields.emplace_back(storage.back());
  }

  const auto batch = comp.compress_many(fields, exts);
  ASSERT_EQ(batch.size(), exts.size());
  for (std::size_t f = 0; f < exts.size(); ++f) {
    EXPECT_EQ(batch[f].bytes, comp.compress(fields[f], exts[f]).bytes) << "field " << f;
  }
}

TEST(StreamingParallel, IndexMakesSlabAccessDirect) {
  const Extents ext = Extents::d1(10000);
  const auto data = wave_f32(ext.count());
  StreamingConfig scfg;
  scfg.base.eb = ErrorBound::absolute(1e-3);
  scfg.max_slab_elems = 1500;
  const auto c = StreamingCompressor(scfg).compress(data, ext);

  const auto idx = StreamingCompressor::index(c.bytes);
  EXPECT_EQ(idx.extents, ext);
  EXPECT_EQ(idx.dtype, DType::kFloat32);
  ASSERT_EQ(idx.slabs.size(), StreamingCompressor::slab_count(c.bytes));

  std::size_t covered = 0;
  for (std::size_t s = 0; s < idx.slabs.size(); ++s) {
    EXPECT_EQ(idx.slabs[s].offset, covered);
    SlabInfo via_index{};
    SlabInfo via_container{};
    const auto a = StreamingCompressor::decompress_slab(idx, s, &via_index);
    const auto b = StreamingCompressor::decompress_slab(c.bytes, s, &via_container);
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(via_index.offset, via_container.offset);
    EXPECT_EQ(via_index.extents, via_container.extents);
    covered += idx.slabs[s].count;
  }
  EXPECT_EQ(covered, ext.count());
  EXPECT_THROW((void)StreamingCompressor::decompress_slab(idx, idx.slabs.size()),
               std::out_of_range);
}

// --- Stage registry ---------------------------------------------------------

TEST(StageRegistry, LookupsReturnMatchingStages) {
  const auto& reg = pipeline::StageRegistry::instance();
  for (const PredictorKind k : {PredictorKind::kLorenzo, PredictorKind::kRegression,
                                PredictorKind::kInterpolation}) {
    EXPECT_EQ(reg.predict(k).kind(), k);
  }
  for (const Workflow wf : {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle,
                            Workflow::kRans, Workflow::kLz77, Workflow::kLzh, Workflow::kLzr}) {
    EXPECT_EQ(reg.codec(wf).id(), wf);
  }
  EXPECT_THROW((void)reg.codec(Workflow::kAuto), std::logic_error);
}

TEST(StageRegistry, CodecNamesAreUniqueAndStable) {
  const auto& reg = pipeline::StageRegistry::instance();
  std::set<std::string> names;
  for (const auto& codec : reg.codecs()) names.insert(codec->name());
  EXPECT_GE(names.size(), 7u);
  EXPECT_TRUE(names.count("huffman"));
  EXPECT_TRUE(names.count("rle"));
  EXPECT_TRUE(names.count("rle+vle"));
  EXPECT_TRUE(names.count("rans"));
  EXPECT_TRUE(names.count("lz77"));
  EXPECT_TRUE(names.count("lzh"));
  EXPECT_TRUE(names.count("lzr"));
}

TEST(StageRegistry, LatestRegistrationWins) {
  auto& reg = pipeline::StageRegistry::instance();
  const pipeline::LosslessCodec* before = &reg.codec(Workflow::kHuffman);
  // Register a second (functionally identical) Huffman codec; the lookup
  // must now prefer it.  The override stays for the rest of the process,
  // which is safe precisely because it is byte-compatible.
  reg.add(pipeline::make_huffman_codec());
  const pipeline::LosslessCodec* after = &reg.codec(Workflow::kHuffman);
  EXPECT_NE(before, after);
  EXPECT_EQ(after->id(), Workflow::kHuffman);

  // The pipeline still assembles and round-trips through the override.
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const Extents ext = Extents::d2(24, 20);
  const auto c = Compressor(cfg).compress(wave_f32(ext.count()), ext);
  EXPECT_EQ(c.bytes, golden("lorenzo__huffman__f32.szp"));
}

}  // namespace
