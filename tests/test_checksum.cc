// CRC-32 and archive-integrity tests.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/checksum.hh"
#include "core/compressor.hh"

namespace {

using namespace szp;

TEST(Crc32, KnownVectors) {
  // The canonical check value of CRC-32/ISO-HDLC.
  const std::string s = "123456789";
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  EXPECT_EQ(crc32(bytes), 0xcbf43926u);

  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::mt19937 rng(1);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  std::uint32_t state = crc32_init();
  state = crc32_update(state, std::span<const std::uint8_t>(data.data(), 3000));
  state = crc32_update(state, std::span<const std::uint8_t>(data.data() + 3000, 7000));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto reference = crc32(data);
  for (const std::size_t pos : {0u, 100u, 255u}) {
    auto copy = data;
    copy[pos] ^= 0x10;
    EXPECT_NE(crc32(copy), reference) << pos;
  }
}

TEST(ArchiveIntegrity, BitFlipAnywhereIsDetected) {
  std::vector<float> data(2000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.01f * static_cast<float>(i));
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const auto c = Compressor(cfg).compress(data, Extents::d1(2000));

  // Flip one bit at several positions across the archive (header, payload,
  // trailer) — every flip must surface as a checksum error, never as
  // silently wrong data.
  for (const double frac : {0.01, 0.3, 0.6, 0.95}) {
    auto corrupt = c.bytes;
    corrupt[static_cast<std::size_t>(frac * static_cast<double>(corrupt.size() - 5))] ^= 0x04;
    EXPECT_THROW((void)Compressor::decompress(corrupt), std::runtime_error) << frac;
  }

  // Flipping the stored CRC itself is also a mismatch.
  auto corrupt = c.bytes;
  corrupt.back() ^= 0xff;
  EXPECT_THROW((void)Compressor::decompress(corrupt), std::runtime_error);

  // And the pristine archive still works.
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_EQ(d.data.size(), data.size());
}

TEST(ArchiveIntegrity, InspectAlsoVerifies) {
  std::vector<float> data(500, 1.5f);
  data[100] = 2.0f;
  const auto c = Compressor(CompressConfig{}).compress(data, Extents::d1(500));
  EXPECT_NO_THROW((void)Compressor::inspect(c.bytes));
  auto corrupt = c.bytes;
  corrupt[10] ^= 0x01;
  EXPECT_THROW((void)Compressor::inspect(corrupt), std::runtime_error);
}

}  // namespace
