// CLI tests: the `szp` tool driven in-process over temp files.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/eb.hh"
#include "core/metrics.hh"
#include "data/io.hh"
#include "tools/cli.hh"

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = szp::cli::run(args, out, err);
  return {code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("szp_cli_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(run({"help"}).code, 0);
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenCompressInfoDecompressRoundTrip) {
  const auto raw = path("field.f32");
  const auto szp_file = path("field.szp");
  const auto restored = path("restored.f32");

  auto r = run({"gen", "-o", raw, "--dataset", "CESM-ATM", "--field", "FSDSC", "--scale", "0.05"});
  ASSERT_EQ(r.code, 0) << r.err;
  // scale 0.05 -> 90x180
  r = run({"compress", "-i", raw, "-o", szp_file, "-d", "90x180", "--eb", "1e-3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ratio"), std::string::npos);

  r = run({"info", "-i", szp_file});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("rank 2"), std::string::npos);
  EXPECT_NE(r.out.find("float32"), std::string::npos);

  r = run({"decompress", "-i", szp_file, "-o", restored});
  ASSERT_EQ(r.code, 0) << r.err;

  const auto original = szp::data::read_f32(raw);
  const auto roundtrip = szp::data::read_f32(restored);
  ASSERT_EQ(original.size(), roundtrip.size());
  const auto m = szp::compare_fields(original, roundtrip);
  const auto range = szp::ValueRange::of(original);
  EXPECT_LT(m.max_abs_error, 1e-3 * range.span());
}

TEST_F(CliTest, ExplicitWorkflowAndPredictor) {
  const auto raw = path("f.f32");
  const auto arc = path("f.szp");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "Nyx", "--field", "temperature", "--scale",
                 "0.05"}).code, 0);
  // 26x26x26 at scale 0.05
  auto r = run({"compress", "-i", raw, "-o", arc, "-d", "26x26x26", "--eb", "1e-2",
                "--workflow", "rle+vle", "--predictor", "regression"});
  ASSERT_EQ(r.code, 0) << r.err;
  r = run({"info", "-i", arc});
  EXPECT_NE(r.out.find("rle+vle"), std::string::npos);
  EXPECT_NE(r.out.find("regression"), std::string::npos);
}

TEST_F(CliTest, CodecOptionSelectsLosslessTier) {
  // --codec is the canonical spelling; every registered codec id must parse,
  // round-trip, and be reported back by `info`.
  const auto raw = path("c.f32");
  const auto restored = path("c_out.f32");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "Nyx", "--field", "temperature", "--scale",
                 "0.05"}).code, 0);
  for (const std::string codec : {"huffman", "rle", "rle+vle", "rans", "lz77", "lzh", "lzr"}) {
    const auto arc = path("c_" + codec + ".szp");
    auto r = run({"compress", "-i", raw, "-o", arc, "-d", "26x26x26", "--eb", "1e-2",
                  "--codec", codec});
    ASSERT_EQ(r.code, 0) << codec << ": " << r.err;
    r = run({"info", "-i", arc});
    EXPECT_NE(r.out.find(codec), std::string::npos) << codec;
    ASSERT_EQ(run({"decompress", "-i", arc, "-o", restored}).code, 0) << codec;
    const auto original = szp::data::read_f32(raw);
    const auto roundtrip = szp::data::read_f32(restored);
    ASSERT_EQ(original.size(), roundtrip.size()) << codec;
    const auto m = szp::compare_fields(original, roundtrip);
    const auto range = szp::ValueRange::of(original);
    EXPECT_LT(m.max_abs_error, 1e-2 * range.span()) << codec;
  }
  const auto bad = run({"compress", "-i", raw, "-o", path("x.szp"), "-d", "26x26x26",
                        "--codec", "zstd"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("unknown codec"), std::string::npos);
}

TEST_F(CliTest, AnalyzeCodecsPrintsDeterministicScoreTable) {
  const auto a = run({"analyze", "--codecs"});
  ASSERT_EQ(a.code, 0) << a.err;
  // Every registered codec appears in each scenario's table.
  for (const std::string codec : {"huffman", "rle", "rle+vle", "rans", "lz77", "lzh", "lzr"}) {
    EXPECT_NE(a.out.find(codec), std::string::npos) << codec;
  }
  EXPECT_NE(a.out.find("selected:"), std::string::npos);
  // Deterministic: a second invocation prints byte-identical output.
  const auto b = run({"analyze", "--codecs"});
  EXPECT_EQ(a.out, b.out);
}

TEST_F(CliTest, StreamingContainer) {
  const auto raw = path("s.f32");
  const auto arc = path("s.szpc");
  const auto restored = path("s_out.f32");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "HACC", "--field", "vx", "--scale",
                 "0.003"}).code, 0);  // ~25k elements
  auto r = run({"compress", "-i", raw, "-o", arc, "-d", "25166", "--eb", "1e-3", "--stream",
                "8192"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("slabs"), std::string::npos);

  r = run({"info", "-i", arc});
  EXPECT_NE(r.out.find("streaming container"), std::string::npos);

  ASSERT_EQ(run({"decompress", "-i", arc, "-o", restored}).code, 0);
  EXPECT_EQ(szp::data::read_f32(restored).size(), szp::data::read_f32(raw).size());
}

TEST_F(CliTest, VerifyComparesRawFiles) {
  const auto f1 = path("a.f32"), f2 = path("b.f32");
  szp::data::write_f32(f1, std::vector<float>{0.0f, 1.0f, 2.0f, 10.0f});
  szp::data::write_f32(f2, std::vector<float>{0.5f, 1.0f, 2.0f, 10.0f});
  const auto r = run({"verify", "-a", f1, "-b", f2});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("max |error|: 0.5"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("PSNR"), std::string::npos);

  szp::data::write_f32(f2, std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(run({"verify", "-a", f1, "-b", f2}).code, 1);
}

TEST_F(CliTest, PsnrTargetOption) {
  const auto raw = path("p.f32");
  const auto arc = path("p.szp");
  const auto restored = path("p_out.f32");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "Miranda", "--field", "density", "--scale",
                 "0.06"}).code, 0);
  ASSERT_EQ(run({"compress", "-i", raw, "-o", arc, "-d", "15x23x23", "--psnr", "70"}).code, 0);
  ASSERT_EQ(run({"decompress", "-i", arc, "-o", restored}).code, 0);
  const auto m = szp::compare_fields(szp::data::read_f32(raw), szp::data::read_f32(restored));
  EXPECT_GT(m.psnr_db, 69.5);
}

TEST_F(CliTest, BundleWorkflow) {
  const auto raw = path("b.f32"), arc1 = path("b1.szp"), arc2 = path("b2.szp");
  const auto bundle = path("snap.szb"), out_arc = path("out.szp"), restored = path("r.f32");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "Miranda", "--field", "pressure", "--scale",
                 "0.06"}).code, 0);
  ASSERT_EQ(run({"compress", "-i", raw, "-o", arc1, "-d", "15x23x23", "--eb", "1e-2"}).code, 0);
  ASSERT_EQ(run({"compress", "-i", raw, "-o", arc2, "-d", "15x23x23", "--eb", "1e-4"}).code, 0);

  ASSERT_EQ(run({"bundle-add", "--bundle", bundle, "--name", "loose", "-i", arc1}).code, 0);
  ASSERT_EQ(run({"bundle-add", "--bundle", bundle, "--name", "tight", "-i", arc2}).code, 0);

  auto r = run({"bundle-list", "--bundle", bundle});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("loose"), std::string::npos);
  EXPECT_NE(r.out.find("2 field(s)"), std::string::npos);

  ASSERT_EQ(run({"bundle-extract", "--bundle", bundle, "--name", "tight", "-o", out_arc}).code,
            0);
  ASSERT_EQ(run({"decompress", "-i", out_arc, "-o", restored}).code, 0);
  EXPECT_EQ(szp::data::read_f32(restored).size(), szp::data::read_f32(raw).size());

  // Duplicate names and missing fields are reported as errors.
  EXPECT_EQ(run({"bundle-add", "--bundle", bundle, "--name", "loose", "-i", arc1}).code, 1);
  EXPECT_EQ(run({"bundle-extract", "--bundle", bundle, "--name", "nope", "-o", out_arc}).code, 1);
}

TEST_F(CliTest, CorruptArchivesExitWithCodeFour) {
  const auto raw = path("c.f32");
  const auto arc = path("c.szp");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "CESM-ATM", "--field", "FSDSC", "--scale",
                 "0.05"}).code, 0);
  ASSERT_EQ(run({"compress", "-i", raw, "-o", arc, "-d", "90x180", "--eb", "1e-3"}).code, 0);

  // Truncate the archive in place: decode failures on damaged input are a
  // distinct exit code (4), separate from usage errors (1/2).
  auto bytes = szp::data::read_bytes(arc);
  ASSERT_GT(bytes.size(), 8u);
  bytes.resize(bytes.size() / 2);
  szp::data::write_bytes(arc, bytes);

  auto r = run({"decompress", "-i", arc, "-o", path("c_out.f32")});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;

  r = run({"info", "-i", arc});
  EXPECT_EQ(r.code, 4);
}

TEST_F(CliTest, TolerantBundleSalvage) {
  const auto raw = path("t.f32"), arc = path("t.szp"), bundle = path("t.szb");
  ASSERT_EQ(run({"gen", "-o", raw, "--dataset", "Miranda", "--field", "pressure", "--scale",
                 "0.06"}).code, 0);
  ASSERT_EQ(run({"compress", "-i", raw, "-o", arc, "-d", "15x23x23", "--eb", "1e-2"}).code, 0);
  ASSERT_EQ(run({"bundle-add", "--bundle", bundle, "--name", "p", "-i", arc}).code, 0);
  ASSERT_EQ(run({"bundle-add", "--bundle", bundle, "--name", "q", "-i", arc}).code, 0);

  // Damage only the trailing whole-blob CRC: strict listing refuses with
  // exit 4; --tolerant warns and lists both fields (their per-entry CRCs
  // still verify).
  auto bytes = szp::data::read_bytes(bundle);
  bytes.back() ^= 0xff;
  szp::data::write_bytes(bundle, bytes);

  EXPECT_EQ(run({"bundle-list", "--bundle", bundle}).code, 4);

  const auto r = run({"bundle-list", "--bundle", bundle, "--tolerant"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("warning: bundle checksum mismatch"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("p"), std::string::npos);
  EXPECT_NE(r.out.find("q"), std::string::npos);
}

TEST_F(CliTest, FuzzSubcommandReportsACleanCampaign) {
  const auto r = run({"fuzz", "--seed", "99"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("0 contract violations"), std::string::npos) << r.out;
}

TEST_F(CliTest, ErrorsAreReported) {
  EXPECT_EQ(run({"compress", "-i", path("missing.f32"), "-o", path("x.szp"), "-d", "10"}).code, 1);
  EXPECT_EQ(run({"compress", "-o", path("x.szp"), "-d", "10"}).code, 1);  // no -i
  EXPECT_EQ(run({"info", "-i", path("missing.szp")}).code, 1);
  EXPECT_EQ(run({"gen", "-o", path("g.f32"), "--dataset", "NOPE", "--field", "x"}).code, 1);

  // Dim mismatch against the file size.
  const auto raw = path("tiny.f32");
  szp::data::write_f32(raw, std::vector<float>{1, 2, 3, 4});
  const auto r = run({"compress", "-i", raw, "-o", path("t.szp"), "-d", "5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("elements"), std::string::npos);
}

}  // namespace
