// Unit tests for histogram, reduce_by_key (RLE backend), and dense/sparse
// conversion in the simulated-GPU substrate.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/histogram.hh"
#include "sim/launch.hh"
#include "sim/reduce_by_key.hh"
#include "sim/sparse.hh"

namespace {

using szp::sim::dense_to_sparse;
using szp::sim::device_histogram;
using szp::sim::expand_runs;
using szp::sim::reduce_by_key;
using szp::sim::scatter_add;

TEST(DeviceHistogram, MatchesNaiveCount) {
  std::mt19937 rng(1);
  std::vector<std::uint16_t> data(100000);
  for (auto& x : data) x = static_cast<std::uint16_t>(rng() % 300);

  const auto bins = device_histogram<std::uint16_t>(data, 300, 1024);

  std::vector<std::uint64_t> expected(300, 0);
  for (const auto x : data) ++expected[x];
  EXPECT_EQ(bins, expected);
}

TEST(DeviceHistogram, IgnoresOutOfRangeAndHandlesEmpty) {
  std::vector<std::uint16_t> data{5, 500, 5};
  const auto bins = device_histogram<std::uint16_t>(data, 10);
  EXPECT_EQ(bins[5], 2u);
  std::uint64_t total = 0;
  for (const auto b : bins) total += b;
  EXPECT_EQ(total, 2u);  // the 500 is dropped

  const auto empty = device_histogram<std::uint16_t>(std::vector<std::uint16_t>{}, 4);
  EXPECT_EQ(empty, std::vector<std::uint64_t>(4, 0));
}

std::vector<std::uint16_t> runs_sequence(std::uint32_t seed, std::size_t nruns,
                                         std::uint64_t max_run) {
  std::mt19937 rng(seed);
  std::vector<std::uint16_t> seq;
  std::uint16_t prev = 0xffff;
  for (std::size_t r = 0; r < nruns; ++r) {
    std::uint16_t v;
    do {
      v = static_cast<std::uint16_t>(rng() % 16);
    } while (v == prev);
    prev = v;
    const std::uint64_t len = 1 + rng() % max_run;
    seq.insert(seq.end(), len, v);
  }
  return seq;
}

// Tile size sweep: runs straddling tile boundaries must be stitched.
class ReduceByKeyTile : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReduceByKeyTile, RoundTripsAndRunsAreMaximal) {
  const auto seq = runs_sequence(42, 200, 37);
  const auto runs = reduce_by_key<std::uint16_t, std::uint64_t>(seq, GetParam());

  // Maximality: no two adjacent runs share a key.
  for (std::size_t r = 1; r < runs.keys.size(); ++r) {
    EXPECT_NE(runs.keys[r], runs.keys[r - 1]) << "r=" << r;
  }
  // Round trip.
  const auto expanded = expand_runs(std::span<const std::uint16_t>(runs.keys),
                                    std::span<const std::uint64_t>(runs.counts));
  EXPECT_EQ(expanded, seq);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, ReduceByKeyTile, ::testing::Values(1, 2, 16, 1024, 1 << 20));

TEST(LaunchBlocks, ZeroIterationGridIsANoOp) {
  // Regression: a zero-block grid used to enter the OpenMP parallel region
  // (spinning up a whole team for nothing); it must early-return like the
  // single-block fast path, in every launcher variant.
  int calls = 0;
  szp::sim::launch_blocks(0, [&](std::size_t) { ++calls; });
  szp::sim::launch_blocks_3d({0, 4, 4}, [&](std::uint32_t, std::uint32_t, std::uint32_t) {
    ++calls;
  });
  szp::sim::launch_blocks_in_order({}, true, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(LaunchBlocks, NestedLaunchRunsInlineOneLevel) {
  // A kernel launched from inside a worker of an active parallel region
  // must execute its whole grid inline on the calling thread (explicit
  // one-level fan-out), still visiting every block exactly once.
  std::vector<int> outer_seen(3, 0);
  std::vector<int> inner_total(3, 0);
  szp::sim::launch_blocks(3, [&](std::size_t b) {
    outer_seen[b] += 1;
    // inner_total[b] is unsynchronized on purpose: if the inner grid spawned
    // a nested team these increments would race (and the tsan leg would
    // flag it); inline execution keeps them on one thread.
    szp::sim::launch_blocks(8, [&](std::size_t) { inner_total[b] += 1; });
  });
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(outer_seen[b], 1);
    EXPECT_EQ(inner_total[b], 8);
  }
}

TEST(ReduceByKey, SingleRunAcrossAllTiles) {
  std::vector<std::uint16_t> seq(10000, 7);
  const auto runs = reduce_by_key<std::uint16_t, std::uint64_t>(seq, 64);
  ASSERT_EQ(runs.keys.size(), 1u);
  EXPECT_EQ(runs.keys[0], 7u);
  EXPECT_EQ(runs.counts[0], 10000u);
}

TEST(ReduceByKey, EmptyInput) {
  const auto runs = reduce_by_key<std::uint16_t, std::uint64_t>(std::vector<std::uint16_t>{});
  EXPECT_TRUE(runs.keys.empty());
  EXPECT_TRUE(runs.counts.empty());
}

TEST(DenseToSparse, GathersExactlyTheNonzeros) {
  std::mt19937 rng(3);
  std::vector<std::int32_t> dense(50000, 0);
  std::size_t nnz = 0;
  for (auto& x : dense) {
    if (rng() % 100 < 3) {
      x = static_cast<std::int32_t>(rng() % 1000) - 500;
      if (x == 0) x = 1;
      ++nnz;
    }
  }

  const auto sparse = dense_to_sparse<std::int32_t>(dense, 777);
  EXPECT_EQ(sparse.nnz(), nnz);
  // Indices strictly increasing, values match.
  for (std::size_t i = 0; i < sparse.nnz(); ++i) {
    if (i > 0) EXPECT_LT(sparse.indices[i - 1], sparse.indices[i]);
    EXPECT_EQ(sparse.values[i], dense[sparse.indices[i]]);
    EXPECT_NE(sparse.values[i], 0);
  }
}

TEST(DenseToSparse, ScatterAddRoundTrips) {
  std::mt19937 rng(4);
  std::vector<std::int32_t> dense(10000, 0);
  for (auto& x : dense) {
    if (rng() % 50 == 0) x = static_cast<std::int32_t>(rng() % 2000) - 1000;
  }
  const auto sparse = dense_to_sparse<std::int32_t>(dense);

  std::vector<std::int32_t> rebuilt(dense.size(), 0);
  scatter_add(sparse, std::span<std::int32_t>(rebuilt));
  EXPECT_EQ(rebuilt, dense);
}

TEST(DenseToSparse, AllZeroAndAllNonzero) {
  std::vector<std::int32_t> zeros(100, 0);
  EXPECT_EQ(dense_to_sparse<std::int32_t>(zeros).nnz(), 0u);

  std::vector<std::int32_t> ones(100, 1);
  const auto sparse = dense_to_sparse<std::int32_t>(ones);
  EXPECT_EQ(sparse.nnz(), 100u);
}

}  // namespace
