// ZFP-style fixed-rate compressor tests (the cuZFP stand-in): transform
// invertibility, rate/ratio arithmetic, quality-vs-rate monotonicity, and
// the fixed-rate-mode limitation itself.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/metrics.hh"
#include "zfp/zfp.hh"

namespace {

using namespace szp;
using zfp::ZfpConfig;
using zfp::zfp_compress;
using zfp::zfp_decompress;

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.04f * dist(rng);
    x = acc;
  }
  return v;
}

ZfpConfig rate(double bits) {
  ZfpConfig cfg;
  cfg.rate_bits_per_value = bits;
  return cfg;
}

class ZfpRanks : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ZfpRanks, HighRateRoundTripIsNearLossless) {
  const auto [rank, ragged] = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(ragged ? 1001 : 1024)
                      : rank == 2 ? Extents::d2(ragged ? 33 : 32, ragged ? 47 : 48)
                                  : Extents::d3(ragged ? 9 : 8, ragged ? 13 : 12, ragged ? 18 : 16);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank * 7 + ragged));
  const auto c = zfp_compress(data, ext, rate(32.0));
  const auto d = zfp_decompress(c.bytes);
  ASSERT_EQ(d.extents, ext);
  const auto m = compare_fields(data, d.data);
  // At 32 bits/value every encoded plane fits: error is just the 25-bit
  // fixed-point rounding of the block max.
  EXPECT_LT(m.max_abs_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RankRagged, ZfpRanks,
                         ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Bool()));

TEST(Zfp, ErrorDecreasesMonotonicallyWithRate) {
  const Extents ext = Extents::d2(64, 64);
  const auto data = smooth_field(ext, 3);
  double prev_err = 1e30;
  for (const double bits : {2.0, 4.0, 8.0, 16.0}) {
    const auto d = zfp_decompress(zfp_compress(data, ext, rate(bits)).bytes);
    const double err = compare_fields(data, d.data).max_abs_error;
    EXPECT_LT(err, prev_err) << bits;
    prev_err = err;
  }
}

TEST(Zfp, RatioTracksTheFixedRate) {
  // Fixed-rate mode: the ratio is known before compressing — and it is the
  // ONLY mode (the cuZFP limitation the paper cites, §VI).
  const Extents ext = Extents::d3(32, 32, 32);
  const auto data = smooth_field(ext, 4);
  for (const double bits : {4.0, 8.0, 16.0}) {
    const auto c = zfp_compress(data, ext, rate(bits));
    EXPECT_NEAR(c.ratio, 32.0 / bits, 0.15 * 32.0 / bits) << bits;
  }
}

TEST(Zfp, RatioIsDataIndependent) {
  // The flip side of fixed rate: rough data gets the same ratio as smooth
  // data (where an error-bounded compressor would differ wildly).
  const Extents ext = Extents::d2(48, 48);
  const auto smooth = smooth_field(ext, 5);
  std::vector<float> rough(ext.count());
  std::mt19937 rng(6);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& x : rough) x = dist(rng);

  const auto cs = zfp_compress(smooth, ext, rate(8.0));
  const auto cr = zfp_compress(rough, ext, rate(8.0));
  EXPECT_EQ(cs.bytes.size(), cr.bytes.size());
}

TEST(Zfp, ConstantAndZeroBlocks) {
  const Extents ext = Extents::d2(16, 16);
  std::vector<float> zeros(ext.count(), 0.0f);
  auto d = zfp_decompress(zfp_compress(zeros, ext, rate(4.0)).bytes);
  for (const auto v : d.data) EXPECT_EQ(v, 0.0f);

  std::vector<float> constant(ext.count(), 7.25f);
  d = zfp_decompress(zfp_compress(constant, ext, rate(8.0)).bytes);
  for (const auto v : d.data) EXPECT_NEAR(v, 7.25f, 1e-3f);
}

TEST(Zfp, NegativeValuesSurvive) {
  // 1-D blocks are header-heavy (16-bit exponent per 4 values), so the
  // effective payload at 16 bits/value is modest; check sign fidelity and
  // sub-percent relative error rather than a tight absolute bound.
  const Extents ext = Extents::d1(64);
  std::vector<float> data(64);
  for (std::size_t i = 0; i < 64; ++i) data[i] = -5.0f + 0.1f * static_cast<float>(i);
  const auto d = zfp_decompress(zfp_compress(data, ext, rate(16.0)).bytes);
  const auto m = compare_fields(data, d.data);
  EXPECT_LT(m.max_abs_error / m.value_range, 0.01);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_LT(d.data[i], 0.0f) << i;
}

TEST(Zfp, SmoothDataBeatsRoughAtSameRate) {
  // The transform concentrates smooth blocks' energy in few coefficients,
  // so truncation hurts smooth data less.
  const Extents ext = Extents::d2(64, 64);
  const auto smooth = smooth_field(ext, 8);
  std::vector<float> rough(ext.count());
  std::mt19937 rng(9);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& x : rough) x = dist(rng);

  const auto ds = zfp_decompress(zfp_compress(smooth, ext, rate(6.0)).bytes);
  const auto dr = zfp_decompress(zfp_compress(rough, ext, rate(6.0)).bytes);
  EXPECT_LT(compare_fields(smooth, ds.data).nrmse, compare_fields(rough, dr.data).nrmse);
}

TEST(Zfp, RejectsBadInput) {
  std::vector<float> data(16, 1.0f);
  EXPECT_THROW((void)zfp_compress(data, Extents::d1(17), rate(8.0)), std::invalid_argument);
  EXPECT_THROW((void)zfp_compress(data, Extents::d1(16), rate(0.5)), std::invalid_argument);
  EXPECT_THROW((void)zfp_compress(data, Extents::d1(16), rate(40.0)), std::invalid_argument);

  std::vector<std::uint8_t> junk{9, 9, 9, 9};
  EXPECT_THROW((void)zfp_decompress(junk), std::runtime_error);

  auto c = zfp_compress(data, Extents::d1(16), rate(8.0));
  c.bytes.resize(c.bytes.size() - 4);
  EXPECT_THROW((void)zfp_decompress(c.bytes), std::runtime_error);
}

}  // namespace
