// Footprint contracts: the affine prover's positive and negative space, the
// observed-vs-declared dynamic cross-validation, the word-mode fast path,
// and the verdict registry fed by the real Huffman/ZFP kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/types.hh"
#include "sim/check.hh"
#include "sim/prove.hh"
#include "zfp/zfp.hh"

namespace {

using namespace szp;
namespace chk = sim::checked;
namespace ctr = sim::contract;

using ctr::BufExtent;
using ctr::Geom;
using ctr::Verdict;

bool any_reason_contains(const ctr::ProveResult& r, const std::string& needle) {
  return std::any_of(r.reasons.begin(), r.reasons.end(), [&](const std::string& s) {
    return s.find(needle) != std::string::npos;
  });
}

const ctr::KernelVerdict* find_verdict(const std::vector<ctr::KernelVerdict>& all,
                                       const std::string& kernel) {
  for (const auto& e : all) {
    if (e.kernel == kernel) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Prover unit tests: what the affine domain proves and what it refuses.
// ---------------------------------------------------------------------------

TEST(ContractProver, DisjointTileWindowsProved) {
  const auto con = ctr::contract(ctr::writes("out", ctr::b() * 16, 16));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"out", 64}});
  EXPECT_TRUE(res.proved()) << (res.reasons.empty() ? "" : res.reasons.front());
}

TEST(ContractProver, StridedColumnGatherProved) {
  // freq_merge shape: each block writes one disjoint 64-wide output column
  // and gathers the same column from every per-tile private histogram (a
  // strided, clamped read family).  Reads never impede write disjointness.
  const std::int64_t tiles = 3, alphabet = 286;
  const auto con =
      ctr::contract(ctr::reads("priv", ctr::b() * 64, 64).strided(tiles, alphabet).clamp(),
                    ctr::writes("freq", ctr::b() * 64, 64).clamp());
  const auto res = ctr::prove(con, Geom{5, 5, 1, 1},
                              {{"priv", static_cast<std::uint64_t>(tiles * alphabet)},
                               {"freq", static_cast<std::uint64_t>(alphabet)}});
  EXPECT_TRUE(res.proved()) << (res.reasons.empty() ? "" : res.reasons.front());
}

TEST(ContractProver, HaloReadOverDistinctInputProved) {
  // Stencil shape: clamped halo reads of the input overlap between blocks,
  // but the input carries no write clause, so only the output tiling must be
  // disjoint.
  const auto con = ctr::contract(ctr::reads("in", ctr::b() * 16 - 1, 18).clamp(),
                                 ctr::writes("out", ctr::b() * 16, 16));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"in", 64}, {"out", 64}});
  EXPECT_TRUE(res.proved()) << (res.reasons.empty() ? "" : res.reasons.front());
}

TEST(ContractProver, HaloReadOverWrittenBufferRejected) {
  // Same halo, but now the reads and writes hit one buffer: the merged
  // family spans 18 > stride 16, so neighbouring blocks provably collide.
  const auto con = ctr::contract(ctr::reads("f", ctr::b() * 16 - 1, 18).clamp(),
                                 ctr::writes("f", ctr::b() * 16, 16));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"f", 64}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "companion clause")) << res.reasons.front();
}

TEST(ContractProver, OverlappingWriteTilesRejected) {
  const auto con = ctr::contract(ctr::writes("out", ctr::b() * 8, 16));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"out", 64}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "stride 8 < span 16")) << res.reasons.front();
}

TEST(ContractProver, ConstantWriteWindowRejected) {
  const auto con = ctr::contract(ctr::writes("out", ctr::lit(0), 4));
  const auto res = ctr::prove(con, Geom{2, 2, 1, 1}, {{"out", 16}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "identical window")) << res.reasons.front();
}

TEST(ContractProver, UnclampedOutOfBoundsRejected) {
  // 4 tiles of 16 need 64 elements; the buffer only has 48.
  const auto con = ctr::contract(ctr::writes("out", ctr::b() * 16, 16));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"out", 48}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "outside [0, 48)")) << res.reasons.front();
}

TEST(ContractProver, DataDependentWriteStaysUnproved) {
  const auto con = ctr::contract(ctr::writes_dyn("out"));
  const auto res = ctr::prove(con, Geom{4, 4, 1, 1}, {{"out", 64}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "data-dependent write footprint"));
}

TEST(ContractProver, WholeBufferWriteOnSingleBlockGridVacuouslyProved) {
  const auto con = ctr::contract(ctr::updates_all("heap"));
  EXPECT_TRUE(ctr::prove(con, Geom{1, 1, 1, 1}, {{"heap", 1024}}).proved());
  // The same clause on a multi-block grid is an honest refusal.
  const auto multi = ctr::prove(con, Geom{2, 2, 1, 1}, {{"heap", 1024}});
  EXPECT_EQ(multi.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(multi, "whole-buffer write"));
}

TEST(ContractProver, UnregisteredBufferNameRejected) {
  const auto con = ctr::contract(ctr::writes("typo", ctr::b(), 1));
  const auto res = ctr::prove(con, Geom{2, 2, 1, 1}, {{"out", 16}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "names no registered buffer"));
}

TEST(ContractProver, MixedLinearAndCoordinateTermsRejected) {
  const auto con = ctr::contract(ctr::writes("out", ctr::b() + ctr::bx(), 1));
  const auto res = ctr::prove(con, Geom{4, 2, 2, 1}, {{"out", 16}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "mixes b() and bx()"));
}

TEST(ContractProver, CoordinateTermsOnLinearGridRejected) {
  const auto con = ctr::contract(ctr::writes("out", ctr::bx() * 4, 4));
  // grid 6 with gx*gy*gz = 1 != 6: a linear launch.
  const auto res = ctr::prove(con, Geom{6, 1, 1, 1}, {{"out", 24}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "linear (non-launch_3d) grid"));
}

TEST(ContractProver, MixedRadixCoordinateWindowProved) {
  // zfp payload shape on a 4x3x2 grid: per-block window of 8, x stride 8,
  // y stride 8*gx, z stride 8*gx*gy — exact mixed-radix packing.
  const Geom g{24, 4, 3, 2};
  const auto con =
      ctr::contract(ctr::writes("pay", ctr::bx() * 8 + ctr::by() * 32 + ctr::bz() * 96, 8));
  EXPECT_TRUE(ctr::prove(con, g, {{"pay", 192}}).proved());

  // Shrinking the x stride below the window span breaks the packing.
  const auto bad =
      ctr::contract(ctr::writes("pay", ctr::bx() * 4 + ctr::by() * 32 + ctr::bz() * 96, 8));
  const auto res = ctr::prove(bad, g, {{"pay", 184}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "coordinate stride")) << res.reasons.front();
}

TEST(ContractProver, DisjointBoxTilesProved) {
  // 4x4x4 tiles over a 16x12x8 field on a 4x3x2 grid.
  const Geom g{24, 4, 3, 2};
  const auto con = ctr::contract(ctr::writes_box("f", ctr::bx() * 4, 4, ctr::by() * 4, 4,
                                                 ctr::bz() * 4, 4, 16, 12, 8));
  EXPECT_TRUE(ctr::prove(con, g, {{"f", 16 * 12 * 8}}).proved());
}

TEST(ContractProver, OverlappingBoxTilesRejected) {
  // x span 5 with x stride 4: neighbouring tiles share a plane.
  const Geom g{24, 4, 3, 2};
  const auto con = ctr::contract(ctr::writes_box("f", ctr::bx() * 4, 5, ctr::by() * 4, 4,
                                                 ctr::bz() * 4, 4, 16, 12, 8));
  const auto res = ctr::prove(con, g, {{"f", 16 * 12 * 8}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "box x-stride 4 < span 5")) << res.reasons.front();
}

TEST(ContractProver, BoxExtentMismatchRejected) {
  const Geom g{24, 4, 3, 2};
  const auto con = ctr::contract(ctr::writes_box("f", ctr::bx() * 4, 4, ctr::by() * 4, 4,
                                                 ctr::bz() * 4, 4, 16, 12, 8));
  const auto res = ctr::prove(con, g, {{"f", 999}});
  EXPECT_EQ(res.verdict, Verdict::kUnproved);
  EXPECT_TRUE(any_reason_contains(res, "box extents do not cover"));
}

// ---------------------------------------------------------------------------
// Dynamic cross-validation: a wrong (under-declared) contract must be caught
// by the interval tier even though the prover was happy with it.
// ---------------------------------------------------------------------------

TEST(ContractDynamic, UnderDeclaredContractFailsLoudly) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  // The contract promises 16-element tiles at stride 32; the kernel actually
  // writes 20.  The extra 4 elements race with nothing (the tiles still
  // don't meet) and stay in bounds, so only the contract check can object.
  std::vector<std::uint32_t> out(64, 0);
  chk::launch("seeded_underdeclared", 2, chk::Granularity::kDefault,
              chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
              ctr::contract(ctr::writes("out", ctr::b() * 32, 16)),
              [](std::size_t b, const auto& v) {
    for (std::size_t i = 0; i < 20; ++i) v[b * 32 + i] = static_cast<std::uint32_t>(b);
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.contract_mismatches.empty()) << chk::report_text();
  EXPECT_FALSE(report.clean());
  const auto& f = report.contract_mismatches.front();
  EXPECT_EQ(f.kernel, "seeded_underdeclared");
  EXPECT_EQ(f.buffer, "out");
  EXPECT_TRUE(f.is_write);
  // The finding carries the whole escaping observed interval: the block's
  // coalesced 20-element write, 4 elements of which the contract never
  // declared.
  EXPECT_EQ(f.elem_lo, f.block * 32);
  EXPECT_EQ(f.elem_hi, f.block * 32 + 20);
  EXPECT_TRUE(report.races.empty()) << chk::report_text();
  EXPECT_TRUE(report.oob.empty()) << chk::report_text();
}

TEST(ContractDynamic, AccurateContractStaysClean) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<std::uint32_t> out(64, 0);
  chk::launch("accurate_tiles", 2, chk::Granularity::kDefault,
              chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
              ctr::contract(ctr::writes("out", ctr::b() * 32, 20)),
              [](std::size_t b, const auto& v) {
    for (std::size_t i = 0; i < 20; ++i) v[b * 32 + i] = static_cast<std::uint32_t>(b);
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

// ---------------------------------------------------------------------------
// Word-mode fast path: a proved contract stands in for the word shadow; an
// unproved one demonstrably keeps it.
// ---------------------------------------------------------------------------

namespace {

void tiled_fill(const char* kernel, std::vector<std::uint32_t>& out, chk::Granularity gran,
                bool proved_contract) {
  constexpr std::size_t kTile = 256;
  const std::size_t blocks = out.size() / kTile;
  auto con = proved_contract
                 ? ctr::contract(ctr::writes("out", ctr::b() * static_cast<std::int64_t>(kTile),
                                             static_cast<std::int64_t>(kTile)))
                 : ctr::contract(ctr::writes_dyn("out"));
  chk::launch(kernel, blocks, gran,
              chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")), con,
              [](std::size_t b, const auto& v) {
    for (std::size_t i = 0; i < kTile; ++i) v[b * kTile + i] = static_cast<std::uint32_t>(b);
  });
}

}  // namespace

TEST(ContractFastpath, ProvedContractSkipsWordShadow) {
  chk::ScopedMode guard(chk::Mode::kWord);
  ctr::ScopedFastpath fast(true);
  ctr::reset_registry();
  std::vector<std::uint32_t> out(1024, 0);
  tiled_fill("fastpath_proved", out, chk::Granularity::kDefault, true);
  const auto& report = chk::current_report();
  EXPECT_TRUE(report.clean()) << chk::report_text();
  // The proof discharged the shadow: no pages, no recorded words.
  EXPECT_EQ(report.shadow_pages, 0u);
  EXPECT_EQ(report.shadow_words, 0u);
  const auto snap = ctr::registry_snapshot();
  const auto* v = find_verdict(snap, "fastpath_proved");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, Verdict::kProved);
  EXPECT_EQ(v->word_fastpath, 1u);
  EXPECT_EQ(v->word_fallback, 0u);
}

TEST(ContractFastpath, UnprovedContractKeepsWordShadow) {
  chk::ScopedMode guard(chk::Mode::kWord);
  ctr::ScopedFastpath fast(true);
  ctr::reset_registry();
  std::vector<std::uint32_t> out(1024, 0);
  tiled_fill("fastpath_unproved", out, chk::Granularity::kDefault, false);
  const auto& report = chk::current_report();
  EXPECT_TRUE(report.clean()) << chk::report_text();
  EXPECT_GT(report.shadow_words, 0u);
  const auto snap = ctr::registry_snapshot();
  const auto* v = find_verdict(snap, "fastpath_unproved");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, Verdict::kUnproved);
  EXPECT_EQ(v->word_fastpath, 0u);
  EXPECT_EQ(v->word_fallback, 1u);
}

TEST(ContractFastpath, DisabledSwitchKeepsWordShadow) {
  chk::ScopedMode guard(chk::Mode::kWord);
  ctr::ScopedFastpath fast(false);
  ctr::reset_registry();
  std::vector<std::uint32_t> out(1024, 0);
  tiled_fill("fastpath_disabled", out, chk::Granularity::kDefault, true);
  EXPECT_GT(chk::current_report().shadow_words, 0u);
  const auto* v = find_verdict(ctr::registry_snapshot(), "fastpath_disabled");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, Verdict::kProved);
  EXPECT_EQ(v->word_fallback, 1u);
}

TEST(ContractFastpath, PerLaunchWordOptInKeepsShadow) {
  // Granularity::kWord exists to model intra-block lanes; per-block
  // footprints say nothing about those, so the proof must not disarm it.
  chk::ScopedMode guard(chk::Mode::kInterval);
  ctr::ScopedFastpath fast(true);
  ctr::reset_registry();
  std::vector<std::uint32_t> out(1024, 0);
  tiled_fill("word_opt_in", out, chk::Granularity::kWord, true);
  EXPECT_GT(chk::current_report().shadow_words, 0u);
  const auto* v = find_verdict(ctr::registry_snapshot(), "word_opt_in");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, Verdict::kProved);
  EXPECT_EQ(v->word_fallback, 1u);
}

// ---------------------------------------------------------------------------
// Registry verdicts of the real kernels: gap-strided Huffman in 1-D grids,
// ZFP's lifted-window families in 1-D and 3-D grids.
// ---------------------------------------------------------------------------

TEST(ContractRegistry, HuffmanGapStrideVerdicts) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  ctr::reset_registry();
  std::vector<quant_t> syms(20000);
  for (std::size_t i = 0; i < syms.size(); ++i) {
    syms[i] = static_cast<quant_t>(512 + (i % 7) - 3);
  }
  std::vector<std::uint64_t> freq(1024, 0);
  for (const quant_t s : syms) ++freq[s];
  const auto book = HuffmanCodebook::build(freq);
  for (const std::uint32_t gap : {0u, 256u}) {
    const auto enc = huffman_encode(syms, book, 1024, HuffmanEncVariant::kOptimized, gap);
    const auto dec = huffman_decode(enc, book);
    ASSERT_EQ(dec.symbols.size(), syms.size());
  }
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();

  const auto snap = ctr::registry_snapshot();
  const auto* sizes = find_verdict(snap, "huffman_encode/chunk_sizes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->verdict, Verdict::kProved);
  // Decode writes collapse to affine sub-block windows in both the plain and
  // the gap-strided configuration — proved across all four launches.
  const auto* decode = find_verdict(snap, "huffman_decode");
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->verdict, Verdict::kProved);
  EXPECT_GE(decode->launches, 2u);
  // Deflate emits variable-length bitstreams: honestly unproved.
  const auto* deflate = find_verdict(snap, "huffman_encode/deflate");
  ASSERT_NE(deflate, nullptr);
  EXPECT_EQ(deflate->verdict, Verdict::kUnproved);
  EXPECT_NE(deflate->reason.find("data-dependent"), std::string::npos) << deflate->reason;
}

TEST(ContractRegistry, ZfpVerdictsIn1DAnd3DGrids) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  ctr::reset_registry();
  {
    std::vector<float> field(9 * 9 * 9);
    for (std::size_t i = 0; i < field.size(); ++i) {
      field[i] = std::sin(0.05f * static_cast<float>(i));
    }
    const auto c = zfp::zfp_compress(field, Extents::d3(9, 9, 9), {});
    const auto d = zfp::zfp_decompress(c.bytes);
    ASSERT_EQ(d.data.size(), field.size());
  }
  {
    std::vector<float> line(100);
    for (std::size_t i = 0; i < line.size(); ++i) {
      line[i] = static_cast<float>(i) * 0.25f;
    }
    const auto c = zfp::zfp_compress(line, Extents::d1(100), {});
    const auto d = zfp::zfp_decompress(c.bytes);
    ASSERT_EQ(d.data.size(), line.size());
  }
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();

  const auto snap = ctr::registry_snapshot();
  for (const char* kernel : {"zfp_compress", "zfp_decompress"}) {
    const auto* v = find_verdict(snap, kernel);
    ASSERT_NE(v, nullptr) << kernel;
    EXPECT_EQ(v->verdict, Verdict::kProved)
        << kernel << ": " << v->reason;
    EXPECT_GE(v->launches, 2u) << kernel;  // one 3-D grid, one 1-D grid
  }
}

TEST(ContractRegistry, VerdictTableIsDeterministicAndSorted) {
  ctr::reset_registry();
  std::vector<std::uint32_t> out(64, 0);
  {
    chk::ScopedMode guard(chk::Mode::kInterval);
    chk::launch("zz_last", 2, chk::Granularity::kDefault,
                chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
                ctr::contract(ctr::writes("out", ctr::b() * 32, 32)),
                [](std::size_t b, const auto& v) { v[b * 32] = 1; });
    chk::launch("aa_first", 2, chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
                [](std::size_t b, const auto& v) { v[b * 32] = 1; });
  }
  const std::string table = ctr::verdict_table_text();
  EXPECT_EQ(table, ctr::verdict_table_text());  // pure snapshot, stable
  const auto aa = table.find("aa_first");
  const auto zz = table.find("zz_last");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
  EXPECT_NE(table.find("1 proved, 0 unproved-fallback-dynamic, 1 no-contract"),
            std::string::npos)
      << table;
  EXPECT_NE(table.find("no contract declared at the launch site"), std::string::npos);
}

}  // namespace
