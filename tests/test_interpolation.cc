// Multi-level interpolation predictor tests (SZ3-style, the paper's
// reference [19]): traversal symmetry, error-bound invariant, anchor
// accounting, and Compressor integration.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "core/predictor/interpolation.hh"

namespace {

using namespace szp;

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed, float noise = 0.01f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc + noise * dist(rng);
  }
  return v;
}

std::vector<float> roundtrip(std::span<const float> data, const Extents& ext, double eb,
                             const InterpolationConfig& cfg = {}) {
  auto res = interpolation_construct(data, ext, eb, QuantConfig{}, cfg);
  std::vector<float> out(ext.count());
  interpolation_reconstruct<float>(
      std::span<const quant_t>(res.quant.data(), res.quant.size()),
      std::span<const qdiff_t>(res.outlier_dense.data(), res.outlier_dense.size()),
      res.anchors, res.level, cfg.cubic, ext, eb, QuantConfig{}, out);
  return out;
}

double max_error(std::span<const float> a, std::span<const float> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

class InterpSweep : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(InterpSweep, RoundTripHonorsErrorBound) {
  const auto [rank, eb, cubic] = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(5000)
                      : rank == 2 ? Extents::d2(67, 83)
                                  : Extents::d3(17, 21, 29);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank * 13 + cubic));
  InterpolationConfig cfg;
  cfg.cubic = cubic;
  const auto out = roundtrip(data, ext, eb, cfg);
  EXPECT_LE(max_error(data, out), eb * 1.0001) << "rank=" << rank << " cubic=" << cubic;
}

INSTANTIATE_TEST_SUITE_P(RankEbCubic, InterpSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1e-2, 1e-4),
                                            ::testing::Bool()));

TEST(Interpolation, AnchorCountMatchesLattice) {
  // 100 elements at level 5 (stride 32): anchors at 0,32,64,96 -> 4.
  EXPECT_EQ(interpolation_anchor_count(Extents::d1(100), 5), 4u);
  // 2-D 65x65 at stride 32: 3x3.
  EXPECT_EQ(interpolation_anchor_count(Extents::d2(65, 65), 5), 9u);
  // Level clamps when the stride would exceed the axis.
  EXPECT_EQ(interpolation_anchor_count(Extents::d1(8), 5), 2u);  // stride 4
}

TEST(Interpolation, TinyFieldsDegradeToAnchors) {
  const Extents ext = Extents::d1(2);
  const std::vector<float> data{1.0f, -2.0f};
  const auto out = roundtrip(data, ext, 1e-6);
  EXPECT_EQ(out[0], 1.0f);  // anchors are stored raw
  EXPECT_EQ(out[1], -2.0f);
}

TEST(Interpolation, LinearRampIsPredictedExactly) {
  // On a linear ramp, cubic/linear interpolation is exact, so every
  // non-anchor code is zero.
  const Extents ext = Extents::d1(129);
  std::vector<float> data(129);
  for (std::size_t i = 0; i < 129; ++i) data[i] = 2.0f + 0.25f * static_cast<float>(i);
  auto res = interpolation_construct<float>(data, ext, 1e-3, QuantConfig{});
  const auto r = static_cast<quant_t>(QuantConfig{}.radius());
  for (std::size_t i = 0; i < 129; ++i) {
    EXPECT_EQ(res.quant[i], r) << i;
    EXPECT_EQ(res.outlier_dense[i], 0) << i;
  }
}

TEST(Interpolation, SpikesBecomeOutliersButStayBounded) {
  const Extents ext = Extents::d2(33, 33);
  std::vector<float> data(ext.count(), 0.0f);
  data[ext.index(0, 16, 17)] = 900.0f;
  const double eb = 1e-3;
  const auto out = roundtrip(data, ext, eb);
  EXPECT_LE(max_error(data, out), eb * 1.0001);
}

TEST(Interpolation, MismatchedAnchorsThrow) {
  const Extents ext = Extents::d1(100);
  std::vector<quant_t> q(100, 512);
  std::vector<qdiff_t> o(100, 0);
  std::vector<float> anchors(3);  // should be 4 at level 5
  std::vector<float> out(100);
  EXPECT_THROW((void)interpolation_reconstruct<float>(q, o, anchors, 5, true, ext, 1e-3,
                                                      QuantConfig{}, out),
               std::invalid_argument);
}

// ---- Compressor integration -------------------------------------------------

TEST(InterpolationCompressor, EndToEndAllRanks) {
  for (const int rank : {1, 2, 3}) {
    const Extents ext = rank == 1   ? Extents::d1(8000)
                        : rank == 2 ? Extents::d2(70, 90)
                                    : Extents::d3(18, 20, 22);
    const auto data = smooth_field(ext, static_cast<std::uint32_t>(40 + rank));
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-3);
    cfg.predictor = PredictorKind::kInterpolation;
    const auto c = Compressor(cfg).compress(data, ext);
    const auto d = Compressor::decompress(c.bytes);
    EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs) << rank;
    EXPECT_NE(d.pipeline.find("interpolation_reconstruct"), nullptr);
  }
}

TEST(InterpolationCompressor, DoublePath) {
  const Extents ext = Extents::d2(50, 60);
  std::vector<double> data(ext.count());
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double acc = 0.0;
  for (auto& x : data) {
    acc = 0.99 * acc + 0.04 * dist(rng);
    x = acc;
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-4);
  cfg.predictor = PredictorKind::kInterpolation;
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data_f64).max_abs_error, c.stats.eb_abs);
}

TEST(InterpolationCompressor, CompetitiveWithLorenzoOnVerySmoothData) {
  // Interpolation's two-sided prediction should land within ~2x of Lorenzo
  // on smooth data (and can win at loose bounds on real SZ3 workloads).
  const Extents ext = Extents::d2(128, 128);
  std::vector<float> data(ext.count());
  for (std::size_t y = 0; y < 128; ++y)
    for (std::size_t x = 0; x < 128; ++x)
      data[y * 128 + x] =
          std::sin(0.05f * static_cast<float>(x)) * std::cos(0.04f * static_cast<float>(y));
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto lorenzo = Compressor(cfg).compress(data, ext);
  cfg.predictor = PredictorKind::kInterpolation;
  const auto interp = Compressor(cfg).compress(data, ext);
  EXPECT_GT(interp.stats.ratio, lorenzo.stats.ratio * 0.5);
}

}  // namespace
