// Corrupt-archive robustness: the mutation-fuzz campaign, the DecodeError
// taxonomy (every kind constructed at least once, with the failing segment
// named in the error text), and exception propagation out of the simulated
// GPU grid (ISSUE: corrupt-archive hardening).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/checksum.hh"
#include "core/compressor.hh"
#include "core/error.hh"
#include "core/huffman/bitio.hh"
#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/serialize.hh"
#include "core/types.hh"
#include "data/io.hh"
#include "sim/launch.hh"
#include "tools/cli.hh"
#include "tools/fuzz_decode.hh"

namespace {

using namespace szp;

// ---------------------------------------------------------------------------
// Archive helpers.  The szp v2 archive is <body><crc32(body) u32le>; the body
// starts with a 46-byte header (magic u32, version u16, rank u8, workflow u8,
// dtype u8, nx/ny/nz u64, eb f64, capacity u32, predictor u8).  For the
// Lorenzo predictor the outlier index vector follows directly: its element
// count (u64) sits at offset 46 and the first index (u64) at offset 54.
// ---------------------------------------------------------------------------

constexpr std::size_t kHeaderBytes = 46;
constexpr std::size_t kOutlierCountOffset = kHeaderBytes;
constexpr std::size_t kFirstOutlierOffset = kHeaderBytes + 8;

/// Re-stamp the trailing CRC-32 so mutations to the body are not masked by
/// the whole-archive checksum.
void restamp_crc(std::vector<std::uint8_t>& archive) {
  ASSERT_GE(archive.size(), 4u);
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(archive.data(), archive.size() - 4));
  std::memcpy(archive.data() + archive.size() - 4, &crc, 4);
}

void splice_u64(std::vector<std::uint8_t>& archive, std::size_t offset, std::uint64_t v) {
  ASSERT_LE(offset + 8, archive.size());
  std::memcpy(archive.data() + offset, &v, 8);
}

/// A smooth 1-D field with one spike large enough to force at least one
/// Lorenzo outlier at eb = 1e-3 (residual ~ 250k quant steps >> radius 512).
std::vector<std::uint8_t> spiked_archive(std::size_t* outlier_count = nullptr) {
  std::vector<float> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<float>(i) * 0.01f);
  }
  data[100] = 500.0f;
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto c = Compressor(cfg).compress(data, Extents::d1(data.size()));
  EXPECT_GT(c.stats.outlier_count, 0u);
  if (outlier_count != nullptr) *outlier_count = c.stats.outlier_count;
  return c.bytes;
}

/// Decompress must reject the archive with exactly this kind, and the error
/// text must name the failing segment.
void expect_rejected(std::span<const std::uint8_t> archive, DecodeErrorKind kind,
                     const std::string& segment) {
  try {
    (void)Compressor::decompress(archive);
    FAIL() << "decode accepted a corrupt archive (wanted " << decode_error_kind_name(kind)
           << " in " << segment << ")";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_EQ(e.segment(), segment) << e.what();
    EXPECT_NE(std::string(e.what()).find(segment), std::string::npos)
        << "what() does not name the segment: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// The campaign itself: every decode path, every mutation class, zero
// contract violations.
// ---------------------------------------------------------------------------

TEST(FuzzDecode, CampaignHoldsTheDecodeContract) {
  std::ostringstream sink;
  fuzz::FuzzConfig cfg;
  const fuzz::FuzzResult res = fuzz::run(cfg, sink);
  std::string joined;
  for (const auto& f : res.failures) joined += "\n  " + f;
  EXPECT_TRUE(res.ok()) << "contract violations:" << joined;
  EXPECT_GT(res.mutations, 1000u);
  EXPECT_GT(res.clean_errors, 0u);
  // Truncation alone guarantees these two kinds across the campaign.
  EXPECT_GT(res.kinds.count(DecodeErrorKind::kTruncated), 0u);
  EXPECT_GT(res.kinds.count(DecodeErrorKind::kChecksumMismatch), 0u);
}

TEST(FuzzDecode, CampaignIsDeterministic) {
  std::ostringstream a, b;
  fuzz::FuzzConfig cfg;
  cfg.seed = 1234;
  const auto r1 = fuzz::run(cfg, a);
  const auto r2 = fuzz::run(cfg, b);
  EXPECT_EQ(r1.mutations, r2.mutations);
  EXPECT_EQ(r1.clean_errors, r2.clean_errors);
  EXPECT_EQ(r1.accepted, r2.accepted);
  EXPECT_EQ(r1.kinds, r2.kinds);
}

// ---------------------------------------------------------------------------
// Taxonomy coverage: construct every DecodeErrorKind at least once, and
// check the error text names the failing segment.
// ---------------------------------------------------------------------------

TEST(FuzzDecode, TruncatedArchiveIsNamed) {
  const std::vector<std::uint8_t> stub = {0x53, 0x5a, 0x50};  // < 4 bytes
  expect_rejected(stub, DecodeErrorKind::kTruncated, "archive");
}

TEST(FuzzDecode, TruncatedHeaderIsNamed) {
  auto archive = spiked_archive();
  // Keep 20 header bytes, re-stamp the CRC so the truncation itself (not the
  // checksum) is what the decoder reports.
  archive.resize(20 + 4);
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kTruncated, "header");
}

TEST(FuzzDecode, BadMagicIsNamed) {
  auto archive = spiked_archive();
  archive[0] ^= 0xff;
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kBadMagic, "header");
}

TEST(FuzzDecode, BadVersionIsNamed) {
  auto archive = spiked_archive();
  archive[4] = 0xff;  // version u16 at offset 4
  archive[5] = 0x7f;
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kBadVersion, "header");
}

TEST(FuzzDecode, BadCodecIdIsNamed) {
  // Splice a codec id past the registered range into the workflow byte
  // (offset 7) of a valid v3 archive and re-stamp the CRC, so the header
  // validation — not the checksum — is what rejects it.
  std::vector<float> data(512);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<float>(i) * 0.01f);
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kLzh;  // v3 archive: widest legal codec range
  auto archive = Compressor(cfg).compress(data, Extents::d1(data.size())).bytes;
  archive[7] = 9;  // one past kLzr, not kAuto
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kCorruptStream, "header");
}

TEST(FuzzDecode, LzCodecIdRejectedInLegacyArchiveVersion) {
  // A v2 header can only carry the original four workflow tags; an LZ id
  // spliced into one must be rejected even though v3 readers accept it.
  auto archive = spiked_archive();  // kHuffman -> written as v2
  ASSERT_EQ(archive[4], 2);         // version u16 low byte
  archive[7] = static_cast<std::uint8_t>(Workflow::kLz77);
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kCorruptStream, "header");
}

TEST(FuzzDecode, SplicedOutlierCountOverflowIsNamed) {
  auto archive = spiked_archive();
  // Declare UINT64_MAX/2 outlier indices: must be rejected against the
  // remaining bytes before any allocation happens.
  splice_u64(archive, kOutlierCountOffset, UINT64_MAX / 2);
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kLengthOverflow, "outliers");
}

TEST(FuzzDecode, OutOfRangeOutlierIndexIsNamed) {
  std::size_t outliers = 0;
  auto archive = spiked_archive(&outliers);
  ASSERT_GE(outliers, 1u);
  // Point the first outlier's scatter write far outside the 4096-element
  // grid; the per-index validation must catch it before the scatter kernel.
  splice_u64(archive, kFirstOutlierOffset, 0xffffffffffull);
  restamp_crc(archive);
  expect_rejected(archive, DecodeErrorKind::kCorruptStream, "outliers");
}

TEST(FuzzDecode, ChecksumMismatchIsNamed) {
  auto archive = spiked_archive();
  archive[kHeaderBytes + 1] ^= 0x01;  // any body flip without re-stamping
  expect_rejected(archive, DecodeErrorKind::kChecksumMismatch, "archive");
}

TEST(FuzzDecode, CorruptCodebookIsNamed) {
  // alphabet = 0 is structurally invalid.
  ByteWriter w;
  w.put<std::uint32_t>(0);
  w.put<std::uint32_t>(0);
  const auto bytes = w.take();
  ByteReader r(bytes);
  try {
    (void)HuffmanCodebook::deserialize(r);
    FAIL() << "deserialized an empty-alphabet codebook";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kCorruptStream) << e.what();
    EXPECT_EQ(e.segment(), "codebook") << e.what();
    EXPECT_NE(std::string(e.what()).find("codebook"), std::string::npos);
  }
}

TEST(FuzzDecode, TruncatedBitstreamIsNamed) {
  const std::uint8_t one = 0xa5;
  BitReader br(std::span<const std::uint8_t>(&one, 1));
  for (int i = 0; i < 8; ++i) (void)br.get_bit();
  try {
    (void)br.get_bit();
    FAIL() << "read past the end of a 1-byte bitstream";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kTruncated) << e.what();
    EXPECT_EQ(e.segment(), "bitstream") << e.what();
    EXPECT_NE(std::string(e.what()).find("bitstream"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Exception propagation out of the simulated-GPU grid: the first (lowest
// block index) exception is rethrown after the region joins, the remaining
// blocks still run, and the exception type survives intact.
// ---------------------------------------------------------------------------

TEST(LaunchExceptions, LowestFaultingBlockWinsDeterministically) {
  for (int rep = 0; rep < 10; ++rep) {
    try {
      sim::launch_blocks(8, [](std::size_t b) {
        if (b == 2 || b == 5) throw std::runtime_error("block " + std::to_string(b));
      });
      FAIL() << "launch_blocks swallowed the block exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "block 2");
    }
  }
}

TEST(LaunchExceptions, RemainingBlocksStillRun) {
  std::atomic<std::size_t> ran{0};
  try {
    sim::launch_blocks(16, [&ran](std::size_t b) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (b == 3) throw std::runtime_error("fault");
    });
    FAIL() << "exception was not rethrown";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 16u);  // the grid drains; no block is skipped
}

TEST(LaunchExceptions, DecodeErrorTypeSurvivesTheParallelRegion) {
  try {
    sim::launch_blocks(4, [](std::size_t b) {
      if (b == 1) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream", "from block 1");
      }
    });
    FAIL() << "DecodeError did not propagate";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kCorruptStream);
    EXPECT_EQ(e.segment(), "bitstream");
  }
}

TEST(LaunchExceptions, SingleBlockGridPropagatesInline) {
  EXPECT_THROW(sim::launch_blocks(1, [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(LaunchExceptions, ThreeDSingleBlockRunsInline) {
  std::size_t calls = 0;
  sim::launch_blocks_3d(sim::Dim3{1, 1, 1}, [&](std::uint32_t bx, std::uint32_t by,
                                                std::uint32_t bz) {
    EXPECT_EQ(bx, 0u);
    EXPECT_EQ(by, 0u);
    EXPECT_EQ(bz, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_THROW(sim::launch_blocks_3d(sim::Dim3{1, 1, 1},
                                     [](std::uint32_t, std::uint32_t, std::uint32_t) {
                                       throw std::logic_error("inline 3-D");
                                     }),
               std::logic_error);
}

TEST(LaunchExceptions, ThreeDLowestLinearBlockWins) {
  for (int rep = 0; rep < 10; ++rep) {
    try {
      sim::launch_blocks_3d(sim::Dim3{2, 2, 2},
                            [](std::uint32_t bx, std::uint32_t by, std::uint32_t bz) {
        const std::size_t linear = bx + 2u * by + 4u * bz;
        if (linear == 3 || linear == 6) {
          throw std::runtime_error("linear " + std::to_string(linear));
        }
      });
      FAIL() << "launch_blocks_3d swallowed the block exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "linear 3");
    }
  }
}

TEST(LaunchExceptions, InOrderCapturesInBothBranches) {
  const std::vector<std::size_t> order = {3, 1, 0, 2};
  for (const bool parallel : {false, true}) {
    try {
      sim::launch_blocks_in_order(order, parallel, [](std::size_t b) {
        // Blocks 1 and 2 fault; the lowest *block index* must win even
        // though block 2 appears later in the visiting order.
        if (b == 1 || b == 2) throw std::runtime_error("block " + std::to_string(b));
      });
      FAIL() << "launch_blocks_in_order swallowed the block exceptions (parallel=" << parallel
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "block 1") << "parallel=" << parallel;
    }
  }
}

// ---------------------------------------------------------------------------
// Regression corpus: campaign persistence, dedup, and exact replay.
// ---------------------------------------------------------------------------

/// Hand-build a corpus artifact in the on-disk format (magic "SZPF",
/// version, kind, target, segment, archive) so replay's drift detection can
/// be probed without a live campaign.
std::vector<std::uint8_t> make_artifact(DecodeErrorKind kind, const std::string& target,
                                        const std::string& segment,
                                        const std::vector<std::uint8_t>& archive) {
  ByteWriter w;
  w.put<std::uint32_t>(0x46505A53);
  w.put<std::uint8_t>(1);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(kind));
  w.put_span(std::span<const char>(target.data(), target.size()));
  w.put_span(std::span<const char>(segment.data(), segment.size()));
  w.put_vector(archive);
  return w.take();
}

TEST(FuzzCorpus, CampaignWritesDedupesAndReplays) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szp_fuzz_corpus_test";
  fs::remove_all(dir);

  fuzz::FuzzConfig cfg;
  cfg.rounds = 1;
  cfg.corpus_dir = dir.string();
  std::ostringstream out;
  const auto res = fuzz::run(cfg, out);
  EXPECT_TRUE(res.ok()) << out.str();
  EXPECT_GT(res.corpus_new, 0u);

  // One full artifact per new (kind x segment) pair, plus a "__min.szpf"
  // shrunken companion wherever truncation-based shrinking found a strictly
  // smaller prefix with the same verdict.
  std::size_t files = 0, min_files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".szpf") continue;
    const bool is_min = e.path().stem().string().ends_with("__min");
    files += is_min ? 0 : 1;
    min_files += is_min ? 1 : 0;
  }
  EXPECT_EQ(files, res.corpus_new);
  EXPECT_GT(min_files, 0u);
  EXPECT_LE(min_files, files);

  // Second campaign over the same directory: the writer pre-seeds its
  // seen-set from disk, so every (kind x segment) pair is already covered.
  std::ostringstream out2;
  const auto res2 = fuzz::run(cfg, out2);
  EXPECT_EQ(res2.corpus_new, 0u);

  // Replay reproduces every artifact's verdict exactly.
  std::ostringstream rout;
  const auto rep = fuzz::replay(dir.string(), rout);
  EXPECT_TRUE(rep.ok()) << rout.str();
  EXPECT_EQ(rep.artifacts, res.corpus_new + min_files);
  EXPECT_EQ(rep.matched, rep.artifacts);
  fs::remove_all(dir);
}

TEST(FuzzCorpus, ReplayFailsOnVerdictDrift) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szp_fuzz_corpus_drift";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto valid = spiked_archive();

  // An artifact claiming a valid archive must be rejected: the decode
  // accepts it, which replay reports as drift.
  data::write_bytes(dir / "accepts.szpf",
                    make_artifact(DecodeErrorKind::kTruncated, "szp/huffman-1d-f32", "header",
                                  valid));
  // A truncated archive does throw (checksum-mismatch: the whole-archive
  // CRC is verified first), but the artifact recorded a different kind:
  // also drift.
  auto cut = valid;
  cut.resize(20);
  data::write_bytes(dir / "wrong-kind.szpf",
                    make_artifact(DecodeErrorKind::kBadVersion, "szp/huffman-1d-f32",
                                  "archive", cut));
  // An unknown target name cannot be replayed at all.
  data::write_bytes(dir / "unknown.szpf",
                    make_artifact(DecodeErrorKind::kTruncated, "mystery/format", "header", cut));
  // A corrupt artifact file itself.
  data::write_bytes(dir / "garbage.szpf", std::vector<std::uint8_t>{1, 2, 3});

  std::ostringstream out;
  const auto rep = fuzz::replay(dir.string(), out);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.artifacts, 4u);
  EXPECT_EQ(rep.matched, 0u);
  EXPECT_EQ(rep.failures.size(), 4u) << out.str();
  fs::remove_all(dir);
}

TEST(FuzzCorpus, CommittedCorpusReplaysAndCoversEveryKind) {
  // The corpus committed under tests/corpus/ is the regression contract:
  // every artifact must reproduce its recorded verdict on today's decoders,
  // and at least one artifact exists per DecodeError kind.
  const std::string dir = SZP_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::ostringstream out;
  const auto rep = fuzz::replay(dir, out);
  EXPECT_TRUE(rep.ok()) << out.str();
  EXPECT_GE(rep.artifacts, 6u);
  EXPECT_EQ(rep.matched, rep.artifacts);
  for (const char* kind : {"truncated", "bad-magic", "bad-version", "length-overflow",
                           "checksum-mismatch", "corrupt-stream"}) {
    bool found = false;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().filename().string().rfind(kind, 0) == 0) found = true;
    }
    EXPECT_TRUE(found) << "no committed artifact for kind " << kind;
  }
}

TEST(FuzzCorpus, CliReplayRunsTheCommittedCorpus) {
  std::ostringstream out, err;
  const int rc = cli::run({"fuzz", "--replay", SZP_CORPUS_DIR}, out, err);
  EXPECT_EQ(rc, 0) << err.str() << out.str();
  EXPECT_NE(out.str().find("replay:"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("0 failure(s)"), std::string::npos) << out.str();
}

TEST(LaunchExceptions, HuffmanDecodePropagatesFromTheGrid) {
  // A production kernel, not a synthetic body: 8 chunks decode in parallel,
  // and a spliced gap offset sends one sub-block's BitReader past the end of
  // its chunk.  The DecodeError must surface at the launch's join.
  std::vector<quant_t> symbols(8192);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i] = static_cast<quant_t>((i * 7 + i / 13) % 16);
  }
  std::vector<std::uint64_t> freq(16, 0);
  for (const auto s : symbols) ++freq[s];
  const auto book = HuffmanCodebook::build(freq);
  auto enc = huffman_encode(symbols, book, 1024, HuffmanEncVariant::kOptimized, 256);
  ASSERT_GT(enc.chunk_offsets.size(), 2u);  // really multi-chunk
  ASSERT_FALSE(enc.gaps.empty());
  enc.gaps.back() = 1u << 30;  // bit offset far past any chunk
  try {
    (void)huffman_decode(enc, book);
    FAIL() << "decode accepted a spliced gap offset";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kTruncated) << e.what();
    EXPECT_EQ(e.segment(), "bitstream") << e.what();
  }
}

}  // namespace
