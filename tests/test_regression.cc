// Linear-regression predictor tests (the paper's future-work predictor):
// fit correctness, error-bound invariant, and integration with the
// Compressor's archive format.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "core/predictor/regression.hh"

namespace {

using namespace szp;

std::vector<float> random_field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.98f * acc + 0.1f * dist(rng);
    x = acc;
  }
  return v;
}

std::vector<float> roundtrip(std::span<const float> data, const Extents& ext, double eb) {
  auto res = regression_construct(data, ext, eb, QuantConfig{});
  std::vector<float> out(ext.count());
  regression_reconstruct<float>(
      std::span<const quant_t>(res.quant.data(), res.quant.size()),
      std::span<const qdiff_t>(res.outlier_dense.data(), res.outlier_dense.size()),
      res.coefficients, ext, eb, QuantConfig{}, out);
  return out;
}

double max_error(std::span<const float> a, std::span<const float> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

class RegressionSweep : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(RegressionSweep, RoundTripHonorsErrorBound) {
  const auto [rank, eb, ragged] = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(ragged ? 1000 : 1024)
                      : rank == 2 ? Extents::d2(ragged ? 37 : 32, ragged ? 53 : 48)
                                  : Extents::d3(ragged ? 11 : 16, ragged ? 19 : 16, ragged ? 21 : 24);
  const auto data = random_field(ext, static_cast<std::uint32_t>(rank * 31 + ragged));
  const auto out = roundtrip(data, ext, eb);
  EXPECT_LE(max_error(data, out), eb * 1.0001) << "rank=" << rank << " eb=" << eb;
}

INSTANTIATE_TEST_SUITE_P(RankEbRagged, RegressionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1e-2, 1e-4),
                                            ::testing::Bool()));

TEST(Regression, ExactPlaneNeedsOnlyZeroCodes) {
  // A perfectly linear field within a single chunk: the plane fit is exact,
  // so every residual quantizes to zero.
  const Extents ext = Extents::d2(16, 16);
  std::vector<float> data(256);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      data[y * 16 + x] = 2.0f + 0.125f * static_cast<float>(x) - 0.0625f * static_cast<float>(y);

  auto res = regression_construct<float>(data, ext, 1e-3, QuantConfig{});
  const auto r = static_cast<quant_t>(QuantConfig{}.radius());
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(res.quant[i], r) << i;
    EXPECT_EQ(res.outlier_dense[i], 0) << i;
  }
  // And the recovered coefficients match the construction.
  EXPECT_NEAR(res.coefficients[1], 0.125f, 1e-5);   // bx
  EXPECT_NEAR(res.coefficients[2], -0.0625f, 1e-5); // by
}

TEST(Regression, ChunkCountMatchesGrid) {
  EXPECT_EQ(regression_chunk_count(Extents::d1(1000)), 4u);     // ceil(1000/256)
  EXPECT_EQ(regression_chunk_count(Extents::d2(17, 33)), 6u);   // 2 x 3 of 16x16
  EXPECT_EQ(regression_chunk_count(Extents::d3(8, 8, 9)), 2u);  // 1 x 1 x 2 of 8^3
}

TEST(Regression, OutliersKeepBoundOnSpikyData) {
  const Extents ext = Extents::d1(512);
  std::vector<float> data(512, 0.0f);
  data[100] = 500.0f;
  data[300] = -500.0f;
  const double eb = 1e-3;
  const auto out = roundtrip(data, ext, eb);
  EXPECT_LE(max_error(data, out), eb * 1.0001);
}

TEST(Regression, MismatchedInputsThrow) {
  std::vector<float> data(100);
  EXPECT_THROW((void)regression_construct<float>(data, Extents::d1(101), 1e-3, QuantConfig{}),
               std::invalid_argument);
  std::vector<quant_t> q(100);
  std::vector<qdiff_t> o(100);
  std::vector<float> coeffs(3);  // wrong count
  std::vector<float> out(100);
  EXPECT_THROW((void)regression_reconstruct<float>(q, o, coeffs, Extents::d1(100), 1e-3,
                                                   QuantConfig{}, out),
               std::invalid_argument);
}

// ---- Compressor integration ------------------------------------------------

TEST(RegressionCompressor, EndToEndRoundTrip) {
  const Extents ext = Extents::d3(12, 20, 24);
  const auto data = random_field(ext, 17);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.predictor = PredictorKind::kRegression;
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
  EXPECT_NE(d.pipeline.find("regression_reconstruct"), nullptr);
  EXPECT_NE(c.stats.pipeline.find("regression_construct"), nullptr);
}

TEST(RegressionCompressor, WorksWithAllWorkflows) {
  const Extents ext = Extents::d2(48, 64);
  const auto data = random_field(ext, 18);
  for (const Workflow wf : {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-2);
    cfg.predictor = PredictorKind::kRegression;
    cfg.workflow = wf;
    const auto c = Compressor(cfg).compress(data, ext);
    const auto d = Compressor::decompress(c.bytes);
    EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs)
        << static_cast<int>(wf);
  }
}

TEST(RegressionCompressor, DoublePath) {
  const Extents ext = Extents::d2(40, 40);
  std::vector<double> data(ext.count());
  std::mt19937 rng(19);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double acc = 0.0;
  for (auto& x : data) {
    acc = 0.99 * acc + 0.05 * dist(rng);
    x = acc;
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-5);
  cfg.predictor = PredictorKind::kRegression;
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data_f64).max_abs_error, c.stats.eb_abs);
}

TEST(RegressionCompressor, LorenzoUsuallyWinsOnSmoothData) {
  // The regression predictor's residuals do not telescope, so on smooth
  // data the Lorenzo workflow compresses at least comparably — the reason
  // Lorenzo is the default (paper §II-B.3).
  const Extents ext = Extents::d2(90, 180);
  std::mt19937 rng(20);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> data(ext.count());
  for (std::size_t y = 0; y < 90; ++y) {
    float acc = 0.1f * static_cast<float>(y);
    for (std::size_t x = 0; x < 180; ++x) {
      acc += 0.001f * dist(rng);
      data[y * 180 + x] = acc;
    }
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto lorenzo = Compressor(cfg).compress(data, ext);
  cfg.predictor = PredictorKind::kRegression;
  const auto regression = Compressor(cfg).compress(data, ext);
  EXPECT_GE(lorenzo.stats.ratio, regression.stats.ratio * 0.9);
}

}  // namespace
