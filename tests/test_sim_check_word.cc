// Tier-2 checking (word-granular shadow memory + lane model) and schedule
// fuzzing: seeded intra-block hazards that interval mode cannot see must be
// flagged in word mode, benign striding and barrier-ordered reuse must not
// be, seeded order-dependent kernels must be caught by the schedule fuzzer,
// and full pipelines must run clean (zero false positives) under both.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "baseline/cusz_ref.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/check.hh"
#include "tools/cli.hh"

namespace {

using namespace szp;
namespace chk = sim::checked;

/// Two lanes of one block write the same word in the same barrier epoch —
/// the canonical intra-block hazard (e.g. a mis-assigned warp-shuffle slot).
template <typename View>
void seeded_intra_block_ww(std::size_t, const View& v) {
  chk::this_thread(0);
  v[5] = 1;
  chk::this_thread(1);
  v[5] = 2;  // lane 1 collides with lane 0's write, no barrier between
}

TEST(SimCheckWord, IntervalModeMissesIntraBlockHazard) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  // One block: interval footprints cannot conflict with themselves.
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
  EXPECT_EQ(chk::current_report().launches_checked, 1u);
}

TEST(SimCheckWord, WordModeCatchesIntraBlockHazard) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  const auto& h = report.hazards.front();
  EXPECT_EQ(h.kernel, "seeded_intra_ww");
  EXPECT_EQ(h.buffer, "buf");
  EXPECT_EQ(h.block, 0u);
  EXPECT_EQ(h.word, 5u);
  EXPECT_EQ(std::min(h.lane_a, h.lane_b), 0u);
  EXPECT_EQ(std::max(h.lane_a, h.lane_b), 1u);
  EXPECT_TRUE(h.write_write);
  EXPECT_TRUE(report.races.empty()) << chk::report_text();
}

TEST(SimCheckWord, PerLaunchWordOptInUpgradesIntervalMode) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww_optin", 1, chk::Granularity::kWord,
              chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  EXPECT_FALSE(chk::current_report().hazards.empty()) << chk::report_text();
}

TEST(SimCheckWord, ReadWriteHazardAcrossLanes) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_rw", 1, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    chk::this_thread(0);
    v[3] = 7;
    chk::this_thread(1);
    [[maybe_unused]] const int x = v[3];  // lane 1 reads lane 0's word, same epoch
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  EXPECT_FALSE(report.hazards.front().write_write);
}

TEST(SimCheckWord, BenignStridingIsNotFlagged) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Classic strided access: lane l owns every 4th word — disjoint footprints
  // inside one epoch.  Racecheck would not flag this; neither must we.
  std::vector<int> buf(64, 0);
  chk::launch("benign_stride", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    for (std::uint32_t lane = 0; lane < 4; ++lane) {
      chk::this_thread(lane);
      for (std::size_t i = lane; i < 64; i += 4) v[i] = static_cast<int>(lane);
    }
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, BarrierOrdersAccessesAcrossEpochs) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Lane 0 writes, __syncthreads(), lane 1 reads the same word: ordered, not
  // a hazard — the pattern every staged shared-memory kernel relies on.
  std::vector<int> buf(16, 0);
  chk::launch("barrier_ordered", 1, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    chk::this_thread(0);
    v[5] = 42;
    chk::barrier();
    chk::this_thread(1);
    v[6] = v[5] + 1;
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, AtomicUpdatesFromDifferentLanesAreExempt) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Shared-memory histogram privatization: many lanes atomicAdd one bin.
  std::vector<std::uint32_t> bins(8, 0);
  chk::launch("atomic_bins", 1, chk::bufs(chk::inout(std::span<std::uint32_t>(bins), "bins")),
              [](std::size_t, const auto& v) {
    for (std::uint32_t lane = 0; lane < 8; ++lane) {
      chk::this_thread(lane);
      v.atomic_add(3, 1);
    }
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
  EXPECT_EQ(bins[3], 8u);
}

TEST(SimCheckWord, WordModeStillFlagsCrossBlockRaces) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(64, 0);
  chk::launch("cross_block_ww", 2, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { v[9] = static_cast<int>(b); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.races.empty()) << chk::report_text();
  EXPECT_TRUE(report.hazards.empty());
  EXPECT_EQ(report.races.front().byte_lo, 9 * sizeof(int));
}

TEST(SimCheckWord, HazardReportNamesLaneBufferAndWord) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("named_hazard", 1, chk::bufs(chk::out(std::span<int>(buf), "cells")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  const std::string text = chk::report_text();
  EXPECT_NE(text.find("named_hazard"), std::string::npos) << text;
  EXPECT_NE(text.find("cells"), std::string::npos) << text;
  EXPECT_NE(text.find("intra-block hazard"), std::string::npos) << text;
  EXPECT_NE(text.find("lanes 0 and 1"), std::string::npos) << text;
  EXPECT_NE(text.find("word 5"), std::string::npos) << text;
}

// --------------------------------------------------------------------------
// Schedule fuzzing.
// --------------------------------------------------------------------------

TEST(SimCheckFuzz, CatchesOrderDependentKernel) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  // Last-writer-wins: every block stores its own index into word 0, so the
  // final value is whichever block the schedule ran last — order-dependent
  // output that no footprint analysis can prove wrong.
  std::vector<int> buf(64, -1);
  chk::launch("seeded_order_dep", 64, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) {
    v[b] = static_cast<int>(b);  // benign per-block cell
    v[0] = static_cast<int>(b);  // all blocks collide here
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  EXPECT_FALSE(report.schedule_diffs.empty()) << chk::report_text();
  EXPECT_EQ(report.schedule_diffs.front().kernel, "seeded_order_dep");
  EXPECT_EQ(report.schedule_diffs.front().buffer, "buf");
}

TEST(SimCheckFuzz, OrderInvariantKernelIsClean) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  std::vector<int> in(256, 3);
  std::vector<int> out(8, 0);
  chk::launch("order_invariant", 8,
              chk::bufs(chk::in(std::span<const int>(in), "in"),
                        chk::out(std::span<int>(out), "out")),
              [](std::size_t b, const auto& vin, const auto& vout) {
    int acc = 0;
    for (std::size_t i = 0; i < 32; ++i) acc += vin[b * 32 + i];
    vout[b] = acc;
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  for (int v : out) EXPECT_EQ(v, 96);
}

TEST(SimCheckFuzz, RestoresCanonicalResultAfterReplays) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(4);
  std::vector<int> out(16, 0);
  chk::launch("restore_post", 4, chk::bufs(chk::out(std::span<int>(out), "out")),
              [](std::size_t b, const auto& v) {
    for (std::size_t i = 0; i < 4; ++i) v[b * 4 + i] = static_cast<int>(b + 1);
  });
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], static_cast<int>(i / 4 + 1));
}

// --------------------------------------------------------------------------
// Zero false positives and bit-stability: full pipelines.
// --------------------------------------------------------------------------

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc + 0.001f * dist(rng);
  }
  return v;
}

class SimCheckWordRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SimCheckWordRoundTrip, CompressDecompressHasNoFindings) {
  const int rank = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(5000)
                      : rank == 2 ? Extents::d2(60, 70)
                                  : Extents::d3(17, 18, 19);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank));

  chk::ScopedMode guard(chk::Mode::kWord);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const auto compressed = Compressor(cfg).compress(data, ext);
  const auto restored = Compressor::decompress(compressed.bytes);

  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();

  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SimCheckWordRoundTrip, ::testing::Values(1, 2, 3));

TEST(SimCheckWord, BaselineCompressorRoundTripClean) {
  const Extents ext = Extents::d2(48, 52);
  const auto data = smooth_field(ext, 21);
  chk::ScopedMode guard(chk::Mode::kWord);
  baseline::CuszConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const baseline::CuszCompressor comp(cfg);
  const auto compressed = comp.compress(data, ext);
  const auto restored = baseline::CuszCompressor::decompress(compressed.bytes);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs);
}

TEST(SimCheckWord, LosslessCodecsRoundTripClean) {
  // Compressible byte stream through both LZ77 entropy stages.
  std::vector<std::uint8_t> input(20000);
  std::mt19937 rng(5);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 7 == 0 ? 0 : rng() % 8);
  }
  chk::ScopedMode guard(chk::Mode::kWord);
  const auto lzh_bytes = lossless::lzh_compress(input);
  EXPECT_EQ(lossless::lzh_decompress(lzh_bytes), input);
  const auto lzr_bytes = lossless::lzr_compress(input);
  EXPECT_EQ(lossless::lzr_decompress(lzr_bytes), input);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();
}

TEST(SimCheckFuzz, CompressorArchivesAreScheduleInvariant) {
  const Extents ext = Extents::d2(64, 80);
  const auto data = smooth_field(ext, 31);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);

  chk::set_mode(chk::Mode::kOff);
  chk::set_fuzz_schedules(0);
  chk::reset();
  const auto canonical = Compressor(cfg).compress(data, ext);

  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  const auto fuzzed = Compressor(cfg).compress(data, ext);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_fuzzed, 0u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  // Every registered kernel replayed under 8 perturbed schedules without
  // diverging, and the final archive is bit-identical to the unfuzzed one.
  EXPECT_EQ(fuzzed.bytes, canonical.bytes);

  const auto restored = Compressor::decompress(fuzzed.bytes);
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, fuzzed.stats.eb_abs);
}

TEST(SimCheckWordCli, WordAndFuzzFlagsReportClean) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szp_sim_check_word_cli";
  fs::create_directories(dir);
  const Extents ext = Extents::d1(4096);
  const auto data = smooth_field(ext, 13);
  {
    std::ofstream f((dir / "in.f32").string(), std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  {
    std::ostringstream out, err;
    const int rc = szp::cli::run({"compress", "-i", (dir / "in.f32").string(), "-o",
                                  (dir / "out.szp").string(), "-d", "4096", "--eb", "1e-3",
                                  "--check=word"},
                                 out, err);
    EXPECT_EQ(rc, 0) << err.str() << out.str();
    EXPECT_NE(out.str().find("no violations detected"), std::string::npos) << out.str();
  }
  {
    std::ostringstream out, err;
    const int rc = szp::cli::run({"compress", "-i", (dir / "in.f32").string(), "-o",
                                  (dir / "out.szp").string(), "-d", "4096", "--eb", "1e-3",
                                  "--fuzz-schedule=2"},
                                 out, err);
    EXPECT_EQ(rc, 0) << err.str() << out.str();
    EXPECT_NE(out.str().find("schedule-fuzzed"), std::string::npos) << out.str();
  }
  fs::remove_all(dir);
}

}  // namespace
