// Tier-2 checking (word-granular shadow memory + lane model) and schedule
// fuzzing: seeded intra-block hazards that interval mode cannot see must be
// flagged in word mode, benign striding and barrier-ordered reuse must not
// be, seeded order-dependent kernels must be caught by the schedule fuzzer,
// and full pipelines must run clean (zero false positives) under both.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <vector>

#include "baseline/cusz_ref.hh"
#include "core/compressor.hh"
#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/metrics.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/check.hh"
#include "tools/cli.hh"
#include "zfp/zfp.hh"

namespace {

using namespace szp;
namespace chk = sim::checked;

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc + 0.001f * dist(rng);
  }
  return v;
}

/// Two lanes of one block write the same word in the same barrier epoch —
/// the canonical intra-block hazard (e.g. a mis-assigned warp-shuffle slot).
template <typename View>
void seeded_intra_block_ww(std::size_t, const View& v) {
  chk::this_thread(0);
  v[5] = 1;
  chk::this_thread(1);
  v[5] = 2;  // lane 1 collides with lane 0's write, no barrier between
}

TEST(SimCheckWord, IntervalModeMissesIntraBlockHazard) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  // One block: interval footprints cannot conflict with themselves.
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
  EXPECT_EQ(chk::current_report().launches_checked, 1u);
}

TEST(SimCheckWord, WordModeCatchesIntraBlockHazard) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  const auto& h = report.hazards.front();
  EXPECT_EQ(h.kernel, "seeded_intra_ww");
  EXPECT_EQ(h.buffer, "buf");
  EXPECT_EQ(h.block, 0u);
  EXPECT_EQ(h.word, 5u);
  EXPECT_EQ(std::min(h.lane_a, h.lane_b), 0u);
  EXPECT_EQ(std::max(h.lane_a, h.lane_b), 1u);
  EXPECT_TRUE(h.write_write);
  EXPECT_TRUE(report.races.empty()) << chk::report_text();
}

TEST(SimCheckWord, PerLaunchWordOptInUpgradesIntervalMode) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_ww_optin", 1, chk::Granularity::kWord,
              chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  EXPECT_FALSE(chk::current_report().hazards.empty()) << chk::report_text();
}

TEST(SimCheckWord, ReadWriteHazardAcrossLanes) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("seeded_intra_rw", 1, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    chk::this_thread(0);
    v[3] = 7;
    chk::this_thread(1);
    [[maybe_unused]] const int x = v[3];  // lane 1 reads lane 0's word, same epoch
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  EXPECT_FALSE(report.hazards.front().write_write);
}

TEST(SimCheckWord, BenignStridingIsNotFlagged) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Classic strided access: lane l owns every 4th word — disjoint footprints
  // inside one epoch.  Racecheck would not flag this; neither must we.
  std::vector<int> buf(64, 0);
  chk::launch("benign_stride", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    for (std::uint32_t lane = 0; lane < 4; ++lane) {
      chk::this_thread(lane);
      for (std::size_t i = lane; i < 64; i += 4) v[i] = static_cast<int>(lane);
    }
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, BarrierOrdersAccessesAcrossEpochs) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Lane 0 writes, __syncthreads(), lane 1 reads the same word: ordered, not
  // a hazard — the pattern every staged shared-memory kernel relies on.
  std::vector<int> buf(16, 0);
  chk::launch("barrier_ordered", 1, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    chk::this_thread(0);
    v[5] = 42;
    chk::barrier();
    chk::this_thread(1);
    v[6] = v[5] + 1;
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, AtomicUpdatesFromDifferentLanesAreExempt) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Shared-memory histogram privatization: many lanes atomicAdd one bin.
  std::vector<std::uint32_t> bins(8, 0);
  chk::launch("atomic_bins", 1, chk::bufs(chk::inout(std::span<std::uint32_t>(bins), "bins")),
              [](std::size_t, const auto& v) {
    for (std::uint32_t lane = 0; lane < 8; ++lane) {
      chk::this_thread(lane);
      v.atomic_add(3, 1);
    }
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
  EXPECT_EQ(bins[3], 8u);
}

TEST(SimCheckWord, WordModeStillFlagsCrossBlockRaces) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(64, 0);
  chk::launch("cross_block_ww", 2, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { v[9] = static_cast<int>(b); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.races.empty()) << chk::report_text();
  EXPECT_TRUE(report.hazards.empty());
  EXPECT_EQ(report.races.front().byte_lo, 9 * sizeof(int));
}

TEST(SimCheckWord, HazardReportNamesLaneBufferAndWord) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<int> buf(16, 0);
  chk::launch("named_hazard", 1, chk::bufs(chk::out(std::span<int>(buf), "cells")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  const std::string text = chk::report_text();
  EXPECT_NE(text.find("named_hazard"), std::string::npos) << text;
  EXPECT_NE(text.find("cells"), std::string::npos) << text;
  EXPECT_NE(text.find("intra-block hazard"), std::string::npos) << text;
  EXPECT_NE(text.find("lanes 0 and 1"), std::string::npos) << text;
  EXPECT_NE(text.find("word 5"), std::string::npos) << text;
}

// --------------------------------------------------------------------------
// Seeded hazards in the newly lane-annotated kernel shapes: the Huffman
// emit-chunk loop (gap-stride sub-block lanes sharing a chunk) and the ZFP
// block transform (row/column lift passes).  Each is the bug class the
// production annotations in huffman_encode / zfp.cc exist to catch; interval
// mode cannot see either (one block conflicts only with other blocks).
// --------------------------------------------------------------------------

/// Huffman emit with a seeded off-by-one in the gap-slot index: two
/// sub-block lanes of one chunk record their bit offset into the same gap
/// entry, no barrier between — cuSZ's coarse-chunk encoding bug class.
template <typename View>
void seeded_huffman_gap_clobber(const View& vgaps) {
  chk::this_thread(0);
  vgaps[2] = 10;  // sub-block 0 records its start bit...
  chk::this_thread(1);
  vgaps[2] = 20;  // ...and sub-block 1 lands on the same slot, same epoch
}

TEST(SimCheckWord, IntervalModeMissesHuffmanEmitChunkHazard) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<std::uint32_t> gaps(8, 0);
  chk::launch("seeded_huffman_gap", 1,
              chk::bufs(chk::out(std::span<std::uint32_t>(gaps), "gaps")),
              [](std::size_t, const auto& v) { seeded_huffman_gap_clobber(v); });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, WordModeCatchesHuffmanEmitChunkHazard) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<std::uint32_t> gaps(8, 0);
  chk::launch("seeded_huffman_gap", 1,
              chk::bufs(chk::out(std::span<std::uint32_t>(gaps), "gaps")),
              [](std::size_t, const auto& v) { seeded_huffman_gap_clobber(v); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  const auto& h = report.hazards.front();
  EXPECT_EQ(h.buffer, "gaps");
  EXPECT_EQ(h.word, 2u);
  EXPECT_TRUE(h.write_write);
}

/// ZFP block transform with the inter-pass barrier missing: the row pass
/// writes one lane per row, then the column pass reads every row's words in
/// the SAME epoch — exactly what zfp.cc's transform annotations order with
/// chk::barrier().
template <typename View>
void seeded_zfp_plane_hazard(const View& v) {
  for (std::uint32_t y = 0; y < 4; ++y) {
    chk::this_thread(y);
    for (std::size_t x = 0; x < 4; ++x) v[y * 4 + x] = static_cast<std::int32_t>(y + x);
  }
  // Missing chk::barrier() here.
  for (std::uint32_t x = 0; x < 4; ++x) {
    chk::this_thread(x);
    std::int32_t acc = 0;
    for (std::size_t y = 0; y < 4; ++y) acc += v[y * 4 + x];  // reads other lanes' rows
    v[x] = acc;
  }
}

TEST(SimCheckWord, IntervalModeMissesZfpBlockPlaneHazard) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<std::int32_t> block(16, 0);
  chk::launch("seeded_zfp_plane", 1,
              chk::bufs(chk::inout(std::span<std::int32_t>(block), "block")),
              [](std::size_t, const auto& v) { seeded_zfp_plane_hazard(v); });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

TEST(SimCheckWord, WordModeCatchesZfpBlockPlaneHazard) {
  chk::ScopedMode guard(chk::Mode::kWord);
  std::vector<std::int32_t> block(16, 0);
  chk::launch("seeded_zfp_plane", 1,
              chk::bufs(chk::inout(std::span<std::int32_t>(block), "block")),
              [](std::size_t, const auto& v) { seeded_zfp_plane_hazard(v); });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.hazards.empty()) << chk::report_text();
  EXPECT_EQ(report.hazards.front().buffer, "block");
}

TEST(SimCheckWord, HuffmanGapEncodeDecodeIsClean) {
  // The production encoder under word mode, gap arrays on: the sub-block
  // lane annotations must hold (lanes own disjoint symbols and gap slots,
  // the merge is barrier-ordered), so the launch reports nothing.
  std::vector<quant_t> syms(20000);
  for (std::size_t i = 0; i < syms.size(); ++i) {
    syms[i] = static_cast<quant_t>((i * 31 + i / 7) % 64);
  }
  std::vector<std::uint64_t> freq(64, 0);
  for (const auto s : syms) ++freq[s];
  const auto book = HuffmanCodebook::build(freq);

  chk::ScopedMode guard(chk::Mode::kWord);
  const auto enc = huffman_encode(syms, book, 1024, HuffmanEncVariant::kOptimized, 256);
  const auto dec = huffman_decode(enc, book);
  EXPECT_EQ(dec.symbols, syms);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();
}

TEST(SimCheckWord, ZfpRoundTripIsClean) {
  // Rank 2 and rank 3 cover partial edge blocks (extents not multiples of
  // 4): the per-row gather lanes share clamped edge words read-only, which
  // must stay exempt.
  for (const Extents& ext : {Extents::d2(37, 22), Extents::d3(9, 10, 11)}) {
    const auto data = smooth_field(ext, 71);
    chk::ScopedMode guard(chk::Mode::kWord);
    const auto compressed = zfp::zfp_compress(data, ext, {});
    const auto restored = zfp::zfp_decompress(compressed.bytes);
    EXPECT_EQ(restored.data.size(), data.size());
    const auto& report = chk::current_report();
    EXPECT_GT(report.launches_checked, 0u);
    EXPECT_TRUE(report.clean()) << chk::report_text();
  }
}

// --------------------------------------------------------------------------
// Paged shadow memory.
// --------------------------------------------------------------------------

TEST(SimCheckWord, HazardsStraddlingAPageBoundaryAreCaught) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // Words kShadowPageWords-1 and kShadowPageWords sit on opposite sides of
  // the first page boundary; both carry a seeded two-lane collision.
  const auto last = chk::kShadowPageWords - 1;
  std::vector<int> buf(3 * chk::kShadowPageWords, 0);
  chk::launch("page_straddle", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [last](std::size_t, const auto& v) {
    chk::this_thread(0);
    v[last] = 1;
    v[last + 1] = 1;
    chk::this_thread(1);
    v[last] = 2;
    v[last + 1] = 2;
  });
  const auto& report = chk::current_report();
  ASSERT_EQ(report.hazards.size(), 2u) << chk::report_text();
  EXPECT_EQ(report.hazards[0].word, last);
  EXPECT_EQ(report.hazards[1].word, last + 1);
  // Only the two pages around the boundary were touched; the third backing
  // page of the buffer was never allocated.
  EXPECT_EQ(report.shadow_pages, 2u);
}

TEST(SimCheckWord, SparseAccessAllocatesFewPages) {
  chk::ScopedMode guard(chk::Mode::kWord);
  // 64 pages worth of buffer, three words touched: the paged shadow must
  // allocate only the three pages hit, not one slot per word.
  std::vector<int> buf(64 * chk::kShadowPageWords, 0);
  chk::launch("sparse_touch", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    v[0] = 1;
    v[30 * chk::kShadowPageWords + 5] = 2;
    v[63 * chk::kShadowPageWords + 9] = 3;
  });
  const auto& report = chk::current_report();
  EXPECT_TRUE(report.clean()) << chk::report_text();
  EXPECT_EQ(report.shadow_words, 3u);
  EXPECT_EQ(report.shadow_pages, 3u);
  EXPECT_LT(report.shadow_pages * chk::kShadowPageWords, buf.size());
}

TEST(SimCheckWord, SamplingStillCatchesADenseRace) {
  chk::ScopedMode guard(chk::Mode::kWord);
  chk::ScopedWordSample sample(8);
  // Two lanes collide on 64 consecutive words: any conflict spanning >= N
  // consecutive words hits a tracked one under 1-in-N sampling.
  std::vector<int> buf(256, 0);
  chk::launch("dense_sampled", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t, const auto& v) {
    chk::this_thread(0);
    for (std::size_t i = 0; i < 64; ++i) v[i] = 1;
    chk::this_thread(1);
    for (std::size_t i = 0; i < 64; ++i) v[i] = 2;
  });
  const auto& report = chk::current_report();
  EXPECT_FALSE(report.hazards.empty()) << chk::report_text();
  // 2 lanes x 64 words at 1-in-8 sampling: only 16 accesses recorded.
  EXPECT_EQ(report.shadow_words, 16u);
}

TEST(SimCheckWord, SamplingTradesAwayIsolatedHazards) {
  chk::ScopedMode guard(chk::Mode::kWord);
  chk::ScopedWordSample sample(8);
  // The documented trade-off: a collision on a single untracked word (5 is
  // not a multiple of 8) is invisible at sample 8.  Run full-rate to catch
  // isolated single-word hazards.
  std::vector<int> buf(16, 0);
  chk::launch("isolated_sampled", 1, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { seeded_intra_block_ww(b, v); });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

// --------------------------------------------------------------------------
// Schedule fuzzing.
// --------------------------------------------------------------------------

TEST(SimCheckFuzz, CatchesOrderDependentKernel) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  // Last-writer-wins: every block stores its own index into word 0, so the
  // final value is whichever block the schedule ran last — order-dependent
  // output that no footprint analysis can prove wrong.
  std::vector<int> buf(64, -1);
  chk::launch("seeded_order_dep", 64, chk::bufs(chk::inout(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) {
    v[b] = static_cast<int>(b);  // benign per-block cell
    v[0] = static_cast<int>(b);  // all blocks collide here
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  EXPECT_FALSE(report.schedule_diffs.empty()) << chk::report_text();
  EXPECT_EQ(report.schedule_diffs.front().kernel, "seeded_order_dep");
  EXPECT_EQ(report.schedule_diffs.front().buffer, "buf");
}

TEST(SimCheckFuzz, OrderInvariantKernelIsClean) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  std::vector<int> in(256, 3);
  std::vector<int> out(8, 0);
  chk::launch("order_invariant", 8,
              chk::bufs(chk::in(std::span<const int>(in), "in"),
                        chk::out(std::span<int>(out), "out")),
              [](std::size_t b, const auto& vin, const auto& vout) {
    int acc = 0;
    for (std::size_t i = 0; i < 32; ++i) acc += vin[b * 32 + i];
    vout[b] = acc;
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  for (int v : out) EXPECT_EQ(v, 96);
}

TEST(SimCheckFuzz, CatchesAxisOrderDependentKernel3d) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(1);  // 3-D grids auto-expand to the full 8-schedule repertoire
  // Horner accumulation with an injective per-block coefficient: the result
  // depends on the exact traversal sequence (non-commutative), so every
  // serial axis order yields a distinct value.  The grid corners are fixed
  // points of all six permutations — a last-writer scheme would miss most
  // of them; this does not.
  std::vector<std::uint64_t> acc(4, 0);
  chk::launch_3d("seeded_axis_dep", sim::Dim3{4, 3, 2},
                 chk::bufs(chk::inout(std::span<std::uint64_t>(acc), "acc")),
                 [](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& v) {
    const std::uint64_t c = bx + 4ull * by + 16ull * bz;
    v[0] = v[0] * 3 + c;
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  ASSERT_FALSE(report.schedule_diffs.empty()) << chk::report_text();
  // The six serial axis traversals produce six distinct checksums; the
  // canonical run can match at most one of them, so at least five axis
  // orders must be reported — proof that all six were exercised.
  std::set<std::string> axis_orders;
  for (const auto& d : report.schedule_diffs) {
    EXPECT_EQ(d.kernel, "seeded_axis_dep");
    if (d.schedule.rfind("axis-order:", 0) == 0) axis_orders.insert(d.schedule);
  }
  EXPECT_GE(axis_orders.size(), 5u) << chk::report_text();
}

TEST(SimCheckFuzz, AxisOrderInvariant3dKernelIsClean) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(2);
  // Each block owns its own cell: all six axis orders (plus reversed,
  // serial) must reproduce the canonical bytes exactly.
  std::vector<std::uint64_t> out(24, 0);
  chk::launch_3d("axis_invariant", sim::Dim3{4, 3, 2},
                 chk::bufs(chk::out(std::span<std::uint64_t>(out), "out")),
                 [](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& v) {
    const std::size_t b = (bz * 3ull + by) * 4 + bx;
    v[b] = 100 + b;
  });
  const auto& report = chk::current_report();
  EXPECT_EQ(report.launches_fuzzed, 1u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  for (std::size_t b = 0; b < out.size(); ++b) EXPECT_EQ(out[b], 100 + b);
}

TEST(SimCheckFuzz, Lorenzo3dArchiveIsAxisOrderInvariant) {
  // The 3-D Lorenzo construct/reconstruct pipeline replayed under the full
  // 3-D repertoire: the archive must stay bit-identical, and decompression
  // must keep the error bound.
  const Extents ext = Extents::d3(18, 15, 13);
  const auto data = smooth_field(ext, 47);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);

  chk::set_mode(chk::Mode::kOff);
  chk::set_fuzz_schedules(0);
  chk::reset();
  const auto canonical = Compressor(cfg).compress(data, ext);

  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  const auto fuzzed = Compressor(cfg).compress(data, ext);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_fuzzed, 0u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  EXPECT_EQ(fuzzed.bytes, canonical.bytes);

  const auto restored = Compressor::decompress(fuzzed.bytes);
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, fuzzed.stats.eb_abs);
}

TEST(SimCheckFuzz, RestoresCanonicalResultAfterReplays) {
  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(4);
  std::vector<int> out(16, 0);
  chk::launch("restore_post", 4, chk::bufs(chk::out(std::span<int>(out), "out")),
              [](std::size_t b, const auto& v) {
    for (std::size_t i = 0; i < 4; ++i) v[b * 4 + i] = static_cast<int>(b + 1);
  });
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], static_cast<int>(i / 4 + 1));
}

// --------------------------------------------------------------------------
// Zero false positives and bit-stability: full pipelines.
// --------------------------------------------------------------------------

class SimCheckWordRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SimCheckWordRoundTrip, CompressDecompressHasNoFindings) {
  const int rank = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(5000)
                      : rank == 2 ? Extents::d2(60, 70)
                                  : Extents::d3(17, 18, 19);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank));

  chk::ScopedMode guard(chk::Mode::kWord);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const auto compressed = Compressor(cfg).compress(data, ext);
  const auto restored = Compressor::decompress(compressed.bytes);

  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();

  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SimCheckWordRoundTrip, ::testing::Values(1, 2, 3));

TEST(SimCheckWord, BaselineCompressorRoundTripClean) {
  const Extents ext = Extents::d2(48, 52);
  const auto data = smooth_field(ext, 21);
  chk::ScopedMode guard(chk::Mode::kWord);
  baseline::CuszConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const baseline::CuszCompressor comp(cfg);
  const auto compressed = comp.compress(data, ext);
  const auto restored = baseline::CuszCompressor::decompress(compressed.bytes);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs);
}

TEST(SimCheckWord, LosslessCodecsRoundTripClean) {
  // Compressible byte stream through both LZ77 entropy stages.
  std::vector<std::uint8_t> input(20000);
  std::mt19937 rng(5);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 64) % 7 == 0 ? 0 : rng() % 8);
  }
  chk::ScopedMode guard(chk::Mode::kWord);
  const auto lzh_bytes = lossless::lzh_compress(input);
  EXPECT_EQ(lossless::lzh_decompress(lzh_bytes), input);
  const auto lzr_bytes = lossless::lzr_compress(input);
  EXPECT_EQ(lossless::lzr_decompress(lzr_bytes), input);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();
}

TEST(SimCheckFuzz, CompressorArchivesAreScheduleInvariant) {
  const Extents ext = Extents::d2(64, 80);
  const auto data = smooth_field(ext, 31);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);

  chk::set_mode(chk::Mode::kOff);
  chk::set_fuzz_schedules(0);
  chk::reset();
  const auto canonical = Compressor(cfg).compress(data, ext);

  chk::ScopedMode guard(chk::Mode::kOff);
  chk::ScopedFuzz fuzz(8);
  const auto fuzzed = Compressor(cfg).compress(data, ext);
  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_fuzzed, 0u);
  EXPECT_TRUE(report.schedule_diffs.empty()) << chk::report_text();
  // Every registered kernel replayed under 8 perturbed schedules without
  // diverging, and the final archive is bit-identical to the unfuzzed one.
  EXPECT_EQ(fuzzed.bytes, canonical.bytes);

  const auto restored = Compressor::decompress(fuzzed.bytes);
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, fuzzed.stats.eb_abs);
}

TEST(SimCheckWordCli, WordAndFuzzFlagsReportClean) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szp_sim_check_word_cli";
  fs::create_directories(dir);
  const Extents ext = Extents::d1(4096);
  const auto data = smooth_field(ext, 13);
  {
    std::ofstream f((dir / "in.f32").string(), std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  {
    std::ostringstream out, err;
    const int rc = szp::cli::run({"compress", "-i", (dir / "in.f32").string(), "-o",
                                  (dir / "out.szp").string(), "-d", "4096", "--eb", "1e-3",
                                  "--check=word"},
                                 out, err);
    EXPECT_EQ(rc, 0) << err.str() << out.str();
    EXPECT_NE(out.str().find("no violations detected"), std::string::npos) << out.str();
  }
  {
    std::ostringstream out, err;
    const int rc = szp::cli::run({"compress", "-i", (dir / "in.f32").string(), "-o",
                                  (dir / "out.szp").string(), "-d", "4096", "--eb", "1e-3",
                                  "--fuzz-schedule=2"},
                                 out, err);
    EXPECT_EQ(rc, 0) << err.str() << out.str();
    EXPECT_NE(out.str().find("schedule-fuzzed"), std::string::npos) << out.str();
  }
  fs::remove_all(dir);
}

}  // namespace
