// Checked-launch mode: seeded cross-block races and out-of-bounds accesses
// must be flagged; a clean full compress->decompress round-trip must not be.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "sim/check.hh"
#include "tools/cli.hh"

namespace {

using namespace szp;
namespace chk = sim::checked;

TEST(SimCheck, DisabledRecordsNothing) {
  chk::set_enabled(false);
  chk::reset();
  std::vector<int> buf(64, 0);
  chk::launch("disabled_kernel", 4, chk::bufs(chk::out(std::span<int>(buf), "buf")),
              [](std::size_t b, const auto& v) { v[0] = static_cast<int>(b); });
  EXPECT_EQ(chk::current_report().launches_checked, 0u);
  EXPECT_TRUE(chk::current_report().clean());
}

TEST(SimCheck, FlagsCrossBlockWriteWriteOverlap) {
  chk::ScopedEnable guard;
  // Two blocks both write quant cell 7 — the canonical block-independence
  // violation a fused kernel refactor could introduce.
  std::vector<std::uint16_t> quant(256, 0);
  chk::launch("seeded_ww_race", 2,
              chk::bufs(chk::out(std::span<std::uint16_t>(quant), "quant")),
              [](std::size_t b, const auto& vquant) {
    const std::size_t base = b * 128;
    for (std::size_t i = 0; i < 128; ++i) vquant[base + i] = static_cast<std::uint16_t>(b);
    vquant[7] = static_cast<std::uint16_t>(b);  // both blocks collide here
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.races.empty());
  const auto& race = report.races.front();
  EXPECT_TRUE(race.write_write);
  EXPECT_EQ(race.kernel, "seeded_ww_race");
  EXPECT_EQ(race.buffer, "quant");
  EXPECT_NE(race.block_a, race.block_b);
  // The collision window must cover element 7.
  EXPECT_LE(race.byte_lo, 7 * sizeof(std::uint16_t));
  EXPECT_GT(race.byte_hi, 7 * sizeof(std::uint16_t));
  EXPECT_TRUE(report.oob.empty());
}

TEST(SimCheck, FlagsCrossBlockReadWriteOverlap) {
  chk::ScopedEnable guard;
  // Block 0 writes [0, 64); block 1 reads [60, 124): a read/write hazard
  // even though OpenMP's static schedule may serialize the two blocks.
  std::vector<float> halo(128, 0.0f);
  std::vector<float> out(2, 0.0f);
  chk::launch("seeded_rw_race", 2,
              chk::bufs(chk::inout(std::span<float>(halo), "halo"),
                        chk::out(std::span<float>(out), "out")),
              [](std::size_t b, const auto& vhalo, const auto& vout) {
    if (b == 0) {
      for (std::size_t i = 0; i < 64; ++i) vhalo[i] = 1.0f;
    } else {
      float acc = 0.0f;
      vhalo.note_read(60, 64);
      for (std::size_t i = 60; i < 124; ++i) acc += vhalo.data()[i];
      vout[b] = acc;
    }
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.races.empty());
  bool found_rw = false;
  for (const auto& race : report.races) {
    if (race.buffer == "halo" && !race.write_write) found_rw = true;
  }
  EXPECT_TRUE(found_rw) << chk::report_text();
}

TEST(SimCheck, FlagsOobReadInStridedScan) {
  chk::ScopedEnable guard;
  // Off-by-one strided scan: 8 tiles of 16 over a 127-element buffer; the
  // last tile's final read lands at element 127, one past the extent.
  std::vector<std::int32_t> data(127, 1);
  std::vector<std::int32_t> sums(8, 0);
  chk::launch("seeded_oob_scan", 8,
              chk::bufs(chk::in(std::span<const std::int32_t>(data), "data"),
                        chk::out(std::span<std::int32_t>(sums), "sums")),
              [](std::size_t b, const auto& vdata, const auto& vsums) {
    std::int32_t acc = 0;
    for (std::size_t i = 0; i < 16; ++i) acc += vdata[b * 16 + i];  // block 7 runs past
    vsums[b] = acc;
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.oob.empty());
  const auto& oob = report.oob.front();
  EXPECT_EQ(oob.kernel, "seeded_oob_scan");
  EXPECT_EQ(oob.buffer, "data");
  EXPECT_EQ(oob.block, 7u);
  EXPECT_EQ(oob.element_index, 127u);
  EXPECT_EQ(oob.element_count, 127u);
  EXPECT_FALSE(oob.is_write);
  EXPECT_TRUE(report.races.empty()) << chk::report_text();
}

TEST(SimCheck, FlagsOobWrite) {
  chk::ScopedEnable guard;
  std::vector<double> buf(10, 0.0);
  chk::launch("seeded_oob_write", 1,
              chk::bufs(chk::out(std::span<double>(buf), "buf")),
              [](std::size_t, const auto& v) {
    for (std::size_t i = 0; i <= 10; ++i) v[i] = 1.0;  // one past the end
  });
  const auto& report = chk::current_report();
  ASSERT_EQ(report.oob.size(), 1u);
  EXPECT_TRUE(report.oob.front().is_write);
  EXPECT_EQ(report.oob.front().element_index, 10u);
  // The OOB write was redirected to a sink, not memory past the buffer.
  for (double v : buf) EXPECT_EQ(v, 1.0);
}

TEST(SimCheck, ReportTextNamesKernelBlockAndOffsets) {
  chk::ScopedEnable guard;
  std::vector<int> cell(4, 0);
  chk::launch("named_kernel", 2, chk::bufs(chk::out(std::span<int>(cell), "cell")),
              [](std::size_t b, const auto& v) { v[1] = static_cast<int>(b); });
  const std::string text = chk::report_text();
  EXPECT_NE(text.find("named_kernel"), std::string::npos) << text;
  EXPECT_NE(text.find("cell"), std::string::npos) << text;
  EXPECT_NE(text.find("WRITE/WRITE"), std::string::npos) << text;
}

// --------------------------------------------------------------------------
// Zero false positives: full pipelines under the checker.
// --------------------------------------------------------------------------

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc + 0.001f * dist(rng);
  }
  return v;
}

class SimCheckRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SimCheckRoundTrip, CompressDecompressHasNoFindings) {
  const int rank = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(5000)
                      : rank == 2 ? Extents::d2(60, 70)
                                  : Extents::d3(17, 18, 19);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank));

  chk::ScopedEnable guard;
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const auto compressed = Compressor(cfg).compress(data, ext);
  const auto restored = Compressor::decompress(compressed.bytes);

  const auto& report = chk::current_report();
  EXPECT_GT(report.launches_checked, 0u);
  EXPECT_TRUE(report.clean()) << chk::report_text();

  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SimCheckRoundTrip, ::testing::Values(1, 2, 3));

TEST(SimCheck, AllWorkflowsRoundTripClean) {
  const Extents ext = Extents::d2(48, 52);
  const auto data = smooth_field(ext, 99);
  for (const Workflow wf : {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle}) {
    chk::ScopedEnable guard;
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-3);
    cfg.workflow = wf;
    const auto compressed = Compressor(cfg).compress(data, ext);
    (void)Compressor::decompress(compressed.bytes);
    EXPECT_TRUE(chk::current_report().clean())
        << "workflow " << static_cast<int>(wf) << ":\n" << chk::report_text();
  }
}

TEST(SimCheck, CliCheckFlagReportsClean) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szp_sim_check_cli";
  fs::create_directories(dir);
  const Extents ext = Extents::d1(4096);
  const auto data = smooth_field(ext, 7);
  {
    std::ofstream f((dir / "in.f32").string(), std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  std::ostringstream out, err;
  const int rc = szp::cli::run({"compress", "-i", (dir / "in.f32").string(), "-o",
                                (dir / "out.szp").string(), "-d", "4096", "--eb", "1e-3",
                                "--check"},
                               out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("sim-check"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("no violations detected"), std::string::npos) << out.str();
  fs::remove_all(dir);
}

}  // namespace
