// Multi-field bundle tests: name index, per-field extraction, integrity.
#include <gtest/gtest.h>

#include <random>

#include "core/bundle.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"

namespace {

using namespace szp;

std::vector<float> field(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.03f * dist(rng);
    x = acc;
  }
  return v;
}

TEST(Bundle, PackAndExtractMultipleFields) {
  Bundle bundle;
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const Compressor comp(cfg);

  std::vector<std::vector<float>> originals;
  for (int i = 0; i < 5; ++i) {
    originals.push_back(field(4000 + static_cast<std::size_t>(i) * 100,
                              static_cast<std::uint32_t>(i)));
    auto c = comp.compress(originals.back(), Extents::d1(originals.back().size()));
    bundle.add("var" + std::to_string(i), std::move(c.bytes));
  }
  EXPECT_EQ(bundle.size(), 5u);

  const auto blob = bundle.serialize();
  const auto restored = Bundle::deserialize(blob);
  ASSERT_EQ(restored.size(), 5u);

  for (int i = 0; i < 5; ++i) {
    const auto name = "var" + std::to_string(i);
    ASSERT_TRUE(restored.contains(name));
    const auto d = Compressor::decompress(restored.archive(name));
    ASSERT_EQ(d.data.size(), originals[static_cast<std::size_t>(i)].size());
    EXPECT_LT(compare_fields(originals[static_cast<std::size_t>(i)], d.data).max_abs_error,
              1e-2);
  }
}

TEST(Bundle, EntriesReportSizes) {
  Bundle b;
  b.add("a", std::vector<std::uint8_t>(100, 1));
  b.add("b", std::vector<std::uint8_t>(250, 2));
  const auto entries = b.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].compressed_bytes, 100u);
  EXPECT_EQ(entries[1].compressed_bytes, 250u);
}

TEST(Bundle, DuplicateAndMissingNames) {
  Bundle b;
  b.add("x", {1, 2, 3});
  EXPECT_THROW(b.add("x", {4}), std::invalid_argument);
  EXPECT_THROW(b.add("", {4}), std::invalid_argument);
  EXPECT_THROW((void)b.archive("y"), std::out_of_range);
  EXPECT_FALSE(b.contains("y"));
}

TEST(Bundle, EmptyBundleRoundTrips) {
  Bundle b;
  const auto blob = b.serialize();
  EXPECT_EQ(Bundle::deserialize(blob).size(), 0u);
}

TEST(Bundle, CorruptionIsDetected) {
  Bundle b;
  b.add("field", std::vector<std::uint8_t>(500, 7));
  auto blob = b.serialize();
  blob[blob.size() / 2] ^= 0x20;
  EXPECT_THROW((void)Bundle::deserialize(blob), std::runtime_error);

  std::vector<std::uint8_t> tiny{1, 2};
  EXPECT_THROW((void)Bundle::deserialize(tiny), std::runtime_error);
}

TEST(Bundle, BinaryNamesAndPayloadsSurvive) {
  Bundle b;
  const std::string odd_name("with\0null", 9);
  std::vector<std::uint8_t> payload{0, 255, 128, 0, 0, 7};
  b.add(odd_name, payload);
  const auto restored = Bundle::deserialize(b.serialize());
  EXPECT_EQ(restored.archive(odd_name), payload);
}

}  // namespace
