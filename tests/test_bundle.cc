// Multi-field bundle tests: name index, per-field extraction, integrity.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <random>
#include <span>

#include "core/bundle.hh"
#include "core/checksum.hh"
#include "core/compressor.hh"
#include "core/error.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"

namespace {

using namespace szp;

std::vector<float> field(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.99f * acc + 0.03f * dist(rng);
    x = acc;
  }
  return v;
}

TEST(Bundle, PackAndExtractMultipleFields) {
  Bundle bundle;
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const Compressor comp(cfg);

  std::vector<std::vector<float>> originals;
  for (int i = 0; i < 5; ++i) {
    originals.push_back(field(4000 + static_cast<std::size_t>(i) * 100,
                              static_cast<std::uint32_t>(i)));
    auto c = comp.compress(originals.back(), Extents::d1(originals.back().size()));
    bundle.add("var" + std::to_string(i), std::move(c.bytes));
  }
  EXPECT_EQ(bundle.size(), 5u);

  const auto blob = bundle.serialize();
  const auto restored = Bundle::deserialize(blob);
  ASSERT_EQ(restored.size(), 5u);

  for (int i = 0; i < 5; ++i) {
    const auto name = "var" + std::to_string(i);
    ASSERT_TRUE(restored.contains(name));
    const auto d = Compressor::decompress(restored.archive(name));
    ASSERT_EQ(d.data.size(), originals[static_cast<std::size_t>(i)].size());
    EXPECT_LT(compare_fields(originals[static_cast<std::size_t>(i)], d.data).max_abs_error,
              1e-2);
  }
}

TEST(Bundle, EntriesReportSizes) {
  Bundle b;
  b.add("a", std::vector<std::uint8_t>(100, 1));
  b.add("b", std::vector<std::uint8_t>(250, 2));
  const auto entries = b.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].compressed_bytes, 100u);
  EXPECT_EQ(entries[1].compressed_bytes, 250u);
}

TEST(Bundle, DuplicateAndMissingNames) {
  Bundle b;
  b.add("x", {1, 2, 3});
  EXPECT_THROW(b.add("x", {4}), std::invalid_argument);
  EXPECT_THROW(b.add("", {4}), std::invalid_argument);
  EXPECT_THROW((void)b.archive("y"), std::out_of_range);
  EXPECT_FALSE(b.contains("y"));
}

TEST(Bundle, EmptyBundleRoundTrips) {
  Bundle b;
  const auto blob = b.serialize();
  EXPECT_EQ(Bundle::deserialize(blob).size(), 0u);
}

TEST(Bundle, CorruptionIsDetected) {
  Bundle b;
  b.add("field", std::vector<std::uint8_t>(500, 7));
  auto blob = b.serialize();
  blob[blob.size() / 2] ^= 0x20;
  EXPECT_THROW((void)Bundle::deserialize(blob), std::runtime_error);

  std::vector<std::uint8_t> tiny{1, 2};
  EXPECT_THROW((void)Bundle::deserialize(tiny), std::runtime_error);
}

TEST(Bundle, PerEntryCrcLocalizesDamage) {
  Bundle b;
  b.add("alpha", std::vector<std::uint8_t>(64, 0xaa));
  b.add("beta", std::vector<std::uint8_t>(64, 0xbb));
  b.add("gamma", std::vector<std::uint8_t>(64, 0xcc));
  auto blob = b.serialize();

  // Flip one byte inside beta's distinctive payload, then re-stamp the
  // trailing whole-blob CRC so only the per-entry evidence can convict.
  const std::array<std::uint8_t, 8> needle{0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb};
  const auto it = std::search(blob.begin(), blob.end(), needle.begin(), needle.end());
  ASSERT_NE(it, blob.end());
  *it ^= 0x01;
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(blob.data(), blob.size() - 4));
  std::memcpy(blob.data() + blob.size() - 4, &crc, 4);

  // Strict mode refuses the whole bundle, naming the entry payload.
  try {
    (void)Bundle::deserialize(blob);
    FAIL() << "strict deserialize accepted a damaged entry";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeErrorKind::kChecksumMismatch) << e.what();
    EXPECT_EQ(e.segment(), "entry payload") << e.what();
  }

  // Tolerant mode salvages the intact entries and lists the corrupt one.
  const auto salvage = Bundle::deserialize_tolerant(blob);
  EXPECT_TRUE(salvage.container_crc_ok);
  EXPECT_EQ(salvage.bundle.size(), 2u);
  EXPECT_TRUE(salvage.bundle.contains("alpha"));
  EXPECT_TRUE(salvage.bundle.contains("gamma"));
  ASSERT_EQ(salvage.corrupt.size(), 1u);
  EXPECT_EQ(salvage.corrupt[0], "beta");
}

TEST(Bundle, TolerantSalvagesAllEntriesWhenOnlyTheContainerCrcIsBroken) {
  Bundle b;
  b.add("a", std::vector<std::uint8_t>(32, 1));
  b.add("b", std::vector<std::uint8_t>(32, 2));
  auto blob = b.serialize();
  blob.back() ^= 0xff;  // damage the trailing whole-blob CRC only

  EXPECT_THROW((void)Bundle::deserialize(blob), DecodeError);
  const auto salvage = Bundle::deserialize_tolerant(blob);
  EXPECT_FALSE(salvage.container_crc_ok);
  EXPECT_EQ(salvage.bundle.size(), 2u);  // v2 entry CRCs vouch for each entry
  EXPECT_TRUE(salvage.corrupt.empty());
}

/// Hand-rolled v1 blob: no per-entry CRCs, only the whole-blob trailer.
std::vector<std::uint8_t> v1_blob(const std::string& name,
                                  const std::vector<std::uint8_t>& archive) {
  ByteWriter w;
  w.put<std::uint32_t>(0x424E5A53);  // "SZNB"
  w.put<std::uint16_t>(1);
  w.put<std::uint64_t>(1);
  w.put_span(std::span<const char>(name.data(), name.size()));
  w.put_vector(archive);
  auto bytes = w.take();
  const std::uint32_t crc = crc32(bytes);
  bytes.resize(bytes.size() + 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  return bytes;
}

TEST(Bundle, VersionOneBlobsStillRead) {
  const std::vector<std::uint8_t> payload(48, 9);
  auto blob = v1_blob("legacy", payload);

  const auto strict = Bundle::deserialize(blob);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict.archive("legacy"), payload);

  const auto salvage = Bundle::deserialize_tolerant(blob);
  EXPECT_TRUE(salvage.container_crc_ok);
  EXPECT_EQ(salvage.bundle.size(), 1u);

  // With the container CRC broken, a v1 entry has no per-entry evidence, so
  // tolerant mode must not vouch for it.
  blob.back() ^= 0xff;
  const auto unvouched = Bundle::deserialize_tolerant(blob);
  EXPECT_FALSE(unvouched.container_crc_ok);
  EXPECT_EQ(unvouched.bundle.size(), 0u);
  ASSERT_EQ(unvouched.corrupt.size(), 1u);
  EXPECT_EQ(unvouched.corrupt[0], "legacy");
}

TEST(Bundle, BinaryNamesAndPayloadsSurvive) {
  Bundle b;
  const std::string odd_name("with\0null", 9);
  std::vector<std::uint8_t> payload{0, 255, 128, 0, 0, 7};
  b.add(odd_name, payload);
  const auto restored = Bundle::deserialize(b.serialize());
  EXPECT_EQ(restored.archive(odd_name), payload);
}

}  // namespace
