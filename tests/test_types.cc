// Foundational type tests: extents indexing, chunk shapes, quantizer
// validation, launch-geometry helpers.
#include <gtest/gtest.h>

#include "core/types.hh"
#include "sim/launch.hh"

namespace {

using namespace szp;

TEST(Extents, FactoriesSetRankAndDims) {
  const auto e1 = Extents::d1(100);
  EXPECT_EQ(e1.rank, 1);
  EXPECT_EQ(e1.count(), 100u);

  const auto e2 = Extents::d2(10, 20);  // ny, nx
  EXPECT_EQ(e2.rank, 2);
  EXPECT_EQ(e2.ny, 10u);
  EXPECT_EQ(e2.nx, 20u);
  EXPECT_EQ(e2.count(), 200u);

  const auto e3 = Extents::d3(3, 4, 5);  // nz, ny, nx
  EXPECT_EQ(e3.rank, 3);
  EXPECT_EQ(e3.nz, 3u);
  EXPECT_EQ(e3.count(), 60u);
}

TEST(Extents, RowMajorIndexing) {
  const auto e = Extents::d3(3, 4, 5);
  EXPECT_EQ(e.index(0, 0, 0), 0u);
  EXPECT_EQ(e.index(0, 0, 1), 1u);   // x fastest
  EXPECT_EQ(e.index(0, 1, 0), 5u);   // then y
  EXPECT_EQ(e.index(1, 0, 0), 20u);  // then z
  EXPECT_EQ(e.index(2, 3, 4), 59u);  // last element
}

TEST(Extents, IndexIsBijectiveOverTheGrid) {
  const auto e = Extents::d3(4, 5, 6);
  std::vector<bool> seen(e.count(), false);
  for (std::size_t z = 0; z < e.nz; ++z)
    for (std::size_t y = 0; y < e.ny; ++y)
      for (std::size_t x = 0; x < e.nx; ++x) {
        const auto i = e.index(z, y, x);
        ASSERT_LT(i, e.count());
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
      }
}

TEST(ChunkShapeT, PaperShapesPerRank) {
  EXPECT_EQ(ChunkShape::for_rank(1).count(), 256u);
  const auto c2 = ChunkShape::for_rank(2);
  EXPECT_EQ(c2.cx, 16u);
  EXPECT_EQ(c2.cy, 16u);
  const auto c3 = ChunkShape::for_rank(3);
  EXPECT_EQ(c3.cx, 8u);
  EXPECT_EQ(c3.count(), 512u);
  EXPECT_THROW((void)ChunkShape::for_rank(4), std::invalid_argument);
  EXPECT_THROW((void)ChunkShape::for_rank(0), std::invalid_argument);
}

TEST(QuantConfigT, RadiusAndValidation) {
  QuantConfig q;
  EXPECT_EQ(q.radius(), 512);
  EXPECT_NO_THROW(q.validate());

  for (const std::uint32_t bad : {0u, 2u, 7u, 65538u}) {
    QuantConfig b{bad};
    EXPECT_THROW(b.validate(), std::invalid_argument) << bad;
  }
  QuantConfig max{65536};
  EXPECT_NO_THROW(max.validate());
  EXPECT_EQ(max.radius(), 32768);
}

TEST(Launch, DivCeil) {
  EXPECT_EQ(szp::sim::div_ceil(0, 4), 0u);
  EXPECT_EQ(szp::sim::div_ceil(1, 4), 1u);
  EXPECT_EQ(szp::sim::div_ceil(4, 4), 1u);
  EXPECT_EQ(szp::sim::div_ceil(5, 4), 2u);
}

TEST(Launch, BlocksCoverTheGridExactlyOnce) {
  std::vector<int> hits(100, 0);
  szp::sim::launch_blocks(100, [&](std::size_t b) { ++hits[b]; });
  for (const int h : hits) EXPECT_EQ(h, 1);

  std::vector<int> hits3(3 * 4 * 5, 0);
  szp::sim::launch_blocks_3d({3, 4, 5}, [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    ++hits3[(z * 4 + y) * 3 + x];
  });
  for (const int h : hits3) EXPECT_EQ(h, 1);
}

TEST(Dim3T, Count) {
  EXPECT_EQ((szp::sim::Dim3{2, 3, 4}.count()), 24u);
  EXPECT_EQ((szp::sim::Dim3{}.count()), 1u);
}

}  // namespace
