// Synthetic data substrate tests: determinism, knob behavior, catalog
// integrity, raw I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include "core/analysis/madogram.hh"
#include "data/catalog.hh"
#include "data/io.hh"
#include "data/synthetic.hh"

namespace {

using namespace szp;
using namespace szp::data;

FieldSpec small_spec(double step = 1e-3, double impulses = 0.02, double plateau = 0.0) {
  FieldSpec s;
  s.dataset = "test";
  s.name = "field";
  s.extents = Extents::d2(64, 96);
  s.step_rel = step;
  s.impulse_density = impulses;
  s.plateau_fraction = plateau;
  return s;
}

TEST(Synthetic, DeterministicForSameSpec) {
  const auto a = generate_field(small_spec());
  const auto b = generate_field(small_spec());
  EXPECT_EQ(a, b);
}

TEST(Synthetic, DifferentNamesGiveDifferentFields) {
  auto s1 = small_spec();
  auto s2 = small_spec();
  s2.name = "other";
  EXPECT_NE(generate_field(s1), generate_field(s2));
}

TEST(Synthetic, SeedOverrideWins) {
  auto s1 = small_spec();
  s1.seed = 123;
  auto s2 = s1;
  s2.name = "different-name-same-seed";
  EXPECT_EQ(generate_field(s1), generate_field(s2));
}

TEST(Synthetic, AllValuesFinite) {
  const auto v = generate_field(small_spec(1e-2, 0.2, 0.3));
  for (const auto x : v) EXPECT_TRUE(std::isfinite(x));
}

TEST(Synthetic, StepRelControlsGradient) {
  auto smooth_spec = small_spec(1e-4, 0.0);
  auto rough_spec = small_spec(1e-2, 0.0);
  smooth_spec.extents = rough_spec.extents = Extents::d1(20000);
  const auto smooth = generate_field(smooth_spec);
  const auto rough = generate_field(rough_spec);
  const auto mean_step = [](const std::vector<float>& v) {
    double s = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i) s += std::abs(v[i] - v[i - 1]);
    return s / static_cast<double>(v.size() - 1);
  };
  EXPECT_GT(mean_step(rough), 10.0 * mean_step(smooth));
}

TEST(Synthetic, PlateauCreatesExactlyConstantRegion) {
  const auto v = generate_field(small_spec(1e-3, 0.0, 0.4));
  // A plateau means the minimum value occurs many times, exactly.
  const float lo = *std::min_element(v.begin(), v.end());
  const auto at_min = static_cast<double>(std::count(v.begin(), v.end(), lo));
  EXPECT_GT(at_min / static_cast<double>(v.size()), 0.05);
}

TEST(Synthetic, ImpulseDensityControlsRoughness) {
  auto quiet = small_spec(1e-4, 0.005);
  auto busy = small_spec(1e-4, 0.15);
  quiet.extents = busy.extents = Extents::d1(50000);
  const auto count_jumps = [](const std::vector<float>& v) {
    std::size_t c = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (std::abs(v[i] - v[i - 1]) > 0.02f) ++c;
    }
    return c;
  };
  EXPECT_GT(count_jumps(generate_field(busy)), 5 * count_jumps(generate_field(quiet)));
}

TEST(Synthetic, ValueScaleAndOffsetApply)  {
  auto s = small_spec();
  s.value_offset = 100.0;
  s.value_scale = 0.5;
  const auto v = generate_field(s);
  for (const auto x : v) {
    EXPECT_GT(x, 95.0f);
    EXPECT_LT(x, 105.0f);
  }
}

// ---- Catalog ----------------------------------------------------------------

TEST(Catalog, AllSevenDatasetsBuild) {
  ASSERT_EQ(dataset_names().size(), 7u);
  for (const auto& name : dataset_names()) {
    const auto ds = make_dataset(name, 0.05);
    EXPECT_FALSE(ds.fields.empty()) << name;
    for (const auto& f : ds.fields) {
      EXPECT_EQ(f.spec.dataset, ds.name);
      EXPECT_GE(f.spec.extents.rank, 1);
      EXPECT_GT(f.spec.extents.count(), 0u);
    }
  }
}

TEST(Catalog, Cesm35FieldsMatchTableIV) {
  const auto ds = make_dataset("CESM-ATM", 0.05);
  EXPECT_EQ(ds.fields.size(), 35u);
  const auto& fsdsc = find_field(ds, "FSDSC");
  EXPECT_NEAR(fsdsc.paper_rle_cr, 26.10, 1e-9);
  EXPECT_NEAR(fsdsc.paper_vle_cr, 23.88, 1e-9);
  // The derived impulse density follows the run-budget calibration: 30%
  // of the 1/CR run budget via ~7.6 run-breaks per 2-D impulse.
  EXPECT_NEAR(fsdsc.spec.impulse_density, 0.3 / 26.10 / 7.6, 1e-9);
}

TEST(Catalog, ScalingShrinksEveryAxis) {
  const auto full = make_dataset("Nyx", 1.0);
  const auto half = make_dataset("Nyx", 0.5);
  EXPECT_EQ(full.fields[0].spec.extents.nx, 512u);
  EXPECT_EQ(half.fields[0].spec.extents.nx, 256u);
  EXPECT_EQ(half.fields[0].spec.extents.nz, 256u);
}

TEST(Catalog, UnknownNamesThrow) {
  EXPECT_THROW((void)make_dataset("NOPE", 1.0), std::invalid_argument);
  const auto ds = make_dataset("HACC", 0.01);
  EXPECT_THROW((void)find_field(ds, "missing"), std::out_of_range);
  EXPECT_THROW((void)make_dataset("HACC", 0.0), std::invalid_argument);
  EXPECT_THROW((void)make_dataset("HACC", 2.0), std::invalid_argument);
}

TEST(Catalog, SmoothFieldsAreSmootherThanRoughOnes) {
  // FSDT0A (RLE CR 43.65) must quantize smoother than PS (RLE CR 7.45).
  const auto ds = make_dataset("CESM-ATM", 0.08);
  const auto smooth = generate_field(find_field(ds, "FSDTOA").spec);
  const auto rough = generate_field(find_field(ds, "PS").spec);
  const auto m_smooth = madogram(std::span<const float>(smooth));
  const auto m_rough = madogram(std::span<const float>(rough));
  EXPECT_LT(m_smooth.abs_difference[0], m_rough.abs_difference[0] * 1.5);
}

// ---- Raw I/O ------------------------------------------------------------------

TEST(Io, F32RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "szp_io_test.f32";
  const std::vector<float> data{1.0f, -2.5f, 3.25f, 0.0f};
  write_f32(path, data);
  EXPECT_EQ(read_f32(path), data);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)read_f32("/nonexistent/definitely/missing.f32"), std::runtime_error);
}

TEST(Io, NonWholeFloatCountThrows) {
  const auto path = std::filesystem::temp_directory_path() / "szp_io_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("abcde", f);  // 5 bytes
    std::fclose(f);
  }
  EXPECT_THROW((void)read_f32(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
