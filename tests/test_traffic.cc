// Static traffic & roofline analyzer (sim/traffic.hh): exact volume and
// segment math per clause kind, pinned per-kernel byte-volume/coalescing
// tables for the real kernels, the observed-vs-predicted TrafficFinding
// path, and roofline classification against a DeviceSpec.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/predictor/lorenzo.hh"
#include "core/predictor/regression.hh"
#include "core/types.hh"
#include "sim/check.hh"
#include "sim/traffic.hh"
#include "zfp/zfp.hh"

namespace {

using namespace szp;
namespace chk = sim::checked;
namespace ctr = sim::contract;
namespace trf = sim::traffic;

using ctr::Geom;

// ---------------------------------------------------------------------------
// analyze(): volume and segment math per clause kind.
// ---------------------------------------------------------------------------

TEST(TrafficAnalyze, TiledWindowExactVolumeAndSegments) {
  // 4 blocks × 16 uint32 elements: 256 useful bytes, but each 64-byte tile
  // store drags a whole 128-byte segment — write coalescing 0.5.
  const std::vector<trf::BufShape> shapes = {{"out", 64, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::writes("out", ctr::b() * 16, 16)),
                              Geom{4, 4, 1, 1}, shapes);
  ASSERT_EQ(t.buffers.size(), 1u);
  EXPECT_EQ(t.bytes_written(), 256u);
  EXPECT_EQ(t.bytes_read(), 0u);
  EXPECT_EQ(t.buffers[0].seg_bytes_written, 512u);
  EXPECT_NEAR(t.buffers[0].coalescing_write(), 0.5, 1e-12);
  EXPECT_FALSE(t.dynamic());
}

TEST(TrafficAnalyze, StridedNarrowFamilyScoresLow) {
  // Each block gathers 3 single 8-byte elements, 286 elements apart: every
  // access drags a full segment, so coalescing is 8/128.
  const std::vector<trf::BufShape> shapes = {{"priv", 858, 8}};
  const auto t = trf::analyze(
      ctr::contract(ctr::reads("priv", ctr::b(), 1).strided(3, 286).clamp()),
      Geom{2, 2, 1, 1}, shapes);
  EXPECT_EQ(t.bytes_read(), 48u);                      // 2 blocks × 3 × 8 B
  EXPECT_EQ(t.buffers[0].seg_bytes_read, 768u);        // 6 accesses × 128 B
  EXPECT_NEAR(t.buffers[0].coalescing_read(), 8.0 / 128.0, 1e-12);
}

TEST(TrafficAnalyze, ClampedTailShortensLastBlock) {
  // 3 tiles of 16 over a 40-element buffer: the last tile clamps to 8.
  const std::vector<trf::BufShape> shapes = {{"out", 40, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::writes("out", ctr::b() * 16, 16).clamp()),
                              Geom{3, 3, 1, 1}, shapes);
  EXPECT_EQ(t.bytes_written(), 160u);  // 16 + 16 + 8 elements × 4 B
  EXPECT_EQ(t.buffers[0].seg_bytes_written, 384u);
}

TEST(TrafficAnalyze, BoxTileVolumeOver2D) {
  // 2×2 grid of 4×4 boxes over an 8×8 float field: 16-byte rows each drag a
  // 128-byte segment — the Lorenzo/ZFP tiled-kernel signature.
  const std::vector<trf::BufShape> shapes = {{"field", 64, 4}};
  const auto t = trf::analyze(
      ctr::contract(ctr::writes_box("field", ctr::bx() * 4, 4, ctr::by() * 4, 4,
                                    ctr::lit(0), 1, 8, 8, 1)),
      Geom{4, 2, 2, 1}, shapes);
  EXPECT_EQ(t.bytes_written(), 256u);                   // whole field once
  EXPECT_EQ(t.buffers[0].seg_bytes_written, 2048u);     // 16 rows × 128 B
  EXPECT_NEAR(t.buffers[0].coalescing_write(), 0.125, 1e-12);
}

TEST(TrafficAnalyze, BroadcastReadCountsEveryBlock) {
  // kAll is a broadcast: every block pulls the whole 128-byte buffer.
  const std::vector<trf::BufShape> shapes = {{"book", 32, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::reads_all("book")), Geom{3, 3, 1, 1}, shapes);
  EXPECT_EQ(t.bytes_read(), 384u);
  EXPECT_EQ(t.buffers[0].seg_bytes_read, 384u);
  EXPECT_NEAR(t.buffers[0].coalescing_read(), 1.0, 1e-12);
}

TEST(TrafficAnalyze, BoundedDynamicUsesDeclaredCeiling) {
  const std::vector<trf::BufShape> shapes = {{"out", 100, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::writes_dyn("out", 10)), Geom{4, 4, 1, 1},
                              shapes);
  EXPECT_EQ(t.bytes_written(), 40u);  // 10 elements once per launch, not per block
  EXPECT_TRUE(t.dynamic());
  EXPECT_FALSE(t.buffers[0].unbounded_write);
}

TEST(TrafficAnalyze, UnboundedDynamicFallsBackToWholeBuffer) {
  const std::vector<trf::BufShape> shapes = {{"out", 100, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::writes_dyn("out")), Geom{4, 4, 1, 1}, shapes);
  EXPECT_EQ(t.bytes_written(), 400u);
  EXPECT_TRUE(t.dynamic());
  EXPECT_TRUE(t.buffers[0].unbounded_write);
}

TEST(TrafficAnalyze, HostSinkAppendsDeclaredStoreRow) {
  // host_sink declares the store side of a kernel whose output is
  // host-owned heap state; the row rides after the registered buffers.
  const std::vector<trf::BufShape> shapes = {{"in", 32, 4}};
  const auto t = trf::analyze(
      ctr::contract(ctr::reads_all("in"), ctr::host_sink("sink", 999)), Geom{1, 1, 1, 1},
      shapes);
  ASSERT_EQ(t.buffers.size(), 2u);
  const auto* sink = t.find("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(sink->host_sink);
  EXPECT_TRUE(sink->dynamic);
  EXPECT_EQ(sink->bytes_written, 999u);
  EXPECT_EQ(t.bytes_written(), 999u);
  EXPECT_EQ(t.bytes_read(), 128u);
}

// ---------------------------------------------------------------------------
// Pinned per-kernel volumes: the real kernels' registered traffic.  These
// numbers are regression pins — they change only when a contract (or grid
// constant) changes, which is exactly what they are here to surface.
// ---------------------------------------------------------------------------

/// Run `fn` under a fresh registry + Scope, return the single kernel row.
template <typename Fn>
trf::KernelTraffic kernel_row(const std::string& kernel, Fn&& fn) {
  trf::reset_registry();
  {
    trf::Scope scope;
    fn();
  }
  for (const auto& row : trf::registry_snapshot()) {
    if (row.kernel == kernel) return row;
  }
  ADD_FAILURE() << "kernel '" << kernel << "' not recorded";
  return {};
}

std::vector<float> ramp(std::size_t n) {
  std::vector<float> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<float>(i) * 0.5f;
  return d;
}

TEST(TrafficKernels, Lorenzo1D) {
  const auto data = ramp(64);
  const auto row = kernel_row("lorenzo_construct", [&] {
    const auto res = lorenzo_construct<float>(data, Extents::d1(64), 0.01, QuantConfig{});
    (void)res;
  });
  EXPECT_EQ(row.bytes_read, 256u);
  EXPECT_EQ(row.bytes_written, 384u);
  EXPECT_NEAR(row.coalescing(), 1.0, 0.01);
}

TEST(TrafficKernels, Lorenzo2D) {
  const auto data = ramp(256);
  const auto row = kernel_row("lorenzo_construct", [&] {
    const auto res = lorenzo_construct<float>(data, Extents::d2(16, 16), 0.01, QuantConfig{});
    (void)res;
  });
  EXPECT_EQ(row.bytes_read, 1024u);
  EXPECT_EQ(row.bytes_written, 1536u);
  // 2-D tiles write 16-element row stripes: every stripe drags whole
  // segments, so the score drops well below the 1-D streaming case.
  EXPECT_NEAR(row.coalescing(), 0.4167, 0.001);
}

TEST(TrafficKernels, Lorenzo3D) {
  const auto data = ramp(512);
  const auto row = kernel_row("lorenzo_construct", [&] {
    const auto res = lorenzo_construct<float>(data, Extents::d3(8, 8, 8), 0.01, QuantConfig{});
    (void)res;
  });
  EXPECT_EQ(row.bytes_read, 2048u);
  EXPECT_EQ(row.bytes_written, 3072u);
  // 3-D tiles touch 8-element pencils — the narrowest stripes, worst score.
  EXPECT_NEAR(row.coalescing(), 0.2083, 0.001);
}

TEST(TrafficKernels, RegressionConstruct) {
  const auto data = ramp(256);
  RegressionResult res;
  const auto row = kernel_row("regression_construct", [&] {
    regression_construct_into<float>(data, Extents::d2(16, 16), 0.01, QuantConfig{}, res);
  });
  EXPECT_EQ(row.bytes_read, 1040u);   // data + per-chunk coefficient loads
  EXPECT_EQ(row.bytes_written, 1552u);
  EXPECT_NEAR(row.coalescing(), 0.405, 0.001);
}

TEST(TrafficKernels, HuffmanEncode) {
  std::vector<quant_t> symbols(1000);
  std::vector<std::uint64_t> freq(64, 0);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i] = static_cast<quant_t>(i % 16);
    ++freq[symbols[i]];
  }
  const auto book = HuffmanCodebook::build(freq);
  const auto row = kernel_row("huffman_encode/deflate", [&] {
    const auto enc = huffman_encode(symbols, book, 256);
    (void)enc;
  });
  EXPECT_EQ(row.bytes_read, 2064u);  // codes + per-chunk bit offsets
  EXPECT_EQ(row.bytes_written, 500u);
  EXPECT_TRUE(row.dynamic);  // payload volume is the scan total, a dyn bound
}

TEST(TrafficKernels, ZfpCompress) {
  const auto data = ramp(256);
  const auto row = kernel_row("zfp_compress", [&] {
    const auto c = zfp::zfp_compress(data, Extents::d2(16, 16));
    (void)c;
  });
  EXPECT_EQ(row.bytes_read, 1024u);
  EXPECT_EQ(row.bytes_written, 256u);  // 8 bits/value at the default rate
  EXPECT_NEAR(row.coalescing(), 0.12, 0.02);
}

// ---------------------------------------------------------------------------
// Dynamic cross-validation: observed traffic beyond the declared volume is
// a TrafficFinding through the ordinary checked report.
// ---------------------------------------------------------------------------

TEST(TrafficValidate, ObservedBeyondDeclaredBoundRaisesFinding) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  // The contract declares a 4-element dynamic write ceiling; the kernel
  // writes 16.  Containment stays quiet (kDynamic declares the whole
  // buffer), so only the traffic cross-validation can object.
  std::vector<std::uint32_t> out(64, 0);
  chk::launch("seeded_traffic_excess", 1,
              chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
              ctr::contract(ctr::writes_dyn("out", 4)),
              [](std::size_t, const auto& v) {
    for (std::size_t i = 0; i < 16; ++i) v[i] = 1u;
  });
  const auto& report = chk::current_report();
  ASSERT_FALSE(report.traffic_mismatches.empty()) << chk::report_text();
  const auto& f = report.traffic_mismatches.front();
  EXPECT_EQ(f.kernel, "seeded_traffic_excess");
  EXPECT_EQ(f.buffer, "out");
  EXPECT_TRUE(f.is_write);
  EXPECT_EQ(f.predicted_bytes, 16u);  // 4 elements × 4 B declared
  EXPECT_EQ(f.observed_bytes, 64u);   // 16 elements × 4 B observed
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.contract_mismatches.empty()) << chk::report_text();
}

TEST(TrafficValidate, DeclaredBoundHonoredStaysClean) {
  chk::ScopedMode guard(chk::Mode::kInterval);
  std::vector<std::uint32_t> out(64, 0);
  chk::launch("seeded_traffic_ok", 1,
              chk::bufs(chk::out(std::span<std::uint32_t>(out), "out")),
              ctr::contract(ctr::writes_dyn("out", 16)),
              [](std::size_t, const auto& v) {
    for (std::size_t i = 0; i < 16; ++i) v[i] = 1u;
  });
  EXPECT_TRUE(chk::current_report().clean()) << chk::report_text();
}

// ---------------------------------------------------------------------------
// Roofline classification.
// ---------------------------------------------------------------------------

trf::KernelTraffic fully_coalesced(const std::string& kernel) {
  trf::KernelTraffic t;
  t.kernel = kernel;
  t.launches = 1;
  t.bytes_read = t.seg_bytes_read = 1024;
  t.bytes_written = t.seg_bytes_written = 1024;
  return t;
}

TEST(TrafficRoofline, StreamingKernelIsBandwidthBoundOnV100) {
  const auto row = trf::classify(sim::v100(), fully_coalesced("lorenzo_construct"));
  EXPECT_FALSE(row.compute_bound);
  EXPECT_GT(row.ridge, row.intensity);
}

TEST(TrafficRoofline, ClassificationFlipsWhenBandwidthScales) {
  // zfp sits at 4.0 flop/B, just left of the V100 ridge (~5.5 at full
  // coalescing).  Doubling the memory bandwidth halves the ridge and the
  // same kernel crosses to compute-bound — the roofline's defining move.
  const auto t = fully_coalesced("zfp_compress");
  EXPECT_FALSE(trf::classify(sim::v100(), t).compute_bound);
  sim::DeviceSpec fat = sim::v100();
  fat.mem_bw_gbps *= 2.0;
  EXPECT_TRUE(trf::classify(fat, t).compute_bound);
}

TEST(TrafficRoofline, PoorCoalescingRaisesTheRidge) {
  // Same kernel, quarter coalescing: effective bandwidth drops 4×, the
  // ridge rises 4×, and the classification is further from compute-bound.
  auto t = fully_coalesced("zfp_compress");
  const double full_ridge = trf::classify(sim::v100(), t).ridge;
  t.seg_bytes_read = t.bytes_read * 4;
  t.seg_bytes_written = t.bytes_written * 4;
  const double poor_ridge = trf::classify(sim::v100(), t).ridge;
  EXPECT_NEAR(poor_ridge, full_ridge * 4.0, full_ridge * 1e-9);
}

// ---------------------------------------------------------------------------
// Registry and table determinism.
// ---------------------------------------------------------------------------

TEST(TrafficRegistry, TablesAreDeterministicAndSorted) {
  trf::reset_registry();
  const std::vector<trf::BufShape> shapes = {{"out", 64, 4}};
  const auto t = trf::analyze(ctr::contract(ctr::writes("out", ctr::b() * 16, 16)),
                              Geom{4, 4, 1, 1}, shapes);
  trf::record("zz_kernel", t);
  trf::record("aa_kernel", t);
  trf::record("aa_kernel", t);

  const auto rows = trf::registry_snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].kernel, "aa_kernel");  // sorted by name
  EXPECT_EQ(rows[0].launches, 2u);
  EXPECT_EQ(rows[0].bytes_written, 512u);  // accumulated across launches
  EXPECT_EQ(rows[1].kernel, "zz_kernel");

  const std::string once = trf::traffic_table_text();
  EXPECT_EQ(once, trf::traffic_table_text());
  EXPECT_NE(once.find("aa_kernel"), std::string::npos);
  const std::string roofline = trf::roofline_table_text(sim::v100());
  EXPECT_EQ(roofline, trf::roofline_table_text(sim::v100()));
  EXPECT_LT(once.find("aa_kernel"), once.find("zz_kernel"));
  trf::reset_registry();
  EXPECT_TRUE(trf::registry_snapshot().empty());
}

}  // namespace
