// Cross-module integration tests: the full cuSZ+ pipeline over catalog
// fields, the paper's qualitative claims at small scale, and scheme
// orderings (qh vs qhg, RLE vs VLE).
#include <gtest/gtest.h>

#include <span>

#include "baseline/cusz_ref.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"
#include "data/catalog.hh"
#include "data/synthetic.hh"
#include "lossless/lzh.hh"
#include "sim/perf_model.hh"

namespace {

using namespace szp;
using namespace szp::data;

constexpr double kScale = 0.06;  // keep integration runs quick

TEST(Integration, EveryCatalogDatasetRoundTripsWithinBound) {
  for (const auto& name : dataset_names()) {
    const auto ds = make_dataset(name, kScale);
    const auto& f = ds.fields.front();
    const auto field = generate_field(f.spec);

    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    const auto c = Compressor(cfg).compress(field, f.spec.extents);
    const auto d = Compressor::decompress(c.bytes);
    const auto m = compare_fields(field, d.data);
    EXPECT_LT(m.max_abs_error, c.stats.eb_abs) << name;
    // Paper §V-C.2 reports >85 dB on real data.  The hard analytic floor at
    // rel-eb 1e-4 is 80 dB (every pointwise error at its ±eb extreme);
    // plateau-dominated synthetic fields can approach it because the
    // plateau's constant quantization error repeats across the region.
    EXPECT_GT(m.psnr_db, 80.0) << name;
    // CESM at this scale is only ~90 KB, where codebook/offset metadata
    // bites; everything else clears 2x comfortably.
    EXPECT_GT(c.stats.ratio, 1.5) << name;
  }
}

TEST(Integration, RleWorkflowWinsOnSmoothCesmFieldsAt1em2) {
  // Table IV's headline: on smooth fields (FSDSC-like) Workflow-RLE+VLE
  // beats Workflow-Huffman at rel-eb 1e-2; on rough fields (PS-like) it
  // does not.
  const auto ds = make_dataset("CESM-ATM", 0.12);
  const auto smooth = find_field(ds, "FSDTOA");
  const auto rough = find_field(ds, "PS");

  const auto ratio_with = [&](const FieldSpec& spec, Workflow wf) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-2);
    cfg.workflow = wf;
    return Compressor(cfg).compress(generate_field(spec), spec.extents).stats.ratio;
  };

  const double smooth_rle = ratio_with(smooth.spec, Workflow::kRleVle);
  const double smooth_vle = ratio_with(smooth.spec, Workflow::kHuffman);
  EXPECT_GT(smooth_rle, smooth_vle);
  EXPECT_GT(smooth_rle, 32.0);  // breaks the float VLE ceiling

  const double rough_rle = ratio_with(rough.spec, Workflow::kRle);
  const double rough_vle = ratio_with(rough.spec, Workflow::kHuffman);
  EXPECT_LT(rough_rle, rough_vle);
}

TEST(Integration, SelectorAgreesWithMeasuredOutcome) {
  // At rel-eb 1e-2 both CESM fields are sub-bit in quant space (ODV_dust4
  // p1 ≈ 0.985, PS p1 ≈ 0.946), so Huffman is pinned at its 1-bit floor and
  // the cost model routes to the fractional-bit rANS stage.  The routing
  // must agree with measurement: the auto pick beats the fixed Huffman
  // *and* fixed RLE+VLE ratios on both fields.  (The paper's binary
  // threshold kept Huffman on PS, forgoing its residual RLE+VLE gain —
  // Table IV's 1.06x — which the cost model now captures.)
  const auto ds = make_dataset("CESM-ATM", 0.12);

  const auto check = [&](const char* name) {
    const auto& entry = find_field(ds, name);
    const auto field = generate_field(entry.spec);
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-2);
    cfg.workflow = Workflow::kAuto;
    const auto auto_run = Compressor(cfg).compress(field, entry.spec.extents);
    EXPECT_EQ(auto_run.stats.workflow_used, Workflow::kRans) << name;
    cfg.workflow = Workflow::kHuffman;
    const auto huff = Compressor(cfg).compress(field, entry.spec.extents);
    cfg.workflow = Workflow::kRleVle;
    const auto rle_vle = Compressor(cfg).compress(field, entry.spec.extents);
    EXPECT_GT(auto_run.stats.ratio, huff.stats.ratio) << name;
    EXPECT_GT(auto_run.stats.ratio, rle_vle.stats.ratio) << name;
  };
  check("ODV_dust4");
  check("PS");
}

TEST(Integration, QhgReferenceBeatsQhOnSmoothData) {
  // Table I: appending gzip (qhg) to the Huffman output exploits repeated
  // patterns that VLE alone cannot, so qhg >= qh, with the gap widening at
  // loose bounds.
  const auto ds = make_dataset("CESM-ATM", 0.12);
  const auto& f = find_field(ds, "FSDTOA");
  const auto field = generate_field(f.spec);

  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-2);
  cfg.workflow = Workflow::kHuffman;
  const auto c = Compressor(cfg).compress(field, f.spec.extents);
  const double qh = c.stats.ratio;
  const auto gzipped = szp::lossless::lzh_compress(c.bytes);
  const double qhg = static_cast<double>(field.size() * 4) / static_cast<double>(gzipped.size());
  EXPECT_GT(qhg, qh * 1.2);
}

TEST(Integration, EbSweepTradesRatioForQuality) {
  const auto ds = make_dataset("Nyx", kScale);
  const auto& f = ds.fields.front();
  const auto field = generate_field(f.spec);

  double prev_ratio = 1e9;
  double first_err = 0.0, last_err = 0.0;
  for (const double eb : {1e-2, 1e-3, 1e-4}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(eb);
    const auto c = Compressor(cfg).compress(field, f.spec.extents);
    const auto d = Compressor::decompress(c.bytes);
    const auto m = compare_fields(field, d.data);
    EXPECT_LT(c.stats.ratio, prev_ratio * 1.01) << eb;  // tighter eb, lower CR
    EXPECT_LT(m.max_abs_error, c.stats.eb_abs) << eb;
    prev_ratio = c.stats.ratio;
    if (first_err == 0.0) first_err = m.max_abs_error;
    last_err = m.max_abs_error;
  }
  EXPECT_GT(first_err, last_err);  // looser bound, larger distortion
}

TEST(Integration, FineReconstructionModelsFasterThanCoarse) {
  // Table II's headline on the substitution model: the partial-sum kernel's
  // modeled V100 throughput beats the coarse kernel's by an order of
  // magnitude.
  const auto ds = make_dataset("Nyx", kScale);
  const auto& f = ds.fields.front();
  const auto field = generate_field(f.spec);

  CompressConfig pcfg;
  pcfg.eb = ErrorBound::relative(1e-4);
  const auto plus = Compressor(pcfg).compress(field, f.spec.extents);
  const auto plus_dec = Compressor::decompress(plus.bytes);

  baseline::CuszConfig bcfg;
  bcfg.eb = ErrorBound::relative(1e-4);
  const auto base = baseline::CuszCompressor(bcfg).compress(field, f.spec.extents);
  const auto base_dec = baseline::CuszCompressor::decompress(base.bytes);

  const auto* fine = plus_dec.pipeline.find("lorenzo_reconstruct");
  const auto* coarse = base_dec.pipeline.find("lorenzo_reconstruct");
  ASSERT_NE(fine, nullptr);
  ASSERT_NE(coarse, nullptr);
  const double fine_gbps =
      sim::modeled_throughput_gbps(sim::v100(), fine->cost, fine->payload_bytes);
  const double coarse_gbps =
      sim::modeled_throughput_gbps(sim::v100(), coarse->cost, coarse->payload_bytes);
  EXPECT_GT(fine_gbps, 4.0 * coarse_gbps);
}

TEST(Integration, A100ModelsFasterThanV100OnReconstruction) {
  // Needs a field large enough that bandwidth, not launch latency,
  // dominates the roofline (the paper's small-field caveat, §V-C.2).
  const auto ds = make_dataset("Miranda", 0.4);
  const auto& f = ds.fields.front();
  const auto field = generate_field(f.spec);
  const auto c = Compressor(CompressConfig{}).compress(field, f.spec.extents);
  const auto d = Compressor::decompress(c.bytes);
  const auto* recon = d.pipeline.find("lorenzo_reconstruct");
  ASSERT_NE(recon, nullptr);
  const double v = sim::modeled_throughput_gbps(sim::v100(), recon->cost, recon->payload_bytes);
  const double a = sim::modeled_throughput_gbps(sim::a100(), recon->cost, recon->payload_bytes);
  EXPECT_GT(a / v, 1.2);
  EXPECT_LT(a / v, 2.2);
}

TEST(Integration, ArchiveIsSelfDescribing) {
  // Decompression needs nothing but the bytes.
  const auto ds = make_dataset("Hurricane", kScale);
  const auto& f = ds.fields.front();
  const auto field = generate_field(f.spec);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.workflow = Workflow::kRleVle;
  const auto c = Compressor(cfg).compress(field, f.spec.extents);

  const auto d = Compressor::decompress(c.bytes);
  EXPECT_EQ(d.extents, f.spec.extents);
  EXPECT_EQ(d.data.size(), field.size());
}

}  // namespace
