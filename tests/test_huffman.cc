// Canonical Huffman codebook and chunked codec tests: optimality and
// prefix-freedom invariants, round trips, serialization, corruption.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "core/analysis/entropy.hh"
#include "core/huffman/bitio.hh"
#include "core/huffman/codebook.hh"
#include "core/compressor.hh"
#include "core/huffman/codec.hh"

namespace {

using namespace szp;

std::vector<std::uint64_t> histogram_of(std::span<const quant_t> syms, std::size_t cap) {
  std::vector<std::uint64_t> h(cap, 0);
  for (const auto s : syms) ++h[s];
  return h;
}

std::vector<quant_t> skewed_symbols(std::size_t n, double p_top, std::size_t cap,
                                    std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, cap - 1);
  std::vector<quant_t> v(n);
  for (auto& s : v) {
    s = u(rng) < p_top ? static_cast<quant_t>(cap / 2) : static_cast<quant_t>(pick(rng));
  }
  return v;
}

// ---- BitWriter / BitReader -----------------------------------------------

TEST(BitIo, RoundTripAssortedWidths) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xff, 8);
  w.put(0, 1);
  w.put(0x123456789abcull, 48);
  EXPECT_EQ(w.bit_count(), 60u);

  BitReader r(w.bytes());
  auto read = [&r](unsigned len) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < len; ++i) v = (v << 1) | r.get_bit();
    return v;
  };
  EXPECT_EQ(read(3), 0b101u);
  EXPECT_EQ(read(8), 0xffu);
  EXPECT_EQ(read(1), 0u);
  EXPECT_EQ(read(48), 0x123456789abcull);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.put(1, 1);
  BitReader r(w.bytes());
  for (int i = 0; i < 8; ++i) (void)r.get_bit();  // the padded byte
  EXPECT_THROW((void)r.get_bit(), std::runtime_error);
}

// ---- Codebook invariants ---------------------------------------------------

TEST(HuffmanCodebook, KraftEqualityHolds) {
  // A full (optimal) binary code satisfies sum 2^-len == 1.
  const auto syms = skewed_symbols(20000, 0.6, 1024, 1);
  const auto freq = histogram_of(syms, 1024);
  const auto book = HuffmanCodebook::build(freq);
  long double kraft = 0.0L;
  for (std::size_t s = 0; s < 1024; ++s) {
    if (book.length(s) > 0) kraft += std::pow(2.0L, -static_cast<int>(book.length(s)));
  }
  EXPECT_NEAR(static_cast<double>(kraft), 1.0, 1e-12);
}

TEST(HuffmanCodebook, PrefixFree) {
  const auto syms = skewed_symbols(5000, 0.3, 256, 2);
  const auto freq = histogram_of(syms, 256);
  const auto book = HuffmanCodebook::build(freq);
  // Compare every live pair: no code may prefix another.
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < 256; ++s) {
    if (book.length(s) > 0) live.push_back(s);
  }
  for (const auto a : live) {
    for (const auto b : live) {
      if (a == b) continue;
      const unsigned la = book.length(a), lb = book.length(b);
      if (la > lb) continue;
      EXPECT_NE(book.code(b) >> (lb - la), book.code(a))
          << "code " << a << " prefixes " << b;
    }
  }
}

TEST(HuffmanCodebook, AverageBitsWithinEntropyPlusOne) {
  for (const double p_top : {0.1, 0.5, 0.9, 0.99}) {
    const auto syms = skewed_symbols(50000, p_top, 1024, 3);
    const auto freq = histogram_of(syms, 1024);
    const auto book = HuffmanCodebook::build(freq);
    const auto stats = entropy_stats(freq);
    const double avg = book.average_bits(freq);
    EXPECT_GE(avg + 1e-9, std::max(1.0, stats.entropy_bits)) << "p_top=" << p_top;
    EXPECT_LE(avg, stats.entropy_bits + 1.0) << "p_top=" << p_top;
    // Gallager/Johnsen bounds bracket the true average.
    EXPECT_LE(avg, std::max(1.0, stats.avg_bits_upper()) + 1e-9);
    EXPECT_GE(avg + 1e-9, std::max(1.0, stats.avg_bits_lower()));
  }
}

TEST(HuffmanCodebook, CanonicalCodesAreSortedByLengthThenSymbol) {
  const auto syms = skewed_symbols(10000, 0.4, 64, 4);
  const auto freq = histogram_of(syms, 64);
  const auto book = HuffmanCodebook::build(freq);
  // Within a length class, codes increase with the symbol value.
  std::map<unsigned, std::pair<std::size_t, std::uint64_t>> last_by_len;
  for (std::size_t s = 0; s < 64; ++s) {
    const unsigned len = book.length(s);
    if (len == 0) continue;
    const auto it = last_by_len.find(len);
    if (it != last_by_len.end()) {
      EXPECT_GT(book.code(s), it->second.second);
    }
    last_by_len[len] = {s, book.code(s)};
  }
}

TEST(HuffmanCodebook, DegenerateAlphabets) {
  // Single live symbol still gets a decodable 1-bit code.
  std::vector<std::uint64_t> freq(16, 0);
  freq[5] = 1000;
  const auto book = HuffmanCodebook::build(freq);
  EXPECT_EQ(book.length(5), 1u);

  std::vector<quant_t> syms(100, 5);
  const auto enc = huffman_encode(syms, book);
  const auto dec = huffman_decode(enc, book);
  EXPECT_EQ(dec.symbols, syms);

  // Empty histogram builds an empty book.
  std::vector<std::uint64_t> none(16, 0);
  const auto empty = HuffmanCodebook::build(none);
  EXPECT_EQ(empty.max_length(), 0u);
}

TEST(HuffmanCodebook, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint64_t> freq{10, 0, 0, 90};
  const auto book = HuffmanCodebook::build(freq);
  EXPECT_EQ(book.length(0), 1u);
  EXPECT_EQ(book.length(3), 1u);
  EXPECT_NE(book.code(0), book.code(3));
}

TEST(HuffmanCodebook, SerializationRoundTrip) {
  const auto syms = skewed_symbols(30000, 0.7, 1024, 5);
  const auto freq = histogram_of(syms, 1024);
  const auto book = HuffmanCodebook::build(freq);

  ByteWriter w;
  book.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto restored = HuffmanCodebook::deserialize(r);

  ASSERT_EQ(restored.alphabet_size(), book.alphabet_size());
  for (std::size_t s = 0; s < 1024; ++s) {
    EXPECT_EQ(restored.length(s), book.length(s));
    EXPECT_EQ(restored.code(s), book.code(s));
  }
}

TEST(HuffmanCodebook, RejectsBadAlphabetSizes) {
  EXPECT_THROW((void)HuffmanCodebook::build({}), std::invalid_argument);
  std::vector<std::uint64_t> huge(65537, 1);
  EXPECT_THROW((void)HuffmanCodebook::build(huge), std::invalid_argument);
}

// ---- Chunked codec ---------------------------------------------------------

class HuffmanCodecParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::uint32_t>> {};

TEST_P(HuffmanCodecParam, RoundTrip) {
  const auto [n, p_top, chunk] = GetParam();
  const auto syms = skewed_symbols(n, p_top, 1024, static_cast<std::uint32_t>(n));
  const auto freq = histogram_of(syms, 1024);
  const auto book = HuffmanCodebook::build(freq);

  const auto enc = huffman_encode(syms, book, chunk);
  EXPECT_EQ(enc.num_symbols, n);
  // Offsets are monotone and the last equals the payload size.
  for (std::size_t c = 1; c < enc.chunk_offsets.size(); ++c) {
    EXPECT_LE(enc.chunk_offsets[c - 1], enc.chunk_offsets[c]);
  }
  EXPECT_EQ(enc.chunk_offsets.back(), enc.payload.size());

  const auto dec = huffman_decode(enc, book);
  EXPECT_EQ(dec.symbols, syms);
}

INSTANTIATE_TEST_SUITE_P(
    SizesSkewsChunks, HuffmanCodecParam,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{100}, std::size_t{4096},
                                         std::size_t{10000}, std::size_t{100001}),
                       ::testing::Values(0.2, 0.9),
                       ::testing::Values(std::uint32_t{64}, std::uint32_t{4096})));

// ---- Gap-array fine-grained decoding (paper reference [15]) ---------------

class HuffmanGapParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HuffmanGapParam, GapDecodingMatchesChunkDecoding) {
  const std::uint32_t gap = GetParam();
  const auto syms = skewed_symbols(50000, 0.8, 1024, 77);
  const auto freq = histogram_of(syms, 1024);
  const auto book = HuffmanCodebook::build(freq);

  const auto plain = huffman_encode(syms, book, 4096);
  const auto gapped = huffman_encode(syms, book, 4096, HuffmanEncVariant::kOptimized, gap);
  // Same payload bits; only metadata differs.
  EXPECT_EQ(gapped.payload, plain.payload);
  EXPECT_EQ(gapped.gaps.size(), (syms.size() + 4095) / 4096 * (4096 / gap));
  // First sub-block of every chunk starts at bit 0.
  for (std::size_t c = 0; c < gapped.chunk_offsets.size() - 1; ++c) {
    EXPECT_EQ(gapped.gaps[c * (4096 / gap)], 0u);
  }

  const auto dec = huffman_decode(gapped, book);
  EXPECT_EQ(dec.symbols, syms);
  // The gap decoder models at least as fast as the chunk-serial one (ref
  // [15]); strictly faster when the stride is shorter than the chunk.
  const auto plain_dec = huffman_decode(plain, book);
  if (gap < 4096) {
    EXPECT_LT(dec.cost.flops, plain_dec.cost.flops);
  } else {
    EXPECT_LE(dec.cost.flops, plain_dec.cost.flops);
  }
}

INSTANTIATE_TEST_SUITE_P(GapStrides, HuffmanGapParam, ::testing::Values(128, 256, 1024, 4096));

TEST(HuffmanGap, StrideMustDivideChunk) {
  const auto syms = skewed_symbols(1000, 0.5, 64, 3);
  const auto freq = histogram_of(syms, 64);
  const auto book = HuffmanCodebook::build(freq);
  EXPECT_THROW((void)huffman_encode(syms, book, 4096, HuffmanEncVariant::kOptimized, 1000),
               std::invalid_argument);
}

TEST(HuffmanGap, EndToEndThroughCompressor) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> data(30000);
  float acc = 0.0f;
  for (auto& x : data) {
    acc = 0.99f * acc + 0.05f * dist(rng);
    x = acc;
  }
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.workflow = Workflow::kHuffman;
  cfg.huffman_gap_stride = 256;
  const auto c = Compressor(cfg).compress(data, Extents::d1(30000));
  const auto d = Compressor::decompress(c.bytes);
  double max_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(data[i]) - d.data[i]));
  }
  EXPECT_LT(max_err, c.stats.eb_abs);
}

TEST(HuffmanCodec, EmptyInput) {
  std::vector<std::uint64_t> freq(16, 1);
  const auto book = HuffmanCodebook::build(freq);
  const auto enc = huffman_encode(std::vector<quant_t>{}, book);
  EXPECT_EQ(enc.num_symbols, 0u);
  const auto dec = huffman_decode(enc, book);
  EXPECT_TRUE(dec.symbols.empty());
}

TEST(HuffmanCodec, CompressionTracksEntropy) {
  const auto syms = skewed_symbols(100000, 0.95, 1024, 9);
  const auto freq = histogram_of(syms, 1024);
  const auto book = HuffmanCodebook::build(freq);
  const auto enc = huffman_encode(syms, book);
  const double bits_per_sym =
      static_cast<double>(enc.payload.size()) * 8.0 / static_cast<double>(syms.size());
  EXPECT_NEAR(bits_per_sym, book.average_bits(freq), 0.05);
}

TEST(HuffmanCodec, CorruptPayloadThrowsOrMisdecodes) {
  const auto syms = skewed_symbols(5000, 0.5, 256, 10);
  const auto freq = histogram_of(syms, 256);
  const auto book = HuffmanCodebook::build(freq);
  auto enc = huffman_encode(syms, book);
  enc.payload.resize(enc.payload.size() / 2);  // truncate
  enc.chunk_offsets.back() = enc.payload.size();
  bool failed = false;
  try {
    const auto dec = huffman_decode(enc, book);
    failed = dec.symbols != syms;
  } catch (const std::runtime_error&) {
    failed = true;
  }
  EXPECT_TRUE(failed);
}

}  // namespace
