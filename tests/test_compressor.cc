// End-to-end Compressor tests: error-bound invariant across workflows,
// archive integrity, workflow auto-selection, stats coherence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"

namespace {

using namespace szp;

std::vector<float> smooth_field(const Extents& ext, std::uint32_t seed, float noise) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(ext.count());
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc + noise * dist(rng);
  }
  return v;
}

Extents extents_for(int rank) {
  switch (rank) {
    case 1: return Extents::d1(3000);
    case 2: return Extents::d2(50, 60);
    default: return Extents::d3(14, 15, 16);
  }
}

class CompressorSweep
    : public ::testing::TestWithParam<std::tuple<int, double, Workflow>> {};

TEST_P(CompressorSweep, RoundTripHonorsErrorBound) {
  const auto [rank, eb, wf] = GetParam();
  const Extents ext = extents_for(rank);
  const auto data = smooth_field(ext, static_cast<std::uint32_t>(rank), 0.001f);

  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(eb);
  cfg.workflow = wf;
  const Compressor comp(cfg);
  const auto compressed = comp.compress(data, ext);
  // Plain RLE legitimately drops below 1x on rough data at tight bounds —
  // exactly the failure mode the workflow selector exists to avoid.
  EXPECT_GT(compressed.stats.ratio, wf == Workflow::kRle ? 0.8 : 1.0);
  EXPECT_EQ(compressed.stats.original_bytes, data.size() * 4);
  EXPECT_EQ(compressed.stats.compressed_bytes, compressed.bytes.size());

  const auto restored = Compressor::decompress(compressed.bytes);
  EXPECT_EQ(restored.extents, ext);
  const auto m = compare_fields(data, restored.data);
  EXPECT_LT(m.max_abs_error, compressed.stats.eb_abs)
      << "rank=" << rank << " eb=" << eb << " wf=" << static_cast<int>(wf);
}

INSTANTIATE_TEST_SUITE_P(
    RankEbWorkflow, CompressorSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(Workflow::kHuffman, Workflow::kRle,
                                         Workflow::kRleVle, Workflow::kRans,
                                         Workflow::kAuto)));

TEST(Compressor, Psnr85DbAtRelEb1em4) {
  // The paper reports PSNR > 85 dB at rel-eb 1e-4 (§V-C.2).  The analytic
  // floor for uniform quantization error at rel-eb 1e-4 is
  // -10*log10(eb^2/3) = 84.77 dB; real residual distributions sit at or
  // above it, so assert against the floor.
  const Extents ext = Extents::d2(100, 120);
  const auto data = smooth_field(ext, 77, 0.01f);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-4);
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_GT(compare_fields(data, d.data).psnr_db, 84.7);
}

TEST(Compressor, AutoSelectsSubBitCodecOnVerySmoothData) {
  const Extents ext = Extents::d1(100000);
  std::vector<float> data(ext.count(), 5.0f);  // constant field, p1 ~ 1
  data[50000] = 5.5f;
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(0.01);
  cfg.workflow = Workflow::kAuto;
  const auto c = Compressor(cfg).compress(data, ext);
  // Huffman is pinned at its 1-bit floor here (⟨b⟩ ≤ 1.09, the paper's §III
  // cue); the cost model routes to the fractional-bit rANS stage and the
  // archive must round-trip through it within the bound.
  EXPECT_EQ(c.stats.workflow_used, Workflow::kRans);
  EXPECT_LE(c.stats.decision.est_avg_bits, 1.09);
  // A sub-bit codec breaks Huffman's 32x float ceiling on this field.
  EXPECT_GT(c.stats.ratio, 32.0);
  const auto d = Compressor::decompress(c.bytes);
  ASSERT_EQ(d.data.size(), data.size());
  float max_err = 0.0f;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::abs(data[i] - d.data[i]));
  }
  EXPECT_LT(max_err, 0.01f);
}

TEST(Compressor, AutoSelectsHuffmanOnRoughData) {
  const Extents ext = Extents::d1(50000);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> data(ext.count());
  for (auto& x : data) x = dist(rng);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  cfg.workflow = Workflow::kAuto;
  const auto c = Compressor(cfg).compress(data, ext);
  EXPECT_EQ(c.stats.workflow_used, Workflow::kHuffman);
}

TEST(Compressor, RleVleBeatsPlainRleOnSmoothData) {
  const Extents ext = Extents::d1(200000);
  const auto data = smooth_field(ext, 9, 0.0f);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-2);
  cfg.workflow = Workflow::kRle;
  const auto rle = Compressor(cfg).compress(data, ext);
  cfg.workflow = Workflow::kRleVle;
  const auto rle_vle = Compressor(cfg).compress(data, ext);
  EXPECT_GT(rle_vle.stats.ratio, rle.stats.ratio);
}

TEST(Compressor, PipelineStagesArePresent) {
  const Extents ext = Extents::d2(40, 40);
  const auto data = smooth_field(ext, 4, 0.001f);
  CompressConfig cfg;
  cfg.workflow = Workflow::kHuffman;
  const auto c = Compressor(cfg).compress(data, ext);
  for (const char* stage : {"lorenzo_construct", "gather_outlier", "histogram",
                            "huffman_book", "huffman_encode"}) {
    EXPECT_NE(c.stats.pipeline.find(stage), nullptr) << stage;
  }
  const auto d = Compressor::decompress(c.bytes);
  for (const char* stage : {"huffman_decode", "scatter_outlier", "lorenzo_reconstruct"}) {
    EXPECT_NE(d.pipeline.find(stage), nullptr) << stage;
  }
}

TEST(Compressor, AbsoluteErrorBoundMode) {
  const Extents ext = Extents::d1(5000);
  const auto data = smooth_field(ext, 5, 0.01f);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(0.005);
  const auto c = Compressor(cfg).compress(data, ext);
  EXPECT_DOUBLE_EQ(c.stats.eb_abs, 0.005);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, 0.005);
}

TEST(Compressor, ReconstructVariantsAgree) {
  const Extents ext = Extents::d3(10, 20, 30);
  const auto data = smooth_field(ext, 6, 0.002f);
  const auto c = Compressor(CompressConfig{}).compress(data, ext);
  const auto opt = Compressor::decompress(
      c.bytes, {ReconstructVariant::kOptimizedPartialSum, 8});
  const auto naive = Compressor::decompress(
      c.bytes, {ReconstructVariant::kNaivePartialSum, 1});
  EXPECT_EQ(opt.data, naive.data);
}

TEST(Compressor, RansWorkflowBreaksTheHuffmanFloor) {
  // Extension workflow: fractional-bit entropy coding.  On a near-constant
  // field Huffman pays >= 1 bit per value (32x ceiling); rANS does not.
  const Extents ext = Extents::d1(400000);
  std::vector<float> data(ext.count(), 3.0f);
  for (std::size_t i = 0; i < data.size(); i += 997) data[i] = 3.01f;
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto huff = Compressor(cfg).compress(data, ext);
  cfg.workflow = Workflow::kRans;
  const auto rans = Compressor(cfg).compress(data, ext);
  EXPECT_LE(huff.stats.ratio, 33.0);
  EXPECT_GT(rans.stats.ratio, 60.0);
  const auto d = Compressor::decompress(rans.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, 1e-3);
}

TEST(Compressor, PsnrTargetMode) {
  // SZ's PSNR mode (paper §VI): derive eb from a target PSNR.  The uniform
  // error model makes the analytic target the worst case, so the achieved
  // PSNR should land at or above it.
  const Extents ext = Extents::d2(120, 150);
  const auto data = smooth_field(ext, 30, 0.01f);
  for (const double target : {60.0, 80.0, 100.0}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::psnr(target);
    const auto c = Compressor(cfg).compress(data, ext);
    const auto d = Compressor::decompress(c.bytes);
    const double achieved = compare_fields(data, d.data).psnr_db;
    EXPECT_GT(achieved, target - 0.5) << target;
    EXPECT_LT(achieved, target + 15.0) << target;  // not wastefully tight
  }
}

TEST(Compressor, RejectsBadInput) {
  const Compressor comp;
  std::vector<float> empty;
  EXPECT_THROW((void)comp.compress(empty, Extents::d1(0)), std::invalid_argument);

  std::vector<float> data(10, 1.0f);
  EXPECT_THROW((void)comp.compress(data, Extents::d1(11)), std::invalid_argument);

  std::vector<float> with_nan(10, 1.0f);
  with_nan[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW((void)comp.compress(with_nan, Extents::d1(10)), std::invalid_argument);

  // eb too tight for exact integer residuals.
  std::vector<float> wide(10);
  for (std::size_t i = 0; i < wide.size(); ++i) wide[i] = static_cast<float>(i) * 1e6f;
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-6);
  EXPECT_THROW((void)Compressor(cfg).compress(wide, Extents::d1(10)), std::invalid_argument);
}

TEST(Compressor, RejectsCorruptArchives) {
  const Extents ext = Extents::d1(1000);
  const auto data = smooth_field(ext, 8, 0.001f);
  auto c = Compressor(CompressConfig{}).compress(data, ext);

  std::vector<std::uint8_t> bad_magic = c.bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW((void)Compressor::decompress(bad_magic), std::runtime_error);

  std::vector<std::uint8_t> truncated(c.bytes.begin(), c.bytes.begin() + 20);
  EXPECT_THROW((void)Compressor::decompress(truncated), std::runtime_error);
}

TEST(Compressor, ConstantFieldCompressesMassively) {
  const Extents ext = Extents::d3(16, 32, 32);
  std::vector<float> data(ext.count(), 2.5f);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kRleVle;
  const auto c = Compressor(cfg).compress(data, ext);
  EXPECT_GT(c.stats.ratio, 50.0);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, 1e-3);
}

TEST(Compressor, NegativeValuesAndOffsets) {
  const Extents ext = Extents::d2(30, 40);
  auto data = smooth_field(ext, 10, 0.005f);
  for (auto& x : data) x = x * 100.0f - 250.0f;
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-3);
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, c.stats.eb_abs);
}

TEST(Compressor, OutlierHeavyFieldStaysBounded) {
  // Spiky data forces many residuals out of quantizer range.
  const Extents ext = Extents::d1(10000);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> data(ext.count(), 0.0f);
  for (std::size_t i = 0; i < data.size(); i += 7) data[i] = 50.0f * dist(rng);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.quant.capacity = 256;  // tiny quantizer: most spikes become outliers
  const auto c = Compressor(cfg).compress(data, ext);
  EXPECT_GT(c.stats.outlier_count, 1000u);
  const auto d = Compressor::decompress(c.bytes);
  EXPECT_LT(compare_fields(data, d.data).max_abs_error, 1e-3);
}

}  // namespace
