// Run-length encoder tests (Workflow-RLE's codec).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/error.hh"
#include "core/rle/rle.hh"

namespace {

using namespace szp;

std::vector<quant_t> runs_sequence(std::uint32_t seed, std::size_t nruns, std::size_t max_run) {
  std::mt19937 rng(seed);
  std::vector<quant_t> seq;
  quant_t prev = 0xffff;
  for (std::size_t r = 0; r < nruns; ++r) {
    quant_t v;
    do {
      v = static_cast<quant_t>(rng() % 8);
    } while (v == prev);
    prev = v;
    seq.insert(seq.end(), 1 + rng() % max_run, v);
  }
  return seq;
}

TEST(Rle, RoundTripRandomRuns) {
  for (const std::uint32_t seed : {1u, 2u, 3u}) {
    const auto seq = runs_sequence(seed, 500, 100);
    const auto enc = rle_encode(seq);
    EXPECT_EQ(enc.num_symbols, seq.size());
    const auto dec = rle_decode(enc);
    EXPECT_EQ(dec.symbols, seq);
  }
}

TEST(Rle, RunsAreMaximal) {
  const auto seq = runs_sequence(7, 300, 50);
  const auto enc = rle_encode(seq);
  for (std::size_t r = 1; r < enc.values.size(); ++r) {
    // Adjacent runs may share a value only at a u16 split boundary.
    if (enc.values[r] == enc.values[r - 1]) {
      EXPECT_EQ(enc.counts[r - 1], 65535u);
    }
  }
}

TEST(Rle, LongRunsSplitAtU16Boundary) {
  std::vector<quant_t> seq(200000, 5);
  const auto enc = rle_encode(seq);
  ASSERT_EQ(enc.values.size(), 4u);  // 65535*3 + 3395
  EXPECT_EQ(enc.counts[0], 65535u);
  EXPECT_EQ(enc.counts[1], 65535u);
  EXPECT_EQ(enc.counts[2], 65535u);
  EXPECT_EQ(enc.counts[3], 200000u - 3u * 65535u);
  const auto dec = rle_decode(enc);
  EXPECT_EQ(dec.symbols, seq);
}

TEST(Rle, AlternatingSequenceIsWorstCase) {
  std::vector<quant_t> seq(1000);
  for (std::size_t i = 0; i < seq.size(); ++i) seq[i] = static_cast<quant_t>(i & 1);
  const auto enc = rle_encode(seq);
  EXPECT_EQ(enc.run_count(), seq.size());
  // Worst case costs 32 bits per symbol — far above the 16-bit raw cost,
  // which is exactly why the selector gates RLE on smoothness.
  EXPECT_DOUBLE_EQ(rle_bits_per_symbol(enc), 32.0);
  EXPECT_EQ(rle_decode(enc).symbols, seq);
}

TEST(Rle, ConstantSequenceIsBestCase) {
  std::vector<quant_t> seq(60000, 9);
  const auto enc = rle_encode(seq);
  EXPECT_EQ(enc.run_count(), 1u);
  EXPECT_LT(rle_bits_per_symbol(enc), 0.01);
}

TEST(Rle, EmptyAndSingle) {
  const auto empty = rle_encode(std::vector<quant_t>{});
  EXPECT_EQ(empty.run_count(), 0u);
  EXPECT_TRUE(rle_decode(empty).symbols.empty());

  const auto one = rle_encode(std::vector<quant_t>{42});
  EXPECT_EQ(one.run_count(), 1u);
  EXPECT_EQ(rle_decode(one).symbols, std::vector<quant_t>{42});
}

TEST(Rle, DecodeRejectsInconsistentMetadata) {
  RleEncoded enc;
  enc.values = {1, 2};
  enc.counts = {3};  // size mismatch
  enc.num_symbols = 3;
  EXPECT_THROW((void)rle_decode(enc), DecodeError);

  enc.counts = {3, 4};
  enc.num_symbols = 100;  // lengths do not sum to this
  EXPECT_THROW((void)rle_decode(enc), DecodeError);
}

}  // namespace
