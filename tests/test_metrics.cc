// Distortion metric tests (PSNR, max error, compression ratio).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/eb.hh"
#include "core/metrics.hh"

namespace {

using szp::compare_fields;
using szp::compression_ratio;
using szp::ErrorBound;
using szp::ValueRange;

TEST(Metrics, IdenticalFieldsHaveInfinitePsnr) {
  const std::vector<float> a{0.0f, 1.0f, 2.0f, 3.0f};
  const auto m = compare_fields(a, a);
  EXPECT_EQ(m.max_abs_error, 0.0);
  EXPECT_EQ(m.mse, 0.0);
  EXPECT_TRUE(std::isinf(m.psnr_db));
}

TEST(Metrics, KnownErrorValues) {
  const std::vector<float> a{0.0f, 10.0f};
  const std::vector<float> b{1.0f, 10.0f};
  const auto m = compare_fields(a, b);
  EXPECT_DOUBLE_EQ(m.max_abs_error, 1.0);
  EXPECT_DOUBLE_EQ(m.mse, 0.5);
  EXPECT_DOUBLE_EQ(m.value_range, 10.0);
  // PSNR = 20 log10(10) - 10 log10(0.5) = 20 + 3.0103
  EXPECT_NEAR(m.psnr_db, 23.0103, 1e-3);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW((void)compare_fields(a, b), std::invalid_argument);
}

TEST(Metrics, CompressionRatio) {
  EXPECT_DOUBLE_EQ(compression_ratio(100, 25), 4.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 0), 0.0);
}

TEST(ValueRangeT, MinMax) {
  const std::vector<float> v{3.0f, -1.0f, 7.0f};
  const auto r = ValueRange::of(v);
  EXPECT_EQ(r.min, -1.0);
  EXPECT_EQ(r.max, 7.0);
  EXPECT_EQ(r.span(), 8.0);
}

TEST(ErrorBoundT, AbsoluteIgnoresRange) {
  EXPECT_DOUBLE_EQ(ErrorBound::absolute(0.5).resolve(100.0), 0.5);
}

TEST(ErrorBoundT, RelativeScalesByRange) {
  EXPECT_DOUBLE_EQ(ErrorBound::relative(1e-2).resolve(50.0), 0.5);
  // Degenerate (constant) fields fall back to range 1.
  EXPECT_DOUBLE_EQ(ErrorBound::relative(1e-2).resolve(0.0), 1e-2);
}

TEST(ErrorBoundT, InvalidValuesThrow) {
  EXPECT_THROW((void)ErrorBound::absolute(0.0).resolve(1.0), std::invalid_argument);
  EXPECT_THROW((void)ErrorBound::relative(-1.0).resolve(1.0), std::invalid_argument);
}

}  // namespace
