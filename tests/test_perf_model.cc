// Tests of the roofline performance model (the V100/A100 substitution).
#include <gtest/gtest.h>

#include "sim/device.hh"
#include "sim/perf_model.hh"
#include "sim/profile.hh"

namespace {

using namespace szp::sim;

KernelCost streaming_cost(std::uint64_t n) {
  KernelCost c;
  c.bytes_read = n * 4;
  c.bytes_written = n * 4;
  c.parallel_items = n;
  c.pattern = AccessPattern::kCoalescedStreaming;
  return c;
}

TEST(PerfModel, DeviceSpecsMatchPublishedNumbers) {
  EXPECT_DOUBLE_EQ(v100().mem_bw_gbps, 900.0);
  EXPECT_DOUBLE_EQ(a100().mem_bw_gbps, 1555.0);
  EXPECT_NEAR(v100().fp32_tflops, 14.13, 1e-9);
}

TEST(PerfModel, A100BeatsV100OnMemoryBoundKernels) {
  const auto cost = streaming_cost(1 << 26);
  const double tv = modeled_seconds(v100(), cost);
  const double ta = modeled_seconds(a100(), cost);
  EXPECT_LT(ta, tv);
  // The paper's conclusion: memory-bound kernels scale with the bandwidth
  // ratio (~1.73x), not the FLOPS ratio (~1.38x).
  EXPECT_NEAR(tv / ta, 1555.0 / 900.0, 0.1);
}

TEST(PerfModel, ThroughputNeverExceedsRoofline) {
  for (const auto* dev : {&v100(), &a100()}) {
    const auto cost = streaming_cost(1 << 24);
    const double gbps = modeled_throughput_gbps(*dev, cost, cost.bytes());
    EXPECT_LT(gbps, dev->mem_bw_gbps);
    EXPECT_GT(gbps, 0.0);
  }
}

TEST(PerfModel, LowParallelismIsPenalized) {
  auto fine = streaming_cost(1 << 24);
  auto coarse = fine;
  coarse.parallel_items = 1024;  // one thread per chunk
  EXPECT_GT(modeled_seconds(v100(), coarse), modeled_seconds(v100(), fine));
}

TEST(PerfModel, StridedPatternIsSlowerThanCoalesced) {
  auto coalesced = streaming_cost(1 << 24);
  auto strided = coalesced;
  strided.pattern = AccessPattern::kStrided;
  EXPECT_GT(modeled_seconds(v100(), strided), 5.0 * modeled_seconds(v100(), coalesced));
}

TEST(PerfModel, CustomFactorOverridesPattern) {
  auto c = streaming_cost(1 << 20);
  c.pattern = AccessPattern::kStrided;
  c.custom_factor = access_factor(AccessPattern::kCoalescedStreaming);
  auto ref = streaming_cost(1 << 20);
  EXPECT_DOUBLE_EQ(modeled_seconds(v100(), c), modeled_seconds(v100(), ref));
}

TEST(PerfModel, LaunchOverheadDominatesTinyKernels) {
  KernelCost tiny;
  tiny.bytes_read = 64;
  tiny.parallel_items = 16;
  tiny.launches = 10;
  const double t = modeled_seconds(v100(), tiny);
  EXPECT_GE(t, 10 * v100().kernel_launch_us * 1e-6);
}

TEST(PerfModel, CostCompositionAccumulatesTraffic) {
  auto a = streaming_cost(1000);
  const auto b = streaming_cost(2000);
  a += b;
  EXPECT_EQ(a.bytes_read, 3000u * 4u);
  EXPECT_EQ(a.bytes_written, 3000u * 4u);
  EXPECT_EQ(a.launches, 2);
}

TEST(PerfModel, CompositionKeepsWorstFactor) {
  auto fast = streaming_cost(1000);
  KernelCost slow = streaming_cost(1000);
  slow.pattern = AccessPattern::kStrided;
  fast += slow;
  EXPECT_DOUBLE_EQ(effective_factor(fast), access_factor(AccessPattern::kStrided));
}

TEST(PerfModel, PipelineThroughputIsHarmonicCombination) {
  PipelineReport pipe;
  StageReport s1{"a", 4000, 0.0, streaming_cost(1000)};
  StageReport s2{"b", 4000, 0.0, streaming_cost(1000)};
  pipe.add(s1);
  pipe.add(s2);
  const double whole = modeled_pipeline_gbps(v100(), pipe, 4000);
  const double one = modeled_throughput_gbps(v100(), s1.cost, 4000);
  EXPECT_LT(whole, one);
  EXPECT_GT(whole, one / 2.5);
}

TEST(StageReport, CpuThroughputComputation) {
  StageReport s{"x", 2'000'000'000, 1.0, {}};
  EXPECT_DOUBLE_EQ(s.cpu_throughput_gbps(), 2.0);
  s.cpu_seconds = 0.0;
  EXPECT_DOUBLE_EQ(s.cpu_throughput_gbps(), 0.0);
}

TEST(PipelineReport, FindAndTotal) {
  PipelineReport pipe;
  pipe.add({"alpha", 0, 0.5, {}});
  pipe.add({"beta", 0, 0.25, {}});
  ASSERT_NE(pipe.find("beta"), nullptr);
  EXPECT_EQ(pipe.find("beta")->cpu_seconds, 0.25);
  EXPECT_EQ(pipe.find("gamma"), nullptr);
  EXPECT_DOUBLE_EQ(pipe.total_cpu_seconds(), 0.75);
}

}  // namespace
