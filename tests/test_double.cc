// Double-precision path: the paper's 64x VLE ceiling for doubles, error
// bounds below float32 precision, and float/double parity.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"

namespace {

using namespace szp;

std::vector<double> smooth_field_f64(const Extents& ext, std::uint32_t seed, double noise) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(ext.count());
  double acc = 0.0;
  for (auto& x : v) {
    acc = 0.995 * acc + 0.02 * dist(rng);
    x = acc + noise * dist(rng);
  }
  return v;
}

class DoubleSweep : public ::testing::TestWithParam<std::tuple<int, double, Workflow>> {};

TEST_P(DoubleSweep, RoundTripHonorsErrorBound) {
  const auto [rank, eb, wf] = GetParam();
  const Extents ext = rank == 1   ? Extents::d1(3000)
                      : rank == 2 ? Extents::d2(50, 60)
                                  : Extents::d3(14, 15, 16);
  const auto data = smooth_field_f64(ext, static_cast<std::uint32_t>(rank), 1e-3);

  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(eb);
  cfg.workflow = wf;
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  ASSERT_EQ(d.dtype, DType::kFloat64);
  EXPECT_TRUE(d.data.empty());
  ASSERT_EQ(d.data_f64.size(), data.size());
  EXPECT_LT(compare_fields(data, d.data_f64).max_abs_error, c.stats.eb_abs);
}

INSTANTIATE_TEST_SUITE_P(
    RankEbWorkflow, DoubleSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1e-3, 1e-5),
                       ::testing::Values(Workflow::kHuffman, Workflow::kRleVle)));

TEST(DoubleCompressor, BoundsBelowFloat32PrecisionWork) {
  // rel-eb 1e-6 on O(1) data is near float32's 2^-23 resolution; the double
  // path must accept it and honor it.
  const Extents ext = Extents::d1(20000);
  const auto data = smooth_field_f64(ext, 7, 1e-5);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-6);
  const auto c = Compressor(cfg).compress(data, ext);
  const auto d = Compressor::decompress(c.bytes);
  const auto m = compare_fields(data, d.data_f64);
  EXPECT_LT(m.max_abs_error, c.stats.eb_abs);
  EXPECT_GT(m.psnr_db, 110.0);
}

TEST(DoubleCompressor, CeilingIs64xNot32x) {
  // A constant double field: Huffman floor of 1 bit/symbol over 64-bit
  // values allows up to ~64x — the paper's §III observation.
  const Extents ext = Extents::d1(300000);
  std::vector<double> data(ext.count(), 42.0);
  data[12345] = 42.5;
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto c = Compressor(cfg).compress(data, ext);
  EXPECT_GT(c.stats.ratio, 32.0);
  EXPECT_LT(c.stats.ratio, 70.0);
  // And the selector's VLE-CR estimate uses the 64-bit width.
  EXPECT_GT(c.stats.decision.est_vle_cr, 32.0);
}

TEST(DoubleCompressor, FloatAndDoubleAgreeOnFloatData) {
  // Compressing float data promoted to double must reconstruct the same
  // prequant integers (same eb), so outputs agree within the bound.
  const Extents ext = Extents::d2(40, 50);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> f32(ext.count());
  float acc = 0.0f;
  for (auto& x : f32) {
    acc = 0.99f * acc + 0.05f * dist(rng);
    x = acc;
  }
  std::vector<double> f64(f32.begin(), f32.end());

  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  const auto cf = Compressor(cfg).compress(f32, ext);
  const auto cd = Compressor(cfg).compress(f64, ext);
  const auto df = Compressor::decompress(cf.bytes);
  const auto dd = Compressor::decompress(cd.bytes);
  for (std::size_t i = 0; i < f32.size(); ++i) {
    EXPECT_NEAR(df.data[i], dd.data_f64[i], 2e-3) << i;
  }
}

TEST(DoubleCompressor, OriginalBytesReflectElementWidth) {
  const Extents ext = Extents::d1(1000);
  const auto data = smooth_field_f64(ext, 9, 1e-4);
  const auto c = Compressor(CompressConfig{}).compress(data, ext);
  EXPECT_EQ(c.stats.original_bytes, 8000u);
}

TEST(DoubleCompressor, RejectsNonFinite) {
  std::vector<double> data(100, 1.0);
  data[50] = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)Compressor(CompressConfig{}).compress(data, Extents::d1(100)),
               std::invalid_argument);
}

}  // namespace
