// LZ77+Huffman codec tests (the gzip/Zstd stand-in for qg/qhg schemes).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "lossless/lzh.hh"

namespace {

using szp::lossless::lzh_compress;
using szp::lossless::lzh_decompress;
using szp::lossless::lzh_ratio;
using szp::lossless::LzhConfig;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lzh, RoundTripText) {
  const auto input = bytes_of(
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again");
  const auto c = lzh_compress(input);
  EXPECT_EQ(lzh_decompress(c), input);
}

TEST(Lzh, RoundTripEmpty) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(lzh_decompress(lzh_compress(empty)), empty);
}

TEST(Lzh, RoundTripSingleByteAndTiny) {
  for (const auto& s : {std::string{"x"}, std::string{"ab"}, std::string{"aaa"}}) {
    const auto input = bytes_of(s);
    EXPECT_EQ(lzh_decompress(lzh_compress(input)), input) << s;
  }
}

TEST(Lzh, RoundTripRandomBinary) {
  std::mt19937 rng(5);
  std::vector<std::uint8_t> input(100000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(lzh_decompress(lzh_compress(input)), input);
}

TEST(Lzh, RoundTripOverlappingMatches) {
  // "aaaa..." forces self-overlapping copies (dist 1, long lengths).
  std::vector<std::uint8_t> input(100000, 'a');
  const auto c = lzh_compress(input);
  EXPECT_LT(c.size(), input.size() / 50);
  EXPECT_EQ(lzh_decompress(c), input);
}

TEST(Lzh, RoundTripPeriodicPattern) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 20000; ++i) input.push_back(static_cast<std::uint8_t>("abcdefg"[i % 7]));
  const auto c = lzh_compress(input);
  EXPECT_LT(c.size(), input.size() / 10);
  EXPECT_EQ(lzh_decompress(c), input);
}

TEST(Lzh, MatchesBeyondWindowAreNotUsed) {
  // Two identical blocks separated by > window of incompressible noise:
  // must still round-trip (the second block simply compresses worse).
  std::mt19937 rng(6);
  std::vector<std::uint8_t> block(1000, 'z');
  std::vector<std::uint8_t> input = block;
  for (int i = 0; i < 40000; ++i) input.push_back(static_cast<std::uint8_t>(rng()));
  input.insert(input.end(), block.begin(), block.end());
  EXPECT_EQ(lzh_decompress(lzh_compress(input)), input);
}

TEST(Lzh, RepetitiveDataCompressesRandomDoesNot) {
  std::vector<std::uint8_t> rep;
  for (int i = 0; i < 50000; ++i) rep.push_back(static_cast<std::uint8_t>(i % 4));
  EXPECT_GT(lzh_ratio(rep), 10.0);

  std::mt19937 rng(7);
  std::vector<std::uint8_t> rnd(50000);
  for (auto& b : rnd) b = static_cast<std::uint8_t>(rng());
  EXPECT_LT(lzh_ratio(rnd), 1.1);
}

TEST(Lzh, ConfigKnobsStillRoundTrip) {
  std::mt19937 rng(8);
  std::vector<std::uint8_t> input(30000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng() % 16);
  for (const std::size_t chain : {1u, 8u, 1024u}) {
    LzhConfig cfg;
    cfg.max_chain = chain;
    EXPECT_EQ(lzh_decompress(lzh_compress(input, cfg)), input) << "chain=" << chain;
  }
}

TEST(Lzh, CorruptInputThrows) {
  const auto c = lzh_compress(bytes_of("hello hello hello hello"));
  std::vector<std::uint8_t> bad = c;
  bad[0] ^= 0xff;  // magic
  EXPECT_THROW((void)lzh_decompress(bad), std::runtime_error);

  std::vector<std::uint8_t> truncated(c.begin(), c.begin() + 8);
  EXPECT_THROW((void)lzh_decompress(truncated), std::runtime_error);
}

}  // namespace
