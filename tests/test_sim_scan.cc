// Unit tests for the substrate's scan primitives (block scan, strided scan,
// device-wide scans) — the building blocks of partial-sum reconstruction
// and Huffman deflating.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "sim/block_scan.hh"
#include "sim/device_scan.hh"

namespace {

using szp::sim::block_inclusive_scan;
using szp::sim::block_inclusive_scan_strided;
using szp::sim::device_exclusive_scan;
using szp::sim::device_inclusive_scan;

std::vector<int> random_ints(std::size_t n, std::uint32_t seed, int lo = -50, int hi = 50) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(lo, hi);
  std::vector<int> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(BlockScan, MatchesPartialSumOnSmallInput) {
  std::vector<int> v{3, -1, 4, 1, -5, 9, 2, -6};
  std::vector<int> expected(v.size());
  std::partial_sum(v.begin(), v.end(), expected.begin());
  block_inclusive_scan(std::span<int>(v), 3);
  EXPECT_EQ(v, expected);
}

TEST(BlockScan, EmptyAndSingle) {
  std::vector<int> empty;
  block_inclusive_scan(std::span<int>(empty), 8);
  EXPECT_TRUE(empty.empty());

  std::vector<int> one{42};
  block_inclusive_scan(std::span<int>(one), 8);
  EXPECT_EQ(one[0], 42);
}

TEST(BlockScan, SequentialityZeroIsTreatedAsOne) {
  auto v = random_ints(100, 7);
  auto expected = v;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  block_inclusive_scan(std::span<int>(v), 0);
  EXPECT_EQ(v, expected);
}

// Sweep the sequentiality knob (the paper tunes it to 8): the result must
// be invariant.
class BlockScanSeq : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockScanSeq, InvariantUnderSequentiality) {
  for (const std::size_t n : {1u, 2u, 7u, 255u, 256u, 257u, 1000u}) {
    auto v = random_ints(n, static_cast<std::uint32_t>(n));
    auto expected = v;
    std::partial_sum(expected.begin(), expected.end(), expected.begin());
    block_inclusive_scan(std::span<int>(v), GetParam());
    EXPECT_EQ(v, expected) << "n=" << n << " seq=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sequentialities, BlockScanSeq,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 1000));

TEST(BlockScanStrided, MatchesGatheredScan) {
  const std::size_t count = 16, stride = 5;
  auto flat = random_ints(count * stride, 11);
  auto copy = flat;

  block_inclusive_scan_strided(flat.data(), count, stride);

  int acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += copy[i * stride];
    EXPECT_EQ(flat[i * stride], acc) << "i=" << i;
  }
  // Off-stride elements untouched.
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (i % stride != 0) EXPECT_EQ(flat[i], copy[i]);
  }
}

class DeviceScanSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceScanSize, ExclusiveMatchesReference) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> in(n);
  std::mt19937 rng(static_cast<std::uint32_t>(n));
  for (auto& x : in) x = rng() % 1000;

  std::vector<std::uint64_t> out(n);
  const auto total = device_exclusive_scan(std::span<const std::uint64_t>(in),
                                           std::span<std::uint64_t>(out), 64);

  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], acc) << "i=" << i;
    acc += in[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(DeviceScanSize, InclusiveMatchesReference) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> in(n);
  std::mt19937 rng(static_cast<std::uint32_t>(n) + 1);
  for (auto& x : in) x = rng() % 1000;

  std::vector<std::uint64_t> out(n);
  device_inclusive_scan(std::span<const std::uint64_t>(in), std::span<std::uint64_t>(out), 64);

  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += in[i];
    EXPECT_EQ(out[i], acc) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeviceScanSize,
                         ::testing::Values(1, 2, 63, 64, 65, 1000, 4096, 100000));

TEST(DeviceScan, EmptyInput) {
  std::vector<std::uint64_t> in, out;
  EXPECT_EQ(device_exclusive_scan(std::span<const std::uint64_t>(in),
                                  std::span<std::uint64_t>(out)),
            0u);
}

}  // namespace
