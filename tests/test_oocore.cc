// Out-of-core streaming tier: the FieldSource/ContainerSink seam, I/O fault
// injection (short reads, mid-slab write errors, truncated files), memory
// budgets, and file-vs-memory container byte identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/error.hh"
#include "core/io/io.hh"
#include "core/streaming.hh"

namespace {

using namespace szp;
namespace fs = std::filesystem;

std::vector<float> wave(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017));
  }
  return v;
}

std::span<const std::uint8_t> raw_bytes(const std::vector<float>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * sizeof(float)};
}

/// Scratch directory removed on scope exit.
struct TempDir {
  fs::path dir;
  explicit TempDir(const std::string& tag)
      : dir(fs::temp_directory_path() / ("szp_oocore_" + tag)) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] fs::path operator/(const std::string& leaf) const { return dir / leaf; }
};

void write_file(const fs::path& p, std::span<const std::uint8_t> bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream f(p, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.good()) << p;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

StreamingConfig oocore_cfg(std::size_t workers, std::size_t max_slab_elems) {
  StreamingConfig cfg;
  cfg.base.eb = ErrorBound::absolute(1e-3);
  cfg.base.workflow = Workflow::kHuffman;
  cfg.max_slab_elems = max_slab_elems;
  cfg.parallel = true;
  cfg.workers = workers;
  return cfg;
}

// -- Fault-injecting seam implementations -----------------------------------

/// In-memory source whose reads fail once they touch byte `fail_from` — the
/// shape of a file that is shorter than its declared size (a short read).
/// No view(), so the pipeline must go through read_at().
class ShortReadSource final : public io::FieldSource {
 public:
  ShortReadSource(std::span<const std::uint8_t> bytes, std::size_t fail_from)
      : bytes_(bytes), fail_from_(fail_from) {}

  [[nodiscard]] std::size_t size_bytes() const override { return bytes_.size(); }
  void read_at(std::size_t offset, std::span<std::uint8_t> out) const override {
    if (offset + out.size() > fail_from_) {
      throw std::runtime_error("injected short read at offset " + std::to_string(offset));
    }
    std::memcpy(out.data(), bytes_.data() + offset, out.size());
  }
  [[nodiscard]] std::string name() const override { return "<short-read>"; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t fail_from_;
};

/// Sink that fails on the Nth write() call — a mid-container disk-full.
class FailingSink final : public io::ContainerSink {
 public:
  explicit FailingSink(std::size_t fail_on_call) : fail_on_(fail_on_call) {}

  void write(std::span<const std::uint8_t> bytes) override {
    if (++calls_ == fail_on_) {
      throw std::runtime_error("injected write fault on call " + std::to_string(calls_));
    }
    written_ += bytes.size();
  }
  [[nodiscard]] std::size_t bytes_written() const override { return written_; }
  [[nodiscard]] std::string name() const override { return "<failing>"; }

 private:
  std::size_t fail_on_;
  std::size_t calls_ = 0;
  std::size_t written_ = 0;
};

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// -- Fault injection --------------------------------------------------------

TEST(OocoreFaults, ShortReadPropagatesLowestIndexDeterministically) {
  const Extents ext = Extents::d2(64, 256);
  const auto data = wave(ext.count());
  const auto bytes = raw_bytes(data);
  // 16 slabs of 4 planes each; reads touching the second half fail, so slabs
  // 8..15 all fault.  The engine must report slab 8's read — the lowest
  // faulting index — no matter how the workers interleave.
  StreamingCompressor sc(oocore_cfg(4, 4 * 256));

  const auto run = [&](std::size_t workers) {
    ShortReadSource src(bytes, bytes.size() / 2);
    io::VectorSink sink;
    return error_of([&] { (void)sc.compress_stream(src, DType::kFloat32, ext, sink,
                                                   oocore_cfg(workers, 4 * 256)); });
  };

  const std::string reference = run(1);  // serial: trivially the lowest index
  EXPECT_NE(reference.find("injected short read"), std::string::npos) << reference;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run(4), reference) << "run " << i;
  }

  // The queue drained cleanly: the same compressor still works.
  io::SpanFieldSource good(bytes);
  io::VectorSink sink;
  EXPECT_NO_THROW((void)sc.compress_stream(good, DType::kFloat32, ext, sink));
}

TEST(OocoreFaults, MidSlabWriteErrorPropagatesDeterministically) {
  const Extents ext = Extents::d2(64, 256);
  const auto data = wave(ext.count());
  const auto bytes = raw_bytes(data);
  StreamingCompressor sc(oocore_cfg(4, 4 * 256));

  const auto run = [&](std::size_t workers) {
    io::SpanFieldSource src(bytes);
    FailingSink sink(4);  // header + a few slabs land, then the disk "fills"
    return error_of([&] { (void)sc.compress_stream(src, DType::kFloat32, ext, sink,
                                                   oocore_cfg(workers, 4 * 256)); });
  };

  const std::string reference = run(1);
  EXPECT_NE(reference.find("injected write fault"), std::string::npos) << reference;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run(4), reference) << "run " << i;
  }

  io::SpanFieldSource good(bytes);
  io::VectorSink sink;
  EXPECT_NO_THROW((void)sc.compress_stream(good, DType::kFloat32, ext, sink));
}

TEST(OocoreFaults, TruncatedRawFileIsRefusedUpFront) {
  TempDir tmp("truncated_raw");
  const auto data = wave(1000);
  write_file(tmp / "short.f32", raw_bytes(data));  // 1000 floats on disk ...

  StreamingCompressor sc(oocore_cfg(2, 512));
  for (const bool mmap : {true, false}) {
    StreamingConfig cfg = oocore_cfg(2, 512);
    cfg.use_mmap = mmap;
    try {  // ... but the extents declare 1024: both ingest modes must refuse.
      (void)StreamingCompressor(cfg).compress_file(tmp / "short.f32", tmp / "out.szpc",
                                                   Extents::d1(1024), DType::kFloat32);
      FAIL() << "truncated input accepted (mmap=" << mmap << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("extents declare"), std::string::npos) << e.what();
    }
  }
}

TEST(OocoreFaults, TruncatedContainerFileIsACleanDecodeError) {
  TempDir tmp("truncated_container");
  const Extents ext = Extents::d2(48, 128);
  const auto data = wave(ext.count());
  write_file(tmp / "field.f32", raw_bytes(data));
  StreamingCompressor sc(oocore_cfg(2, 4 * 128));
  (void)sc.compress_file(tmp / "field.f32", tmp / "field.szpc", ext, DType::kFloat32);

  const auto container = read_file(tmp / "field.szpc");
  for (const double frac : {0.0, 0.1, 0.5, 0.9}) {
    const std::size_t keep = static_cast<std::size_t>(frac * static_cast<double>(container.size()));
    write_file(tmp / "cut.szpc", std::span<const std::uint8_t>(container.data(), keep));
    for (const bool mmap : {true, false}) {
      StreamingConfig cfg;
      cfg.use_mmap = mmap;
      if (keep == 0 && mmap) continue;  // an empty file cannot be mapped; kAuto degrades
      try {
        (void)StreamingCompressor::decompress_file(tmp / "cut.szpc", tmp / "out.f32", cfg);
        FAIL() << "truncated container accepted at " << keep << " bytes (mmap=" << mmap << ")";
      } catch (const DecodeError&) {
        // Clean structured rejection — exactly what the fuzz contract demands.
      }
    }
  }
}

// -- Byte identity: file path vs in-memory path -----------------------------

TEST(OocoreIdentity, WorkerSweepFileMatchesMemory) {
  TempDir tmp("worker_sweep");
  const Extents ext = Extents::d2(96, 128);
  const auto data = wave(ext.count());
  write_file(tmp / "field.f32", raw_bytes(data));

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const StreamingConfig cfg = oocore_cfg(workers, 8 * 128);
    const StreamingCompressor sc(cfg);
    const auto memory = sc.compress(data, ext);
    for (const bool mmap : {true, false}) {
      StreamingConfig fcfg = cfg;
      fcfg.use_mmap = mmap;
      const auto stats = StreamingCompressor(fcfg).compress_file(
          tmp / "field.f32", tmp / "field.szpc", ext, DType::kFloat32);
      EXPECT_EQ(read_file(tmp / "field.szpc"), memory.bytes)
          << workers << " workers, mmap=" << mmap;
      EXPECT_EQ(stats.compressed_bytes, memory.bytes.size());

      const auto info =
          StreamingCompressor::decompress_file(tmp / "field.szpc", tmp / "out.f32", fcfg);
      EXPECT_EQ(info.extents.count(), ext.count());
      const auto reference = StreamingCompressor::decompress(memory.bytes);
      EXPECT_EQ(read_file(tmp / "out.f32"),
                std::vector<std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(reference.data.data()),
                    reinterpret_cast<const std::uint8_t*>(reference.data.data() +
                                                          reference.data.size())))
          << workers << " workers, mmap=" << mmap;
    }
  }
}

// -- Memory budget ----------------------------------------------------------

TEST(OocoreBudget, LargerThanBudgetFieldRoundTripsWithinBudget) {
  TempDir tmp("budget_roundtrip");
  const Extents ext = Extents::d2(256, 1024);  // 1 MB of raw float32
  const auto data = wave(ext.count());
  write_file(tmp / "field.f32", raw_bytes(data));

  StreamingConfig cfg = oocore_cfg(4, 16 * 1024);
  cfg.memory_budget = std::size_t{256} << 10;  // 256 KB — a quarter of the field
  cfg.use_mmap = false;                        // positional reads: residency is real
  ASSERT_GT(raw_bytes(data).size(), cfg.memory_budget);

  const StreamingCompressor sc(cfg);
  const auto stats = sc.compress_file(tmp / "field.f32", tmp / "field.szpc", ext,
                                      DType::kFloat32);
  EXPECT_GT(stats.peak_resident_bytes, 0u);
  EXPECT_LE(stats.peak_resident_bytes, cfg.memory_budget);
  EXPECT_EQ(StreamingCompressor::slab_count(read_file(tmp / "field.szpc")),
            stats.slabs.size());

  // The budgeted file container matches the in-memory compress under the
  // same config — the budget shapes the plan, not the bytes.
  const auto memory = sc.compress(data, ext);
  EXPECT_EQ(read_file(tmp / "field.szpc"), memory.bytes);

  const auto info =
      StreamingCompressor::decompress_file(tmp / "field.szpc", tmp / "restored.f32", cfg);
  EXPECT_LE(info.stats.peak_resident_bytes, cfg.memory_budget);
  EXPECT_EQ(info.extents.count(), ext.count());

  const auto restored_bytes = read_file(tmp / "restored.f32");
  ASSERT_EQ(restored_bytes.size(), data.size() * sizeof(float));
  std::vector<float> restored(data.size());
  std::memcpy(restored.data(), restored_bytes.data(), restored_bytes.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(restored[i]) - data[i]));
  }
  EXPECT_LE(max_err, 1e-3 + 1e-12);
}

TEST(OocoreBudget, TooSmallBudgetIsRefusedWithAClearError) {
  TempDir tmp("budget_refused");
  const Extents ext = Extents::d2(2, 50000);  // one plane alone is ~200 KB
  const auto data = wave(ext.count());
  write_file(tmp / "field.f32", raw_bytes(data));

  StreamingConfig cfg = oocore_cfg(2, ext.count());
  cfg.memory_budget = std::size_t{100} << 10;
  try {
    (void)StreamingCompressor(cfg).compress_file(tmp / "field.f32", tmp / "out.szpc", ext,
                                                 DType::kFloat32);
    FAIL() << "undersized compress budget accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("memory budget"), std::string::npos) << e.what();
  }

  // Decode side: build a valid container, then offer a budget that cannot
  // hold even one slab in flight.  Must refuse as a config error — never as
  // a corrupt-stream DecodeError, the container is fine.
  cfg.memory_budget = 0;
  (void)StreamingCompressor(cfg).compress_file(tmp / "field.f32", tmp / "field.szpc", ext,
                                               DType::kFloat32);
  StreamingConfig dec;
  dec.memory_budget = 1024;
  dec.use_mmap = false;
  try {
    (void)StreamingCompressor::decompress_file(tmp / "field.szpc", tmp / "out.f32", dec);
    FAIL() << "undersized decode budget accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("too small to decode"), std::string::npos)
        << e.what();
  }
}

}  // namespace
