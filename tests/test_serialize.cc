// ByteWriter/ByteReader round trips and failure modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/error.hh"
#include "core/serialize.hh"

namespace {

using szp::ByteReader;
using szp::ByteWriter;

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<double>(3.25);
  w.put<std::int8_t>(-5);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u + 8u + 1u);

  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::int8_t>(), -5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint16_t> v{1, 2, 3, 65535};
  w.put_vector(v);
  const std::vector<float> f{1.5f, -2.5f};
  w.put_vector(f);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.get_vector<std::uint16_t>(), v);
  EXPECT_EQ(r.get_vector<float>(), f);
}

TEST(Serialize, EmptyVector) {
  ByteWriter w;
  w.put_vector(std::vector<int>{});
  const auto bytes = w.take();  // ByteReader holds a view; keep the buffer alive
  ByteReader r(bytes);
  EXPECT_TRUE(r.get_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedScalarThrows) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.get<std::uint64_t>(), std::runtime_error);
}

TEST(Serialize, TruncatedVectorThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(1000);  // claims 1000 entries, provides none
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.get_vector<std::uint32_t>(), std::runtime_error);
}

TEST(Serialize, SplicedHugeVectorCountThrowsBeforeAllocation) {
  // Regression: a spliced element count near UINT64_MAX used to overflow
  // `n * sizeof(T)` and pass the bounds check, then die inside
  // vector::assign.  checked_count() must reject it as a typed DecodeError
  // before any allocation is attempted.
  ByteWriter w;
  w.put<std::uint64_t>(UINT64_MAX / 2);  // count whose byte size wraps
  w.put<std::uint32_t>(0xabad1dea);      // a few bytes of "payload"
  const auto bytes = w.take();
  ByteReader r(bytes);
  try {
    (void)r.get_vector<std::uint32_t>();
    FAIL() << "accepted a spliced UINT64_MAX/2 element count";
  } catch (const szp::DecodeError& e) {
    EXPECT_EQ(e.kind(), szp::DecodeErrorKind::kLengthOverflow) << e.what();
  }
}

TEST(Serialize, TruncationErrorsCarryKindAndSegment) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  r.set_segment("quant-codes");
  try {
    (void)r.get<std::uint64_t>();
    FAIL() << "read past the end";
  } catch (const szp::DecodeError& e) {
    EXPECT_EQ(e.kind(), szp::DecodeErrorKind::kTruncated);
    EXPECT_EQ(e.segment(), "quant-codes");
  }
}

TEST(Serialize, RemainingTracksPosition) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
