// Selector cost-model validation across the full synthetic catalog: every
// generator family x error bound gets its kAuto pick pinned, and the model's
// projected ratio ordering is checked against measured ground truth.
//
// The pins are a regression contract, not derived truth: they were computed
// by running the selector once and verifying (below) that each pick is
// measured-competitive.  A deliberate model change that shifts a pick should
// update the table — an accidental one should fail here first.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "data/catalog.hh"
#include "data/synthetic.hh"

namespace {

using namespace szp;
using namespace szp::data;

constexpr double kScale = 0.06;  // keep the 21-combo sweep quick

constexpr Workflow kAllCodecs[] = {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle,
                                   Workflow::kRans,    Workflow::kLz77, Workflow::kLzh,
                                   Workflow::kLzr};

/// Native (non-LZ) codecs: the model projects their payload from the quant
/// histogram alone, which is exact enough to rank them.  The LZ projections
/// assume iid literals and so deliberately underestimate match-rich
/// structured fields — a conservative bias checked separately below.
constexpr Workflow kNativeCodecs[] = {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle,
                                      Workflow::kRans};

struct Combo {
  const char* dataset;
  double rel_eb;
  Workflow expected_pick;
};

// Pinned picks per (generator x error bound), scale 0.06, front field.
// Regime structure: rANS owns the sub-bit histograms the smooth generators
// produce at loose bounds; Huffman takes over once tighter bounds (or
// HACC's particle roughness / QMCPACK's noise floor) push entropy past the
// 1-bit floor.
constexpr Combo kPins[] = {
    {"HACC", 1e-2, Workflow::kHuffman},     {"HACC", 1e-3, Workflow::kHuffman},
    {"HACC", 1e-4, Workflow::kHuffman},     {"CESM-ATM", 1e-2, Workflow::kRans},
    {"CESM-ATM", 1e-3, Workflow::kRans},    {"CESM-ATM", 1e-4, Workflow::kHuffman},
    {"Hurricane", 1e-2, Workflow::kRans},   {"Hurricane", 1e-3, Workflow::kRans},
    {"Hurricane", 1e-4, Workflow::kRans},   {"Nyx", 1e-2, Workflow::kRans},
    {"Nyx", 1e-3, Workflow::kRans},         {"Nyx", 1e-4, Workflow::kRans},
    {"RTM", 1e-2, Workflow::kRans},         {"RTM", 1e-3, Workflow::kRans},
    {"RTM", 1e-4, Workflow::kRans},         {"Miranda", 1e-2, Workflow::kRans},
    {"Miranda", 1e-3, Workflow::kRans},     {"Miranda", 1e-4, Workflow::kRans},
    {"QMCPACK", 1e-2, Workflow::kRans},     {"QMCPACK", 1e-3, Workflow::kHuffman},
    {"QMCPACK", 1e-4, Workflow::kHuffman},
};

double modeled_ratio(const WorkflowDecision& d, Workflow wf) {
  for (const auto& s : d.scores) {
    if (s.workflow == wf) return s.est_ratio;
  }
  ADD_FAILURE() << "workflow " << static_cast<int>(wf) << " missing from score table";
  return 0.0;
}

TEST(SelectorModel, PinnedPickPerGeneratorAndBound) {
  for (const auto& pin : kPins) {
    const auto ds = make_dataset(pin.dataset, kScale);
    const auto& f = ds.fields.front();
    const auto field = generate_field(f.spec);

    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(pin.rel_eb);
    cfg.workflow = Workflow::kAuto;
    const auto c = Compressor(cfg).compress(field, f.spec.extents);
    EXPECT_EQ(c.stats.workflow_used, pin.expected_pick)
        << pin.dataset << " @ " << pin.rel_eb;

    // The pick must actually decode within bound.
    const auto d = Compressor::decompress(c.bytes);
    EXPECT_LT(compare_fields(field, d.data).max_abs_error, c.stats.eb_abs)
        << pin.dataset << " @ " << pin.rel_eb;

    // Every registered codec was scored.
    EXPECT_EQ(c.stats.decision.scores.size(), std::size(kAllCodecs))
        << pin.dataset << " @ " << pin.rel_eb;
  }
}

TEST(SelectorModel, ModeledRatioOrderingMatchesMeasured) {
  // Among the native codecs, whenever the model projects a decisive ratio
  // gap (>3x), measurement must agree on the direction.  Closer projections
  // are inside the model's error bars and deliberately unasserted: the
  // RLE+VLE projection in particular is conservative (the histogram alone
  // cannot see the VLE gain over run values), so it under-projects by up to
  // ~2.6x on impulse-heavy fields without ever being over-projected.
  for (const auto& pin : kPins) {
    const auto ds = make_dataset(pin.dataset, kScale);
    const auto& f = ds.fields.front();
    const auto field = generate_field(f.spec);

    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(pin.rel_eb);
    cfg.workflow = Workflow::kAuto;
    const auto auto_run = Compressor(cfg).compress(field, f.spec.extents);

    std::map<Workflow, double> measured;
    for (const auto wf : kAllCodecs) {
      CompressConfig fc;
      fc.eb = ErrorBound::relative(pin.rel_eb);
      fc.workflow = wf;
      measured[wf] = Compressor(fc).compress(field, f.spec.extents).stats.ratio;
    }

    for (const auto a : kNativeCodecs) {
      for (const auto b : kNativeCodecs) {
        const double ma = modeled_ratio(auto_run.stats.decision, a);
        const double mb = modeled_ratio(auto_run.stats.decision, b);
        if (ma > 3.0 * mb) {
          EXPECT_GT(measured[a], measured[b])
              << pin.dataset << " @ " << pin.rel_eb << ": model ranks codec "
              << static_cast<int>(a) << " (est " << ma << ") decisively over "
              << static_cast<int>(b) << " (est " << mb << ") but measurement disagrees";
        }
      }
    }

    // The LZ projections must stay conservative on structured fields: never
    // claiming more ratio than the measured outcome by a decisive margin
    // (that is what would make the selector wrongly route to them).
    for (const auto wf : {Workflow::kLzh, Workflow::kLzr}) {
      EXPECT_LT(modeled_ratio(auto_run.stats.decision, wf), 1.4 * measured[wf])
          << pin.dataset << " @ " << pin.rel_eb;
    }

    // And the auto pick must be measured-competitive: within 0.65x of the
    // best measured native codec (the model trades a little ratio for
    // throughput by design; what it must never do is fall off a cliff).
    double best_native = 0.0;
    for (const auto wf : kNativeCodecs) best_native = std::max(best_native, measured[wf]);
    EXPECT_GT(measured[auto_run.stats.workflow_used], 0.65 * best_native)
        << pin.dataset << " @ " << pin.rel_eb;
  }
}

}  // namespace
