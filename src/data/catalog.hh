// szp::data — catalog of the paper's seven evaluation datasets (Table III),
// realized as synthetic FieldSpecs calibrated against the published
// compression ratios (see synthetic.hh for the substitution rationale).
//
// Extents at axis_scale=1.0 follow the paper where practical (CESM-ATM,
// Hurricane, Nyx, RTM, Miranda, QMCPACK); the 1-D HACC field is reduced
// from 280,953,867 to 2^23 elements (the paper itself notes snapshots are
// statistically similar, §V-A.3).  Benches pass axis_scale < 1 to fit the
// host; scaling is per axis so relative dataset sizes are preserved.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "data/synthetic.hh"

namespace szp::data {

struct CatalogField {
  FieldSpec spec;
  // Published reference compression ratios at rel-eb 1e-2, where the paper
  // reports them (Table IV for CESM; 0 = not reported).
  double paper_vle_cr = 0.0;  ///< cuSZ Workflow-Huffman (qh)
  double paper_rle_cr = 0.0;  ///< cuSZ+ Workflow-RLE
  double paper_qhg_cr = 0.0;  ///< cuSZ + gzip reference (qhg)
};

struct Dataset {
  std::string name;
  int rank = 1;
  std::vector<CatalogField> fields;
};

/// Names of the seven datasets: "HACC", "CESM-ATM", "Hurricane", "Nyx",
/// "RTM", "Miranda", "QMCPACK".
[[nodiscard]] const std::vector<std::string>& dataset_names();

/// Build the dataset's field specs with every axis multiplied by
/// `axis_scale` (extents floor at 8).
[[nodiscard]] Dataset make_dataset(std::string_view name, double axis_scale = 1.0);

/// Look up one field by name; throws std::out_of_range if absent.
[[nodiscard]] const CatalogField& find_field(const Dataset& ds, std::string_view field);

}  // namespace szp::data
