// szp::data — synthetic scientific-field generator.
//
// The paper evaluates on seven SDRBench datasets (HACC, CESM-ATM,
// Hurricane-ISABEL, Nyx, RTM, Miranda, QMCPACK) that are not shipped here;
// this generator is the documented substitution (DESIGN.md §2).  The
// compression phenomena the paper studies are functions of three field
// properties, each of which is an explicit knob:
//
//   * step_rel — typical per-sample gradient relative to the value range.
//     Controls how many nonzero quant-codes the Lorenzo predictor emits as
//     the error bound tightens (the Table I eb sweep).  Realized as
//     multi-octave value noise: coarse white noise upsampled by
//     interpolation, so the per-step delta is amplitude/upsample-factor.
//   * impulse_density — fraction of samples carrying localized jumps a few
//     percent of the range in magnitude.  These break RLE runs at loose
//     bounds and become multi-bit codes/outliers at tight bounds; the knob
//     maps 1:1 to the paper's per-field RLE compression ratios (Table IV).
//   * plateau_fraction — fraction of the domain clamped to a constant
//     (land/ocean/ice masks, vacuum regions).  Plateaus are what the
//     pattern-finding stage (gzip in `qhg`) exploits far beyond Huffman's
//     1-bit floor, reproducing the qh-vs-qhg gap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace szp::data {

struct FieldSpec {
  std::string dataset;
  std::string name;
  Extents extents;
  double step_rel = 1e-3;        ///< per-step gradient / value range
  double impulse_density = 0.05; ///< fraction of samples with jumps
  double impulse_scale = 0.03;   ///< jump magnitude / value range
  double plateau_fraction = 0.0; ///< fraction of domain clamped flat
  double value_offset = 0.0;     ///< additive offset (non-zero-centered data)
  double value_scale = 1.0;      ///< overall magnitude
  std::uint64_t seed = 0;        ///< derived from dataset+name when 0
};

/// Deterministically generate the field described by `spec`.
[[nodiscard]] std::vector<float> generate_field(const FieldSpec& spec);

/// Stable 64-bit hash for seeding (FNV-1a over dataset + '/' + name).
[[nodiscard]] std::uint64_t field_seed(const std::string& dataset, const std::string& name);

}  // namespace szp::data
