#include "data/catalog.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace szp::data {

namespace {

std::size_t scaled(std::size_t dim, double s) {
  return std::max<std::size_t>(8, static_cast<std::size_t>(std::llround(static_cast<double>(dim) * s)));
}

Extents scale_extents(const Extents& e, double s) {
  Extents r = e;
  r.nx = scaled(e.nx, s);
  if (e.rank >= 2) r.ny = scaled(e.ny, s);
  if (e.rank >= 3) r.nz = scaled(e.nz, s);
  return r;
}

CatalogField field(const std::string& dataset, std::string name, Extents ext, double step_rel,
                   double impulse_density, double plateau, double vle = 0.0, double rle = 0.0,
                   double qhg = 0.0) {
  CatalogField f;
  f.spec.dataset = dataset;
  f.spec.name = std::move(name);
  f.spec.extents = ext;
  f.spec.step_rel = step_rel;
  f.spec.impulse_density = impulse_density;
  f.spec.impulse_scale = 0.04;
  f.spec.plateau_fraction = plateau;
  f.paper_vle_cr = vle;
  f.paper_rle_cr = rle;
  f.paper_qhg_cr = qhg;
  return f;
}


/// Derive (step_rel, impulse_density) from a target Workflow-RLE
/// compression ratio at rel-eb 1e-2.  Empirical run-rate model (measured on
/// this generator): a smooth texture of per-step relative gradient g breaks
/// runs at ~113·g per element in 2-D (~169 in 3-D) via quantization-grid
/// crossings, and one isolated impulse breaks ~7.6 runs in 2-D (~15 in
/// 3-D, ~3.8 in 1-D).  The run budget 1/CR is split 70% texture / 30%
/// impulses; plateau clamping swallows about half of in-plateau impulses.
struct RleCalibration {
  double step_rel;
  double impulse_density;
};
RleCalibration calibrate_for_rle_cr(double cr, int rank, double plateau) {
  const double texture_runs_per_step = rank == 3 ? 169.0 : rank == 2 ? 113.0 : 56.0;
  const double runs_per_impulse = rank == 3 ? 15.0 : rank == 2 ? 7.6 : 3.8;
  RleCalibration c;
  c.step_rel = 0.7 / cr / texture_runs_per_step;
  c.impulse_density = 0.3 / cr / runs_per_impulse / (1.0 - plateau / 2.0);
  return c;
}

/// CESM-ATM per-field calibration: Table IV's (qh VLE, RLE, qhg) columns at
/// rel-eb 1e-2.  impulse_density is derived from the RLE CR target (see
/// make_cesm) and plateau_fraction from the qhg headroom.
struct CesmRow {
  const char* name;
  double vle, rle, qhg;
};
constexpr CesmRow kCesmRows[] = {
    {"AEROD_v", 25.06, 10.46, 94.27},   {"FLNTC", 23.66, 8.87, 56.95},
    {"FLUTC", 23.66, 8.91, 57.06},      {"FSDSC", 23.88, 26.10, 58.30},
    {"FSDTOA", 26.10, 43.65, 430.61},   {"FSNSC", 23.44, 10.11, 51.73},
    {"FSNTC", 23.88, 12.33, 60.35},     {"FSNTOAC", 25.06, 12.46, 111.63},
    {"ICEFRAC", 25.31, 16.57, 159.18},  {"LANDFRAC", 23.66, 13.98, 97.15},
    {"OCNFRAC", 23.88, 11.23, 89.55},   {"ODV_bcar1", 25.83, 37.28, 189.28},
    {"ODV_bcar2", 25.83, 30.71, 197.32},{"ODV_dust1", 26.10, 22.91, 242.89},
    {"ODV_dust2", 26.37, 24.02, 319.55},{"ODV_dust3", 26.10, 33.29, 270.50},
    {"ODV_dust4", 26.10, 46.81, 230.40},{"ODV_ocar1", 24.11, 41.17, 65.81},
    {"ODV_ocar2", 24.11, 33.79, 64.92}, {"PHIS", 25.06, 9.51, 98.86},
    {"PRECSC", 25.83, 19.50, 176.21},   {"PRECSL", 25.57, 15.39, 142.23},
    {"PSL", 24.34, 12.43, 83.13},       {"PS", 21.09, 7.45, 98.59},
    {"SNOWHICE", 25.31, 15.14, 144.74}, {"SNOWHLND", 25.57, 21.18, 184.39},
    {"SOLIN", 26.10, 43.65, 430.62},    {"TAUX", 25.06, 11.30, 100.30},
    {"TAUY", 25.31, 12.40, 106.55},     {"TREFHT", 24.58, 8.75, 82.50},
    {"TREFMXAV", 24.58, 9.60, 87.39},   {"TROP_P", 24.82, 11.19, 93.78},
    {"TROP_T", 24.82, 11.10, 92.94},    {"TROP_Z", 24.58, 9.48, 84.81},
    {"TSMX", 23.88, 8.55, 64.95},
};

Dataset make_hacc(double s) {
  Dataset ds{"HACC", 1, {}};
  const Extents e = scale_extents(Extents::d1(std::size_t{1} << 23), s);
  // Positions are smoother than velocities; Table I HACC qh column implies
  // a per-step gradient near 5e-3 of range at the dataset level.
  for (const char* n : {"x", "y", "z"}) {
    ds.fields.push_back(field(ds.name, n, e, 3.5e-3, 0.010, 0.0));
  }
  for (const char* n : {"vx", "vy", "vz"}) {
    ds.fields.push_back(field(ds.name, n, e, 6.0e-3, 0.030, 0.0));
  }
  return ds;
}

Dataset make_cesm(double s) {
  Dataset ds{"CESM-ATM", 2, {}};
  const Extents e = scale_extents(Extents::d2(1800, 3600), s);
  for (const CesmRow& row : kCesmRows) {
    const double plateau = std::clamp((row.qhg - 60.0) / 600.0, 0.0, 0.6);
    const auto cal = calibrate_for_rle_cr(row.rle, 2, plateau);
    ds.fields.push_back(field(ds.name, row.name, e, cal.step_rel, cal.impulse_density,
                              plateau, row.vle, row.rle, row.qhg));
  }
  return ds;
}

Dataset make_hurricane(double s) {
  Dataset ds{"Hurricane", 3, {}};
  const Extents e = scale_extents(Extents::d3(100, 500, 500), s);
  // Nominal Workflow-RLE CR targets chosen so the dataset-average Huffman
  // ratios track Table I's Hurricane column.
  const auto add = [&](const char* name, double rle_cr, double plateau) {
    const auto cal = calibrate_for_rle_cr(rle_cr, 3, plateau);
    ds.fields.push_back(field(ds.name, name, e, cal.step_rel, cal.impulse_density, plateau));
  };
  add("CLOUDf48", 30.0, 0.45);
  add("Pf48", 25.0, 0.0);
  add("TCf48", 20.0, 0.0);
  add("QVAPORf48", 18.0, 0.30);
  add("Uf48", 12.0, 0.0);
  add("Vf48", 12.0, 0.0);
  add("Wf48", 8.0, 0.0);
  add("PRECIPf48", 15.0, 0.40);
  add("QCLOUDf48", 28.0, 0.50);
  add("QGRAUPf48", 35.0, 0.55);
  add("QICEf48", 32.0, 0.50);
  add("QRAINf48", 26.0, 0.45);
  add("QSNOWf48", 30.0, 0.50);
  add("QVAPORf02", 22.0, 0.30);
  add("TCf02", 24.0, 0.0);
  add("Uf02", 14.0, 0.0);
  add("Vf02", 14.0, 0.0);
  add("Wf02", 9.0, 0.0);
  add("Pf02", 28.0, 0.0);
  add("CLOUDf02", 34.0, 0.50);
  return ds;
}

Dataset make_nyx(double s) {
  Dataset ds{"Nyx", 3, {}};
  const Extents e = scale_extents(Extents::d3(512, 512, 512), s);
  // baryon_density's target matches Table V's measured 122.7x RLE ratio.
  const auto add = [&](const char* name, double rle_cr, double plateau) {
    const auto cal = calibrate_for_rle_cr(rle_cr, 3, plateau);
    ds.fields.push_back(field(ds.name, name, e, cal.step_rel, cal.impulse_density, plateau));
  };
  add("baryon_density", 122.7, 0.35);
  add("dark_matter_density", 60.0, 0.30);
  add("temperature", 40.0, 0.0);
  add("velocity_x", 25.0, 0.0);
  add("velocity_y", 25.0, 0.0);
  add("velocity_z", 25.0, 0.0);
  return ds;
}

Dataset make_rtm(double s) {
  Dataset ds{"RTM", 3, {}};
  const Extents e = scale_extents(Extents::d3(235, 449, 449), s);
  // snapshot-2800's target matches Table V's measured 76x RLE ratio.
  const auto add = [&](const char* name, double rle_cr, double plateau) {
    const auto cal = calibrate_for_rle_cr(rle_cr, 3, plateau);
    ds.fields.push_back(field(ds.name, name, e, cal.step_rel, cal.impulse_density, plateau));
  };
  add("snapshot-2800", 76.0, 0.25);
  add("snapshot-2090", 60.0, 0.30);
  add("snapshot-0800", 100.0, 0.45);
  add("snapshot-1400", 85.0, 0.35);
  add("snapshot-2000", 65.0, 0.30);
  add("snapshot-2400", 70.0, 0.28);
  add("snapshot-3200", 55.0, 0.22);
  add("snapshot-3600", 50.0, 0.20);
  add("snapshot-0400", 120.0, 0.55);
  add("snapshot-0090", 150.0, 0.65);
  return ds;
}

Dataset make_miranda(double s) {
  Dataset ds{"Miranda", 3, {}};
  const Extents e = scale_extents(Extents::d3(256, 384, 384), s);
  const auto add = [&](const char* name, double rle_cr, double plateau) {
    const auto cal = calibrate_for_rle_cr(rle_cr, 3, plateau);
    ds.fields.push_back(field(ds.name, name, e, cal.step_rel, cal.impulse_density, plateau));
  };
  add("density", 20.0, 0.0);
  add("pressure", 25.0, 0.0);
  add("velocityx", 12.0, 0.0);
  add("velocityy", 12.0, 0.0);
  add("velocityz", 12.0, 0.0);
  add("diffusivity", 15.0, 0.20);
  add("viscocity", 16.0, 0.15);
  return ds;
}

Dataset make_qmcpack(double s) {
  Dataset ds{"QMCPACK", 3, {}};
  // 288x115x69x69 reinterpreted as 3-D (paper Table III).
  const Extents e = scale_extents(Extents::d3(288l * 115, 69, 69), s);
  const auto add = [&](const char* name, double rle_cr, double plateau) {
    const auto cal = calibrate_for_rle_cr(rle_cr, 3, plateau);
    ds.fields.push_back(field(ds.name, name, e, cal.step_rel, cal.impulse_density, plateau));
  };
  add("einspline-preconditioned", 25.0, 0.0);
  add("einspline-raw", 12.0, 0.0);
  return ds;
}

}  // namespace

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names{"HACC",    "CESM-ATM", "Hurricane", "Nyx",
                                              "RTM",     "Miranda",  "QMCPACK"};
  return names;
}

Dataset make_dataset(std::string_view name, double axis_scale) {
  if (axis_scale <= 0.0 || axis_scale > 1.0) {
    throw std::invalid_argument("make_dataset: axis_scale must be in (0, 1]");
  }
  if (name == "HACC") return make_hacc(axis_scale);
  if (name == "CESM-ATM") return make_cesm(axis_scale);
  if (name == "Hurricane") return make_hurricane(axis_scale);
  if (name == "Nyx") return make_nyx(axis_scale);
  if (name == "RTM") return make_rtm(axis_scale);
  if (name == "Miranda") return make_miranda(axis_scale);
  if (name == "QMCPACK") return make_qmcpack(axis_scale);
  throw std::invalid_argument("make_dataset: unknown dataset '" + std::string(name) + "'");
}

const CatalogField& find_field(const Dataset& ds, std::string_view field_name) {
  const auto it = std::find_if(ds.fields.begin(), ds.fields.end(),
                               [&](const CatalogField& f) { return f.spec.name == field_name; });
  if (it == ds.fields.end()) {
    throw std::out_of_range("find_field: no field '" + std::string(field_name) + "' in " + ds.name);
  }
  return *it;
}

}  // namespace szp::data
