#include "data/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "sim/launch.hh"

namespace szp::data {

namespace {

/// SplitMix64: cheap, stateless, index-addressable PRNG so generation
/// parallelizes without per-thread stream bookkeeping.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

/// One octave of value noise: a coarse lattice of white noise, either
/// linearly interpolated (smooth texture; per-step gradient is
/// ~(2/3)·amplitude/upsample) or piecewise-constant (structural patches:
/// zero gradient inside a patch, a jump only at patch boundaries).
///
/// The split matters for scale fidelity: the *structure* octave gives the
/// field an O(amplitude) value range at any grid size without contributing
/// per-sample gradient, so the texture octave alone controls the
/// quant-code statistics — making them invariant under the axis_scale the
/// benches use to fit the host (see FieldSpec docs).
class Octave {
 public:
  Octave(const Extents& ext, double upsample, double amplitude, bool nearest,
         std::uint64_t seed)
      : amplitude_(amplitude), inv_u_(1.0 / upsample), nearest_(nearest), seed_(seed) {
    cx_ = static_cast<std::size_t>(std::ceil(static_cast<double>(ext.nx) * inv_u_)) + 2;
    cy_ = static_cast<std::size_t>(std::ceil(static_cast<double>(ext.ny) * inv_u_)) + 2;
  }

  [[nodiscard]] double sample(std::size_t z, std::size_t y, std::size_t x) const {
    const double fx = static_cast<double>(x) * inv_u_;
    const double fy = static_cast<double>(y) * inv_u_;
    const double fz = static_cast<double>(z) * inv_u_;
    const auto ix = static_cast<std::size_t>(fx);
    const auto iy = static_cast<std::size_t>(fy);
    const auto iz = static_cast<std::size_t>(fz);

    if (nearest_) {
      return amplitude_ * lattice(iz, iy, ix);
    }

    const double tx = fx - static_cast<double>(ix);
    const double ty = fy - static_cast<double>(iy);
    const double tz = fz - static_cast<double>(iz);
    double c[2][2][2];
    for (int dz = 0; dz < 2; ++dz)
      for (int dy = 0; dy < 2; ++dy)
        for (int dx = 0; dx < 2; ++dx) c[dz][dy][dx] = lattice(iz + dz, iy + dy, ix + dx);
    const auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
    const double y0 = lerp(lerp(c[0][0][0], c[0][0][1], tx), lerp(c[0][1][0], c[0][1][1], tx), ty);
    const double y1 = lerp(lerp(c[1][0][0], c[1][0][1], tx), lerp(c[1][1][0], c[1][1][1], tx), ty);
    return amplitude_ * lerp(y0, y1, tz);
  }

 private:
  [[nodiscard]] double lattice(std::size_t z, std::size_t y, std::size_t x) const {
    const std::uint64_t key = (z * cy_ + y) * cx_ + x;
    return 2.0 * uniform01(seed_ ^ (key * 0x2545f4914f6cdd1dull)) - 1.0;
  }

  double amplitude_;
  double inv_u_;
  bool nearest_;
  std::uint64_t seed_;
  std::size_t cx_, cy_;
};

}  // namespace

std::uint64_t field_seed(const std::string& dataset, const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](char c) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  };
  for (const char c : dataset) mix(c);
  mix('/');
  for (const char c : name) mix(c);
  return h;
}

std::vector<float> generate_field(const FieldSpec& spec) {
  const Extents& ext = spec.extents;
  const std::size_t n = ext.count();
  std::vector<float> out(n);

  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : field_seed(spec.dataset, spec.name);

  // Structure: piecewise-constant patches, ~5 per axis, amplitude 1 — the
  // field's O(1) value range at any grid size, with no per-sample gradient.
  const double dim_max = static_cast<double>(std::max({ext.nx, ext.ny, ext.nz}));
  const Octave structure(ext, std::max(2.0, dim_max / 5.0), 1.0, /*nearest=*/true, seed ^ 0xA);

  // Texture: fixed 16-sample upsample; amplitude derived from step_rel so
  // the per-step gradient is step_rel of the ~2-wide structural range
  // regardless of the grid size: (2/3)·amp/16 = 2·step_rel.
  const double span_est = 2.0;
  const double texture_amp = spec.step_rel * span_est * 16.0 * 1.5;
  const Octave texture(ext, 16.0, texture_amp, /*nearest=*/false, seed ^ 0xB);

  // Pass 1: base field + realized range (plateau threshold and impulse
  // magnitude are set off the realized span so no realization collapses).
  double base_min = 1e30, base_max = -1e30;
#pragma omp parallel for schedule(static) reduction(min : base_min) reduction(max : base_max)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::size_t x = idx % ext.nx;
    const std::size_t y = (idx / ext.nx) % ext.ny;
    const std::size_t z = idx / (ext.nx * ext.ny);
    const double v = structure.sample(z, y, x) + texture.sample(z, y, x);
    base_min = std::min(base_min, v);
    base_max = std::max(base_max, v);
    out[idx] = static_cast<float>(v);
  }

  const double base_span = std::max(base_max - base_min, 1e-9);
  const double plateau_level = base_min + spec.plateau_fraction * base_span;
  const double impulse_abs = spec.impulse_scale * base_span;

  // Pass 2: localized jumps (fronts, shocks, point sources), then the
  // plateau clamp (after, so plateaus stay exactly constant, as real
  // land/ice masks are).
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    double v = out[idx];
    if (spec.impulse_density > 0.0) {
      const std::uint64_t r = splitmix64(seed ^ (idx * 0x9e3779b97f4a7c15ull));
      if (uniform01(r) < spec.impulse_density) {
        // Fixed magnitude, random sign: impulses land on a couple of quant
        // codes (as real fields' localized features do) instead of smearing
        // the histogram across many symbols.
        const double sign = (r & 1) != 0 ? 1.0 : -1.0;
        v += sign * impulse_abs;
      }
    }
    if (spec.plateau_fraction > 0.0 && v < plateau_level) v = plateau_level;
    out[idx] = static_cast<float>(spec.value_offset + spec.value_scale * v);
  }
  return out;
}

}  // namespace szp::data
