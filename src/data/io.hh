// szp::data — raw binary float I/O in the SDRBench convention (.f32 files:
// bare little-endian float32, row-major).  Lets users run the harness on
// real SDRBench downloads in place of the synthetic generator.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

namespace szp::data {

/// Read a whole file as raw bytes; throws std::runtime_error if missing.
[[nodiscard]] std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path);

/// Write raw bytes (overwrites).
void write_bytes(const std::filesystem::path& path, std::span<const std::uint8_t> data);

/// Read a .f32 file; throws std::runtime_error if missing or not a whole
/// number of floats.
[[nodiscard]] std::vector<float> read_f32(const std::filesystem::path& path);

/// Write a .f32 file (overwrites).
void write_f32(const std::filesystem::path& path, std::span<const float> data);

}  // namespace szp::data
