#include "data/io.hh"

#include <fstream>
#include <stdexcept>

namespace szp::data {

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("read_bytes: cannot open " + path.string());
  }
  std::vector<std::uint8_t> data(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(data.size()));
  if (!in) {
    throw std::runtime_error("read_bytes: short read from " + path.string());
  }
  return data;
}

void write_bytes(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_bytes: cannot open " + path.string());
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
  if (!out) {
    throw std::runtime_error("write_bytes: short write to " + path.string());
  }
}

std::vector<float> read_f32(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("read_f32: cannot open " + path.string());
  }
  const auto bytes = static_cast<std::size_t>(in.tellg());
  if (bytes % sizeof(float) != 0) {
    throw std::runtime_error("read_f32: " + path.string() + " is not a whole number of floats");
  }
  std::vector<float> data(bytes / sizeof(float));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(bytes));
  if (!in) {
    throw std::runtime_error("read_f32: short read from " + path.string());
  }
  return data;
}

void write_f32(const std::filesystem::path& path, std::span<const float> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_f32: cannot open " + path.string());
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
  if (!out) {
    throw std::runtime_error("write_f32: short write to " + path.string());
  }
}

}  // namespace szp::data
