// szp::sim::traffic — static traffic & roofline analysis from footprint
// contracts.
//
// The footprint contracts (sim/contract.hh) declare, per kernel, the exact
// element sets each block reads and writes as affine expressions over the
// block index.  The disjointness prover consumes them for safety; this
// analyzer consumes the same clauses for *performance*: symbolically
// evaluating a contract over a concrete launch geometry yields
//
//   * per-buffer, per-launch read/write byte volumes (the paper's
//     bytes-moved arguments, derived instead of hand-written),
//   * a coalescing-efficiency estimate — the fraction of touched 32-word
//     (128-byte) DRAM segments actually used, the quantity Nsight reports
//     as gld_efficiency/gst_efficiency.  Unit-stride windows score ~1.0;
//     strided or narrow clamped windows score < 1.0 because each access
//     drags a whole segment through DRAM, and
//   * an arithmetic-intensity + roofline classification against a
//     DeviceSpec: flops/byte above the device's ridge point means
//     compute-bound, below means bandwidth-bound (the paper's central
//     claim is that these kernels sit left of the ridge).
//
// Volumes are derived per clause kind:
//   kWindow / kBox  exact: evaluate the clause's element ranges for every
//                   block and sum lengths (clamping included).  Segments
//                   are counted per contiguous range.
//   kAll            whole buffer once per block (broadcast reads — every
//                   block really does pull the bytes).
//   kDynamic        data-dependent: the declared worst-case bound
//                   (Clause::dyn_bound elements across the whole launch)
//                   counted once per launch; without a bound, the whole
//                   buffer.  Rows carrying such a clause are flagged
//                   `dyn` — the volume is an upper bound, not an identity.
//
// The analyzer runs inside checked::launch_impl whenever checking is on or
// a traffic::Scope is open on the calling thread; results accumulate in a
// process-global per-kernel registry (szp analyze --traffic/--roofline) and
// in the innermost Scope, which kernel wrappers use to replace hand-written
// KernelCost traffic constants with the derived volumes.  The interval tier
// cross-validates observed bytes against the static prediction: observed
// traffic beyond the declared volume (the *_dyn slack included) is a
// TrafficFinding — a stale contract or an under-declared bound.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/contract.hh"
#include "sim/device.hh"
#include "sim/profile.hh"

namespace szp::sim::traffic {

/// Registered extent of one buffer, as the analyzer needs it.  Mirrors
/// checked::BufMeta without depending on check.hh (check.hh includes us).
struct BufShape {
  const char* name = "?";
  std::uint64_t elems = 0;
  std::uint32_t elem_bytes = 1;
};

/// DRAM transaction granularity the coalescing estimate scores against:
/// 32 words × 4 bytes = one 128-byte cache line.
inline constexpr std::uint64_t kSegmentBytes = 128;

/// Statically derived traffic of one launch on one registered buffer.
struct BufVolume {
  std::string buffer;
  std::uint64_t bytes_read = 0;        ///< useful bytes loaded
  std::uint64_t bytes_written = 0;     ///< useful bytes stored
  std::uint64_t seg_bytes_read = 0;    ///< touched read segments × kSegmentBytes
  std::uint64_t seg_bytes_written = 0; ///< touched write segments × kSegmentBytes
  bool dynamic = false;  ///< a kDynamic clause contributed: volume is an upper bound
  /// An *unbounded* kDynamic clause contributed to the direction: the whole
  /// buffer stands in for the table, but there is no declared ceiling to
  /// validate observed traffic against (blocks may legitimately re-read).
  bool unbounded_read = false;
  bool unbounded_write = false;

  /// Row synthesized from a host_sink() clause: a declared worst-case byte
  /// volume into host-owned output state, with no registered buffer behind
  /// it (and therefore no observed traffic to validate against).
  bool host_sink = false;

  /// Useful bytes over segment bytes, 1.0 for untouched directions.
  [[nodiscard]] double coalescing_read() const;
  [[nodiscard]] double coalescing_write() const;
  [[nodiscard]] double coalescing() const;
};

/// Statically derived traffic of one launch, all registered buffers.
struct LaunchTraffic {
  std::vector<BufVolume> buffers;  ///< registration order

  [[nodiscard]] std::uint64_t bytes_read() const;
  [[nodiscard]] std::uint64_t bytes_written() const;
  [[nodiscard]] std::uint64_t bytes() const { return bytes_read() + bytes_written(); }
  [[nodiscard]] double coalescing() const;
  [[nodiscard]] bool dynamic() const;
  [[nodiscard]] const BufVolume* find(std::string_view buffer) const;
};

/// Symbolically evaluate `con` over the concrete launch geometry: per-buffer
/// byte volumes, touched-segment counts, and dynamic-bound flags.
[[nodiscard]] LaunchTraffic analyze(const contract::Contract& con, const contract::Geom& geom,
                                    const std::vector<BufShape>& bufs);

// ---------------------------------------------------------------------------
// Scope: per-thread traffic accumulation for kernel wrappers.
// ---------------------------------------------------------------------------

/// While a Scope is open on a thread, every contract-carrying launch on that
/// thread is analyzed (even with checking off) and its volumes accumulate
/// here.  Wrappers open one around their launches and call apply() to
/// replace the traffic fields of their hand-assembled KernelCost with the
/// contract-derived volumes.  Scopes nest: a destroyed Scope rolls its
/// totals into its parent, so a wrapper that internally calls another
/// wrapped primitive (huffman encode → device scan) sees the full traffic.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] int launches() const { return launches_; }

  /// Overwrite cost's bytes_read/bytes_written/launches with the volumes
  /// recorded so far.  flops, pattern, and calibration factors stay the
  /// wrapper's (the contract knows traffic, not arithmetic).
  void apply(KernelCost& cost) const;

 private:
  friend void record(const char* kernel, const LaunchTraffic& t);
  Scope* parent_ = nullptr;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  int launches_ = 0;
};

/// True when a Scope is open on this thread: checked::launch_impl must
/// analyze the contract even when checking is off.
[[nodiscard]] bool scope_active();

/// Feed one analyzed launch into the innermost Scope (if any) and the
/// process-global per-kernel registry.  Called by checked::launch_impl.
void record(const char* kernel, const LaunchTraffic& t);

// ---------------------------------------------------------------------------
// Per-kernel registry (mirrors contract's verdict registry).
// ---------------------------------------------------------------------------

/// Accumulated static traffic of one kernel across its recorded launches.
struct KernelTraffic {
  std::string kernel;
  std::uint64_t launches = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t seg_bytes_read = 0;
  std::uint64_t seg_bytes_written = 0;
  bool dynamic = false;  ///< any launch carried a dynamic (upper-bound) clause

  [[nodiscard]] std::uint64_t bytes() const { return bytes_read + bytes_written; }
  [[nodiscard]] double coalescing() const;
};

/// Snapshot of the registry, sorted by kernel name.
[[nodiscard]] std::vector<KernelTraffic> registry_snapshot();

/// Drop all recorded traffic (tests, fresh analyze runs).
void reset_registry();

/// Deterministic per-kernel traffic table: launches, read/write volumes,
/// coalescing score, dyn flag.  Sorted by kernel name.
[[nodiscard]] std::string traffic_table_text();

// ---------------------------------------------------------------------------
// Roofline classification.
// ---------------------------------------------------------------------------

/// Static arithmetic-intensity estimate (flops per DRAM byte) for a
/// registered kernel, from a fixed per-kernel table calibrated against the
/// wrappers' KernelCost flops.  Unknown kernels default to streaming
/// (intensity well left of any ridge): bandwidth-bound is the null
/// hypothesis the paper argues from.
[[nodiscard]] double kernel_intensity(std::string_view kernel);

/// One kernel's position against the device roofline.
struct RooflineRow {
  std::string kernel;
  double intensity = 0.0;      ///< flops per byte (static estimate)
  double ridge = 0.0;          ///< device ridge point at this kernel's coalescing
  double coalescing = 1.0;     ///< from the traffic registry
  bool compute_bound = false;  ///< intensity > ridge
};

/// Classify one registry entry against `dev`.  The ridge point is
/// compute_peak / (bandwidth × coalescing): poorly coalesced kernels hit
/// the bandwidth wall earlier, so their effective ridge moves right.
[[nodiscard]] RooflineRow classify(const DeviceSpec& dev, const KernelTraffic& t);

/// Deterministic roofline table for every kernel in the registry, sorted by
/// kernel name.
[[nodiscard]] std::string roofline_table_text(const DeviceSpec& dev);

}  // namespace szp::sim::traffic
