// szp::sim — roofline projection of a KernelCost onto a DeviceSpec.
//
// Model:  t = launches * launch_overhead
//           + max( bytes / (BW_peak * pattern_factor * occupancy_factor),
//                  flops / (FLOPS_peak * compute_eff) )
//
// occupancy_factor derates kernels whose degree of parallelism cannot fill
// the device (the paper's observation that small CESM/RTM fields lose
// efficiency on A100, §V-C.2, falls out of this term combined with the fixed
// launch overhead).
#pragma once

#include "sim/device.hh"
#include "sim/profile.hh"

namespace szp::sim {

/// Projected execution time of one kernel/stage on `dev`, in seconds.
[[nodiscard]] double modeled_seconds(const DeviceSpec& dev, const KernelCost& cost);

/// Paper-style throughput: uncompressed payload bytes over modeled time, GB/s.
[[nodiscard]] double modeled_throughput_gbps(const DeviceSpec& dev, const KernelCost& cost,
                                             std::uint64_t payload_bytes);

/// Throughput for a serial pipeline of stages (sum of modeled times), GB/s.
[[nodiscard]] double modeled_pipeline_gbps(const DeviceSpec& dev,
                                           const PipelineReport& pipeline,
                                           std::uint64_t payload_bytes);

/// Sum of modeled stage times for a serial pipeline, in seconds.
[[nodiscard]] double modeled_pipeline_seconds(const DeviceSpec& dev,
                                              const PipelineReport& pipeline);

/// Projected cost of `allocations` device-buffer allocate/free pairs.
/// cudaMalloc takes a driver lock and implicitly synchronizes, so its cost
/// is a fixed per-call latency independent of kernel work — the reason cuSZ
/// successors (FZ-GPU, HPDC'23) restructure the pipeline around reusable
/// device buffers.  Modeled as allocations * device_alloc_us.
[[nodiscard]] double modeled_alloc_seconds(const DeviceSpec& dev, std::uint64_t allocations);

}  // namespace szp::sim
