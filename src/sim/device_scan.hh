// szp::sim — device-wide scan, mirroring cub::DeviceScan.
//
// Used by the Huffman "deflate" stage: per-chunk bit lengths are
// exclusive-scanned to obtain each chunk's output bit offset before the
// encoded fragments are concatenated.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp::sim {

/// Exclusive prefix sum: out[i] = sum(in[0..i)).  Returns the grand total.
/// Two-pass tile decomposition (per-tile reduce, carry scan, per-tile scan),
/// the same decoupled structure cub uses; tiles run block-parallel.
template <typename T>
T device_exclusive_scan(std::span<const T> in, std::span<T> out,
                        std::size_t tile = 4096) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  const std::size_t tiles = div_ceil(n, tile);
  std::vector<T> tile_total(tiles);

  checked::launch("device_scan/tile_reduce", tiles,
                  checked::bufs(checked::in(in, "in"),
                                checked::out(std::span<T>(tile_total), "tile_total")),
                  contract::contract(
                      contract::reads("in", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp(),
                      contract::writes("tile_total", contract::b(), 1)),
                  [&, n, tile](std::size_t t, const auto& vin, const auto& vtot) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc = static_cast<T>(acc + vin[i]);
    vtot[t] = acc;
  });

  // Carry scan over tile totals (small, serial).
  T grand{};
  for (std::size_t t = 0; t < tiles; ++t) {
    const T tot = tile_total[t];
    tile_total[t] = grand;
    grand = static_cast<T>(grand + tot);
  }

  checked::launch("device_scan/tile_scan", tiles,
                  checked::bufs(checked::in(in, "in"),
                                checked::in(std::span<const T>(tile_total), "tile_carry"),
                                checked::out(out, "out")),
                  contract::contract(
                      contract::reads("in", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp(),
                      contract::reads("tile_carry", contract::b(), 1),
                      contract::writes("out", contract::b() * tile,
                                       static_cast<std::int64_t>(tile)).clamp()),
                  [&, n, tile](std::size_t t, const auto& vin, const auto& vcarry,
                               const auto& vout) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    T acc = vcarry[t];
    for (std::size_t i = lo; i < hi; ++i) {
      vout[i] = acc;
      acc = static_cast<T>(acc + vin[i]);
    }
  });
  return grand;
}

/// Inclusive prefix sum: out[i] = sum(in[0..i]).
template <typename T>
T device_inclusive_scan(std::span<const T> in, std::span<T> out,
                        std::size_t tile = 4096) {
  const T grand = device_exclusive_scan(in, out, tile);
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = static_cast<T>(out[i] + in[i]);
  return grand;
}

}  // namespace szp::sim
