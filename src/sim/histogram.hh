// szp::sim — device-wide histogram, mirroring the privatized-bins GPU
// algorithm of Gómez-Luna et al. that cuSZ/cuSZ+ use (paper §V-C.2, ref 34).
//
// Each block accumulates into a private copy of the bins (the GPU's
// shared-memory replication to dodge atomic contention), then private copies
// are merged.  Out-of-range values are ignored (callers guarantee range).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

template <typename T>
std::vector<std::uint64_t> device_histogram(std::span<const T> data,
                                            std::size_t num_bins,
                                            std::size_t tile = 1 << 16) {
  std::vector<std::uint64_t> bins(num_bins, 0);
  const std::size_t n = data.size();
  if (n == 0 || num_bins == 0) return bins;
  const std::size_t tiles = div_ceil(n, tile);

#pragma omp parallel
  {
    std::vector<std::uint64_t> priv(num_bins, 0);  // block-private bins
#pragma omp for schedule(static) nowait
    for (long long t = 0; t < static_cast<long long>(tiles); ++t) {
      const std::size_t lo = static_cast<std::size_t>(t) * tile;
      const std::size_t hi = lo + tile < n ? lo + tile : n;
      for (std::size_t i = lo; i < hi; ++i) {
        const auto v = static_cast<std::size_t>(data[i]);
        if (v < num_bins) ++priv[v];
      }
    }
#pragma omp critical(szp_sim_histogram_merge)
    for (std::size_t b = 0; b < num_bins; ++b) bins[b] += priv[b];
  }
  return bins;
}

/// Analytic GPU cost of the histogram kernel over n elements of width
/// `elem_bytes` with `num_bins` bins.
[[nodiscard]] inline KernelCost histogram_cost(std::size_t n, std::size_t elem_bytes,
                                               std::size_t num_bins) {
  KernelCost c;
  c.bytes_read = n * elem_bytes;
  c.bytes_written = num_bins * sizeof(std::uint32_t);
  c.flops = n;  // one bin update per element
  c.parallel_items = n;
  c.pattern = AccessPattern::kAtomicHeavy;
  return c;
}

}  // namespace szp::sim
