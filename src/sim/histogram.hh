// szp::sim — device-wide histogram, mirroring the privatized-bins GPU
// algorithm of Gómez-Luna et al. that cuSZ/cuSZ+ use (paper §V-C.2, ref 34).
//
// Each block accumulates into a private copy of the bins (the GPU's
// shared-memory replication to dodge atomic contention), then private copies
// are merged by a second kernel over disjoint bin ranges.  Both kernels go
// through checked-launch registration so --check covers the histogram, and
// the tile kernel models its cooperating threads: lanes own contiguous
// sub-stripes of the tile and update the block-private row with atomicAdds,
// which word-granular checking (check.hh tier 2) treats as non-conflicting —
// exactly racecheck's view of shared-memory histogram privatization.
// Out-of-range values are ignored (callers guarantee range).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

/// Workspace-reuse variant: fills `bins` (and uses `priv` as the private-row
/// scratch) with capacity-preserving assigns, so repeated calls at the same
/// size allocate nothing (see core/workspace.hh).
template <typename T>
void device_histogram_into(std::span<const T> data, std::size_t num_bins,
                           std::vector<std::uint64_t>& bins,
                           std::vector<std::uint64_t>& priv,
                           std::size_t tile = 1 << 16) {
  bins.assign(num_bins, 0);
  const std::size_t n = data.size();
  if (n == 0 || num_bins == 0) return;
  const std::size_t tiles = div_ceil(n, tile);

  // Kernel 1: every block fills its private row of bins (shared-memory
  // replication), kLanes threads striding over the tile.
  priv.assign(tiles * num_bins, 0);
  checked::launch(
      "histogram/tile_bins", tiles,
      checked::bufs(checked::in(data, "data"),
                    checked::inout(std::span<std::uint64_t>(priv), "priv_bins")),
      contract::contract(
          contract::reads("data", contract::b() * tile, static_cast<std::int64_t>(tile)).clamp(),
          contract::updates("priv_bins", contract::b() * num_bins,
                            static_cast<std::int64_t>(num_bins))),
      [&](std::size_t t, const auto& vdata, const auto& vpriv) {
        const std::size_t lo = t * tile;
        const std::size_t hi = std::min(lo + tile, n);
        const std::size_t row = t * num_bins;
        constexpr std::size_t kLanes = 32;
        const std::size_t per_lane = div_ceil(hi - lo, kLanes);
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          checked::this_thread(static_cast<std::uint32_t>(lane));
          const std::size_t a = std::min(lo + lane * per_lane, hi);
          const std::size_t b = std::min(a + per_lane, hi);
          for (std::size_t i = a; i < b; ++i) {
            const auto v = static_cast<std::size_t>(vdata[i]);
            if (v < num_bins) vpriv.atomic_add(row + v, 1);
          }
        }
        checked::barrier();
      });

  // Kernel 2: merge — each block owns a disjoint range of bins and sums the
  // private rows column-wise.
  constexpr std::size_t kMergeBins = 256;
  checked::launch(
      "histogram/merge", div_ceil(num_bins, kMergeBins),
      checked::bufs(checked::in(std::span<const std::uint64_t>(priv), "priv_bins"),
                    checked::out(std::span<std::uint64_t>(bins), "bins")),
      contract::contract(
          contract::reads("priv_bins", contract::b() * kMergeBins, kMergeBins)
              .strided(static_cast<std::int64_t>(tiles), static_cast<std::int64_t>(num_bins))
              .clamp(),
          contract::writes("bins", contract::b() * kMergeBins, kMergeBins).clamp()),
      [&](std::size_t blk, const auto& vpriv, const auto& vbins) {
        const std::size_t b0 = blk * kMergeBins;
        const std::size_t b1 = std::min(b0 + kMergeBins, num_bins);
        for (std::size_t b = b0; b < b1; ++b) {
          std::uint64_t sum = 0;
          for (std::size_t t = 0; t < tiles; ++t) sum += vpriv[t * num_bins + b];
          vbins[b] = sum;
        }
      });
}

template <typename T>
std::vector<std::uint64_t> device_histogram(std::span<const T> data,
                                            std::size_t num_bins,
                                            std::size_t tile = 1 << 16) {
  std::vector<std::uint64_t> bins;
  std::vector<std::uint64_t> priv;
  device_histogram_into(data, num_bins, bins, priv, tile);
  return bins;
}

/// Analytic GPU cost of the histogram kernel over n elements of width
/// `elem_bytes` with `num_bins` bins.
[[nodiscard]] inline KernelCost histogram_cost(std::size_t n, std::size_t elem_bytes,
                                               std::size_t num_bins) {
  KernelCost c;
  c.bytes_read = n * elem_bytes;
  c.bytes_written = num_bins * sizeof(std::uint32_t);
  c.flops = n;  // one bin update per element
  c.parallel_items = n;
  c.pattern = AccessPattern::kAtomicHeavy;
  return c;
}

}  // namespace szp::sim
