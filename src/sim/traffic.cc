// szp::sim::traffic — implementation of the static traffic analyzer.
//
// Volume derivation walks every block of the launch geometry and evaluates
// the contract's affine clauses exactly as the containment validator does
// (contract.cc), but instead of building covers it sums range lengths and
// counts touched 128-byte DRAM segments per contiguous range.  The segment
// count is what makes the coalescing estimate: a unit-stride window of W
// bytes touches ceil(W/128)+O(1) segments (score ~1.0), while a strided
// family of narrow windows drags a whole segment per window (score ~eb/128).
//
// validate_traffic() is the dynamic side of the bargain: per buffer and
// direction, the sum over blocks of the observed union-normalized footprint
// must stay within the statically derived volume.  Affine clauses are
// already covered block-by-block by validate_observed, so the check bites
// exactly where the static table is on its honor — the `*_dyn` bounds.
#include "sim/traffic.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

#include "sim/check.hh"

namespace szp::sim::traffic {

namespace {

using contract::Clause;
using contract::ClauseKind;

thread_local Scope* t_scope = nullptr;

std::map<std::string, KernelTraffic>& registry() {
  static std::map<std::string, KernelTraffic> reg;
  return reg;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

/// Segment bytes dragged through DRAM by one contiguous element range.
std::uint64_t segment_bytes(std::uint64_t byte_lo, std::uint64_t byte_hi) {
  if (byte_hi <= byte_lo) return 0;
  const std::uint64_t first = byte_lo / kSegmentBytes;
  const std::uint64_t last = (byte_hi - 1) / kSegmentBytes;
  return (last - first + 1) * kSegmentBytes;
}

/// Accumulator for one clause's contribution to one buffer direction.
struct Volume {
  std::uint64_t bytes = 0;
  std::uint64_t seg_bytes = 0;
};

/// Sum one clause's element ranges over every block of the geometry
/// (kWindow / kBox only).  Ranges are clamped to [0, elems) — out-of-bounds
/// declarations are the prover's complaint, not a traffic source.
Volume affine_volume(const Clause& cl, const contract::Geom& geom, std::uint64_t elems,
                     std::uint32_t eb) {
  Volume v;
  const auto n = static_cast<std::int64_t>(elems);
  const bool coords = geom.coords();
  const auto add_range = [&](std::int64_t lo, std::int64_t hi) {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min(hi, n);
    if (hi <= lo) return;
    v.bytes += static_cast<std::uint64_t>(hi - lo) * eb;
    v.seg_bytes += segment_bytes(static_cast<std::uint64_t>(lo) * eb,
                                 static_cast<std::uint64_t>(hi) * eb);
  };
  for (std::int64_t b = 0; b < geom.grid; ++b) {
    std::int64_t x = 0, y = 0, z = 0;
    if (coords) {
      x = b % geom.gx;
      y = (b / geom.gx) % geom.gy;
      z = b / (geom.gx * geom.gy);
    }
    if (cl.kind == ClauseKind::kWindow) {
      const std::int64_t base = contract::eval(cl.base, b, x, y, z);
      for (std::int64_t i = 0; i < cl.count; ++i) {
        const std::int64_t lo = base + i * cl.stride;
        add_range(lo, lo + cl.len);
      }
    } else {  // kBox
      const auto clamp_axis = [](std::int64_t val, std::int64_t ax) {
        return std::max<std::int64_t>(0, std::min(val, ax));
      };
      const std::int64_t x0 = clamp_axis(contract::eval(cl.lo_x, b, x, y, z), cl.nx);
      const std::int64_t x1 =
          clamp_axis(contract::eval(cl.lo_x, b, x, y, z) + cl.span_x, cl.nx);
      const std::int64_t y0 = clamp_axis(contract::eval(cl.lo_y, b, x, y, z), cl.ny);
      const std::int64_t y1 =
          clamp_axis(contract::eval(cl.lo_y, b, x, y, z) + cl.span_y, cl.ny);
      const std::int64_t z0 = clamp_axis(contract::eval(cl.lo_z, b, x, y, z), cl.nz);
      const std::int64_t z1 =
          clamp_axis(contract::eval(cl.lo_z, b, x, y, z) + cl.span_z, cl.nz);
      if (x1 <= x0) continue;
      for (std::int64_t zz = z0; zz < z1; ++zz) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
          const std::int64_t row = (zz * cl.ny + yy) * cl.nx;
          add_range(row + x0, row + x1);
        }
      }
    }
  }
  return v;
}

double ratio(std::uint64_t useful, std::uint64_t segs) {
  return segs == 0 ? 1.0 : static_cast<double>(useful) / static_cast<double>(segs);
}

/// Compute-side efficiency used by the roofline ridge point; matches the
/// compute_eff the modeled-time projection applies (perf_model.cc).
constexpr double kComputeEff = 0.35;

struct IntensityEntry {
  const char* kernel;
  double flops_per_byte;
};

/// Static flops-per-DRAM-byte estimates per kernel, consistent with the
/// flops the wrappers report in their KernelCost records divided by the
/// contract-derived byte volumes at representative sizes.  Kernels whose
/// inner loop is a bit-serial chain (Huffman/LZ decode, match search) sit
/// right of the V100 ridge (~5.5 flop/B at full coalescing) — the reason
/// the gap-array decode work exists; everything else is left of it, which
/// is the paper's bandwidth-bound claim.
constexpr IntensityEntry kIntensity[] = {
    {"dense_to_sparse/count", 0.5},
    {"dense_to_sparse/fill", 0.3},
    {"device_scan/tile_reduce", 0.25},
    {"device_scan/tile_scan", 0.25},
    {"fuse_quant_codes", 0.1},
    {"histogram/merge", 0.25},
    {"histogram/tile_bins", 1.0},
    {"huffman_decode", 60.0},
    {"huffman_encode/chunk_sizes", 1.0},
    {"huffman_encode/deflate", 2.5},
    {"lorenzo_construct", 0.6},
    {"lorenzo_reconstruct_coarse", 0.7},
    {"lorenzo_reconstruct_fused", 0.5},
    {"lz77/freq_merge", 0.25},
    {"lz77/token_freq", 1.0},
    {"lz77/tokenize", 20.0},
    {"lzh/decode", 30.0},
    {"lzh/encode", 2.5},
    {"lzr/expand", 0.5},
    {"lzr/token_split", 0.5},
    {"regression_construct", 0.8},
    {"regression_reconstruct", 0.6},
    {"reduce_by_key/tile_runs", 1.0},
    {"rle_decode/expand", 0.5},
    {"scatter_add", 0.25},
    {"zfp_compress", 4.0},
    {"zfp_decompress", 4.0},
};

}  // namespace

double BufVolume::coalescing_read() const { return ratio(bytes_read, seg_bytes_read); }
double BufVolume::coalescing_write() const { return ratio(bytes_written, seg_bytes_written); }
double BufVolume::coalescing() const {
  return ratio(bytes_read + bytes_written, seg_bytes_read + seg_bytes_written);
}

std::uint64_t LaunchTraffic::bytes_read() const {
  std::uint64_t sum = 0;
  for (const BufVolume& b : buffers) sum += b.bytes_read;
  return sum;
}

std::uint64_t LaunchTraffic::bytes_written() const {
  std::uint64_t sum = 0;
  for (const BufVolume& b : buffers) sum += b.bytes_written;
  return sum;
}

double LaunchTraffic::coalescing() const {
  std::uint64_t useful = 0, segs = 0;
  for (const BufVolume& b : buffers) {
    useful += b.bytes_read + b.bytes_written;
    segs += b.seg_bytes_read + b.seg_bytes_written;
  }
  return ratio(useful, segs);
}

bool LaunchTraffic::dynamic() const {
  for (const BufVolume& b : buffers) {
    if (b.dynamic) return true;
  }
  return false;
}

const BufVolume* LaunchTraffic::find(std::string_view buffer) const {
  for (const BufVolume& b : buffers) {
    if (b.buffer == buffer) return &b;
  }
  return nullptr;
}

LaunchTraffic analyze(const contract::Contract& con, const contract::Geom& geom,
                      const std::vector<BufShape>& bufs) {
  LaunchTraffic t;
  t.buffers.resize(bufs.size());
  for (std::size_t i = 0; i < bufs.size(); ++i) t.buffers[i].buffer = bufs[i].name;

  for (const Clause& cl : con.clauses) {
    if (cl.kind == ClauseKind::kHostSink) {
      // Host-owned output (bit writers, size-capped growing vectors): a
      // declared worst-case byte volume with no registered buffer behind
      // it.  Booked once per launch as a dynamic contiguous store, appended
      // after the registered-buffer rows so their indices stay aligned with
      // the launch's BufMeta order.
      BufVolume sink;
      sink.buffer = cl.buf;
      sink.dynamic = true;
      sink.host_sink = true;
      sink.bytes_written = cl.dyn_bound >= 0 ? static_cast<std::uint64_t>(cl.dyn_bound) : 0;
      sink.seg_bytes_written = segment_bytes(0, sink.bytes_written);
      t.buffers.push_back(sink);
      continue;
    }
    std::size_t bi = bufs.size();
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      if (std::strcmp(cl.buf, bufs[i].name) == 0) {
        bi = i;
        break;
      }
    }
    if (bi == bufs.size()) continue;  // clause names nothing registered
    BufVolume& out = t.buffers[bi];
    const std::uint64_t elems = bufs[bi].elems;
    const std::uint32_t eb = bufs[bi].elem_bytes;
    const bool is_read = cl.access != contract::AccessKind::kWrite;
    const bool is_write = cl.access != contract::AccessKind::kRead;

    Volume v;
    switch (cl.kind) {
      case ClauseKind::kWindow:
      case ClauseKind::kBox:
        v = affine_volume(cl, geom, elems, eb);
        break;
      case ClauseKind::kAll: {
        // Broadcast: every block pulls the whole buffer.
        const std::uint64_t per_block = elems * eb;
        v.bytes = per_block * static_cast<std::uint64_t>(geom.grid);
        v.seg_bytes = segment_bytes(0, per_block) * static_cast<std::uint64_t>(geom.grid);
        break;
      }
      case ClauseKind::kDynamic: {
        // Data-dependent: the declared worst-case element volume across the
        // whole launch (the whole buffer when unbounded), counted once.
        // Layout unknown — scored as contiguous, flagged `dyn` in tables.
        const std::uint64_t bound =
            cl.dyn_bound >= 0 ? static_cast<std::uint64_t>(cl.dyn_bound) : elems;
        v.bytes = bound * eb;
        v.seg_bytes = segment_bytes(0, v.bytes);
        out.dynamic = true;
        if (cl.dyn_bound < 0) {
          if (is_read) out.unbounded_read = true;
          if (is_write) out.unbounded_write = true;
        }
        break;
      }
      case ClauseKind::kHostSink:
        break;  // handled above, never reaches the registered-buffer path
    }
    if (is_read) {
      out.bytes_read += v.bytes;
      out.seg_bytes_read += v.seg_bytes;
    }
    if (is_write) {
      out.bytes_written += v.bytes;
      out.seg_bytes_written += v.seg_bytes;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Scope.
// ---------------------------------------------------------------------------

Scope::Scope() : parent_(t_scope) { t_scope = this; }

Scope::~Scope() {
  t_scope = parent_;
  if (parent_ != nullptr) {
    parent_->bytes_read_ += bytes_read_;
    parent_->bytes_written_ += bytes_written_;
    parent_->launches_ += launches_;
  }
}

void Scope::apply(KernelCost& cost) const {
  cost.bytes_read = bytes_read_;
  cost.bytes_written = bytes_written_;
  if (launches_ > 0) cost.launches = launches_;
}

bool scope_active() { return t_scope != nullptr; }

void record(const char* kernel, const LaunchTraffic& t) {
  const std::uint64_t br = t.bytes_read();
  const std::uint64_t bw = t.bytes_written();
  if (t_scope != nullptr) {
    t_scope->bytes_read_ += br;
    t_scope->bytes_written_ += bw;
    ++t_scope->launches_;
  }
  std::uint64_t sr = 0, sw = 0;
  for (const BufVolume& b : t.buffers) {
    sr += b.seg_bytes_read;
    sw += b.seg_bytes_written;
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  KernelTraffic& kt = registry()[kernel];
  kt.kernel = kernel;
  ++kt.launches;
  kt.bytes_read += br;
  kt.bytes_written += bw;
  kt.seg_bytes_read += sr;
  kt.seg_bytes_written += sw;
  kt.dynamic = kt.dynamic || t.dynamic();
}

// ---------------------------------------------------------------------------
// Registry and tables.
// ---------------------------------------------------------------------------

double KernelTraffic::coalescing() const {
  return ratio(bytes_read + bytes_written, seg_bytes_read + seg_bytes_written);
}

std::vector<KernelTraffic> registry_snapshot() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<KernelTraffic> out;
  out.reserve(registry().size());
  for (const auto& [name, kt] : registry()) out.push_back(kt);
  return out;  // std::map iterates sorted by kernel name
}

void reset_registry() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
}

std::string traffic_table_text() {
  const std::vector<KernelTraffic> rows = registry_snapshot();
  std::ostringstream os;
  std::uint64_t total_read = 0, total_written = 0;
  for (const KernelTraffic& r : rows) {
    total_read += r.bytes_read;
    total_written += r.bytes_written;
  }
  os << "static traffic: " << rows.size() << " kernel(s), " << total_read << " byte(s) read, "
     << total_written << " byte(s) written (contract-derived)\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-28s %9s %14s %14s %9s %4s\n", "kernel", "launches",
                "read-bytes", "write-bytes", "coalesce", "dyn");
  os << line;
  for (const KernelTraffic& r : rows) {
    std::snprintf(line, sizeof(line), "  %-28s %9" PRIu64 " %14" PRIu64 " %14" PRIu64 " %9.2f %4s\n",
                  r.kernel.c_str(), r.launches, r.bytes_read, r.bytes_written, r.coalescing(),
                  r.dynamic ? "dyn" : "");
    os << line;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Roofline.
// ---------------------------------------------------------------------------

double kernel_intensity(std::string_view kernel) {
  for (const IntensityEntry& e : kIntensity) {
    if (kernel == e.kernel) return e.flops_per_byte;
  }
  return 0.5;  // unknown kernels: streaming, bandwidth-bound null hypothesis
}

RooflineRow classify(const DeviceSpec& dev, const KernelTraffic& t) {
  RooflineRow row;
  row.kernel = t.kernel;
  row.intensity = kernel_intensity(t.kernel);
  row.coalescing = t.coalescing();
  const double effective_bw = dev.mem_bw_gbps * 1e9 * std::max(row.coalescing, 1e-6);
  row.ridge = dev.fp32_tflops * 1e12 * kComputeEff / effective_bw;
  row.compute_bound = row.intensity > row.ridge;
  return row;
}

std::string roofline_table_text(const DeviceSpec& dev) {
  const std::vector<KernelTraffic> rows = registry_snapshot();
  std::ostringstream os;
  const double base_ridge = dev.fp32_tflops * 1e12 * kComputeEff / (dev.mem_bw_gbps * 1e9);
  char line[160];
  std::snprintf(line, sizeof(line),
                "roofline (%s): ridge %.2f flop/B at full coalescing, %.0f GB/s peak\n",
                dev.name.c_str(), base_ridge, dev.mem_bw_gbps);
  os << line;
  std::snprintf(line, sizeof(line), "  %-28s %9s %9s %7s  %s\n", "kernel", "flop/B", "coalesce",
                "ridge", "bound");
  os << line;
  for (const KernelTraffic& t : rows) {
    const RooflineRow r = classify(dev, t);
    std::snprintf(line, sizeof(line), "  %-28s %9.2f %9.2f %7.2f  %s\n", r.kernel.c_str(),
                  r.intensity, r.coalescing, r.ridge,
                  r.compute_bound ? "compute" : "bandwidth");
    os << line;
  }
  return os.str();
}

}  // namespace szp::sim::traffic

// ---------------------------------------------------------------------------
// Dynamic cross-validation (declared in check.hh's detail namespace).
// ---------------------------------------------------------------------------

namespace szp::sim::checked::detail {

void validate_traffic(const char* kernel, const traffic::LaunchTraffic& predicted,
                      const std::vector<BufMeta>& bufs, const std::vector<BlockLog>& logs) {
  // Host-sink rows are appended after the registered-buffer prefix; a
  // shorter vector means traffic was never derived for this launch.
  if (predicted.buffers.size() < bufs.size()) return;

  // Observed bytes per (buffer, direction): per block, union-normalize the
  // logged intervals (the log coalesces only adjacent records, so repeats
  // would double-count), then sum across blocks — re-reads across blocks are
  // real DRAM traffic, re-reads within one are assumed cached.
  struct Range {
    std::uint64_t lo, hi;
  };
  const std::size_t nb = bufs.size();
  std::vector<std::uint64_t> observed(nb * 2, 0);
  std::vector<std::vector<Range>> scratch(nb * 2);
  for (const BlockLog& log : logs) {
    if (log.acc.empty()) continue;
    for (auto& v : scratch) v.clear();
    for (const TaggedInterval& t : log.acc) {
      scratch[t.buf * 2 + (t.write ? 1 : 0)].push_back({t.lo, t.hi});
    }
    for (std::size_t s = 0; s < scratch.size(); ++s) {
      auto& v = scratch[s];
      if (v.empty()) continue;
      std::sort(v.begin(), v.end(), [](const Range& a, const Range& b) { return a.lo < b.lo; });
      std::uint64_t lo = v[0].lo, hi = v[0].hi;
      for (std::size_t i = 1; i < v.size(); ++i) {
        if (v[i].lo <= hi) {
          hi = std::max(hi, v[i].hi);
        } else {
          observed[s] += hi - lo;
          lo = v[i].lo;
          hi = v[i].hi;
        }
      }
      observed[s] += hi - lo;
    }
  }

  for (std::size_t i = 0; i < nb; ++i) {
    const traffic::BufVolume& p = predicted.buffers[i];
    if (!p.unbounded_read && observed[i * 2] > p.bytes_read) {
      append_traffic_finding({kernel, bufs[i].name, observed[i * 2], p.bytes_read, false});
    }
    if (!p.unbounded_write && observed[i * 2 + 1] > p.bytes_written) {
      append_traffic_finding({kernel, bufs[i].name, observed[i * 2 + 1], p.bytes_written, true});
    }
  }
}

}  // namespace szp::sim::checked::detail
