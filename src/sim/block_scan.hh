// szp::sim — block-level inclusive scan, mirroring NVIDIA::cub BlockScan.
//
// cuSZ+'s fine-grained Lorenzo reconstruction (§IV-B.3) is built from
// chunk-wide inclusive partial sums.  On the GPU these are cub BlockScans
// (1-D) or handcrafted warp-shuffle scans with per-thread "sequentiality"
// (2-D/3-D).  Here the same structure is expressed as a tiled scan: each
// virtual thread owns `seq` consecutive items (its thread-private tp[]
// fragment), fragments are scanned trivially, and fragment totals are
// propagated — exactly the three-phase scan the paper describes, so the
// sequentiality ablation in bench/table2 exercises real code structure.
//
// The `_at` variants take an accessor (`at(i)` -> T&) instead of a pointer
// and attribute each fragment to its virtual thread via
// checked::this_thread(), so word-granular checking (check.hh tier 2) sees
// the scan exactly as racecheck would see the cub version: lanes striding
// over disjoint words, carries in registers — benign, never flagged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/check.hh"

namespace szp::sim {

/// Inclusive scan of at(0..n) in place, organized as ceil(n/seq) virtual
/// threads each owning `seq` consecutive elements.  Lane l = lane_base + f
/// is attributed fragment f's accesses; the carry lives in a register.
/// Phase 1: each fragment scans locally (thread-private registers).
/// Phase 2: running carry of fragment totals (the warp-shuffle propagate).
/// No trailing barrier: callers decide where the epoch closes.
template <typename T, typename At>
void block_inclusive_scan_at(At&& at, std::size_t n, std::size_t seq = 8,
                             std::uint32_t lane_base = 0) {
  if (n == 0) return;
  if (seq == 0) seq = 1;
  T carry{};
  std::uint32_t lane = lane_base;
  for (std::size_t frag = 0; frag < n; frag += seq, ++lane) {
    checked::this_thread(lane);
    const std::size_t end = frag + seq < n ? frag + seq : n;
    T acc = carry;
    for (std::size_t i = frag; i < end; ++i) {
      acc = static_cast<T>(acc + at(i));
      at(i) = acc;
    }
    carry = acc;
  }
}

/// Inclusive scan of `chunk` in place (contiguous convenience wrapper).
/// Closes the barrier epoch afterwards, like the cub scan's __syncthreads().
template <typename T>
void block_inclusive_scan(std::span<T> chunk, std::size_t seq = 8) {
  block_inclusive_scan_at<T>([p = chunk.data()](std::size_t i) -> T& { return p[i]; },
                             chunk.size(), seq);
  checked::barrier();
}

/// Inclusive scan over a strided sequence via an accessor (`at(k)` -> T& for
/// the k-th *logical* element), used for the y/z passes of the 2-D/3-D
/// partial sums where a "row" is a column of the chunk.  One virtual thread
/// (`lane`) owns the whole sequence.
template <typename T, typename At>
void block_inclusive_scan_strided_at(At&& at, std::size_t count, std::uint32_t lane = 0) {
  checked::this_thread(lane);
  T acc{};
  for (std::size_t i = 0; i < count; ++i) {
    acc = static_cast<T>(acc + at(i));
    at(i) = acc;
  }
}

/// Inclusive scan over a strided sequence (stride in elements).  Equivalent
/// to block_inclusive_scan on the gathered sequence.
template <typename T>
void block_inclusive_scan_strided(T* base, std::size_t count, std::size_t stride) {
  block_inclusive_scan_strided_at<T>(
      [base, stride](std::size_t k) -> T& { return base[k * stride]; }, count);
}

}  // namespace szp::sim
