// szp::sim — block-level inclusive scan, mirroring NVIDIA::cub BlockScan.
//
// cuSZ+'s fine-grained Lorenzo reconstruction (§IV-B.3) is built from
// chunk-wide inclusive partial sums.  On the GPU these are cub BlockScans
// (1-D) or handcrafted warp-shuffle scans with per-thread "sequentiality"
// (2-D/3-D).  Here the same structure is expressed as a tiled scan: each
// virtual thread owns `seq` consecutive items (its thread-private tp[]
// fragment), fragments are scanned trivially, and fragment totals are
// propagated — exactly the three-phase scan the paper describes, so the
// sequentiality ablation in bench/table2 exercises real code structure.
#pragma once

#include <cstddef>
#include <span>

namespace szp::sim {

/// Inclusive scan of `chunk` in place, organized as ceil(n/seq) virtual
/// threads each owning `seq` consecutive elements.
/// Phase 1: each fragment scans locally (thread-private registers).
/// Phase 2: running carry of fragment totals (the warp-shuffle propagate).
template <typename T>
void block_inclusive_scan(std::span<T> chunk, std::size_t seq = 8) {
  const std::size_t n = chunk.size();
  if (n == 0) return;
  if (seq == 0) seq = 1;
  T carry{};
  for (std::size_t frag = 0; frag < n; frag += seq) {
    const std::size_t end = frag + seq < n ? frag + seq : n;
    T acc = carry;
    for (std::size_t i = frag; i < end; ++i) {
      acc = static_cast<T>(acc + chunk[i]);
      chunk[i] = acc;
    }
    carry = acc;
  }
}

/// Inclusive scan over a strided sequence (stride in elements), used for the
/// y/z passes of the 2-D/3-D partial sums where a "row" is a column of the
/// chunk.  Equivalent to block_inclusive_scan on the gathered sequence.
template <typename T>
void block_inclusive_scan_strided(T* base, std::size_t count, std::size_t stride) {
  T acc{};
  for (std::size_t i = 0; i < count; ++i) {
    acc = static_cast<T>(acc + base[i * stride]);
    base[i * stride] = acc;
  }
}

}  // namespace szp::sim
