// szp::sim::contract — static footprint contracts for checked launches.
//
// A contract declares, per registered buffer, the element footprint one
// block of the grid may touch, as affine expressions over the block index
// (`b()` for linear launches, `bx()`/`by()`/`bz()` for launch_3d grids) and
// launch parameters (plain runtime integers folded into the coefficients):
//
//   chk::launch("tile_sum", tiles, chk::bufs(chk::in(in, "in"), chk::out(out, "out")),
//               ctr::contract(ctr::reads("in", ctr::b() * tile, tile).clamp(),
//                             ctr::writes("out", ctr::b(), 1)),
//               body);
//
// Clause repertoire (all offsets/lengths in *elements* of the buffer):
//   reads/writes/updates(buf, base, len)           one window per block
//     .strided(count, stride)                      `count` windows, `stride` apart
//     .clamp()                                     window intersected with [0, elems)
//   reads_box/writes_box/updates_box(...)          per-axis tile of a row-major
//                                                  nx*ny*nz field, clamped at the
//                                                  field edges (launch_3d grids)
//   reads_all/writes_all/updates_all(buf)          whole buffer, every block
//   reads_dyn/writes_dyn/updates_dyn(buf)          data-dependent footprint: the
//                                                  declared set is the whole
//                                                  buffer, and the prover will
//                                                  never prove disjointness for
//                                                  writes — dynamic checking
//                                                  remains the authority
//   reads_dyn/writes_dyn/updates_dyn(buf, bound)   same, but with an explicit
//                                                  worst-case element volume
//                                                  across the whole launch —
//                                                  the traffic analyzer
//                                                  (sim/traffic.hh) uses it as
//                                                  an honest upper bound, and
//                                                  observed traffic beyond it
//                                                  is a TrafficFinding
//   host_sink(what, bytes)                         the launch's output lives
//                                                  in host-owned heap state
//                                                  (bit writers, growing
//                                                  vectors) instead of a
//                                                  registered buffer; declares
//                                                  a worst-case *byte* volume
//                                                  so the traffic table still
//                                                  carries the store side
//
// The contract is consumed twice: the prover (sim/prove.hh) decides once per
// launch geometry whether every write family is cross-block disjoint and
// every unclamped window in-bounds, and the checked-launch interval tier
// cross-validates each block's *observed* footprint against the declared one
// (observed ⊆ declared), so an under-declared contract is caught dynamically
// by the ordinary test suite.
#pragma once

#include <cstdint>
#include <vector>

namespace szp::sim::contract {

// ---------------------------------------------------------------------------
// Affine terms over the block coordinates.
// ---------------------------------------------------------------------------

/// c + kb*b + kx*bx + ky*by + kz*bz, evaluated per block at launch time.
/// Coefficients are concrete (launch parameters are runtime constants by the
/// time the contract is built), so "symbolic" reasoning reduces to interval
/// and stride arithmetic over these five integers.
struct Term {
  std::int64_t c = 0;
  std::int64_t kb = 0;
  std::int64_t kx = 0;
  std::int64_t ky = 0;
  std::int64_t kz = 0;

  [[nodiscard]] constexpr bool uses_linear() const { return kb != 0; }
  [[nodiscard]] constexpr bool uses_coords() const { return kx != 0 || ky != 0 || kz != 0; }
  [[nodiscard]] constexpr bool constant() const { return !uses_linear() && !uses_coords(); }
};

[[nodiscard]] constexpr Term lit(std::int64_t v) { return {v, 0, 0, 0, 0}; }
[[nodiscard]] constexpr Term b() { return {0, 1, 0, 0, 0}; }
[[nodiscard]] constexpr Term bx() { return {0, 0, 1, 0, 0}; }
[[nodiscard]] constexpr Term by() { return {0, 0, 0, 1, 0}; }
[[nodiscard]] constexpr Term bz() { return {0, 0, 0, 0, 1}; }

[[nodiscard]] constexpr Term operator+(Term a, Term o) {
  return {a.c + o.c, a.kb + o.kb, a.kx + o.kx, a.ky + o.ky, a.kz + o.kz};
}
[[nodiscard]] constexpr Term operator-(Term a, Term o) {
  return {a.c - o.c, a.kb - o.kb, a.kx - o.kx, a.ky - o.ky, a.kz - o.kz};
}
[[nodiscard]] constexpr Term operator+(Term a, std::int64_t v) { return a + lit(v); }
[[nodiscard]] constexpr Term operator-(Term a, std::int64_t v) { return a - lit(v); }
[[nodiscard]] constexpr Term operator+(std::int64_t v, Term a) { return lit(v) + a; }
[[nodiscard]] constexpr Term operator*(Term a, std::int64_t s) {
  return {a.c * s, a.kb * s, a.kx * s, a.ky * s, a.kz * s};
}
[[nodiscard]] constexpr Term operator*(std::int64_t s, Term a) { return a * s; }

/// Evaluate at a concrete block.  `b` is the linear block index; the
/// coordinates are its launch_3d decomposition (all zero for linear grids).
[[nodiscard]] constexpr std::int64_t eval(Term t, std::int64_t b, std::int64_t x, std::int64_t y,
                                          std::int64_t z) {
  return t.c + t.kb * b + t.kx * x + t.ky * y + t.kz * z;
}

// ---------------------------------------------------------------------------
// Clauses.
// ---------------------------------------------------------------------------

enum class AccessKind : std::uint8_t {
  kRead,       ///< block only reads the footprint
  kWrite,      ///< block only writes the footprint
  kReadWrite,  ///< block reads and writes the footprint (inout / atomics)
};

enum class ClauseKind : std::uint8_t {
  kWindow,   ///< affine base + length (+ optional repeat count/stride)
  kBox,      ///< per-axis tile of a row-major nx*ny*nz field, edge-clamped
  kAll,      ///< whole buffer from every block
  kDynamic,  ///< data-dependent: declared as the whole buffer, never provable
  kHostSink,  ///< declared byte volume into host-owned output state (no buffer)
};

struct Clause {
  const char* buf = "?";
  ClauseKind kind = ClauseKind::kWindow;
  AccessKind access = AccessKind::kRead;

  // kWindow: `count` windows of `len` elements starting at base + i*stride.
  Term base;
  std::int64_t len = 0;
  std::int64_t count = 1;
  std::int64_t stride = 0;
  bool clamped = false;  ///< window intersected with [0, elems)

  // kBox: per-axis lows and spans over a row-major field of extents
  // nx*ny*nz (which must equal the buffer's registered element count).
  // Each axis is clamped to [0, n_axis).
  Term lo_x, lo_y, lo_z;
  std::int64_t span_x = 1, span_y = 1, span_z = 1;
  std::int64_t nx = 1, ny = 1, nz = 1;

  // kDynamic: worst-case element volume across the whole launch, known at
  // launch time (scan totals, nnz counts).  -1 means "no bound declared":
  // the whole buffer stands in as the upper bound.
  std::int64_t dyn_bound = -1;

  /// Repeat the window `count` times, `stride` elements apart (gap arrays,
  /// per-block column families).
  [[nodiscard]] constexpr Clause strided(std::int64_t n, std::int64_t step) const {
    Clause cl = *this;
    cl.count = n;
    cl.stride = step;
    return cl;
  }

  /// Intersect the window with [0, elems): edge blocks of a tiled sweep
  /// declare a short (or empty) tail instead of spilling past the buffer.
  [[nodiscard]] constexpr Clause clamp() const {
    Clause cl = *this;
    cl.clamped = true;
    return cl;
  }
};

[[nodiscard]] constexpr Clause window(AccessKind a, const char* buf, Term base,
                                      std::int64_t len) {
  Clause cl;
  cl.buf = buf;
  cl.kind = ClauseKind::kWindow;
  cl.access = a;
  cl.base = base;
  cl.len = len;
  return cl;
}

[[nodiscard]] constexpr Clause reads(const char* buf, Term base, std::int64_t len) {
  return window(AccessKind::kRead, buf, base, len);
}
[[nodiscard]] constexpr Clause writes(const char* buf, Term base, std::int64_t len) {
  return window(AccessKind::kWrite, buf, base, len);
}
[[nodiscard]] constexpr Clause updates(const char* buf, Term base, std::int64_t len) {
  return window(AccessKind::kReadWrite, buf, base, len);
}

[[nodiscard]] constexpr Clause box(AccessKind a, const char* buf, Term x0, std::int64_t sx,
                                   Term y0, std::int64_t sy, Term z0, std::int64_t sz,
                                   std::int64_t nx, std::int64_t ny, std::int64_t nz) {
  Clause cl;
  cl.buf = buf;
  cl.kind = ClauseKind::kBox;
  cl.access = a;
  cl.lo_x = x0;
  cl.lo_y = y0;
  cl.lo_z = z0;
  cl.span_x = sx;
  cl.span_y = sy;
  cl.span_z = sz;
  cl.nx = nx;
  cl.ny = ny;
  cl.nz = nz;
  return cl;
}

[[nodiscard]] constexpr Clause reads_box(const char* buf, Term x0, std::int64_t sx, Term y0,
                                         std::int64_t sy, Term z0, std::int64_t sz, std::int64_t nx,
                                         std::int64_t ny, std::int64_t nz) {
  return box(AccessKind::kRead, buf, x0, sx, y0, sy, z0, sz, nx, ny, nz);
}
[[nodiscard]] constexpr Clause writes_box(const char* buf, Term x0, std::int64_t sx, Term y0,
                                          std::int64_t sy, Term z0, std::int64_t sz,
                                          std::int64_t nx, std::int64_t ny, std::int64_t nz) {
  return box(AccessKind::kWrite, buf, x0, sx, y0, sy, z0, sz, nx, ny, nz);
}
[[nodiscard]] constexpr Clause updates_box(const char* buf, Term x0, std::int64_t sx, Term y0,
                                           std::int64_t sy, Term z0, std::int64_t sz,
                                           std::int64_t nx, std::int64_t ny, std::int64_t nz) {
  return box(AccessKind::kReadWrite, buf, x0, sx, y0, sy, z0, sz, nx, ny, nz);
}

[[nodiscard]] constexpr Clause whole(AccessKind a, ClauseKind k, const char* buf) {
  Clause cl;
  cl.buf = buf;
  cl.kind = k;
  cl.access = a;
  return cl;
}

[[nodiscard]] constexpr Clause reads_all(const char* buf) {
  return whole(AccessKind::kRead, ClauseKind::kAll, buf);
}
[[nodiscard]] constexpr Clause writes_all(const char* buf) {
  return whole(AccessKind::kWrite, ClauseKind::kAll, buf);
}
[[nodiscard]] constexpr Clause updates_all(const char* buf) {
  return whole(AccessKind::kReadWrite, ClauseKind::kAll, buf);
}

[[nodiscard]] constexpr Clause reads_dyn(const char* buf) {
  return whole(AccessKind::kRead, ClauseKind::kDynamic, buf);
}
[[nodiscard]] constexpr Clause writes_dyn(const char* buf) {
  return whole(AccessKind::kWrite, ClauseKind::kDynamic, buf);
}
[[nodiscard]] constexpr Clause updates_dyn(const char* buf) {
  return whole(AccessKind::kReadWrite, ClauseKind::kDynamic, buf);
}

/// Bounded dynamic clauses: the footprint is still data-dependent (the
/// prover keeps its hands off), but the call site knows a worst-case element
/// volume before launching — a scan total, an nnz count — and declares it so
/// the traffic analyzer gets an honest upper bound instead of a hole.
[[nodiscard]] constexpr Clause bounded_dyn(AccessKind a, const char* buf, std::int64_t bound) {
  Clause cl = whole(a, ClauseKind::kDynamic, buf);
  cl.dyn_bound = bound >= 0 ? bound : -1;
  return cl;
}
[[nodiscard]] constexpr Clause reads_dyn(const char* buf, std::int64_t bound) {
  return bounded_dyn(AccessKind::kRead, buf, bound);
}
[[nodiscard]] constexpr Clause writes_dyn(const char* buf, std::int64_t bound) {
  return bounded_dyn(AccessKind::kWrite, buf, bound);
}
[[nodiscard]] constexpr Clause updates_dyn(const char* buf, std::int64_t bound) {
  return bounded_dyn(AccessKind::kReadWrite, buf, bound);
}

/// Host-sink clause: the kernel's output is host-owned heap state (a serial
/// bit writer, a vector growing under an untrusted size header) rather than
/// a registered device buffer, so there is nothing for the prover to prove
/// or the containment checker to observe.  `bytes` declares the worst-case
/// byte volume the launch may emit; the traffic analyzer books it as a
/// dynamic contiguous store so the kernel's table row still carries its
/// write side instead of a coverage hole.
[[nodiscard]] constexpr Clause host_sink(const char* what, std::int64_t bytes) {
  Clause cl;
  cl.buf = what;
  cl.kind = ClauseKind::kHostSink;
  cl.access = AccessKind::kWrite;
  cl.dyn_bound = bytes >= 0 ? bytes : 0;
  return cl;
}

// ---------------------------------------------------------------------------
// Contract and launch geometry.
// ---------------------------------------------------------------------------

struct Contract {
  std::vector<Clause> clauses;
};

template <typename... C>
[[nodiscard]] Contract contract(C... cl) {
  return Contract{{cl...}};
}

/// Grid geometry a contract is evaluated against.  `gx*gy*gz == grid` marks
/// a coordinate-aware (launch_3d) grid; otherwise the grid is linear and
/// only `b()` terms are meaningful.
struct Geom {
  std::int64_t grid = 1;
  std::int64_t gx = 1, gy = 1, gz = 1;

  [[nodiscard]] constexpr bool coords() const { return gx * gy * gz == grid; }
};

}  // namespace szp::sim::contract
