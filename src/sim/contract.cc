// szp::sim::contract — dynamic cross-validation of declared footprints.
//
// The prover (prove.cc) trusts the contract; this file makes the contract
// trustworthy: after every interval-tier launch, each block's *observed*
// footprint (the coalesced byte intervals the tracking views recorded) is
// checked for containment in the contract's evaluated footprint for that
// block.  An uncovered access means the contract under-declares — the
// static verdict is unsound for this kernel — and is reported as a
// ContractFinding through the same process-global report as races, so the
// ordinary SZP_SIM_CHECK=1 test suite catches stale contracts.
#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>
#include <vector>

#include "sim/check.hh"

namespace szp::sim::checked {

namespace {

using contract::Clause;
using contract::ClauseKind;

struct ERange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // half-open, elements
};

/// Evaluate one clause for one block into element ranges.
void clause_ranges(const Clause& cl, std::int64_t b, std::int64_t x, std::int64_t y,
                   std::int64_t z, std::int64_t elems, std::vector<ERange>& out) {
  switch (cl.kind) {
    case ClauseKind::kHostSink:
      return;  // no registered buffer behind it — nothing to cover
    case ClauseKind::kAll:
    case ClauseKind::kDynamic:
      out.push_back({0, elems});
      return;
    case ClauseKind::kWindow: {
      const std::int64_t base = contract::eval(cl.base, b, x, y, z);
      for (std::int64_t i = 0; i < cl.count; ++i) {
        std::int64_t lo = base + i * cl.stride;
        std::int64_t hi = lo + cl.len;
        if (cl.clamped) {
          lo = std::max<std::int64_t>(lo, 0);
          hi = std::min(hi, elems);
        }
        if (hi > lo) out.push_back({lo, hi});
      }
      return;
    }
    case ClauseKind::kBox: {
      const auto clamp_axis = [](std::int64_t v, std::int64_t n) {
        return std::max<std::int64_t>(0, std::min(v, n));
      };
      const std::int64_t x0 = clamp_axis(contract::eval(cl.lo_x, b, x, y, z), cl.nx);
      const std::int64_t x1 = clamp_axis(contract::eval(cl.lo_x, b, x, y, z) + cl.span_x, cl.nx);
      const std::int64_t y0 = clamp_axis(contract::eval(cl.lo_y, b, x, y, z), cl.ny);
      const std::int64_t y1 = clamp_axis(contract::eval(cl.lo_y, b, x, y, z) + cl.span_y, cl.ny);
      const std::int64_t z0 = clamp_axis(contract::eval(cl.lo_z, b, x, y, z), cl.nz);
      const std::int64_t z1 = clamp_axis(contract::eval(cl.lo_z, b, x, y, z) + cl.span_z, cl.nz);
      if (x1 <= x0) return;
      for (std::int64_t zz = z0; zz < z1; ++zz) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
          const std::int64_t row = (zz * cl.ny + yy) * cl.nx;
          out.push_back({row + x0, row + x1});
        }
      }
      return;
    }
  }
}

/// Sort and coalesce (overlapping or adjacent ranges merge).
void normalize(std::vector<ERange>& v) {
  std::sort(v.begin(), v.end(), [](const ERange& a, const ERange& b) { return a.lo < b.lo; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[i].lo <= v[out - 1].hi) {
      v[out - 1].hi = std::max(v[out - 1].hi, v[i].hi);
    } else {
      v[out++] = v[i];
    }
  }
  v.resize(out);
}

/// Is [lo, hi) inside the normalized union `v`?
bool covered(const std::vector<ERange>& v, std::int64_t lo, std::int64_t hi) {
  const auto it = std::upper_bound(
      v.begin(), v.end(), lo, [](std::int64_t val, const ERange& r) { return val < r.lo; });
  if (it == v.begin()) return false;
  const ERange& r = *(it - 1);
  return r.lo <= lo && hi <= r.hi;
}

}  // namespace

std::string ContractFinding::to_string() const {
  std::ostringstream os;
  os << "CONTRACT-MISMATCH " << (is_write ? "write" : "read") << ": kernel '" << kernel
     << "', buffer '" << buffer << "', block " << block << ", observed elements [" << elem_lo
     << ", " << elem_hi << ") escape the declared footprint";
  return os.str();
}

namespace detail {

void validate_observed(const char* kernel, const contract::Contract& con,
                       const contract::Geom& geom, const std::vector<BufMeta>& bufs,
                       const std::vector<BlockLog>& logs) {
  constexpr std::size_t kMaxMismatchPerLaunch = 8;
  const std::size_t nb = bufs.size();

  // Clause lists per registered buffer (clauses naming nothing registered
  // are a prover concern, not a containment one).
  std::vector<std::vector<const Clause*>> by_buf(nb);
  for (const Clause& cl : con.clauses) {
    for (std::size_t i = 0; i < nb; ++i) {
      if (std::strcmp(cl.buf, bufs[i].name) == 0) {
        by_buf[i].push_back(&cl);
        break;
      }
    }
  }

  std::size_t reported = 0;
  // Covers are rebuilt lazily per (block, buffer): index 0 holds the read
  // cover, index 1 the write cover.
  std::vector<std::array<std::vector<ERange>, 2>> covers(nb);
  std::vector<bool> cover_valid(nb, false);

  for (std::size_t b = 0; b < logs.size(); ++b) {
    const BlockLog& log = logs[b];
    if (log.acc.empty()) continue;
    std::int64_t x = 0, y = 0, z = 0;
    if (geom.coords()) {
      x = static_cast<std::int64_t>(b) % geom.gx;
      y = (static_cast<std::int64_t>(b) / geom.gx) % geom.gy;
      z = static_cast<std::int64_t>(b) / (geom.gx * geom.gy);
    }
    std::fill(cover_valid.begin(), cover_valid.end(), false);

    for (const TaggedInterval& t : log.acc) {
      const std::size_t bi = t.buf;
      if (!cover_valid[bi]) {
        covers[bi][0].clear();
        covers[bi][1].clear();
        const auto elems = static_cast<std::int64_t>(bufs[bi].elems);
        for (const Clause* cl : by_buf[bi]) {
          if (cl->access != contract::AccessKind::kWrite) {
            clause_ranges(*cl, static_cast<std::int64_t>(b), x, y, z, elems, covers[bi][0]);
          }
          if (cl->access != contract::AccessKind::kRead) {
            clause_ranges(*cl, static_cast<std::int64_t>(b), x, y, z, elems, covers[bi][1]);
          }
        }
        normalize(covers[bi][0]);
        normalize(covers[bi][1]);
        cover_valid[bi] = true;
      }
      const std::uint32_t eb = bufs[bi].elem_bytes;
      const auto lo = static_cast<std::int64_t>(t.lo / eb);
      const auto hi = static_cast<std::int64_t>((t.hi + eb - 1) / eb);
      if (hi <= lo) continue;
      if (covered(covers[bi][t.write ? 1 : 0], lo, hi)) continue;
      append_contract_finding({kernel, bufs[bi].name, b, static_cast<std::uint64_t>(lo),
                               static_cast<std::uint64_t>(hi), t.write});
      if (++reported >= kMaxMismatchPerLaunch) return;
    }
  }
}

}  // namespace detail

}  // namespace szp::sim::checked
