// szp::sim — kernel cost accounting for the roofline performance model.
//
// Every simulated kernel reports, analytically, the global-memory traffic it
// would generate on a GPU, its arithmetic work, its degree of parallelism
// and an access-pattern efficiency class.  perf_model.hh turns a KernelCost
// into a projected execution time on a DeviceSpec.  This is the
// substitution for the paper's measured GB/s numbers (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace szp::sim {

/// How a kernel touches DRAM.  The factor derates effective bandwidth;
/// values are calibrated so the modeled throughputs land in the regimes the
/// cuSZ/cuSZ+ papers report for the corresponding kernel classes.
enum class AccessPattern {
  kCoalescedStreaming,  ///< warp-striped, unit-stride; near-peak bandwidth
  kTiledShared,         ///< staged through shared memory; good but not peak
  kStrided,             ///< per-thread serial walks (coarse-grained chunks)
  kScattered,           ///< data-dependent gathers/scatters (outliers, codes)
  kAtomicHeavy,         ///< privatized-histogram style with atomic merges
};

/// Pattern factor applied to peak bandwidth.
[[nodiscard]] double access_factor(AccessPattern p);

struct KernelCost;

/// Bandwidth derating factor for a cost record: its custom factor when set,
/// otherwise its access-pattern class factor.
[[nodiscard]] double effective_factor(const KernelCost& cost);

/// Analytic cost of one kernel launch (or a short fixed sequence of them).
struct KernelCost {
  std::uint64_t bytes_read = 0;     ///< global-memory loads, bytes
  std::uint64_t bytes_written = 0;  ///< global-memory stores, bytes
  std::uint64_t flops = 0;          ///< arithmetic operations
  std::uint64_t parallel_items = 1; ///< max concurrent independent work items
  AccessPattern pattern = AccessPattern::kCoalescedStreaming;
  double custom_factor = 0.0;       ///< if > 0, overrides the pattern factor
                                    ///< (kernels calibrated against published
                                    ///< cuSZ/cuSZ+ measurements)
  int launches = 1;                 ///< number of kernel launches in the stage

  [[nodiscard]] std::uint64_t bytes() const { return bytes_read + bytes_written; }

  /// Serial composition of two stages.
  KernelCost& operator+=(const KernelCost& o);
};

/// Measured + modeled record for one pipeline stage.
struct StageReport {
  std::string name;
  std::uint64_t payload_bytes = 0;  ///< uncompressed bytes this stage covers
                                    ///< (the denominator of paper GB/s)
  double cpu_seconds = 0.0;         ///< measured host execution time
  KernelCost cost;                  ///< analytic GPU cost

  [[nodiscard]] double cpu_throughput_gbps() const {
    return cpu_seconds > 0 ? static_cast<double>(payload_bytes) / cpu_seconds / 1e9 : 0.0;
  }
};

/// Ordered collection of stage reports for a whole (de)compression pass.
struct PipelineReport {
  std::vector<StageReport> stages;

  void add(StageReport s) { stages.emplace_back(std::move(s)); }
  [[nodiscard]] const StageReport* find(const std::string& name) const;
  [[nodiscard]] double total_cpu_seconds() const;
};

}  // namespace szp::sim
