// szp::sim::contract — prover implementation and kernel verdict registry.
//
// The prover works in a deliberately small affine domain (see prove.hh):
// every decision below is a direct interval or stride comparison over the
// concrete coefficients of the contract's terms.  When a footprint is
// outside the domain it accumulates a human-readable reason instead of
// guessing — `szp analyze` surfaces those reasons, and the kernel simply
// keeps full dynamic checking.
#include "sim/prove.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

namespace szp::sim::contract {

namespace {

// ---------------------------------------------------------------------------
// Interval arithmetic over affine terms.
// ---------------------------------------------------------------------------

std::int64_t axis_min(std::int64_t k, std::int64_t extent) { return k < 0 ? k * (extent - 1) : 0; }
std::int64_t axis_max(std::int64_t k, std::int64_t extent) { return k > 0 ? k * (extent - 1) : 0; }

std::int64_t term_min(const Term& t, const Geom& g) {
  std::int64_t v = t.c + axis_min(t.kb, g.grid);
  if (g.coords()) {
    v += axis_min(t.kx, g.gx) + axis_min(t.ky, g.gy) + axis_min(t.kz, g.gz);
  }
  return v;
}

std::int64_t term_max(const Term& t, const Geom& g) {
  std::int64_t v = t.c + axis_max(t.kb, g.grid);
  if (g.coords()) {
    v += axis_max(t.kx, g.gx) + axis_max(t.ky, g.gy) + axis_max(t.kz, g.gz);
  }
  return v;
}

/// Total extent of one block's windows: base .. base + span.
std::int64_t window_span(const Clause& cl) { return (cl.count - 1) * cl.stride + cl.len; }

/// Conservative element range a clause may touch across the whole grid.
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // half-open
};

Range global_range(const Clause& cl, const Geom& g, std::int64_t elems) {
  switch (cl.kind) {
    case ClauseKind::kWindow: {
      Range r{term_min(cl.base, g), term_max(cl.base, g) + window_span(cl)};
      if (cl.clamped) {
        r.lo = std::max<std::int64_t>(r.lo, 0);
        r.hi = std::min(r.hi, elems);
      }
      return r;
    }
    case ClauseKind::kBox:
    case ClauseKind::kAll:
    case ClauseKind::kDynamic:
    case ClauseKind::kHostSink:
      return {0, elems};
  }
  return {0, elems};
}

// ---------------------------------------------------------------------------
// Proof obligations.
// ---------------------------------------------------------------------------

bool is_write(const Clause& cl) { return cl.access != AccessKind::kRead; }

void push_reason(std::vector<std::string>& out, const Clause& cl, const std::string& why) {
  out.push_back(std::string(cl.buf) + ": " + why);
}

/// Structural validity of one clause under the launch geometry.  Returns
/// false (with a reason) when the clause is outside the affine domain.
bool clause_well_formed(const Clause& cl, const Geom& g, std::int64_t elems,
                        std::vector<std::string>& reasons) {
  if (cl.kind == ClauseKind::kAll || cl.kind == ClauseKind::kDynamic) return true;
  if (cl.kind == ClauseKind::kWindow) {
    if (cl.len < 1 || cl.count < 1 || cl.stride < 0) {
      push_reason(reasons, cl, "malformed window (len < 1, count < 1, or stride < 0)");
      return false;
    }
    if (cl.base.uses_linear() && cl.base.uses_coords()) {
      push_reason(reasons, cl, "window mixes b() and bx()/by()/bz() terms");
      return false;
    }
    if (cl.base.uses_coords() && !g.coords()) {
      push_reason(reasons, cl, "coordinate terms on a linear (non-launch_3d) grid");
      return false;
    }
    return true;
  }
  // kBox.
  if (!g.coords()) {
    push_reason(reasons, cl, "box footprint on a linear (non-launch_3d) grid");
    return false;
  }
  if (cl.span_x < 1 || cl.span_y < 1 || cl.span_z < 1 || cl.nx < 1 || cl.ny < 1 || cl.nz < 1) {
    push_reason(reasons, cl, "malformed box (span or extent < 1)");
    return false;
  }
  if (cl.nx * cl.ny * cl.nz != elems) {
    push_reason(reasons, cl, "box extents do not cover the registered buffer");
    return false;
  }
  const bool axes_clean = cl.lo_x.kb == 0 && cl.lo_x.ky == 0 && cl.lo_x.kz == 0 &&
                          cl.lo_y.kb == 0 && cl.lo_y.kx == 0 && cl.lo_y.kz == 0 &&
                          cl.lo_z.kb == 0 && cl.lo_z.kx == 0 && cl.lo_z.ky == 0;
  if (!axes_clean) {
    push_reason(reasons, cl, "box axis term uses a foreign block coordinate");
    return false;
  }
  return true;
}

/// Bounds: unclamped windows must stay inside [0, elems) for every block.
/// Clamped windows, boxes, and whole-buffer clauses are in-bounds by
/// construction (and the clamp itself is enforced dynamically by the
/// observed ⊆ declared cross-validation).
void check_bounds(const Clause& cl, const Geom& g, std::int64_t elems,
                  std::vector<std::string>& reasons) {
  if (cl.kind != ClauseKind::kWindow || cl.clamped) return;
  const std::int64_t lo = term_min(cl.base, g);
  const std::int64_t hi = term_max(cl.base, g) + window_span(cl);
  if (lo < 0 || hi > elems) {
    std::ostringstream os;
    os << "window may reach [" << lo << ", " << hi << ") outside [0, " << elems << ")";
    push_reason(reasons, cl, os.str());
  }
}

/// Cross-block self-disjointness of one window/box family: no two distinct
/// blocks' instances may overlap.  `span` lets callers widen the per-block
/// extent when merging a same-shape read/write pair (halo detection).
bool family_disjoint(const Clause& cl, const Geom& g, std::int64_t span,
                     std::string* why) {
  if (g.grid <= 1) return true;
  if (cl.kind == ClauseKind::kBox) {
    // Boxes of distinct blocks are disjoint if every axis the grid actually
    // varies separates neighbouring blocks by at least the axis span: any
    // two distinct blocks differ in some such axis.
    struct Axis {
      std::int64_t k, g, span;
      const char* name;
    };
    const Axis axes[3] = {{cl.lo_x.kx, g.gx, cl.span_x, "x"},
                          {cl.lo_y.ky, g.gy, cl.span_y, "y"},
                          {cl.lo_z.kz, g.gz, cl.span_z, "z"}};
    for (const Axis& a : axes) {
      if (a.g <= 1) continue;
      if (std::abs(a.k) < a.span) {
        std::ostringstream os;
        os << "box " << a.name << "-stride " << std::abs(a.k) << " < span " << a.span;
        *why = os.str();
        return false;
      }
    }
    return true;
  }
  // Window.
  const Term& t = cl.base;
  if (t.uses_linear()) {
    if (std::abs(t.kb) >= span) return true;
    std::ostringstream os;
    os << "window stride " << std::abs(t.kb) << " < span " << span;
    *why = os.str();
    return false;
  }
  if (t.uses_coords()) {
    // Mixed-radix separation: order the varying axes by coefficient and
    // require each level to clear the cumulative reach of the levels below
    // plus the window span (lexicographic argument over the top axis).
    struct Axis {
      std::int64_t k, g;
    };
    std::vector<Axis> axes;
    if (g.gx > 1) axes.push_back({t.kx, g.gx});
    if (g.gy > 1) axes.push_back({t.ky, g.gy});
    if (g.gz > 1) axes.push_back({t.kz, g.gz});
    for (const Axis& a : axes) {
      if (a.k < 0) {
        *why = "negative coordinate stride";
        return false;
      }
    }
    std::sort(axes.begin(), axes.end(), [](const Axis& a, const Axis& b) { return a.k < b.k; });
    std::int64_t reach = 0;
    for (const Axis& a : axes) {
      if (a.k < reach + span) {
        std::ostringstream os;
        os << "coordinate stride " << a.k << " < reach " << reach << " + span " << span;
        *why = os.str();
        return false;
      }
      reach += a.k * (a.g - 1);
    }
    return true;
  }
  *why = "identical window from every block";
  return false;
}

bool same_coeffs(const Term& a, const Term& o) {
  return a.kb == o.kb && a.kx == o.kx && a.ky == o.ky && a.kz == o.kz;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kProved:
      return "proved";
    case Verdict::kUnproved:
      return "unproved-fallback-dynamic";
    case Verdict::kNoContract:
      return "no-contract";
  }
  return "?";
}

ProveResult prove(const Contract& con, const Geom& geom, const std::vector<BufExtent>& bufs) {
  ProveResult res;
  auto& reasons = res.reasons;

  const auto extent_of = [&](const char* name) -> const BufExtent* {
    for (const BufExtent& e : bufs) {
      if (std::strcmp(e.name, name) == 0) return &e;
    }
    return nullptr;
  };

  // Structural validity and bounds, clause by clause (declaration order so
  // the reasons are deterministic).
  std::vector<bool> ok(con.clauses.size(), false);
  for (std::size_t i = 0; i < con.clauses.size(); ++i) {
    const Clause& cl = con.clauses[i];
    // Host sinks are traffic declarations, not footprints: no buffer to
    // prove anything about, and nothing the disjointness pass could touch.
    if (cl.kind == ClauseKind::kHostSink) continue;
    const BufExtent* e = extent_of(cl.buf);
    if (e == nullptr) {
      push_reason(reasons, cl, "names no registered buffer");
      continue;
    }
    const auto elems = static_cast<std::int64_t>(e->elems);
    if (!clause_well_formed(cl, geom, elems, reasons)) continue;
    ok[i] = true;
    check_bounds(cl, geom, elems, reasons);
  }

  // Disjointness: every buffer carrying a write-access clause must have all
  // its (write, write) and (write, read) clause pairs cross-block disjoint.
  if (geom.grid > 1) {
    for (std::size_t i = 0; i < con.clauses.size(); ++i) {
      const Clause& w = con.clauses[i];
      if (!ok[i] || !is_write(w)) continue;
      const BufExtent* e = extent_of(w.buf);
      const auto elems = static_cast<std::int64_t>(e->elems);

      if (w.kind == ClauseKind::kAll) {
        push_reason(reasons, w, "whole-buffer write from every block");
        continue;
      }
      if (w.kind == ClauseKind::kDynamic) {
        push_reason(reasons, w, "data-dependent write footprint");
        continue;
      }

      std::string why;
      if (!family_disjoint(w, geom, w.kind == ClauseKind::kWindow ? window_span(w) : 0, &why)) {
        push_reason(reasons, w, why);
        continue;
      }

      // Pairs: this write against every other clause of the same buffer
      // (later writes, and reads in either direction).
      for (std::size_t j = 0; j < con.clauses.size(); ++j) {
        if (j == i || !ok[j]) continue;
        const Clause& o = con.clauses[j];
        if (std::strcmp(o.buf, w.buf) != 0) continue;
        if (is_write(o) && j < i) continue;  // (write, write) pairs once
        if (o.kind == ClauseKind::kAll || o.kind == ClauseKind::kDynamic) {
          push_reason(reasons, w, is_write(o) ? "overlaps a whole-buffer write"
                                              : "read by every block (whole buffer)");
          continue;
        }
        if (w.kind == ClauseKind::kWindow && o.kind == ClauseKind::kWindow &&
            same_coeffs(w.base, o.base)) {
          // Same per-block placement: merge into one family spanning both
          // clauses' windows.  A halo read over a written buffer widens the
          // merged span past the stride and correctly fails here.
          const std::int64_t lo = std::min(w.base.c, o.base.c);
          const std::int64_t hi =
              std::max(w.base.c + window_span(w), o.base.c + window_span(o));
          Clause merged = w;
          merged.base.c = lo;
          if (!family_disjoint(merged, geom, hi - lo, &why)) {
            push_reason(reasons, w, "vs '" + std::string(o.buf) + "' companion clause: " + why);
          }
          continue;
        }
        if (w.kind == ClauseKind::kBox && o.kind == ClauseKind::kBox &&
            same_coeffs(w.lo_x, o.lo_x) && same_coeffs(w.lo_y, o.lo_y) &&
            same_coeffs(w.lo_z, o.lo_z) && w.lo_x.c == o.lo_x.c && w.lo_y.c == o.lo_y.c &&
            w.lo_z.c == o.lo_z.c) {
          // Same anchor: the wider of the two spans bounds both.
          Clause merged = w;
          merged.span_x = std::max(w.span_x, o.span_x);
          merged.span_y = std::max(w.span_y, o.span_y);
          merged.span_z = std::max(w.span_z, o.span_z);
          if (!family_disjoint(merged, geom, 0, &why)) {
            push_reason(reasons, w, "vs companion box clause: " + why);
          }
          continue;
        }
        // Different families: accept only when their global ranges cannot
        // meet at all.
        const Range rw = global_range(w, geom, elems);
        const Range ro = global_range(o, geom, elems);
        if (rw.hi <= ro.lo || ro.hi <= rw.lo) continue;
        push_reason(reasons, w, "overlapping footprint families on one buffer");
      }
    }
  }

  res.verdict = reasons.empty() ? Verdict::kProved : Verdict::kUnproved;
  return res;
}

// ---------------------------------------------------------------------------
// Kernel verdict registry.
// ---------------------------------------------------------------------------

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, KernelVerdict>& registry() {
  static std::map<std::string, KernelVerdict> r;
  return r;
}

int rank(Verdict v) {
  switch (v) {
    case Verdict::kProved:
      return 0;
    case Verdict::kUnproved:
      return 1;
    case Verdict::kNoContract:
      return 2;
  }
  return 2;
}

// -1: not yet latched from the environment; else 0/1.
std::atomic<int> g_fastpath{-1};

}  // namespace

void note_launch(const char* kernel, const ProveResult& result, bool word_requested,
                 bool word_fastpath) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  KernelVerdict& e = registry()[kernel];
  if (e.launches == 0) {
    e.kernel = kernel;
    e.verdict = result.verdict;
  } else if (rank(result.verdict) > rank(e.verdict)) {
    e.verdict = result.verdict;
  }
  ++e.launches;
  if (word_requested) {
    word_fastpath ? ++e.word_fastpath : ++e.word_fallback;
  }
  if (e.reason.empty() && !result.reasons.empty()) e.reason = result.reasons.front();
}

void note_launch_no_contract(const char* kernel, bool word_requested) {
  ProveResult none;
  none.verdict = Verdict::kNoContract;
  none.reasons.emplace_back("no contract declared at the launch site");
  note_launch(kernel, none, word_requested, false);
}

std::vector<KernelVerdict> registry_snapshot() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<KernelVerdict> out;
  out.reserve(registry().size());
  for (const auto& [_, e] : registry()) out.push_back(e);  // map order: sorted by name
  return out;
}

void reset_registry() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
}

std::string verdict_table_text() {
  const std::vector<KernelVerdict> all = registry_snapshot();
  std::size_t proved = 0, unproved = 0, missing = 0;
  std::size_t width = 0;
  for (const KernelVerdict& e : all) {
    width = std::max(width, e.kernel.size());
    switch (e.verdict) {
      case Verdict::kProved:
        ++proved;
        break;
      case Verdict::kUnproved:
        ++unproved;
        break;
      case Verdict::kNoContract:
        ++missing;
        break;
    }
  }
  std::ostringstream os;
  os << "contract-analyze: " << all.size() << " kernel(s): " << proved << " proved, " << unproved
     << " unproved-fallback-dynamic, " << missing << " no-contract\n";
  for (const KernelVerdict& e : all) {
    os << "  " << e.kernel << std::string(width - e.kernel.size() + 2, ' ')
       << verdict_name(e.verdict);
    if (!e.reason.empty()) os << "  (" << e.reason << ")";
    os << "\n";
  }
  return os.str();
}

bool fastpath_enabled() {
  int v = g_fastpath.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("SZP_SIM_CONTRACT_FASTPATH");
    v = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_fastpath.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_fastpath(bool on) { g_fastpath.store(on ? 1 : 0, std::memory_order_relaxed); }

}  // namespace szp::sim::contract
