// szp::sim — device model for the simulated-GPU execution substrate.
//
// The paper (cuSZ+, CLUSTER 2021) evaluates on NVIDIA V100 and A100.  This
// reproduction has no physical GPU, so kernels are executed on the host by
// the launch machinery in launch.hh while a roofline model (perf_model.hh)
// projects what each kernel would sustain on the two devices the paper used.
// The DeviceSpec numbers below are the published specs quoted in §V-A of
// the paper (V100-SXM2 on TACC-Longhorn, A100-SXM4 on ALCF-ThetaGPU).
#pragma once

#include <cstdint>
#include <string>

namespace szp::sim {

/// Published hardware characteristics of a target accelerator.
struct DeviceSpec {
  std::string name;
  double mem_bw_gbps;       ///< peak HBM bandwidth, GB/s
  double fp32_tflops;       ///< peak FP32 throughput, TFLOPS
  int sm_count;             ///< streaming multiprocessors
  int max_threads_per_sm;   ///< resident threads per SM
  double kernel_launch_us;  ///< per-launch fixed overhead, microseconds
  double device_alloc_us;   ///< per-cudaMalloc/cudaFree-pair overhead, microseconds

  /// Number of resident threads needed to saturate the memory system.
  /// Used by the roofline model to derate kernels with low parallelism.
  [[nodiscard]] double saturation_threads() const {
    return static_cast<double>(sm_count) * max_threads_per_sm;
  }
};

/// NVIDIA Tesla V100 (SXM2, 16 GB HBM2 @ 900 GB/s, 14.13 FP32 TFLOPS).
[[nodiscard]] const DeviceSpec& v100();

/// NVIDIA A100 (SXM4, 40 GB HBM2e @ 1555 GB/s, 19.5 FP32 TFLOPS).
[[nodiscard]] const DeviceSpec& a100();

}  // namespace szp::sim
