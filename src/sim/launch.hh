// szp::sim — launch geometry and block-parallel execution.
//
// Kernels in this reproduction are written against a CUDA-like decomposition:
// a grid of independent thread blocks, each owning a chunk of the problem.
// launch_blocks() executes the grid; blocks run in parallel via OpenMP (each
// OpenMP thread plays the role of an SM executing one block at a time),
// while the code inside a block is ordinary sequential C++ standing in for
// the cooperating threads of the block.  This keeps the *decomposition*
// (chunking, shared-memory staging, scan structure) identical to the CUDA
// implementation while remaining portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace szp::sim {

/// CUDA-style 3-component extent.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(x) * y * z;
  }
};

/// Ceiling division for grid sizing.
[[nodiscard]] constexpr std::size_t div_ceil(std::size_t n, std::size_t d) {
  return (n + d - 1) / d;
}

/// Execute `body(block_index)` for every block in [0, grid_size), in
/// parallel across OpenMP threads.  `body` must only touch state owned by
/// its block (the same independence the CUDA grid requires).
template <typename Body>
void launch_blocks(std::size_t grid_size, Body&& body) {
  if (grid_size == 1) {
    // Single-block grids run inline: no OpenMP team to spin up, and
    // exceptions (e.g. corrupt-input errors in serial decode kernels) can
    // propagate to the caller instead of terminating the parallel region.
    body(std::size_t{0});
    return;
  }
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < static_cast<long long>(grid_size); ++b) {
    body(static_cast<std::size_t>(b));
  }
}

/// Execute the grid visiting blocks in the given (permuted) order — the
/// schedule fuzzer's replay engine.  With `parallel`, blocks are claimed from
/// `order` by OpenMP threads under a dynamic schedule, perturbing both the
/// block-to-thread assignment and the completion order relative to the
/// canonical static run; otherwise the order is honored exactly, serially.
/// Either way `body` sees each block index exactly once, so any output
/// difference against the canonical run is order-dependence in the kernel.
template <typename Body>
void launch_blocks_in_order(std::span<const std::size_t> order, bool parallel, Body&& body) {
  if (parallel) {
#pragma omp parallel for schedule(dynamic, 1)
    for (long long i = 0; i < static_cast<long long>(order.size()); ++i) {
      body(order[static_cast<std::size_t>(i)]);
    }
  } else {
    for (const std::size_t b : order) body(b);
  }
}

/// 3-D grid variant: `body(bx, by, bz)`.
template <typename Body>
void launch_blocks_3d(Dim3 grid, Body&& body) {
  const std::size_t total = grid.count();
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < static_cast<long long>(total); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint32_t bx = static_cast<std::uint32_t>(idx % grid.x);
    const std::uint32_t by = static_cast<std::uint32_t>((idx / grid.x) % grid.y);
    const std::uint32_t bz = static_cast<std::uint32_t>(idx / (static_cast<std::size_t>(grid.x) * grid.y));
    body(bx, by, bz);
  }
}

}  // namespace szp::sim
