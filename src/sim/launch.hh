// szp::sim — launch geometry and block-parallel execution.
//
// Kernels in this reproduction are written against a CUDA-like decomposition:
// a grid of independent thread blocks, each owning a chunk of the problem.
// launch_blocks() executes the grid; blocks run in parallel via OpenMP (each
// OpenMP thread plays the role of an SM executing one block at a time),
// while the code inside a block is ordinary sequential C++ standing in for
// the cooperating threads of the block.  This keeps the *decomposition*
// (chunking, shared-memory staging, scan structure) identical to the CUDA
// implementation while remaining portable.
//
// Exception safety: an exception cannot leave an OpenMP parallel region —
// an uncaught throw inside the loop calls std::terminate.  Decode kernels
// run over untrusted archive bytes and throw szp::DecodeError on corrupt
// input, so every launcher captures the first exception (lowest block
// index, for determinism), lets the remaining blocks drain, and rethrows
// after the region joins.  This mirrors how a CUDA kernel reports a fault:
// the grid completes (or is torn down) and the error surfaces on the host
// at the synchronization point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <span>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace szp::sim {

/// True when the caller is already inside an *active* OpenMP parallel region
/// — a streaming slab worker or a compress_many() field worker.  Kernel
/// grids launched from such a worker run inline on the calling thread: the
/// fan-out is explicitly one-level (coarse-grained over slabs/fields, the
/// paper's §II thesis), so inner launches can neither oversubscribe the
/// machine with nested teams nor pay a per-launch team spin-up.  This makes
/// the nesting policy independent of the OpenMP runtime's implementation
/// default (OMP_MAX_ACTIVE_LEVELS / nest-var).
[[nodiscard]] inline bool in_parallel_worker() {
#ifdef _OPENMP
  return omp_get_active_level() > 0;
#else
  return false;
#endif
}

/// CUDA-style 3-component extent.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(x) * y * z;
  }
};

/// Ceiling division for grid sizing.
[[nodiscard]] constexpr std::size_t div_ceil(std::size_t n, std::size_t d) {
  return (n + d - 1) / d;
}

namespace detail {

/// Captures the exception thrown by the lowest-indexed faulting block of a
/// parallel region, so the rethrown error is deterministic regardless of
/// thread interleaving.  note() is called from inside catch blocks across
/// OpenMP threads; rethrow_if_set() after the region joins.
class FirstBlockError {
 public:
  void note(std::size_t block) noexcept {
#pragma omp critical(szp_sim_first_block_error)
    {
      if (block < block_) {
        block_ = block;
        error_ = std::current_exception();
      }
    }
  }

  void rethrow_if_set() const {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::exception_ptr error_;
  std::size_t block_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace detail

/// Execute `body(block_index)` for every block in [0, grid_size), in
/// parallel across OpenMP threads.  `body` must only touch state owned by
/// its block (the same independence the CUDA grid requires).  If one or
/// more blocks throw, the remaining blocks still run and the exception from
/// the lowest-indexed faulting block is rethrown to the caller.
template <typename Body>
void launch_blocks(std::size_t grid_size, Body&& body) {
  if (grid_size == 0) {
    // Zero-iteration grids are a no-op; entering the parallel region would
    // spin up (and immediately retire) a whole OpenMP team for nothing.
    return;
  }
  if (grid_size == 1) {
    // Single-block grids run inline: no OpenMP team to spin up, and
    // exceptions propagate directly.
    body(std::size_t{0});
    return;
  }
  if (in_parallel_worker()) {
    // Called from a slab/field worker: run the grid serially on this thread
    // (explicit one-level fan-out), preserving the drain-then-rethrow
    // semantics of the parallel path.
    detail::FirstBlockError err;
    for (std::size_t b = 0; b < grid_size; ++b) {
      try {
        body(b);
      } catch (...) {
        err.note(b);
      }
    }
    err.rethrow_if_set();
    return;
  }
  detail::FirstBlockError err;
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < static_cast<long long>(grid_size); ++b) {
    try {
      body(static_cast<std::size_t>(b));
    } catch (...) {
      err.note(static_cast<std::size_t>(b));
    }
  }
  err.rethrow_if_set();
}

/// Execute the grid visiting blocks in the given (permuted) order — the
/// schedule fuzzer's replay engine.  With `parallel`, blocks are claimed from
/// `order` by OpenMP threads under a dynamic schedule, perturbing both the
/// block-to-thread assignment and the completion order relative to the
/// canonical static run; otherwise the order is honored exactly, serially.
/// Either way `body` sees each block index exactly once, so any output
/// difference against the canonical run is order-dependence in the kernel.
/// Exceptions are captured and rethrown after every block has run, keeping
/// the exactly-once property even on corrupt input.
template <typename Body>
void launch_blocks_in_order(std::span<const std::size_t> order, bool parallel, Body&& body) {
  if (order.empty()) return;
  detail::FirstBlockError err;
  if (parallel && !in_parallel_worker()) {
#pragma omp parallel for schedule(dynamic, 1)
    for (long long i = 0; i < static_cast<long long>(order.size()); ++i) {
      const std::size_t b = order[static_cast<std::size_t>(i)];
      try {
        body(b);
      } catch (...) {
        err.note(b);
      }
    }
  } else {
    for (const std::size_t b : order) {
      try {
        body(b);
      } catch (...) {
        err.note(b);
      }
    }
  }
  err.rethrow_if_set();
}

/// 3-D grid variant: `body(bx, by, bz)`.  Single-block grids run inline
/// like their linear counterpart (no OpenMP team, direct exception
/// propagation); larger grids capture-and-rethrow like launch_blocks.
template <typename Body>
void launch_blocks_3d(Dim3 grid, Body&& body) {
  const std::size_t total = grid.count();
  if (total == 0) return;  // degenerate grid: no team, no work
  if (total == 1) {
    body(std::uint32_t{0}, std::uint32_t{0}, std::uint32_t{0});
    return;
  }
  if (in_parallel_worker()) {
    detail::FirstBlockError err;
    for (std::size_t idx = 0; idx < total; ++idx) {
      const std::uint32_t bx = static_cast<std::uint32_t>(idx % grid.x);
      const std::uint32_t by = static_cast<std::uint32_t>((idx / grid.x) % grid.y);
      const std::uint32_t bz =
          static_cast<std::uint32_t>(idx / (static_cast<std::size_t>(grid.x) * grid.y));
      try {
        body(bx, by, bz);
      } catch (...) {
        err.note(idx);
      }
    }
    err.rethrow_if_set();
    return;
  }
  detail::FirstBlockError err;
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < static_cast<long long>(total); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint32_t bx = static_cast<std::uint32_t>(idx % grid.x);
    const std::uint32_t by = static_cast<std::uint32_t>((idx / grid.x) % grid.y);
    const std::uint32_t bz = static_cast<std::uint32_t>(idx / (static_cast<std::size_t>(grid.x) * grid.y));
    try {
      body(bx, by, bz);
    } catch (...) {
      err.note(idx);
    }
  }
  err.rethrow_if_set();
}

}  // namespace szp::sim
