// szp::sim — launch geometry and block-parallel execution.
//
// Kernels in this reproduction are written against a CUDA-like decomposition:
// a grid of independent thread blocks, each owning a chunk of the problem.
// launch_blocks() executes the grid; blocks run in parallel via OpenMP (each
// OpenMP thread plays the role of an SM executing one block at a time),
// while the code inside a block is ordinary sequential C++ standing in for
// the cooperating threads of the block.  This keeps the *decomposition*
// (chunking, shared-memory staging, scan structure) identical to the CUDA
// implementation while remaining portable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace szp::sim {

/// CUDA-style 3-component extent.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(x) * y * z;
  }
};

/// Ceiling division for grid sizing.
[[nodiscard]] constexpr std::size_t div_ceil(std::size_t n, std::size_t d) {
  return (n + d - 1) / d;
}

/// Execute `body(block_index)` for every block in [0, grid_size), in
/// parallel across OpenMP threads.  `body` must only touch state owned by
/// its block (the same independence the CUDA grid requires).
template <typename Body>
void launch_blocks(std::size_t grid_size, Body&& body) {
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < static_cast<long long>(grid_size); ++b) {
    body(static_cast<std::size_t>(b));
  }
}

/// 3-D grid variant: `body(bx, by, bz)`.
template <typename Body>
void launch_blocks_3d(Dim3 grid, Body&& body) {
  const std::size_t total = grid.count();
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < static_cast<long long>(total); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint32_t bx = static_cast<std::uint32_t>(idx % grid.x);
    const std::uint32_t by = static_cast<std::uint32_t>((idx / grid.x) % grid.y);
    const std::uint32_t bz = static_cast<std::uint32_t>(idx / (static_cast<std::size_t>(grid.x) * grid.y));
    body(bx, by, bz);
  }
}

}  // namespace szp::sim
