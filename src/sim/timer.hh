// szp::sim — wall-clock timing for measured-CPU throughput columns.
#pragma once

#include <chrono>

namespace szp::sim {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace szp::sim
