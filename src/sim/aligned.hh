// szp::sim — cache-line-aligned storage for kernel buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace szp::sim {

inline constexpr std::size_t kCacheLine = 64;

/// Minimal C++17 aligned allocator (64-byte lines, AVX-512 friendly).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kCacheLine});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
};

/// The substrate's device-buffer type: host memory standing in for GPU
/// global memory, aligned so streaming kernels vectorize.
template <typename T>
using device_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace szp::sim
