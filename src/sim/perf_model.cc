#include "sim/perf_model.hh"

#include <algorithm>
#include <cmath>

namespace szp::sim {

namespace {

/// Fraction of peak bandwidth reachable given `items` concurrently runnable
/// work items.  Saturation requires roughly the full resident-thread count;
/// below that, achieved bandwidth falls off smoothly (latency hiding runs
/// out).  The square root softens the knee, matching the gentle degradation
/// the paper sees on ~25 MB CESM fields rather than a hard cliff.
double occupancy_factor(const DeviceSpec& dev, std::uint64_t items) {
  const double needed = dev.saturation_threads();
  const double have = static_cast<double>(items);
  if (have >= needed) return 1.0;
  return std::sqrt(std::max(have, 1.0) / needed);
}

}  // namespace

double modeled_seconds(const DeviceSpec& dev, const KernelCost& cost) {
  const double bw = dev.mem_bw_gbps * 1e9 * effective_factor(cost) *
                    occupancy_factor(dev, cost.parallel_items);
  const double fl = dev.fp32_tflops * 1e12 * 0.35;  // integer/ALU mix efficiency
  const double t_mem = static_cast<double>(cost.bytes()) / bw;
  const double t_cmp = cost.flops > 0 ? static_cast<double>(cost.flops) / fl : 0.0;
  const double t_launch = cost.launches * dev.kernel_launch_us * 1e-6;
  return t_launch + std::max(t_mem, t_cmp);
}

double modeled_throughput_gbps(const DeviceSpec& dev, const KernelCost& cost,
                               std::uint64_t payload_bytes) {
  const double t = modeled_seconds(dev, cost);
  return t > 0 ? static_cast<double>(payload_bytes) / t / 1e9 : 0.0;
}

double modeled_pipeline_gbps(const DeviceSpec& dev, const PipelineReport& pipeline,
                             std::uint64_t payload_bytes) {
  const double t = modeled_pipeline_seconds(dev, pipeline);
  return t > 0 ? static_cast<double>(payload_bytes) / t / 1e9 : 0.0;
}

double modeled_pipeline_seconds(const DeviceSpec& dev, const PipelineReport& pipeline) {
  double t = 0.0;
  for (const auto& s : pipeline.stages) t += modeled_seconds(dev, s.cost);
  return t;
}

double modeled_alloc_seconds(const DeviceSpec& dev, std::uint64_t allocations) {
  return static_cast<double>(allocations) * dev.device_alloc_us * 1e-6;
}

}  // namespace szp::sim
