// szp::sim::contract — symbolic prover for footprint contracts.
//
// Given a contract, a launch geometry, and the registered buffer extents,
// prove() decides two properties by interval/stride arithmetic over the
// affine terms (see contract.hh):
//
//   (a) cross-block disjointness: for every buffer with a write-access
//       clause, no two distinct blocks' declared write footprints overlap,
//       and no block's write footprint overlaps another block's declared
//       read footprint of the same buffer (WW and RW freedom);
//   (b) bounds: every unclamped window lies inside [0, elems) for every
//       block of the grid (clamped windows, boxes, and whole-buffer clauses
//       are in-bounds by construction).
//
// The domain is deliberately incomplete: data-dependent footprints
// (kDynamic), interleaved gap-stride families whose windows are provably
// disjoint only via modular reasoning, and mixed b()/bx() terms all yield
// kUnproved with a reason string — those kernels simply keep full dynamic
// checking.  An unproved contract is not an error; a *wrong* contract is
// caught dynamically by the observed ⊆ declared cross-validation.
//
// prove() is pure and cheap (a few dozen integer comparisons), so checked
// launches re-prove per launch geometry rather than caching verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/contract.hh"

namespace szp::sim::contract {

/// Registered extent of one buffer, in elements (decoupled from
/// checked::BufMeta so the prover has no dependency on check.hh).
struct BufExtent {
  const char* name = "?";
  std::uint64_t elems = 0;
};

enum class Verdict : std::uint8_t {
  kProved,      ///< disjointness + bounds hold for every block pair
  kUnproved,    ///< outside the affine domain: falls back to dynamic checking
  kNoContract,  ///< launch site declared no contract at all
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct ProveResult {
  Verdict verdict = Verdict::kUnproved;
  /// Why the proof failed, one line per obstacle, deterministic order
  /// (clause declaration order).  Empty when proved.
  std::vector<std::string> reasons;

  [[nodiscard]] bool proved() const { return verdict == Verdict::kProved; }
};

/// Decide disjointness + bounds for `con` under `geom` against the
/// registered buffer extents.  Unknown buffer names or malformed clauses
/// (len < 1, stride < 0) are proof obstacles, not exceptions.
[[nodiscard]] ProveResult prove(const Contract& con, const Geom& geom,
                                const std::vector<BufExtent>& bufs);

// ---------------------------------------------------------------------------
// Kernel verdict registry (feeds `szp analyze` and the word-mode fast path).
// ---------------------------------------------------------------------------

/// Aggregated per-kernel outcome across every checked launch this process
/// has run.  A kernel that launches under several geometries keeps the
/// weakest verdict seen (proved < unproved < no-contract never weakens back).
struct KernelVerdict {
  std::string kernel;
  Verdict verdict = Verdict::kNoContract;
  std::uint64_t launches = 0;        ///< checked launches observed
  std::uint64_t word_fastpath = 0;   ///< word-mode launches downgraded by proof
  std::uint64_t word_fallback = 0;   ///< word-mode launches kept fully shadowed
  std::string reason;                ///< first unproved reason ("" when proved)
};

/// Record one checked launch's outcome for `szp analyze` and tests.
void note_launch(const char* kernel, const ProveResult& result, bool word_requested,
                 bool word_fastpath);
void note_launch_no_contract(const char* kernel, bool word_requested);

/// Snapshot of the registry, sorted by kernel name (deterministic).
[[nodiscard]] std::vector<KernelVerdict> registry_snapshot();
void reset_registry();

/// Deterministic per-kernel verdict table (kernels sorted by name, stable
/// verdict spelling), formatted like checked::report_text() so CI diffs of
/// `szp analyze` output are byte-stable.
[[nodiscard]] std::string verdict_table_text();

/// Word-mode fast path switch: when on (default, env SZP_SIM_CONTRACT_FASTPATH
/// latched, 0 disables), launches whose contracts are proved run the interval
/// tier instead of full word-shadow instrumentation under --check=word.
[[nodiscard]] bool fastpath_enabled();
void set_fastpath(bool on);

/// RAII fast-path override for tests and benchmarks.
class ScopedFastpath {
 public:
  explicit ScopedFastpath(bool on) : prev_(fastpath_enabled()) { set_fastpath(on); }
  ~ScopedFastpath() { set_fastpath(prev_); }
  ScopedFastpath(const ScopedFastpath&) = delete;
  ScopedFastpath& operator=(const ScopedFastpath&) = delete;

 private:
  bool prev_;
};

}  // namespace szp::sim::contract
