// szp::sim — dense↔sparse conversion, mirroring the cuSPARSE dense-to-sparse
// kernel cuSZ+ uses to gather outliers (paper §V-C.2) and the trivial
// scatter kernel used on the decompression side.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

template <typename T, typename Index = std::uint64_t>
struct SparseVector {
  std::vector<Index> indices;
  std::vector<T> values;

  [[nodiscard]] std::size_t nnz() const { return indices.size(); }
};

/// Gather all entries with dense[i] != T{} into (index, value) pairs.
/// Tile-parallel count + offset scan + fill, the canonical GPU stream
/// compaction structure.
///
/// Workspace-reuse variant: `out`, `tile_nnz`, and `offset` are filled with
/// capacity-preserving assigns/resizes, so repeated calls at the same size
/// allocate nothing (see core/workspace.hh).
template <typename T, typename Index = std::uint64_t>
void dense_to_sparse_into(std::span<const T> dense, SparseVector<T, Index>& out,
                          std::vector<std::size_t>& tile_nnz, std::vector<std::size_t>& offset,
                          std::size_t tile = 1 << 16) {
  const std::size_t n = dense.size();
  const std::size_t tiles = div_ceil(n, tile);
  tile_nnz.assign(tiles, 0);

  checked::launch("dense_to_sparse/count", tiles,
                  checked::bufs(checked::in(dense, "dense"),
                                checked::out(std::span<std::size_t>(tile_nnz), "tile_nnz")),
                  contract::contract(
                      contract::reads("dense", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp(),
                      contract::writes("tile_nnz", contract::b(), 1)),
                  [&, n, tile](std::size_t t, const auto& vdense, const auto& vnnz) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += vdense[i] != T{} ? 1u : 0u;
    vnnz[t] = c;
  });

  offset.assign(tiles + 1, 0);
  for (std::size_t t = 0; t < tiles; ++t) offset[t + 1] = offset[t] + tile_nnz[t];

  out.indices.resize(offset[tiles]);
  out.values.resize(offset[tiles]);

  // The compacted output positions come from the offset scan — a
  // data-dependent footprint the affine prover cannot discharge, so the
  // fill kernel honestly stays on dynamic checking.
  checked::launch("dense_to_sparse/fill", tiles,
                  checked::bufs(checked::in(dense, "dense"),
                                checked::in(std::span<const std::size_t>(offset), "offset"),
                                checked::out(std::span<Index>(out.indices), "indices"),
                                checked::out(std::span<T>(out.values), "values")),
                  contract::contract(
                      contract::reads("dense", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp(),
                      contract::reads("offset", contract::b(), 2),
                      // The offset scan's grand total is the exact number
                      // of compacted entries: the dynamic clauses' bound.
                      contract::writes_dyn("indices",
                                           static_cast<std::int64_t>(offset[tiles])),
                      contract::writes_dyn("values",
                                           static_cast<std::int64_t>(offset[tiles]))),
                  [&, n, tile](std::size_t t, const auto& vdense, const auto& voffset,
                               const auto& vidx, const auto& vval) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    std::size_t w = voffset[t];
    for (std::size_t i = lo; i < hi; ++i) {
      if (vdense[i] != T{}) {
        vidx[w] = static_cast<Index>(i);
        vval[w] = vdense[i];
        ++w;
      }
    }
  });
}

template <typename T, typename Index = std::uint64_t>
SparseVector<T, Index> dense_to_sparse(std::span<const T> dense,
                                       std::size_t tile = 1 << 16) {
  SparseVector<T, Index> out;
  std::vector<std::size_t> tile_nnz;
  std::vector<std::size_t> offset;
  dense_to_sparse_into(dense, out, tile_nnz, offset, tile);
  return out;
}

/// Scatter-add sparse values into a dense array (the decompression-side
/// outlier fusion: quant-code residuals ⊕ outlier residuals).
template <typename T, typename Acc, typename Index>
void scatter_add(const SparseVector<T, Index>& sparse, std::span<Acc> dense) {
  // One virtual block per nonzero; duplicate indices in the sparse vector
  // would be a genuine scatter race, which the checker flags via the inout
  // registration of `dense`.
  checked::launch("scatter_add", sparse.nnz(),
                  checked::bufs(checked::in(std::span<const Index>(sparse.indices), "indices"),
                                checked::in(std::span<const T>(sparse.values), "values"),
                                checked::inout(dense, "dense")),
                  contract::contract(contract::reads("indices", contract::b(), 1),
                                     contract::reads("values", contract::b(), 1),
                                     // Each nonzero touches exactly one dense
                                     // element: nnz bounds the scattered volume.
                                     contract::updates_dyn(
                                         "dense", static_cast<std::int64_t>(sparse.nnz()))),
                  [](std::size_t i, const auto& vidx, const auto& vval, const auto& vdense) {
    vdense[static_cast<std::size_t>(vidx[i])] += static_cast<Acc>(vval[i]);
  });
}

[[nodiscard]] inline KernelCost gather_cost(std::size_t n, std::size_t elem_bytes,
                                            std::size_t nnz, std::size_t index_bytes) {
  KernelCost c;
  c.bytes_read = n * elem_bytes;
  c.bytes_written = nnz * (elem_bytes + index_bytes);
  c.flops = n;
  c.parallel_items = n;
  c.pattern = AccessPattern::kScattered;
  c.launches = 3;  // count, scan, fill
  return c;
}

[[nodiscard]] inline KernelCost scatter_cost(std::size_t nnz, std::size_t elem_bytes,
                                             std::size_t index_bytes) {
  KernelCost c;
  c.bytes_read = nnz * (elem_bytes + index_bytes);
  c.bytes_written = nnz * elem_bytes;
  c.flops = nnz;
  c.parallel_items = nnz > 0 ? nnz : 1;
  c.pattern = AccessPattern::kScattered;
  return c;
}

}  // namespace szp::sim
