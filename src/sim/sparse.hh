// szp::sim — dense↔sparse conversion, mirroring the cuSPARSE dense-to-sparse
// kernel cuSZ+ uses to gather outliers (paper §V-C.2) and the trivial
// scatter kernel used on the decompression side.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

template <typename T, typename Index = std::uint64_t>
struct SparseVector {
  std::vector<Index> indices;
  std::vector<T> values;

  [[nodiscard]] std::size_t nnz() const { return indices.size(); }
};

/// Gather all entries with dense[i] != T{} into (index, value) pairs.
/// Tile-parallel count + offset scan + fill, the canonical GPU stream
/// compaction structure.
template <typename T, typename Index = std::uint64_t>
SparseVector<T, Index> dense_to_sparse(std::span<const T> dense,
                                       std::size_t tile = 1 << 16) {
  const std::size_t n = dense.size();
  const std::size_t tiles = div_ceil(n, tile);
  std::vector<std::size_t> tile_nnz(tiles, 0);

  launch_blocks(tiles, [&](std::size_t t) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += dense[i] != T{} ? 1u : 0u;
    tile_nnz[t] = c;
  });

  std::vector<std::size_t> offset(tiles + 1, 0);
  for (std::size_t t = 0; t < tiles; ++t) offset[t + 1] = offset[t] + tile_nnz[t];

  SparseVector<T, Index> out;
  out.indices.resize(offset[tiles]);
  out.values.resize(offset[tiles]);

  launch_blocks(tiles, [&](std::size_t t) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    std::size_t w = offset[t];
    for (std::size_t i = lo; i < hi; ++i) {
      if (dense[i] != T{}) {
        out.indices[w] = static_cast<Index>(i);
        out.values[w] = dense[i];
        ++w;
      }
    }
  });
  return out;
}

/// Scatter-add sparse values into a dense array (the decompression-side
/// outlier fusion: quant-code residuals ⊕ outlier residuals).
template <typename T, typename Acc, typename Index>
void scatter_add(const SparseVector<T, Index>& sparse, std::span<Acc> dense) {
  launch_blocks(sparse.nnz(), [&](std::size_t i) {
    dense[static_cast<std::size_t>(sparse.indices[i])] += static_cast<Acc>(sparse.values[i]);
  });
}

[[nodiscard]] inline KernelCost gather_cost(std::size_t n, std::size_t elem_bytes,
                                            std::size_t nnz, std::size_t index_bytes) {
  KernelCost c;
  c.bytes_read = n * elem_bytes;
  c.bytes_written = nnz * (elem_bytes + index_bytes);
  c.flops = n;
  c.parallel_items = n;
  c.pattern = AccessPattern::kScattered;
  c.launches = 3;  // count, scan, fill
  return c;
}

[[nodiscard]] inline KernelCost scatter_cost(std::size_t nnz, std::size_t elem_bytes,
                                             std::size_t index_bytes) {
  KernelCost c;
  c.bytes_read = nnz * (elem_bytes + index_bytes);
  c.bytes_written = nnz * elem_bytes;
  c.flops = nnz;
  c.parallel_items = nnz > 0 ? nnz : 1;
  c.pattern = AccessPattern::kScattered;
  return c;
}

}  // namespace szp::sim
