// szp::sim::checked — race & bounds checking for the simulated-GPU substrate.
//
// launch.hh states the contract every kernel in this reproduction depends on:
// a block may only touch state owned by its block.  On a real GPU, violating
// it is a data race that compute-sanitizer's racecheck/memcheck tools catch;
// here OpenMP's static schedule can silently serialize the offending blocks
// and hide the bug until a refactor reshuffles the schedule.  This header
// enforces the contract mechanically with a two-tier analysis engine:
//
//   * call sites register each global buffer a kernel touches (in / out /
//     inout) and receive *views* in the kernel body;
//   * with checking OFF (the default), the views are raw pointer wrappers
//     that inline away — the unchecked instantiation of the body is
//     byte-for-byte the code that ran before this subsystem existed;
//   * tier 1 (Mode::kInterval, via SZP_SIM_CHECK=1 / --check): every element
//     access is logged into a per-block footprint (coalesced byte intervals
//     per buffer), and after the grid completes the footprints are swept for
//       (a) write/write and read/write overlaps between *distinct* blocks —
//           races that would be real on a GPU regardless of how OpenMP
//           happened to schedule them, and
//       (b) accesses outside the registered buffer extents;
//   * tier 2 (Mode::kWord, via SZP_SIM_CHECK=word / --check=word, or per
//     launch with Granularity::kWord): each registered buffer additionally
//     gets a word-granular shadow array in the style of compute-sanitizer's
//     racecheck — per-word last-writer and recent-reader records carrying
//     (block, lane, barrier epoch).  Kernels that model their cooperating
//     threads explicitly (chk::this_thread(tid) to switch lanes,
//     chk::barrier() to close an epoch — see block_scan.hh, histogram.hh)
//     get *intra-block* hazard detection: two lanes of the same block
//     touching the same word in the same epoch, at least one a write and not
//     both atomic, is reported with kernel, block, both lanes, buffer, and
//     word.  Benign striding (lanes on disjoint words) and barrier-ordered
//     reuse are not flagged.  Word mode serializes block execution so the
//     shadow needs no synchronization and reports are deterministic.  The
//     shadow itself is *paged* — fixed-size pages allocated on first touch
//     (kShadowPageWords words each) — so word mode scales to bench-size
//     fields; an optional 1-in-N sampling mode (SZP_SIM_CHECK_SAMPLE=N /
//     set_word_sample) trades detection density for another factor of ~N.
//
// Orthogonally, schedule fuzzing (set_fuzz_schedules(N) /
// SZP_SIM_FUZZ_SCHEDULE=N / --fuzz-schedule[=N]) re-executes every
// registered multi-block grid under N perturbed block orders — reversed,
// strictly serial, and seeded shuffles under a dynamic OpenMP schedule —
// and diffs FNV-1a checksums of every writable buffer against the canonical
// run.  Grids registered through launch_3d additionally replay under all
// six z/y/x axis traversal orders (serially, so the permuted traversal is
// exact).  Any order-dependence a static footprint cannot prove becomes a
// deterministic ScheduleFinding.
//
// Findings accumulate in a process-global report (checked::current_report)
// that the CLI's --check / --fuzz-schedule flags print and tests assert on.
// See DESIGN.md §"Checked-launch mode" for the mapping to compute-sanitizer.
//
// Static footprint contracts (sim/contract.hh, sim/prove.hh) layer on top:
// a launch may declare each block's read/write footprint as affine
// expressions over the block index, and then
//   * the interval tier cross-validates every observed footprint against
//     the declaration (observed ⊆ declared → ContractFinding on mismatch),
//   * launches whose contracts the prover discharges (cross-block
//     disjointness + bounds) skip word-shadow instrumentation under a
//     process-wide kWord mode (per-launch Granularity::kWord opt-ins keep
//     the shadow: contracts say nothing about intra-block lanes), and
//   * `szp analyze` renders the per-kernel verdict registry.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/contract.hh"
#include "sim/launch.hh"
#include "sim/prove.hh"
#include "sim/traffic.hh"

namespace szp::sim::checked {

// ---------------------------------------------------------------------------
// Global switches and accumulated report (definitions in check.cc).
// ---------------------------------------------------------------------------

/// Checking tier.  kInterval is tier 1 (cheap per-block byte intervals,
/// cross-block races only); kWord is tier 2 (word-granular shadow memory,
/// intra-block hazards too, serialized execution).
enum class Mode : int { kOff = 0, kInterval = 1, kWord = 2 };

/// Current tier.  First call latches the SZP_SIM_CHECK environment variable
/// ("word" selects kWord, any other non-empty non-"0" value kInterval; the
/// SZP_SIM_CHECK_DEFAULT_ON compile default maps to kInterval); set_mode()
/// overrides at any time.
[[nodiscard]] Mode mode();
void set_mode(Mode m);

/// True when access tracking is active (mode() != kOff).
[[nodiscard]] bool enabled();
/// Compatibility switch: on selects kInterval unless the mode is already
/// kWord; off selects kOff.
void set_enabled(bool on);

/// Number of perturbed block schedules every multi-block launch is replayed
/// under (0: fuzzing off).  First call latches SZP_SIM_FUZZ_SCHEDULE.
/// 3-D-registered grids (chk::launch_3d) always replay at least the eight
/// deterministic 3-D schedules — all six z/y/x axis traversal orders plus
/// reversed and serial — regardless of a smaller N.
[[nodiscard]] int fuzz_schedules();
void set_fuzz_schedules(int n);

/// Word-shadow sampling divisor for tier 2: 1 (the default) tracks every
/// word; N > 1 tracks only words whose index is a multiple of N — a 1-in-N
/// sampling mode that cuts shadow memory and checking time by ~N on
/// bench-scale inputs while still catching dense hazards (any conflict
/// spanning >= N consecutive words hits a tracked one).  First call latches
/// SZP_SIM_CHECK_SAMPLE.
[[nodiscard]] int word_sample();
void set_word_sample(int n);

/// Words per tier-2 shadow page.  The shadow is paged and pages are
/// allocated on first touch, so a launch registering a huge buffer only
/// pays shadow memory for the pages its kernel actually visits.
inline constexpr std::size_t kShadowPageWords = 1024;

/// Per-launch granularity override: kWord upgrades this launch to tier 2
/// whenever checking is enabled at all.
enum class Granularity { kDefault, kWord };

/// Lane id meaning "the whole block" — accesses not attributed to a modeled
/// thread.  Such accesses never produce intra-block hazards.
inline constexpr std::uint32_t kBlockLane = 0xffffffffu;

namespace detail {
/// Per-OS-thread lane context, active only while a word-mode block body is
/// executing on this thread.
struct LaneState {
  bool active = false;
  std::uint32_t lane = kBlockLane;
  std::uint32_t epoch = 0;
};
extern thread_local LaneState t_lane;
}  // namespace detail

/// Declare that the code until the next this_thread()/barrier() models the
/// given cooperating thread (lane) of the current block.  No-op unless a
/// word-mode launch is in flight on this OS thread.
inline void this_thread(std::uint32_t lane) {
  if (detail::t_lane.active) detail::t_lane.lane = lane;
}

/// Model __syncthreads(): closes the current barrier epoch.  Accesses in
/// different epochs of one block are ordered and can never conflict.
inline void barrier() {
  detail::LaneState& s = detail::t_lane;
  if (s.active) {
    ++s.epoch;
    s.lane = kBlockLane;
  }
}

/// A cross-block overlap on one buffer: a race that would be real on a GPU.
struct RaceFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block_a = 0;      ///< linear block index of one party
  std::size_t block_b = 0;      ///< linear block index of the other
  std::uint64_t byte_lo = 0;    ///< overlapping byte window within the buffer
  std::uint64_t byte_hi = 0;
  std::uint32_t elem_bytes = 1; ///< element size, for index reporting
  bool write_write = true;      ///< false: read/write hazard

  [[nodiscard]] std::string to_string() const;
};

/// An intra-block hazard found by the word-granular shadow (tier 2): two
/// lanes of one block touch the same word in the same barrier epoch.
struct HazardFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block = 0;
  std::uint32_t lane_a = kBlockLane;  ///< earlier party
  std::uint32_t lane_b = kBlockLane;  ///< later party
  std::uint64_t word = 0;             ///< element index within the buffer
  std::uint32_t elem_bytes = 1;
  bool write_write = true;            ///< false: read/write hazard

  [[nodiscard]] std::string to_string() const;
};

/// An access outside a registered buffer's extent.
struct OobFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block = 0;
  std::uint64_t element_index = 0;  ///< offending element index
  std::uint64_t element_count = 0;  ///< registered extent, in elements
  bool is_write = false;

  [[nodiscard]] std::string to_string() const;
};

/// An observed access outside the launch's declared footprint contract:
/// either the contract is stale (under-declared) or the kernel strayed.
/// Either way the static verdict cannot be trusted for this kernel, so a
/// mismatch is a finding, not a warning.
struct ContractFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block = 0;
  std::uint64_t elem_lo = 0;  ///< observed element range not covered ...
  std::uint64_t elem_hi = 0;  ///< ... by the declared footprint
  bool is_write = false;

  [[nodiscard]] std::string to_string() const;
};

/// Observed traffic on one buffer exceeded the statically predicted volume
/// (the declared `*_dyn` bound included): either the contract's bound is
/// under-declared or the kernel moved more bytes than its contract admits.
/// The static traffic table cannot be trusted for this kernel.
struct TrafficFinding {
  std::string kernel;
  std::string buffer;
  std::uint64_t observed_bytes = 0;   ///< summed per-block observed footprints
  std::uint64_t predicted_bytes = 0;  ///< statically derived upper bound
  bool is_write = false;

  [[nodiscard]] std::string to_string() const;
};

/// A schedule-fuzz divergence: replaying the grid under a perturbed block
/// order produced different bytes in a writable buffer.
struct ScheduleFinding {
  std::string kernel;
  std::string buffer;
  std::string schedule;         ///< "reversed", "serial", "shuffle#3", ...
  std::uint64_t checksum_ref = 0;
  std::uint64_t checksum_got = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Everything the checker found since the last reset().
struct CheckReport {
  std::vector<RaceFinding> races;
  std::vector<HazardFinding> hazards;
  std::vector<OobFinding> oob;
  std::vector<ContractFinding> contract_mismatches;
  std::vector<TrafficFinding> traffic_mismatches;
  std::vector<ScheduleFinding> schedule_diffs;
  std::uint64_t launches_checked = 0;
  std::uint64_t launches_fuzzed = 0;
  std::uint64_t shadow_pages = 0;  ///< tier-2 shadow pages allocated on touch
  std::uint64_t shadow_words = 0;  ///< tier-2 word accesses recorded (post-sampling)

  [[nodiscard]] bool clean() const {
    return races.empty() && hazards.empty() && oob.empty() && contract_mismatches.empty() &&
           traffic_mismatches.empty() && schedule_diffs.empty();
  }
};

/// Accumulated findings (read-only; owned by the checker).
[[nodiscard]] const CheckReport& current_report();

/// Human-readable summary of current_report(), compute-sanitizer style.
/// Findings are printed in sorted order — (kernel, block, buffer, offset) —
/// so CI log diffs are stable regardless of discovery order.
[[nodiscard]] std::string report_text();

/// Drop all accumulated findings and reset the launch counters.
void reset();

/// RAII mode override for tests: selects the given tier and clears findings
/// on construction, restores the previous tier on destruction.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : prev_(mode()) {
    set_mode(m);
    reset();
  }
  ~ScopedMode() { set_mode(prev_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

/// RAII enable/reset for tests: enables tier-1 checking and clears findings
/// on construction, restores the previous switch state on destruction.
class ScopedEnable {
 public:
  ScopedEnable() : scoped_(Mode::kInterval) {}

 private:
  ScopedMode scoped_;
};

/// RAII word-shadow sampling override for tests.
class ScopedWordSample {
 public:
  explicit ScopedWordSample(int n) : prev_(word_sample()) { set_word_sample(n); }
  ~ScopedWordSample() { set_word_sample(prev_); }
  ScopedWordSample(const ScopedWordSample&) = delete;
  ScopedWordSample& operator=(const ScopedWordSample&) = delete;

 private:
  int prev_;
};

/// RAII schedule-fuzz override for tests.
class ScopedFuzz {
 public:
  explicit ScopedFuzz(int n) : prev_(fuzz_schedules()) { set_fuzz_schedules(n); }
  ~ScopedFuzz() { set_fuzz_schedules(prev_); }
  ScopedFuzz(const ScopedFuzz&) = delete;
  ScopedFuzz& operator=(const ScopedFuzz&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Per-block footprint log (tier 1) and out-of-bounds capture (both tiers).
// ---------------------------------------------------------------------------

/// One coalesced byte interval [lo, hi) touched on buffer `buf`.
struct TaggedInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint32_t buf = 0;
  bool write = false;
};

struct OobHit {
  std::uint32_t buf = 0;
  std::uint64_t index = 0;  ///< element index
  bool write = false;
};

/// Access log for one block of one launch.  Owned exclusively by the OpenMP
/// thread running the block, so no synchronization is needed while recording.
struct BlockLog {
  std::vector<TaggedInterval> acc;
  std::vector<OobHit> oob;

  static constexpr std::size_t kMaxOobPerBlock = 8;

  void add(std::uint32_t buf, bool write, std::uint64_t lo, std::uint64_t hi) {
    // Coalesce with the most recent records: sequential sweeps collapse to a
    // single interval, and interleaved read/write on the same cells (inout
    // buffers) collapse to one interval of each kind.
    const std::size_t n = acc.size();
    for (std::size_t back = 0; back < 2 && back < n; ++back) {
      TaggedInterval& t = acc[n - 1 - back];
      if (t.buf == buf && t.write == write && lo <= t.hi && hi >= t.lo) {
        t.lo = std::min(t.lo, lo);
        t.hi = std::max(t.hi, hi);
        return;
      }
    }
    acc.push_back({lo, hi, buf, write});
  }

  void add_oob(std::uint32_t buf, std::uint64_t index, bool write) {
    if (oob.size() < kMaxOobPerBlock) oob.push_back({buf, index, write});
  }
};

/// Registered extent of one buffer, for analysis and reporting.
struct BufMeta {
  const char* name = "?";
  std::uint64_t elems = 0;
  std::uint32_t elem_bytes = 1;
};

/// Sweep all block footprints of one completed launch for cross-block
/// overlaps and OOB hits; append findings to the global report.
void analyze_launch(const char* kernel, const std::vector<BufMeta>& bufs,
                    const std::vector<BlockLog>& logs);

// ---------------------------------------------------------------------------
// Word-granular shadow memory (tier 2).
// ---------------------------------------------------------------------------

/// Per-launch shadow state: one paged access-record table per registered
/// buffer, one record slot set per word, pages of kShadowPageWords words
/// allocated on first touch (a never-touched page costs one null pointer).
/// record() performs hazard detection inline (blocks run serially in word
/// mode, so every earlier access is visible) and honors the 1-in-N
/// word_sample() filter; finish() appends the collected findings plus
/// page/word statistics to the global report.
class WordShadow {
 public:
  WordShadow(const char* kernel, std::vector<BufMeta> bufs);
  ~WordShadow();
  WordShadow(const WordShadow&) = delete;
  WordShadow& operator=(const WordShadow&) = delete;

  void begin_block(std::size_t block);
  void record(std::uint32_t buf, std::uint64_t word, bool write, bool atomic);
  void finish();  ///< append hazards/races to the global report

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Buffer registration descriptors.
// ---------------------------------------------------------------------------

template <typename T>
struct ReadBuf {
  const T* p;
  std::size_t n;
  const char* name;
};

template <typename T>
struct WriteBuf {
  T* p;
  std::size_t n;
  const char* name;
  bool read_write;  ///< true: accesses count as read+write (inout)
};

/// Register a read-only input buffer.
template <typename T>
[[nodiscard]] ReadBuf<T> in(std::span<const T> s, const char* name) {
  return {s.data(), s.size(), name};
}

/// Register a write-only output buffer.
template <typename T>
[[nodiscard]] WriteBuf<T> out(std::span<T> s, const char* name) {
  return {s.data(), s.size(), name, false};
}

/// Register a read-modify-write buffer (every access counts as both).
template <typename T>
[[nodiscard]] WriteBuf<T> inout(std::span<T> s, const char* name) {
  return {s.data(), s.size(), name, true};
}

/// Bundle buffer registrations for a launch.
template <typename... B>
[[nodiscard]] std::tuple<B...> bufs(B... b) {
  return std::tuple<B...>(b...);
}

// ---------------------------------------------------------------------------
// Views: what the kernel body receives.
// ---------------------------------------------------------------------------

// Unchecked pass-through views.  Everything inlines to the raw pointer
// arithmetic the kernels used before instrumentation: zero overhead.
template <typename T>
struct raw_reader_view {
  const T* p;
  std::size_t n;

  const T& operator[](std::size_t i) const { return p[i]; }
  [[nodiscard]] const T* data() const { return p; }
  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] bool word_granular() const { return false; }
  void note_read(std::size_t, std::size_t) const {}
};

template <typename T>
struct raw_writer_view {
  T* p;
  std::size_t n;

  T& operator[](std::size_t i) const { return p[i]; }
  [[nodiscard]] T* data() const { return p; }
  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] bool word_granular() const { return false; }
  void note_read(std::size_t, std::size_t) const {}
  void note_write(std::size_t, std::size_t) const {}
  void note_rw(std::size_t, std::size_t) const {}
  void atomic_add(std::size_t i, T v) const { p[i] = static_cast<T>(p[i] + v); }
};

// Tracking views.  operator[] records the touched byte range into the
// block's interval log (tier 1) or the per-word shadow (tier 2);
// out-of-range accesses are recorded and redirected to a sink so the kernel
// keeps running and the grid-level report stays complete.
template <typename T>
class reader_view {
 public:
  reader_view(const T* p, std::size_t n, BlockLog* log, std::uint32_t id, WordShadow* shadow)
      : p_(p), n_(n), log_(log), id_(id), shadow_(shadow) {}

  const T& operator[](std::size_t i) const {
    if (i >= n_) {
      log_->add_oob(id_, i, false);
      return sink();
    }
    if (shadow_ != nullptr) {
      shadow_->record(id_, i, false, false);
    } else {
      log_->add(id_, false, i * sizeof(T), (i + 1) * sizeof(T));
    }
    return p_[i];
  }

  [[nodiscard]] const T* data() const { return p_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool word_granular() const { return shadow_ != nullptr; }

  /// Declare a bulk read of [i, i+count) before touching it via data().
  void note_read(std::size_t i, std::size_t count) const {
    if (count == 0) return;
    if (i >= n_ || count > n_ - i) {
      log_->add_oob(id_, i >= n_ ? i : n_, false);
      if (i >= n_) return;
      count = n_ - i;
    }
    if (shadow_ != nullptr) {
      for (std::size_t k = 0; k < count; ++k) shadow_->record(id_, i + k, false, false);
    } else {
      log_->add(id_, false, i * sizeof(T), (i + count) * sizeof(T));
    }
  }

 private:
  static const T& sink() {
    static const T s{};
    return s;
  }

  const T* p_;
  std::size_t n_;
  BlockLog* log_;
  std::uint32_t id_;
  WordShadow* shadow_;
};

template <typename T>
class writer_view {
 public:
  writer_view(T* p, std::size_t n, BlockLog* log, std::uint32_t id, bool read_write,
              WordShadow* shadow)
      : p_(p), n_(n), log_(log), id_(id), rw_(read_write), shadow_(shadow) {}

  T& operator[](std::size_t i) const {
    if (i >= n_) {
      log_->add_oob(id_, i, true);
      return sink();
    }
    if (shadow_ != nullptr) {
      if (rw_) shadow_->record(id_, i, false, false);
      shadow_->record(id_, i, true, false);
    } else {
      if (rw_) log_->add(id_, false, i * sizeof(T), (i + 1) * sizeof(T));
      log_->add(id_, true, i * sizeof(T), (i + 1) * sizeof(T));
    }
    return p_[i];
  }

  [[nodiscard]] T* data() const { return p_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool word_granular() const { return shadow_ != nullptr; }

  /// Atomic read-modify-write of one element (GPU atomicAdd): atomics never
  /// conflict with each other, only with plain reads/writes.
  void atomic_add(std::size_t i, T v) const {
    if (i >= n_) {
      log_->add_oob(id_, i, true);
      return;
    }
    if (shadow_ != nullptr) {
      shadow_->record(id_, i, true, true);
    } else {
      log_->add(id_, true, i * sizeof(T), (i + 1) * sizeof(T));
    }
    p_[i] = static_cast<T>(p_[i] + v);
  }

  /// Declare a bulk read / write / read-modify-write of [i, i+count) before
  /// touching it via data() (for code that scans with raw pointers).
  void note_read(std::size_t i, std::size_t count) const { note(i, count, false, false); }
  void note_write(std::size_t i, std::size_t count) const { note(i, count, true, false); }
  void note_rw(std::size_t i, std::size_t count) const { note(i, count, true, true); }

 private:
  void note(std::size_t i, std::size_t count, bool write, bool also_read) const {
    if (count == 0) return;
    if (i >= n_ || count > n_ - i) {
      log_->add_oob(id_, i >= n_ ? i : n_, write);
      if (i >= n_) return;
      count = n_ - i;
    }
    if (shadow_ != nullptr) {
      for (std::size_t k = 0; k < count; ++k) {
        if (!write || also_read) shadow_->record(id_, i + k, false, false);
        if (write) shadow_->record(id_, i + k, true, false);
      }
      return;
    }
    if (!write || also_read) log_->add(id_, false, i * sizeof(T), (i + count) * sizeof(T));
    if (write) log_->add(id_, true, i * sizeof(T), (i + count) * sizeof(T));
  }

  static T& sink() {
    static thread_local T s{};
    return s;
  }

  T* p_;
  std::size_t n_;
  BlockLog* log_;
  std::uint32_t id_;
  bool rw_;
  WordShadow* shadow_;
};

// ---------------------------------------------------------------------------
// View construction and metadata extraction.
// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
raw_reader_view<T> make_raw(const ReadBuf<T>& b) {
  return {b.p, b.n};
}
template <typename T>
raw_writer_view<T> make_raw(const WriteBuf<T>& b) {
  return {b.p, b.n};
}

template <typename T>
reader_view<T> make_tracked(const ReadBuf<T>& b, BlockLog* log, std::uint32_t id,
                            WordShadow* shadow) {
  return {b.p, b.n, log, id, shadow};
}
template <typename T>
writer_view<T> make_tracked(const WriteBuf<T>& b, BlockLog* log, std::uint32_t id,
                            WordShadow* shadow) {
  return {b.p, b.n, log, id, b.read_write, shadow};
}

template <typename T>
BufMeta meta_of(const ReadBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}
template <typename T>
BufMeta meta_of(const WriteBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}

template <typename... B>
std::vector<BufMeta> metas(const std::tuple<B...>& t) {
  return std::apply([](const auto&... b) { return std::vector<BufMeta>{meta_of(b)...}; }, t);
}

template <typename... B>
std::vector<contract::BufExtent> extents(const std::tuple<B...>& t) {
  return std::apply(
      [](const auto&... b) { return std::vector<contract::BufExtent>{{b.name, b.n}...}; }, t);
}

template <typename T>
traffic::BufShape shape_of(const ReadBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}
template <typename T>
traffic::BufShape shape_of(const WriteBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}

template <typename... B>
std::vector<traffic::BufShape> shapes(const std::tuple<B...>& t) {
  return std::apply(
      [](const auto&... b) { return std::vector<traffic::BufShape>{shape_of(b)...}; }, t);
}

/// Append one contract-mismatch finding to the process-global report
/// (defined in check.cc, which owns the report mutex).
void append_contract_finding(const ContractFinding& f);

/// Append one traffic-mismatch finding to the process-global report
/// (defined in check.cc, which owns the report mutex).
void append_traffic_finding(const TrafficFinding& f);

/// Cross-validate the observed interval-tier footprints of one completed
/// launch against its declared contract: every observed access of block b
/// must lie inside the contract's evaluated footprint for block b
/// (observed ⊆ declared).  Appends ContractFindings for uncovered ranges.
/// Defined in contract.cc.
void validate_observed(const char* kernel, const contract::Contract& con,
                       const contract::Geom& geom, const std::vector<BufMeta>& bufs,
                       const std::vector<BlockLog>& logs);

/// Cross-validate the statically predicted traffic of one completed launch
/// against observation: per buffer and direction, the sum over blocks of the
/// observed (union-normalized) footprint bytes must not exceed the derived
/// volume — for dynamic clauses, the declared `*_dyn` bound.  Appends
/// TrafficFindings on excess.  Defined in traffic.cc.
void validate_traffic(const char* kernel, const traffic::LaunchTraffic& predicted,
                      const std::vector<BufMeta>& bufs, const std::vector<BlockLog>& logs);

template <typename Tuple, typename Fn, std::size_t... I>
decltype(auto) with_raw_views(const Tuple& t, Fn&& fn, std::index_sequence<I...>) {
  return fn(make_raw(std::get<I>(t))...);
}

template <typename Tuple, typename Fn, std::size_t... I>
decltype(auto) with_tracked_views(const Tuple& t, BlockLog* log, WordShadow* shadow, Fn&& fn,
                                  std::index_sequence<I...>) {
  return fn(make_tracked(std::get<I>(t), log, static_cast<std::uint32_t>(I), shadow)...);
}

// ---------------------------------------------------------------------------
// Schedule-fuzz plumbing (non-template pieces live in check.cc).
// ---------------------------------------------------------------------------

/// FNV-1a over a byte range, seeded so empty buffers hash to the seed.
[[nodiscard]] std::uint64_t fnv1a(const void* p, std::size_t nbytes);

/// Fill `order` for perturbed schedule `s` (1-based): 1 is reversed, 2 is
/// strictly serial (identity order, no OpenMP), >=3 are seeded shuffles run
/// under a dynamic schedule.  Deterministic for a given (s, n).
void make_fuzz_order(int s, std::size_t n, std::vector<std::size_t>& order, bool* parallel,
                     std::string* name);

/// 3-D variant for launch_3d-registered grids: schedules 1..6 are the six
/// axis traversal orders (named fastest-varying axis first; "xyz" is the
/// canonical x-fastest layout, "zyx" walks z fastest), executed serially so
/// the permuted traversal is honored exactly and any divergence is
/// deterministic; 7+ map onto the linear repertoire (reversed, serial,
/// seeded shuffles).
void make_fuzz_order_3d(int s, Dim3 grid, std::vector<std::size_t>& order, bool* parallel,
                        std::string* name);

void append_schedule_finding(const char* kernel, const char* buffer, const std::string& schedule,
                             std::uint64_t ref, std::uint64_t got);
void note_fuzzed_launch();

template <typename T>
void snapshot_one(const ReadBuf<T>&, std::vector<std::vector<std::uint8_t>>& out) {
  out.emplace_back();  // read-only: keep index alignment with metas()
}
template <typename T>
void snapshot_one(const WriteBuf<T>& b, std::vector<std::vector<std::uint8_t>>& out) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(b.p);
  out.emplace_back(bytes, bytes + b.n * sizeof(T));
}

template <typename T>
void restore_one(const ReadBuf<T>&, const std::vector<std::uint8_t>&) {}
template <typename T>
void restore_one(const WriteBuf<T>& b, const std::vector<std::uint8_t>& snap) {
  if (!snap.empty()) std::memcpy(b.p, snap.data(), snap.size());
}

template <typename T>
std::uint64_t checksum_one(const ReadBuf<T>&) {
  return 0;  // read-only buffers never diverge (and are never diffed)
}
template <typename T>
std::uint64_t checksum_one(const WriteBuf<T>& b) {
  return fnv1a(b.p, b.n * sizeof(T));
}

template <typename... B>
std::vector<std::vector<std::uint8_t>> snapshot_writable(const std::tuple<B...>& t) {
  std::vector<std::vector<std::uint8_t>> snaps;
  snaps.reserve(sizeof...(B));
  std::apply([&](const auto&... b) { (snapshot_one(b, snaps), ...); }, t);
  return snaps;
}

template <typename... B>
void restore_writable(const std::tuple<B...>& t,
                      const std::vector<std::vector<std::uint8_t>>& snaps) {
  std::size_t i = 0;
  std::apply([&](const auto&... b) { (restore_one(b, snaps[i++]), ...); }, t);
}

template <typename... B>
std::vector<std::uint64_t> checksum_writable(const std::tuple<B...>& t) {
  std::vector<std::uint64_t> sums;
  sums.reserve(sizeof...(B));
  std::apply([&](const auto&... b) { (sums.push_back(checksum_one(b)), ...); }, t);
  return sums;
}

/// Replay the grid under `schedules` perturbed block orders, diffing every
/// writable buffer's checksum against the canonical result.  `pre` is the
/// snapshot taken before the canonical run; the canonical post-state is
/// restored before returning so the pipeline continues deterministically.
/// `invoke(order, parallel)` must execute the whole grid with raw views.
/// A non-degenerate `grid3` (matching count, extent beyond x) selects the
/// 3-D schedule repertoire: z/y/x axis traversal orders first.
template <typename... B, typename InvokeRaw>
void run_schedule_fuzz(const char* kernel, const std::tuple<B...>& registered,
                       std::size_t grid_count, int schedules, Dim3 grid3,
                       const std::vector<std::vector<std::uint8_t>>& pre, InvokeRaw&& invoke) {
  const bool axis_aware = grid3.count() == grid_count && (grid3.y > 1 || grid3.z > 1);
  const std::vector<BufMeta> meta = metas(registered);
  const std::vector<std::uint64_t> ref = checksum_writable(registered);
  const std::vector<std::vector<std::uint8_t>> post = snapshot_writable(registered);
  std::vector<std::size_t> order(grid_count);
  for (int s = 1; s <= schedules; ++s) {
    bool parallel = true;
    std::string name;
    if (axis_aware) {
      make_fuzz_order_3d(s, grid3, order, &parallel, &name);
    } else {
      make_fuzz_order(s, grid_count, order, &parallel, &name);
    }
    restore_writable(registered, pre);
    invoke(std::span<const std::size_t>(order), parallel);
    const std::vector<std::uint64_t> got = checksum_writable(registered);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != ref[i]) {
        append_schedule_finding(kernel, meta[i].name, name, ref[i], got[i]);
      }
    }
  }
  restore_writable(registered, post);
  note_fuzzed_launch();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Instrumented launches.
// ---------------------------------------------------------------------------

namespace detail {

/// Shared implementation behind every public launch overload.  `con` is the
/// launch's footprint contract, or nullptr when the call site declared none
/// (registered as a no-contract kernel whenever checking is enabled).
template <typename... B, typename Body>
void launch_impl(const char* kernel, std::size_t grid_size, Granularity gran,
                 const std::tuple<B...>& registered, const contract::Contract* con, Body&& body,
                 Dim3 grid3) {
  constexpr auto seq = std::index_sequence_for<B...>{};
  const Mode m = mode();
  bool word = m != Mode::kOff && (m == Mode::kWord || gran == Granularity::kWord);
  const bool axis_aware = grid3.count() == grid_size && (grid3.y > 1 || grid3.z > 1);
  int schedules = grid_size > 1 ? fuzz_schedules() : 0;
  // 3-D grids always cover the full deterministic 3-D repertoire: six axis
  // traversal orders, reversed, serial.
  if (schedules > 0 && axis_aware) schedules = std::max(schedules, 8);

  const auto run_raw = [&](std::size_t b) {
    detail::with_raw_views(registered, [&](const auto&... views) { body(b, views...); }, seq);
  };

  // A traffic Scope on this thread wants the contract-derived volumes even
  // with checking off (kernel wrappers derive their KernelCost traffic from
  // it), so the zero-overhead fast path only applies without one.
  const bool want_traffic = con != nullptr && (m != Mode::kOff || traffic::scope_active());

  if (m == Mode::kOff && schedules == 0 && !want_traffic) {
    launch_blocks(grid_size, run_raw);
    return;
  }

  // Contract evaluation: prove once per launch geometry.  A proved contract
  // downgrades a *process-wide* word-mode launch to the interval tier — the
  // proof discharges exactly what the shadow would re-derive per word
  // (cross-block disjointness and bounds).  Per-launch Granularity::kWord
  // opt-ins keep the shadow: they exist to model intra-block lanes, which
  // per-block footprints say nothing about.
  const contract::Geom geom{static_cast<std::int64_t>(grid_size), grid3.x, grid3.y, grid3.z};
  traffic::LaunchTraffic predicted;
  if (want_traffic) {
    predicted = traffic::analyze(*con, geom, detail::shapes(registered));
    traffic::record(kernel, predicted);
  }
  bool validate = false;
  if (m != Mode::kOff) {
    if (con != nullptr) {
      const contract::ProveResult pr = contract::prove(*con, geom, detail::extents(registered));
      const bool fast =
          word && gran != Granularity::kWord && pr.proved() && contract::fastpath_enabled();
      if (fast) word = false;
      contract::note_launch(kernel, pr, word || fast, fast);
      validate = true;
    } else {
      contract::note_launch_no_contract(kernel, word);
    }
  }

  std::vector<std::vector<std::uint8_t>> pre;
  if (schedules > 0) pre = detail::snapshot_writable(registered);

  if (m == Mode::kOff) {
    launch_blocks(grid_size, run_raw);
  } else if (word) {
    // Tier 2: serialize the grid so the shared shadow arrays need no locks
    // and hazard reports are deterministic.
    std::vector<BlockLog> logs(grid_size);
    WordShadow shadow(kernel, detail::metas(registered));
    for (std::size_t b = 0; b < grid_size; ++b) {
      shadow.begin_block(b);
      detail::t_lane = {true, kBlockLane, 0};
      detail::with_tracked_views(
          registered, &logs[b], &shadow, [&](const auto&... views) { body(b, views...); }, seq);
      detail::t_lane.active = false;
    }
    shadow.finish();
    analyze_launch(kernel, detail::metas(registered), logs);
  } else {
    std::vector<BlockLog> logs(grid_size);
    launch_blocks(grid_size, [&](std::size_t b) {
      detail::with_tracked_views(
          registered, &logs[b], nullptr, [&](const auto&... views) { body(b, views...); }, seq);
    });
    if (validate) {
      detail::validate_observed(kernel, *con, geom, detail::metas(registered), logs);
      detail::validate_traffic(kernel, predicted, detail::metas(registered), logs);
    }
    analyze_launch(kernel, detail::metas(registered), logs);
  }

  if (schedules > 0) {
    detail::run_schedule_fuzz(kernel, registered, grid_size, schedules, grid3, pre,
                              [&](std::span<const std::size_t> order, bool parallel) {
                                launch_blocks_in_order(order, parallel, run_raw);
                              });
  }
}

template <typename... B, typename Body>
void launch_3d_impl(const char* kernel, Dim3 grid, Granularity gran,
                    const std::tuple<B...>& registered, const contract::Contract* con,
                    Body&& body) {
  const auto decompose = [grid, &body](std::size_t linear, const auto&... views) {
    const auto bx = static_cast<std::uint32_t>(linear % grid.x);
    const auto by = static_cast<std::uint32_t>((linear / grid.x) % grid.y);
    const auto bz =
        static_cast<std::uint32_t>(linear / (static_cast<std::size_t>(grid.x) * grid.y));
    body(bx, by, bz, views...);
  };
  launch_impl(kernel, grid.count(), gran, registered, con,
              [&](std::size_t linear, const auto&... views) { decompose(linear, views...); },
              grid);
}

}  // namespace detail

/// launch_blocks with buffer registration and per-launch granularity:
/// body(block, view...).  The trailing grid3 carries the 3-D geometry when
/// the call came through launch_3d (degenerate {1,1,1} otherwise) so the
/// schedule fuzzer can permute z/y/x traversal instead of linear order.
template <typename... B, typename Body>
void launch(const char* kernel, std::size_t grid_size, Granularity gran,
            const std::tuple<B...>& registered, Body&& body, Dim3 grid3 = {}) {
  detail::launch_impl(kernel, grid_size, gran, registered, nullptr, std::forward<Body>(body),
                      grid3);
}

/// Contract-carrying variant: the declared footprint is proved (or honestly
/// left to dynamic checking) and cross-validated against observation.
template <typename... B, typename Body>
void launch(const char* kernel, std::size_t grid_size, Granularity gran,
            const std::tuple<B...>& registered, const contract::Contract& con, Body&& body,
            Dim3 grid3 = {}) {
  detail::launch_impl(kernel, grid_size, gran, registered, &con, std::forward<Body>(body), grid3);
}

/// launch_blocks with buffer registration: body(block, view...).
template <typename... B, typename Body>
void launch(const char* kernel, std::size_t grid_size, const std::tuple<B...>& registered,
            Body&& body) {
  detail::launch_impl(kernel, grid_size, Granularity::kDefault, registered, nullptr,
                      std::forward<Body>(body), Dim3{});
}

template <typename... B, typename Body>
void launch(const char* kernel, std::size_t grid_size, const std::tuple<B...>& registered,
            const contract::Contract& con, Body&& body) {
  detail::launch_impl(kernel, grid_size, Granularity::kDefault, registered, &con,
                      std::forward<Body>(body), Dim3{});
}

/// launch_blocks_3d with buffer registration: body(bx, by, bz, view...).
/// Block footprints are logged under the linear index (bz*gy + by)*gx + bx.
/// The grid geometry is forwarded to the schedule fuzzer, which replays 3-D
/// grids under permuted z/y/x traversal orders rather than linear shuffles
/// alone.
template <typename... B, typename Body>
void launch_3d(const char* kernel, Dim3 grid, Granularity gran, const std::tuple<B...>& registered,
               Body&& body) {
  detail::launch_3d_impl(kernel, grid, gran, registered, nullptr, std::forward<Body>(body));
}

template <typename... B, typename Body>
void launch_3d(const char* kernel, Dim3 grid, Granularity gran, const std::tuple<B...>& registered,
               const contract::Contract& con, Body&& body) {
  detail::launch_3d_impl(kernel, grid, gran, registered, &con, std::forward<Body>(body));
}

template <typename... B, typename Body>
void launch_3d(const char* kernel, Dim3 grid, const std::tuple<B...>& registered, Body&& body) {
  detail::launch_3d_impl(kernel, grid, Granularity::kDefault, registered, nullptr,
                         std::forward<Body>(body));
}

template <typename... B, typename Body>
void launch_3d(const char* kernel, Dim3 grid, const std::tuple<B...>& registered,
               const contract::Contract& con, Body&& body) {
  detail::launch_3d_impl(kernel, grid, Granularity::kDefault, registered, &con,
                         std::forward<Body>(body));
}

}  // namespace szp::sim::checked
