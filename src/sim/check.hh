// szp::sim::checked — race & bounds checking for the simulated-GPU substrate.
//
// launch.hh states the contract every kernel in this reproduction depends on:
// a block may only touch state owned by its block.  On a real GPU, violating
// it is a data race that compute-sanitizer's racecheck/memcheck tools catch;
// here OpenMP's static schedule can silently serialize the offending blocks
// and hide the bug until a refactor reshuffles the schedule.  This header
// enforces the contract mechanically:
//
//   * call sites register each global buffer a kernel touches (in / out /
//     inout) and receive *views* in the kernel body;
//   * with checking OFF (the default), the views are raw pointer wrappers
//     that inline away — the unchecked instantiation of the body is
//     byte-for-byte the code that ran before this subsystem existed;
//   * with checking ON (env var SZP_SIM_CHECK=1, CMake -DSZP_SIM_CHECK=ON,
//     or checked::set_enabled(true)), every element access is logged into a
//     per-block footprint (coalesced byte intervals per buffer), and after
//     the grid completes the footprints are swept for
//       (a) write/write and read/write overlaps between *distinct* blocks —
//           races that would be real on a GPU regardless of how OpenMP
//           happened to schedule them, and
//       (b) accesses outside the registered buffer extents,
//     each reported with kernel name, block index, buffer name and the
//     offending byte/element offsets.
//
// Findings accumulate in a process-global report (checked::current_report)
// that the CLI's --check flag prints and tests assert on.  See DESIGN.md
// §"Checked-launch mode" for the mapping to compute-sanitizer.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/launch.hh"

namespace szp::sim::checked {

// ---------------------------------------------------------------------------
// Global switch and accumulated report (definitions in check.cc).
// ---------------------------------------------------------------------------

/// True when access tracking is active.  First call latches the SZP_SIM_CHECK
/// environment variable (or the SZP_SIM_CHECK_DEFAULT_ON compile default);
/// set_enabled() overrides at any time.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// A cross-block overlap on one buffer: a race that would be real on a GPU.
struct RaceFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block_a = 0;      ///< linear block index of one party
  std::size_t block_b = 0;      ///< linear block index of the other
  std::uint64_t byte_lo = 0;    ///< overlapping byte window within the buffer
  std::uint64_t byte_hi = 0;
  std::uint32_t elem_bytes = 1; ///< element size, for index reporting
  bool write_write = true;      ///< false: read/write hazard

  [[nodiscard]] std::string to_string() const;
};

/// An access outside a registered buffer's extent.
struct OobFinding {
  std::string kernel;
  std::string buffer;
  std::size_t block = 0;
  std::uint64_t element_index = 0;  ///< offending element index
  std::uint64_t element_count = 0;  ///< registered extent, in elements
  bool is_write = false;

  [[nodiscard]] std::string to_string() const;
};

/// Everything the checker found since the last reset().
struct CheckReport {
  std::vector<RaceFinding> races;
  std::vector<OobFinding> oob;
  std::uint64_t launches_checked = 0;

  [[nodiscard]] bool clean() const { return races.empty() && oob.empty(); }
};

/// Accumulated findings (read-only; owned by the checker).
[[nodiscard]] const CheckReport& current_report();

/// Human-readable summary of current_report(), compute-sanitizer style.
[[nodiscard]] std::string report_text();

/// Drop all accumulated findings and reset the launch counter.
void reset();

/// RAII enable/reset for tests: enables checking and clears findings on
/// construction, restores the previous switch state on destruction.
class ScopedEnable {
 public:
  ScopedEnable() : prev_(enabled()) {
    set_enabled(true);
    reset();
  }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Per-block footprint log.
// ---------------------------------------------------------------------------

/// One coalesced byte interval [lo, hi) touched on buffer `buf`.
struct TaggedInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint32_t buf = 0;
  bool write = false;
};

struct OobHit {
  std::uint32_t buf = 0;
  std::uint64_t index = 0;  ///< element index
  bool write = false;
};

/// Access log for one block of one launch.  Owned exclusively by the OpenMP
/// thread running the block, so no synchronization is needed while recording.
struct BlockLog {
  std::vector<TaggedInterval> acc;
  std::vector<OobHit> oob;

  static constexpr std::size_t kMaxOobPerBlock = 8;

  void add(std::uint32_t buf, bool write, std::uint64_t lo, std::uint64_t hi) {
    // Coalesce with the most recent records: sequential sweeps collapse to a
    // single interval, and interleaved read/write on the same cells (inout
    // buffers) collapse to one interval of each kind.
    const std::size_t n = acc.size();
    for (std::size_t back = 0; back < 2 && back < n; ++back) {
      TaggedInterval& t = acc[n - 1 - back];
      if (t.buf == buf && t.write == write && lo <= t.hi && hi >= t.lo) {
        t.lo = std::min(t.lo, lo);
        t.hi = std::max(t.hi, hi);
        return;
      }
    }
    acc.push_back({lo, hi, buf, write});
  }

  void add_oob(std::uint32_t buf, std::uint64_t index, bool write) {
    if (oob.size() < kMaxOobPerBlock) oob.push_back({buf, index, write});
  }
};

/// Registered extent of one buffer, for analysis and reporting.
struct BufMeta {
  const char* name = "?";
  std::uint64_t elems = 0;
  std::uint32_t elem_bytes = 1;
};

/// Sweep all block footprints of one completed launch for cross-block
/// overlaps and OOB hits; append findings to the global report.
void analyze_launch(const char* kernel, const std::vector<BufMeta>& bufs,
                    const std::vector<BlockLog>& logs);

// ---------------------------------------------------------------------------
// Buffer registration descriptors.
// ---------------------------------------------------------------------------

template <typename T>
struct ReadBuf {
  const T* p;
  std::size_t n;
  const char* name;
};

template <typename T>
struct WriteBuf {
  T* p;
  std::size_t n;
  const char* name;
  bool read_write;  ///< true: accesses count as read+write (inout)
};

/// Register a read-only input buffer.
template <typename T>
[[nodiscard]] ReadBuf<T> in(std::span<const T> s, const char* name) {
  return {s.data(), s.size(), name};
}

/// Register a write-only output buffer.
template <typename T>
[[nodiscard]] WriteBuf<T> out(std::span<T> s, const char* name) {
  return {s.data(), s.size(), name, false};
}

/// Register a read-modify-write buffer (every access counts as both).
template <typename T>
[[nodiscard]] WriteBuf<T> inout(std::span<T> s, const char* name) {
  return {s.data(), s.size(), name, true};
}

/// Bundle buffer registrations for a launch.
template <typename... B>
[[nodiscard]] std::tuple<B...> bufs(B... b) {
  return std::tuple<B...>(b...);
}

// ---------------------------------------------------------------------------
// Views: what the kernel body receives.
// ---------------------------------------------------------------------------

// Unchecked pass-through views.  Everything inlines to the raw pointer
// arithmetic the kernels used before instrumentation: zero overhead.
template <typename T>
struct raw_reader_view {
  const T* p;
  std::size_t n;

  const T& operator[](std::size_t i) const { return p[i]; }
  [[nodiscard]] const T* data() const { return p; }
  [[nodiscard]] std::size_t size() const { return n; }
  void note_read(std::size_t, std::size_t) const {}
};

template <typename T>
struct raw_writer_view {
  T* p;
  std::size_t n;

  T& operator[](std::size_t i) const { return p[i]; }
  [[nodiscard]] T* data() const { return p; }
  [[nodiscard]] std::size_t size() const { return n; }
  void note_read(std::size_t, std::size_t) const {}
  void note_write(std::size_t, std::size_t) const {}
  void note_rw(std::size_t, std::size_t) const {}
};

// Tracking views.  operator[] records the touched byte range into the
// block's log; out-of-range accesses are recorded and redirected to a sink
// so the kernel keeps running and the grid-level report stays complete.
template <typename T>
class reader_view {
 public:
  reader_view(const T* p, std::size_t n, BlockLog* log, std::uint32_t id)
      : p_(p), n_(n), log_(log), id_(id) {}

  const T& operator[](std::size_t i) const {
    if (i >= n_) {
      log_->add_oob(id_, i, false);
      return sink();
    }
    log_->add(id_, false, i * sizeof(T), (i + 1) * sizeof(T));
    return p_[i];
  }

  [[nodiscard]] const T* data() const { return p_; }
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Declare a bulk read of [i, i+count) before touching it via data().
  void note_read(std::size_t i, std::size_t count) const {
    if (count == 0) return;
    if (i >= n_ || count > n_ - i) {
      log_->add_oob(id_, i >= n_ ? i : n_, false);
      if (i >= n_) return;
      count = n_ - i;
    }
    log_->add(id_, false, i * sizeof(T), (i + count) * sizeof(T));
  }

 private:
  static const T& sink() {
    static const T s{};
    return s;
  }

  const T* p_;
  std::size_t n_;
  BlockLog* log_;
  std::uint32_t id_;
};

template <typename T>
class writer_view {
 public:
  writer_view(T* p, std::size_t n, BlockLog* log, std::uint32_t id, bool read_write)
      : p_(p), n_(n), log_(log), id_(id), rw_(read_write) {}

  T& operator[](std::size_t i) const {
    if (i >= n_) {
      log_->add_oob(id_, i, true);
      return sink();
    }
    if (rw_) log_->add(id_, false, i * sizeof(T), (i + 1) * sizeof(T));
    log_->add(id_, true, i * sizeof(T), (i + 1) * sizeof(T));
    return p_[i];
  }

  [[nodiscard]] T* data() const { return p_; }
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Declare a bulk read / write / read-modify-write of [i, i+count) before
  /// touching it via data() (for code that scans with raw pointers).
  void note_read(std::size_t i, std::size_t count) const { note(i, count, false, false); }
  void note_write(std::size_t i, std::size_t count) const { note(i, count, true, false); }
  void note_rw(std::size_t i, std::size_t count) const { note(i, count, true, true); }

 private:
  void note(std::size_t i, std::size_t count, bool write, bool also_read) const {
    if (count == 0) return;
    if (i >= n_ || count > n_ - i) {
      log_->add_oob(id_, i >= n_ ? i : n_, write);
      if (i >= n_) return;
      count = n_ - i;
    }
    if (!write || also_read) log_->add(id_, false, i * sizeof(T), (i + count) * sizeof(T));
    if (write) log_->add(id_, true, i * sizeof(T), (i + count) * sizeof(T));
  }

  static T& sink() {
    static thread_local T s{};
    return s;
  }

  T* p_;
  std::size_t n_;
  BlockLog* log_;
  std::uint32_t id_;
  bool rw_;
};

// ---------------------------------------------------------------------------
// View construction and metadata extraction.
// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
raw_reader_view<T> make_raw(const ReadBuf<T>& b) {
  return {b.p, b.n};
}
template <typename T>
raw_writer_view<T> make_raw(const WriteBuf<T>& b) {
  return {b.p, b.n};
}

template <typename T>
reader_view<T> make_tracked(const ReadBuf<T>& b, BlockLog* log, std::uint32_t id) {
  return {b.p, b.n, log, id};
}
template <typename T>
writer_view<T> make_tracked(const WriteBuf<T>& b, BlockLog* log, std::uint32_t id) {
  return {b.p, b.n, log, id, b.read_write};
}

template <typename T>
BufMeta meta_of(const ReadBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}
template <typename T>
BufMeta meta_of(const WriteBuf<T>& b) {
  return {b.name, b.n, sizeof(T)};
}

template <typename... B>
std::vector<BufMeta> metas(const std::tuple<B...>& t) {
  return std::apply([](const auto&... b) { return std::vector<BufMeta>{meta_of(b)...}; }, t);
}

template <typename Tuple, typename Fn, std::size_t... I>
decltype(auto) with_raw_views(const Tuple& t, Fn&& fn, std::index_sequence<I...>) {
  return fn(make_raw(std::get<I>(t))...);
}

template <typename Tuple, typename Fn, std::size_t... I>
decltype(auto) with_tracked_views(const Tuple& t, BlockLog* log, Fn&& fn,
                                  std::index_sequence<I...>) {
  return fn(make_tracked(std::get<I>(t), log, static_cast<std::uint32_t>(I))...);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Instrumented launches.
// ---------------------------------------------------------------------------

/// launch_blocks with buffer registration: body(block, view...).
template <typename... B, typename Body>
void launch(const char* kernel, std::size_t grid_size, const std::tuple<B...>& registered,
            Body&& body) {
  constexpr auto seq = std::index_sequence_for<B...>{};
  if (!enabled()) {
    launch_blocks(grid_size, [&](std::size_t b) {
      detail::with_raw_views(registered, [&](const auto&... views) { body(b, views...); }, seq);
    });
    return;
  }
  std::vector<BlockLog> logs(grid_size);
  launch_blocks(grid_size, [&](std::size_t b) {
    BlockLog* log = &logs[b];
    detail::with_tracked_views(
        registered, log, [&](const auto&... views) { body(b, views...); }, seq);
  });
  analyze_launch(kernel, detail::metas(registered), logs);
}

/// launch_blocks_3d with buffer registration: body(bx, by, bz, view...).
/// Block footprints are logged under the linear index (bz*gy + by)*gx + bx.
template <typename... B, typename Body>
void launch_3d(const char* kernel, Dim3 grid, const std::tuple<B...>& registered, Body&& body) {
  constexpr auto seq = std::index_sequence_for<B...>{};
  if (!enabled()) {
    launch_blocks_3d(grid, [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz) {
      detail::with_raw_views(registered,
                             [&](const auto&... views) { body(bx, by, bz, views...); }, seq);
    });
    return;
  }
  std::vector<BlockLog> logs(grid.count());
  launch_blocks_3d(grid, [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz) {
    const std::size_t linear =
        (static_cast<std::size_t>(bz) * grid.y + by) * grid.x + bx;
    BlockLog* log = &logs[linear];
    detail::with_tracked_views(
        registered, log, [&](const auto&... views) { body(bx, by, bz, views...); }, seq);
  });
  analyze_launch(kernel, detail::metas(registered), logs);
}

}  // namespace szp::sim::checked
