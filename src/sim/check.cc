// szp::sim::checked — analysis engines for checked-launch mode.
//
// Tier 1: the per-block footprints recorded by the tracking views are swept
// for cross-block overlaps (the races launch.hh's block-independence
// contract forbids) and out-of-bounds accesses.  The sweep is a single
// sorted pass per buffer: O(I log I) in the number of coalesced intervals,
// independent of the pairwise block count, so checking large grids stays
// tractable.
//
// Tier 2 (WordShadow): racecheck-style per-word access records.  Blocks run
// serially in word mode, so each record() sees every earlier access and can
// classify hazards inline: same word + different blocks is a cross-block
// race at word granularity; same word + same block + two *modeled* lanes in
// the same barrier epoch is an intra-block hazard (unless both sides are
// atomic).  Accesses not attributed to a lane (kBlockLane) represent "the
// block as a whole" and are exempt from intra-block classification — a
// kernel gets intra-block checking exactly where it models its cooperating
// threads via this_thread()/barrier().
//
// Schedule fuzzing support (make_fuzz_order, checksums) also lives here; the
// replay loop itself is a template in check.hh.
#include "sim/check.hh"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <random>
#include <sstream>
#include <string_view>

namespace szp::sim::checked {

namespace detail {
thread_local LaneState t_lane;
}  // namespace detail

namespace {

// -1: not yet latched from the environment; else a Mode value.
std::atomic<int> g_mode{-1};
// -1: not yet latched from the environment; else a schedule count >= 0.
std::atomic<int> g_fuzz{-1};
// -1: not yet latched from the environment; else a sampling divisor >= 1.
std::atomic<int> g_sample{-1};

CheckReport& mutable_report() {
  static CheckReport report;
  return report;
}

// Launches may complete concurrently (parallel slab streaming runs whole
// compression pipelines from sibling OpenMP workers), so every mutation of
// the process-global report serializes here.  Recording inside a launch
// stays lock-free: block logs and word shadows are per-launch state.
std::mutex& report_mutex() {
  static std::mutex m;
  return m;
}

Mode env_default_mode() {
  const char* v = std::getenv("SZP_SIM_CHECK");
  const bool explicit_off = v != nullptr && v[0] == '0' && v[1] == '\0';
  if (v != nullptr && std::string_view(v) == "word") return Mode::kWord;
#ifdef SZP_SIM_CHECK_DEFAULT_ON
  // Built with -DSZP_SIM_CHECK=ON: checking is on unless explicitly disabled.
  return explicit_off ? Mode::kOff : Mode::kInterval;
#else
  if (v == nullptr || v[0] == '\0' || explicit_off) return Mode::kOff;
  return Mode::kInterval;
#endif
}

int env_default_fuzz() {
  const char* v = std::getenv("SZP_SIM_FUZZ_SCHEDULE");
  if (v == nullptr || v[0] == '\0') return 0;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<int>(n) : 0;
}

int env_default_sample() {
  const char* v = std::getenv("SZP_SIM_CHECK_SAMPLE");
  if (v == nullptr || v[0] == '\0') return 1;
  const long n = std::strtol(v, nullptr, 10);
  return n > 1 ? static_cast<int>(n) : 1;
}

/// One block's interval plus ownership, flattened for the sweep.
struct Event {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t block = 0;
  bool write = false;
};

/// The two furthest-reaching intervals seen so far, guaranteed to belong to
/// distinct blocks.  Keeping two is what makes the sweep complete for
/// pairwise overlap detection: if the furthest interval belongs to the same
/// block as the incoming event, the runner-up (different block by
/// construction) still witnesses any overlap.
struct Frontier {
  std::uint64_t end[2] = {0, 0};
  std::size_t block[2] = {static_cast<std::size_t>(-1), static_cast<std::size_t>(-1)};

  void update(const Event& e) {
    if (e.block == block[0]) {
      end[0] = std::max(end[0], e.hi);
    } else if (e.hi > end[0]) {
      if (block[0] != static_cast<std::size_t>(-1) && end[0] > end[1]) {
        end[1] = end[0];
        block[1] = block[0];
      }
      end[0] = e.hi;
      block[0] = e.block;
    } else if (e.block == block[1]) {
      end[1] = std::max(end[1], e.hi);
    } else if (e.hi > end[1]) {
      end[1] = e.hi;
      block[1] = e.block;
    }
  }

  /// If any tracked interval from a block other than e.block overlaps e,
  /// return the witness (other block, overlap end); else false.
  bool overlap(const Event& e, std::size_t* other, std::uint64_t* end_out) const {
    for (int k = 0; k < 2; ++k) {
      if (block[k] == static_cast<std::size_t>(-1) || block[k] == e.block) continue;
      if (end[k] > e.lo) {
        *other = block[k];
        *end_out = std::min(end[k], e.hi);
        return true;
      }
    }
    return false;
  }
};

constexpr std::size_t kMaxRacesPerLaunch = 32;
constexpr std::size_t kMaxHazardsPerLaunch = 32;
constexpr std::size_t kMaxOobPerLaunch = 32;

}  // namespace

Mode mode() {
  int s = g_mode.load(std::memory_order_relaxed);
  if (s < 0) {
    s = static_cast<int>(env_default_mode());
    g_mode.store(s, std::memory_order_relaxed);
  }
  return static_cast<Mode>(s);
}

void set_mode(Mode m) { g_mode.store(static_cast<int>(m), std::memory_order_relaxed); }

bool enabled() { return mode() != Mode::kOff; }

void set_enabled(bool on) {
  if (on) {
    if (mode() != Mode::kWord) set_mode(Mode::kInterval);
  } else {
    set_mode(Mode::kOff);
  }
}

int fuzz_schedules() {
  int n = g_fuzz.load(std::memory_order_relaxed);
  if (n < 0) {
    n = env_default_fuzz();
    g_fuzz.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_fuzz_schedules(int n) { g_fuzz.store(n < 0 ? 0 : n, std::memory_order_relaxed); }

int word_sample() {
  int n = g_sample.load(std::memory_order_relaxed);
  if (n < 0) {
    n = env_default_sample();
    g_sample.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_word_sample(int n) { g_sample.store(n < 1 ? 1 : n, std::memory_order_relaxed); }

const CheckReport& current_report() { return mutable_report(); }

void reset() {
  const std::lock_guard<std::mutex> lock(report_mutex());
  CheckReport& r = mutable_report();
  r.races.clear();
  r.hazards.clear();
  r.oob.clear();
  r.contract_mismatches.clear();
  r.traffic_mismatches.clear();
  r.schedule_diffs.clear();
  r.launches_checked = 0;
  r.launches_fuzzed = 0;
  r.shadow_pages = 0;
  r.shadow_words = 0;
}

void analyze_launch(const char* kernel, const std::vector<BufMeta>& bufs,
                    const std::vector<BlockLog>& logs) {
  const std::lock_guard<std::mutex> lock(report_mutex());
  CheckReport& report = mutable_report();
  ++report.launches_checked;

  // Out-of-bounds hits are already attributed; just copy them out.
  std::size_t oob_reported = 0;
  for (std::size_t b = 0; b < logs.size() && oob_reported < kMaxOobPerLaunch; ++b) {
    for (const OobHit& hit : logs[b].oob) {
      if (oob_reported++ >= kMaxOobPerLaunch) break;
      const BufMeta& m = bufs[hit.buf];
      report.oob.push_back({kernel, m.name, b, hit.index, m.elems, hit.write});
    }
  }

  // Per-buffer sweep for cross-block overlaps.
  std::vector<std::vector<Event>> events(bufs.size());
  for (std::size_t b = 0; b < logs.size(); ++b) {
    for (const TaggedInterval& t : logs[b].acc) {
      events[t.buf].push_back({t.lo, t.hi, b, t.write});
    }
  }

  std::size_t races_reported = 0;
  for (std::size_t buf = 0; buf < bufs.size(); ++buf) {
    auto& ev = events[buf];
    if (ev.size() < 2) continue;
    std::sort(ev.begin(), ev.end(), [](const Event& a, const Event& b) {
      return a.lo != b.lo ? a.lo < b.lo : a.block < b.block;
    });
    Frontier writes, reads;
    // One finding per unordered block pair per buffer keeps reports readable.
    std::vector<std::pair<std::size_t, std::size_t>> seen_pairs;
    const auto fresh = [&](std::size_t a, std::size_t b) {
      const auto p = std::minmax(a, b);
      const std::pair<std::size_t, std::size_t> key{p.first, p.second};
      if (std::find(seen_pairs.begin(), seen_pairs.end(), key) != seen_pairs.end()) return false;
      seen_pairs.push_back(key);
      return true;
    };
    for (const Event& e : ev) {
      std::size_t other = 0;
      std::uint64_t end = 0;
      if (races_reported < kMaxRacesPerLaunch && writes.overlap(e, &other, &end) &&
          fresh(e.block, other)) {
        ++races_reported;
        report.races.push_back({kernel, bufs[buf].name, other, e.block, e.lo, end,
                                bufs[buf].elem_bytes, e.write});
      }
      if (e.write && races_reported < kMaxRacesPerLaunch && reads.overlap(e, &other, &end) &&
          fresh(e.block, other)) {
        ++races_reported;
        report.races.push_back({kernel, bufs[buf].name, other, e.block, e.lo, end,
                                bufs[buf].elem_bytes, false});
      }
      if (e.write) {
        writes.update(e);
      } else {
        reads.update(e);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WordShadow (tier 2).
// ---------------------------------------------------------------------------

namespace {

/// Kinds a shadow record can carry.
enum class AccessKind : std::uint8_t { kNone = 0, kRead, kWrite, kAtomic };

/// One remembered access: who touched the word last, and how.
struct Rec {
  std::uint32_t block_p1 = 0;  ///< block index + 1; 0 = empty slot
  std::uint32_t lane = kBlockLane;
  std::uint32_t epoch = 0;
  AccessKind kind = AccessKind::kNone;

  [[nodiscard]] bool valid() const { return block_p1 != 0; }
  [[nodiscard]] std::size_t block() const { return block_p1 - 1; }
};

/// Shadow state for one registered buffer: a last-writer record plus the two
/// most recent reader records from distinct owners per word.  Two reader
/// slots play the same completeness role as the sweep's two-slot Frontier:
/// if the newest reader is the incoming writer itself, the runner-up (a
/// different owner by construction) still witnesses the read/write hazard.
struct Word {
  Rec wr;
  Rec rd0, rd1;
};

/// One on-demand shadow page: kShadowPageWords record slots.  A page that a
/// kernel never touches is a single null pointer in the page table, which is
/// what lets word mode run over cosmology-scale registered buffers without
/// tens of bytes of shadow per *registered* word — cost tracks *touched*
/// words (rounded up to pages).
using ShadowPage = std::array<Word, kShadowPageWords>;

}  // namespace

struct WordShadow::Impl {
  std::string kernel;
  std::vector<BufMeta> bufs;
  /// Per buffer: a page table indexed by word / kShadowPageWords; pages are
  /// allocated on first touch.
  std::vector<std::vector<std::unique_ptr<ShadowPage>>> shadow;
  int sample = 1;                       ///< 1-in-N word sampling (1: every word)
  std::uint64_t pages_allocated = 0;
  std::uint64_t words_recorded = 0;     ///< record() calls that passed sampling
  std::size_t block = 0;
  std::vector<HazardFinding> hazards;
  std::vector<RaceFinding> races;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen_hazards;  ///< (buf<<32|lane pair, word)
  std::vector<std::tuple<std::uint32_t, std::size_t, std::size_t>> seen_races;

  [[nodiscard]] bool conflicts(const Rec& prev, bool write, bool atomic) const {
    if (!prev.valid()) return false;
    const bool prev_atomic = prev.kind == AccessKind::kAtomic;
    if (prev_atomic && atomic) return false;  // atomics never race each other
    const bool prev_write = prev.kind != AccessKind::kRead;
    return write || prev_write;
  }

  void flag_cross_block(const Rec& prev, std::uint32_t buf, std::uint64_t word, bool write) {
    if (races.size() >= kMaxRacesPerLaunch) return;
    const auto p = std::minmax(prev.block(), block);
    const std::tuple<std::uint32_t, std::size_t, std::size_t> key{buf, p.first, p.second};
    if (std::find(seen_races.begin(), seen_races.end(), key) != seen_races.end()) return;
    seen_races.push_back(key);
    const BufMeta& m = bufs[buf];
    const bool prev_write = prev.kind != AccessKind::kRead;
    races.push_back({kernel, m.name, prev.block(), block, word * m.elem_bytes,
                     (word + 1) * m.elem_bytes, m.elem_bytes, write && prev_write});
  }

  void flag_intra_block(const Rec& prev, std::uint32_t buf, std::uint64_t word,
                        std::uint32_t lane, bool write) {
    if (hazards.size() >= kMaxHazardsPerLaunch) return;
    // One finding per (buffer, lane pair) per word keeps reports readable.
    const auto lanes = std::minmax(prev.lane, lane);
    const std::uint64_t pair_key =
        (static_cast<std::uint64_t>(buf) << 48) |
        (static_cast<std::uint64_t>(lanes.first & 0xffffffu) << 24) |
        (lanes.second & 0xffffffu);
    const std::pair<std::uint64_t, std::uint64_t> key{pair_key, word};
    if (std::find(seen_hazards.begin(), seen_hazards.end(), key) != seen_hazards.end()) return;
    seen_hazards.push_back(key);
    const BufMeta& m = bufs[buf];
    const bool prev_write = prev.kind != AccessKind::kRead;
    hazards.push_back(
        {kernel, m.name, block, prev.lane, lane, word, m.elem_bytes, write && prev_write});
  }

  void record(std::uint32_t buf, std::uint64_t word, bool write, bool atomic) {
    // Sampling mode: only every sample-th word carries shadow state.  Dense
    // hazards (spanning >= sample consecutive words) still hit a tracked
    // word; the memory and time cost drop by ~sample.
    if (sample > 1 && word % static_cast<std::uint64_t>(sample) != 0) return;
    auto& pages = shadow[buf];
    const auto page_idx = static_cast<std::size_t>(word / kShadowPageWords);
    std::unique_ptr<ShadowPage>& page = pages[page_idx];
    if (page == nullptr) {
      page = std::make_unique<ShadowPage>();
      ++pages_allocated;
    }
    ++words_recorded;
    Word& w = (*page)[static_cast<std::size_t>(word % kShadowPageWords)];
    const std::uint32_t lane = detail::t_lane.lane;
    const std::uint32_t epoch = detail::t_lane.epoch;

    const auto check_prev = [&](const Rec& prev) {
      if (!conflicts(prev, write, atomic)) return;
      if (prev.block() != block) {
        flag_cross_block(prev, buf, word, write);
        return;
      }
      // Same block: only a hazard between two *modeled* lanes racing within
      // one barrier epoch.  kBlockLane accesses and barrier-separated epochs
      // are ordered by construction.
      if (prev.lane != kBlockLane && lane != kBlockLane && prev.lane != lane &&
          prev.epoch == epoch) {
        flag_intra_block(prev, buf, word, lane, write);
      }
    };

    // A new write conflicts with the last writer and recent readers; a new
    // read only with the last writer.
    check_prev(w.wr);
    if (write) {
      check_prev(w.rd0);
      check_prev(w.rd1);
    }

    const Rec rec{static_cast<std::uint32_t>(block + 1), lane, epoch,
                  atomic ? AccessKind::kAtomic : (write ? AccessKind::kWrite : AccessKind::kRead)};
    if (write) {
      w.wr = rec;
    } else if (w.rd0.valid() && w.rd0.block() == block && w.rd0.lane == lane) {
      w.rd0 = rec;  // same owner: refresh in place
    } else {
      w.rd1 = w.rd0;  // keep two most recent distinct owners
      w.rd0 = rec;
    }
  }
};

WordShadow::WordShadow(const char* kernel, std::vector<BufMeta> bufs)
    : impl_(std::make_unique<Impl>()) {
  impl_->kernel = kernel;
  impl_->sample = word_sample();
  impl_->shadow.reserve(bufs.size());
  // Only the page *tables* are allocated up front (8 bytes per
  // kShadowPageWords words); pages fill in on first touch.
  for (const BufMeta& m : bufs) {
    impl_->shadow.emplace_back(m.elems == 0 ? 0 : (m.elems - 1) / kShadowPageWords + 1);
  }
  impl_->bufs = std::move(bufs);
}

WordShadow::~WordShadow() = default;

void WordShadow::begin_block(std::size_t block) { impl_->block = block; }

void WordShadow::record(std::uint32_t buf, std::uint64_t word, bool write, bool atomic) {
  impl_->record(buf, word, write, atomic);
}

void WordShadow::finish() {
  const std::lock_guard<std::mutex> lock(report_mutex());
  CheckReport& report = mutable_report();
  for (auto& h : impl_->hazards) report.hazards.push_back(std::move(h));
  for (auto& r : impl_->races) report.races.push_back(std::move(r));
  report.shadow_pages += impl_->pages_allocated;
  report.shadow_words += impl_->words_recorded;
}

// ---------------------------------------------------------------------------
// Schedule-fuzz support.
// ---------------------------------------------------------------------------

namespace detail {

std::uint64_t fnv1a(const void* p, std::size_t nbytes) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void make_fuzz_order(int s, std::size_t n, std::vector<std::size_t>& order, bool* parallel,
                     std::string* name) {
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (s == 1) {
    std::reverse(order.begin(), order.end());
    *parallel = true;
    *name = "reversed";
  } else if (s == 2) {
    *parallel = false;
    *name = "serial";
  } else {
    // Deterministic seeded shuffle: same (s, n) always yields the same order.
    std::minstd_rand rng(static_cast<std::uint32_t>(s) * 2654435761u ^
                         static_cast<std::uint32_t>(n));
    std::shuffle(order.begin(), order.end(), rng);
    *parallel = true;
    *name = "shuffle#" + std::to_string(s - 2);
  }
}

void make_fuzz_order_3d(int s, Dim3 grid, std::vector<std::size_t>& order, bool* parallel,
                        std::string* name) {
  const std::size_t n = grid.count();
  if (s > 6) {
    // Past the six axis orders, fall back to the linear repertoire:
    // 7 -> reversed, 8 -> serial, 9+ -> seeded shuffles.
    make_fuzz_order(s - 6, n, order, parallel, name);
    return;
  }
  // The six permutations of (fastest, middle, slowest) traversal axes,
  // where axis 0 = x, 1 = y, 2 = z.  The canonical linear layout is "xyz"
  // (x fastest): linear = (bz*gy + by)*gx + bx.
  static constexpr std::array<std::array<int, 3>, 6> kPerms{
      {{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};
  static constexpr std::array<const char*, 6> kNames{"xyz", "xzy", "yxz",
                                                     "yzx", "zxy", "zyx"};
  const std::array<int, 3>& p = kPerms[static_cast<std::size_t>(s - 1)];
  const std::size_t ext[3] = {grid.x, grid.y, grid.z};
  order.clear();
  order.reserve(n);
  std::size_t idx[3] = {0, 0, 0};
  for (std::size_t a2 = 0; a2 < ext[p[2]]; ++a2) {
    for (std::size_t a1 = 0; a1 < ext[p[1]]; ++a1) {
      for (std::size_t a0 = 0; a0 < ext[p[0]]; ++a0) {
        idx[p[2]] = a2;
        idx[p[1]] = a1;
        idx[p[0]] = a0;
        order.push_back((idx[2] * ext[1] + idx[1]) * ext[0] + idx[0]);
      }
    }
  }
  // Serial execution honors the permuted traversal exactly, so a diff under
  // an axis order is deterministic (and reproducible from the name alone).
  *parallel = false;
  *name = std::string("axis-order:") + kNames[static_cast<std::size_t>(s - 1)];
}

void append_schedule_finding(const char* kernel, const char* buffer, const std::string& schedule,
                             std::uint64_t ref, std::uint64_t got) {
  const std::lock_guard<std::mutex> lock(report_mutex());
  CheckReport& r = mutable_report();
  if (r.schedule_diffs.size() >= kMaxRacesPerLaunch) return;
  r.schedule_diffs.push_back({kernel, buffer, schedule, ref, got});
}

void note_fuzzed_launch() {
  const std::lock_guard<std::mutex> lock(report_mutex());
  ++mutable_report().launches_fuzzed;
}

void append_contract_finding(const ContractFinding& f) {
  const std::lock_guard<std::mutex> lock(report_mutex());
  mutable_report().contract_mismatches.push_back(f);
}

void append_traffic_finding(const TrafficFinding& f) {
  const std::lock_guard<std::mutex> lock(report_mutex());
  mutable_report().traffic_mismatches.push_back(f);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

std::string RaceFinding::to_string() const {
  std::ostringstream os;
  os << (write_write ? "WRITE/WRITE" : "READ/WRITE") << " race: kernel '" << kernel
     << "', buffer '" << buffer << "', blocks " << block_a << " and " << block_b
     << " both touch bytes [" << byte_lo << ", " << byte_hi << ") (elements ["
     << byte_lo / elem_bytes << ", " << (byte_hi + elem_bytes - 1) / elem_bytes << "))";
  return os.str();
}

std::string HazardFinding::to_string() const {
  std::ostringstream os;
  os << (write_write ? "WRITE/WRITE" : "READ/WRITE") << " intra-block hazard: kernel '" << kernel
     << "', block " << block << ", lanes " << lane_a << " and " << lane_b
     << " both touch buffer '" << buffer << "' word " << word << " (" << elem_bytes
     << " bytes) within one barrier epoch";
  return os.str();
}

std::string OobFinding::to_string() const {
  std::ostringstream os;
  os << "OUT-OF-BOUNDS " << (is_write ? "write" : "read") << ": kernel '" << kernel
     << "', buffer '" << buffer << "', block " << block << ", element " << element_index
     << " outside extent [0, " << element_count << ")";
  return os.str();
}

std::string TrafficFinding::to_string() const {
  std::ostringstream os;
  os << "TRAFFIC-MISMATCH " << (is_write ? "write" : "read") << ": kernel '" << kernel
     << "', buffer '" << buffer << "', observed " << observed_bytes
     << " bytes exceed the statically derived " << predicted_bytes << "-byte volume";
  return os.str();
}

std::string ScheduleFinding::to_string() const {
  std::ostringstream os;
  os << "SCHEDULE-DEPENDENT output: kernel '" << kernel << "', buffer '" << buffer
     << "' differs under block order '" << schedule << "' (checksum " << std::hex << checksum_got
     << " vs canonical " << checksum_ref << std::dec << ")";
  return os.str();
}

std::string report_text() {
  const CheckReport& r = current_report();
  std::ostringstream os;
  os << "sim-check: " << r.launches_checked << " launch(es) checked, " << r.races.size()
     << " race(s), " << r.hazards.size() << " intra-block hazard(s), " << r.oob.size()
     << " out-of-bounds access(es)";
  if (r.launches_fuzzed > 0 || !r.schedule_diffs.empty()) {
    os << ", " << r.launches_fuzzed << " launch(es) schedule-fuzzed, " << r.schedule_diffs.size()
       << " schedule divergence(s)";
  }
  if (r.shadow_pages > 0) {
    os << ", " << r.shadow_pages << " shadow page(s) for " << r.shadow_words
       << " word access(es)";
  }
  if (!r.contract_mismatches.empty()) {
    os << ", " << r.contract_mismatches.size() << " contract mismatch(es)";
  }
  if (!r.traffic_mismatches.empty()) {
    os << ", " << r.traffic_mismatches.size() << " traffic mismatch(es)";
  }
  os << "\n";

  // Sorted copies: findings print in (kernel, block, buffer, offset) order so
  // the text is stable regardless of discovery/schedule order.
  auto races = r.races;
  std::sort(races.begin(), races.end(), [](const RaceFinding& a, const RaceFinding& b) {
    return std::tie(a.kernel, a.block_a, a.block_b, a.buffer, a.byte_lo) <
           std::tie(b.kernel, b.block_a, b.block_b, b.buffer, b.byte_lo);
  });
  auto hazards = r.hazards;
  std::sort(hazards.begin(), hazards.end(), [](const HazardFinding& a, const HazardFinding& b) {
    return std::tie(a.kernel, a.block, a.buffer, a.word, a.lane_a, a.lane_b) <
           std::tie(b.kernel, b.block, b.buffer, b.word, b.lane_a, b.lane_b);
  });
  auto oob = r.oob;
  std::sort(oob.begin(), oob.end(), [](const OobFinding& a, const OobFinding& b) {
    return std::tie(a.kernel, a.block, a.buffer, a.element_index) <
           std::tie(b.kernel, b.block, b.buffer, b.element_index);
  });
  auto mismatches = r.contract_mismatches;
  std::sort(mismatches.begin(), mismatches.end(),
            [](const ContractFinding& a, const ContractFinding& b) {
              return std::tie(a.kernel, a.block, a.buffer, a.elem_lo) <
                     std::tie(b.kernel, b.block, b.buffer, b.elem_lo);
            });
  auto traffic_mismatches = r.traffic_mismatches;
  std::sort(traffic_mismatches.begin(), traffic_mismatches.end(),
            [](const TrafficFinding& a, const TrafficFinding& b) {
              return std::tie(a.kernel, a.buffer, a.observed_bytes) <
                     std::tie(b.kernel, b.buffer, b.observed_bytes);
            });
  auto diffs = r.schedule_diffs;
  std::sort(diffs.begin(), diffs.end(), [](const ScheduleFinding& a, const ScheduleFinding& b) {
    return std::tie(a.kernel, a.buffer, a.schedule) < std::tie(b.kernel, b.buffer, b.schedule);
  });

  for (const auto& f : races) os << "  " << f.to_string() << "\n";
  for (const auto& f : hazards) os << "  " << f.to_string() << "\n";
  for (const auto& f : oob) os << "  " << f.to_string() << "\n";
  for (const auto& f : mismatches) os << "  " << f.to_string() << "\n";
  for (const auto& f : traffic_mismatches) os << "  " << f.to_string() << "\n";
  for (const auto& f : diffs) os << "  " << f.to_string() << "\n";
  if (r.clean()) os << "  no violations detected\n";
  return os.str();
}

}  // namespace szp::sim::checked
