// szp::sim::checked — grid-completion analysis for checked-launch mode.
//
// The per-block footprints recorded by the tracking views are swept here for
// cross-block overlaps (the races launch.hh's block-independence contract
// forbids) and out-of-bounds accesses.  The sweep is a single sorted pass per
// buffer: O(I log I) in the number of coalesced intervals, independent of the
// pairwise block count, so checking large grids stays tractable.
#include "sim/check.hh"

#include <atomic>
#include <cstdlib>
#include <sstream>

namespace szp::sim::checked {

namespace {

// -1: not yet latched from the environment; 0: off; 1: on.
std::atomic<int> g_enabled{-1};

CheckReport& mutable_report() {
  static CheckReport report;
  return report;
}

bool env_default() {
  const char* v = std::getenv("SZP_SIM_CHECK");
#ifdef SZP_SIM_CHECK_DEFAULT_ON
  // Built with -DSZP_SIM_CHECK=ON: checking is on unless explicitly disabled.
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
#else
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
#endif
}

/// One block's interval plus ownership, flattened for the sweep.
struct Event {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t block = 0;
  bool write = false;
};

/// The two furthest-reaching intervals seen so far, guaranteed to belong to
/// distinct blocks.  Keeping two is what makes the sweep complete for
/// pairwise overlap detection: if the furthest interval belongs to the same
/// block as the incoming event, the runner-up (different block by
/// construction) still witnesses any overlap.
struct Frontier {
  std::uint64_t end[2] = {0, 0};
  std::size_t block[2] = {static_cast<std::size_t>(-1), static_cast<std::size_t>(-1)};

  void update(const Event& e) {
    if (e.block == block[0]) {
      end[0] = std::max(end[0], e.hi);
    } else if (e.hi > end[0]) {
      if (block[0] != static_cast<std::size_t>(-1) && end[0] > end[1]) {
        end[1] = end[0];
        block[1] = block[0];
      }
      end[0] = e.hi;
      block[0] = e.block;
    } else if (e.block == block[1]) {
      end[1] = std::max(end[1], e.hi);
    } else if (e.hi > end[1]) {
      end[1] = e.hi;
      block[1] = e.block;
    }
  }

  /// If any tracked interval from a block other than e.block overlaps e,
  /// return the witness (other block, overlap end); else false.
  bool overlap(const Event& e, std::size_t* other, std::uint64_t* end_out) const {
    for (int k = 0; k < 2; ++k) {
      if (block[k] == static_cast<std::size_t>(-1) || block[k] == e.block) continue;
      if (end[k] > e.lo) {
        *other = block[k];
        *end_out = std::min(end[k], e.hi);
        return true;
      }
    }
    return false;
  }
};

constexpr std::size_t kMaxRacesPerLaunch = 32;
constexpr std::size_t kMaxOobPerLaunch = 32;

}  // namespace

bool enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    s = env_default() ? 1 : 0;
    g_enabled.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void set_enabled(bool on) { g_enabled.store(on ? 1 : 0, std::memory_order_relaxed); }

const CheckReport& current_report() { return mutable_report(); }

void reset() {
  mutable_report().races.clear();
  mutable_report().oob.clear();
  mutable_report().launches_checked = 0;
}

void analyze_launch(const char* kernel, const std::vector<BufMeta>& bufs,
                    const std::vector<BlockLog>& logs) {
  CheckReport& report = mutable_report();
  ++report.launches_checked;

  // Out-of-bounds hits are already attributed; just copy them out.
  std::size_t oob_reported = 0;
  for (std::size_t b = 0; b < logs.size() && oob_reported < kMaxOobPerLaunch; ++b) {
    for (const OobHit& hit : logs[b].oob) {
      if (oob_reported++ >= kMaxOobPerLaunch) break;
      const BufMeta& m = bufs[hit.buf];
      report.oob.push_back({kernel, m.name, b, hit.index, m.elems, hit.write});
    }
  }

  // Per-buffer sweep for cross-block overlaps.
  std::vector<std::vector<Event>> events(bufs.size());
  for (std::size_t b = 0; b < logs.size(); ++b) {
    for (const TaggedInterval& t : logs[b].acc) {
      events[t.buf].push_back({t.lo, t.hi, b, t.write});
    }
  }

  std::size_t races_reported = 0;
  for (std::size_t buf = 0; buf < bufs.size(); ++buf) {
    auto& ev = events[buf];
    if (ev.size() < 2) continue;
    std::sort(ev.begin(), ev.end(), [](const Event& a, const Event& b) {
      return a.lo != b.lo ? a.lo < b.lo : a.block < b.block;
    });
    Frontier writes, reads;
    // One finding per unordered block pair per buffer keeps reports readable.
    std::vector<std::pair<std::size_t, std::size_t>> seen_pairs;
    const auto fresh = [&](std::size_t a, std::size_t b) {
      const auto p = std::minmax(a, b);
      const std::pair<std::size_t, std::size_t> key{p.first, p.second};
      if (std::find(seen_pairs.begin(), seen_pairs.end(), key) != seen_pairs.end()) return false;
      seen_pairs.push_back(key);
      return true;
    };
    for (const Event& e : ev) {
      std::size_t other = 0;
      std::uint64_t end = 0;
      if (races_reported < kMaxRacesPerLaunch && writes.overlap(e, &other, &end) &&
          fresh(e.block, other)) {
        ++races_reported;
        report.races.push_back({kernel, bufs[buf].name, other, e.block, e.lo, end,
                                bufs[buf].elem_bytes, e.write});
      }
      if (e.write && races_reported < kMaxRacesPerLaunch && reads.overlap(e, &other, &end) &&
          fresh(e.block, other)) {
        ++races_reported;
        report.races.push_back({kernel, bufs[buf].name, other, e.block, e.lo, end,
                                bufs[buf].elem_bytes, false});
      }
      if (e.write) {
        writes.update(e);
      } else {
        reads.update(e);
      }
    }
  }
}

std::string RaceFinding::to_string() const {
  std::ostringstream os;
  os << (write_write ? "WRITE/WRITE" : "READ/WRITE") << " race: kernel '" << kernel
     << "', buffer '" << buffer << "', blocks " << block_a << " and " << block_b
     << " both touch bytes [" << byte_lo << ", " << byte_hi << ") (elements ["
     << byte_lo / elem_bytes << ", " << (byte_hi + elem_bytes - 1) / elem_bytes << "))";
  return os.str();
}

std::string OobFinding::to_string() const {
  std::ostringstream os;
  os << "OUT-OF-BOUNDS " << (is_write ? "write" : "read") << ": kernel '" << kernel
     << "', buffer '" << buffer << "', block " << block << ", element " << element_index
     << " outside extent [0, " << element_count << ")";
  return os.str();
}

std::string report_text() {
  const CheckReport& r = current_report();
  std::ostringstream os;
  os << "sim-check: " << r.launches_checked << " launch(es) checked, " << r.races.size()
     << " race(s), " << r.oob.size() << " out-of-bounds access(es)\n";
  for (const auto& f : r.races) os << "  " << f.to_string() << "\n";
  for (const auto& f : r.oob) os << "  " << f.to_string() << "\n";
  if (r.clean()) os << "  no violations detected\n";
  return os.str();
}

}  // namespace szp::sim::checked
