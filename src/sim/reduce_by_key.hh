// szp::sim — reduce_by_key with the exact semantics of thrust::reduce_by_key
// used by cuSZ+'s run-length encoder (paper §V-B: "Run-length encoding is
// implemented using thrust::reduce_by_key").
//
// Consecutive equal keys collapse to one (key, reduced-value) pair.  RLE is
// the special case where values are all 1 and the reduction is +.  The tile
// decomposition runs block-parallel; tile boundaries that split a run are
// stitched in a serial merge pass (the head-flag carry a GPU implementation
// resolves with a decoupled look-back).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

template <typename Key, typename Count = std::uint32_t>
struct RunsOutput {
  std::vector<Key> keys;      ///< one entry per run
  std::vector<Count> counts;  ///< run lengths, same size as keys
};

/// Collapse consecutive equal keys into (key, run-length) pairs.
template <typename Key, typename Count = std::uint32_t>
RunsOutput<Key, Count> reduce_by_key(std::span<const Key> keys,
                                     std::size_t tile = 1 << 16) {
  RunsOutput<Key, Count> out;
  const std::size_t n = keys.size();
  if (n == 0) return out;

  const std::size_t tiles = div_ceil(n, tile);
  // Caller-allocated worst-case outputs, exactly as thrust::reduce_by_key
  // takes them: every key could start a run, so each tile owns the
  // [t*tile, t*tile + tile) slice of the flat run arrays and compacts its
  // runs at the slice head.  Affine, disjoint, and statically provable.
  std::vector<Key> run_keys(n);
  std::vector<Count> run_counts(n);
  std::vector<std::uint64_t> tile_run_count(tiles);

  checked::launch("reduce_by_key/tile_runs", tiles,
                  checked::bufs(checked::in(keys, "keys"),
                                checked::out(std::span<Key>(run_keys), "run_keys"),
                                checked::out(std::span<Count>(run_counts), "run_counts"),
                                checked::out(std::span<std::uint64_t>(tile_run_count),
                                             "tile_run_count")),
                  contract::contract(
                      contract::reads("keys", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp(),
                      contract::writes("run_keys", contract::b() * tile,
                                       static_cast<std::int64_t>(tile)).clamp(),
                      contract::writes("run_counts", contract::b() * tile,
                                       static_cast<std::int64_t>(tile)).clamp(),
                      contract::writes("tile_run_count", contract::b(), 1)),
                  [&, n, tile](std::size_t t, const auto& vkeys, const auto& vrk,
                               const auto& vrc, const auto& vcount) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    std::size_t w = lo;
    Key cur = vkeys[lo];
    Count len = 1;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      if (vkeys[i] == cur) {
        ++len;
      } else {
        vrk[w] = cur;
        vrc[w] = len;
        ++w;
        cur = vkeys[i];
        len = 1;
      }
    }
    vrk[w] = cur;
    vrc[w] = len;
    vcount[t] = w + 1 - lo;
  });

  // Stitch runs that straddle tile boundaries.
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t lo = t * tile;
    std::size_t start = 0;
    const auto runs = static_cast<std::size_t>(tile_run_count[t]);
    if (!out.keys.empty() && runs > 0 && out.keys.back() == run_keys[lo]) {
      out.counts.back() += run_counts[lo];
      start = 1;
    }
    out.keys.insert(out.keys.end(), run_keys.begin() + static_cast<std::ptrdiff_t>(lo + start),
                    run_keys.begin() + static_cast<std::ptrdiff_t>(lo + runs));
    out.counts.insert(out.counts.end(),
                      run_counts.begin() + static_cast<std::ptrdiff_t>(lo + start),
                      run_counts.begin() + static_cast<std::ptrdiff_t>(lo + runs));
  }
  return out;
}

/// Inverse: expand (key, count) runs back to the flat sequence.
template <typename Key, typename Count>
std::vector<Key> expand_runs(std::span<const Key> keys, std::span<const Count> counts) {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  std::vector<Key> out;
  out.reserve(total);
  for (std::size_t r = 0; r < keys.size(); ++r) {
    out.insert(out.end(), counts[r], keys[r]);
  }
  return out;
}

/// Analytic GPU cost of reduce_by_key over n keys producing r runs.
template <typename Key, typename Count = std::uint32_t>
[[nodiscard]] KernelCost reduce_by_key_cost(std::size_t n, std::size_t runs) {
  KernelCost c;
  c.bytes_read = n * sizeof(Key);
  c.bytes_written = runs * (sizeof(Key) + sizeof(Count));
  c.flops = 2 * n;  // compare + conditional increment
  c.parallel_items = n;
  c.pattern = AccessPattern::kCoalescedStreaming;
  // thrust::reduce_by_key runs several internal passes with intermediate
  // allocations; calibrated so the modeled stage matches the ~100-160 GB/s
  // the paper measures for it on V100 (§V-B, Table V).
  c.custom_factor = 0.08;
  c.launches = 3;
  return c;
}

}  // namespace szp::sim
