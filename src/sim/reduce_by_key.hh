// szp::sim — reduce_by_key with the exact semantics of thrust::reduce_by_key
// used by cuSZ+'s run-length encoder (paper §V-B: "Run-length encoding is
// implemented using thrust::reduce_by_key").
//
// Consecutive equal keys collapse to one (key, reduced-value) pair.  RLE is
// the special case where values are all 1 and the reduction is +.  The tile
// decomposition runs block-parallel; tile boundaries that split a run are
// stitched in a serial merge pass (the head-flag carry a GPU implementation
// resolves with a decoupled look-back).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/profile.hh"

namespace szp::sim {

template <typename Key, typename Count = std::uint32_t>
struct RunsOutput {
  std::vector<Key> keys;      ///< one entry per run
  std::vector<Count> counts;  ///< run lengths, same size as keys
};

/// Collapse consecutive equal keys into (key, run-length) pairs.
template <typename Key, typename Count = std::uint32_t>
RunsOutput<Key, Count> reduce_by_key(std::span<const Key> keys,
                                     std::size_t tile = 1 << 16) {
  RunsOutput<Key, Count> out;
  const std::size_t n = keys.size();
  if (n == 0) return out;

  const std::size_t tiles = div_ceil(n, tile);
  std::vector<RunsOutput<Key, Count>> partial(tiles);

  // The per-tile run lists are block-owned heap state; only `keys` is a
  // shared device buffer, so it is the one registered with the checker.
  checked::launch("reduce_by_key/tile_runs", tiles,
                  checked::bufs(checked::in(keys, "keys")),
                  contract::contract(
                      contract::reads("keys", contract::b() * tile,
                                      static_cast<std::int64_t>(tile)).clamp()),
                  [&, n, tile](std::size_t t, const auto& vkeys) {
    const std::size_t lo = t * tile, hi = lo + tile < n ? lo + tile : n;
    auto& p = partial[t];
    // Schedule fuzzing replays the grid; make the body idempotent by
    // rebuilding this tile's run list from scratch each execution.
    p.keys.clear();
    p.counts.clear();
    Key cur = vkeys[lo];
    Count len = 1;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      if (vkeys[i] == cur) {
        ++len;
      } else {
        p.keys.push_back(cur);
        p.counts.push_back(len);
        cur = vkeys[i];
        len = 1;
      }
    }
    p.keys.push_back(cur);
    p.counts.push_back(len);
  });

  // Stitch runs that straddle tile boundaries.
  for (auto& p : partial) {
    std::size_t start = 0;
    if (!out.keys.empty() && !p.keys.empty() && out.keys.back() == p.keys.front()) {
      out.counts.back() += p.counts.front();
      start = 1;
    }
    out.keys.insert(out.keys.end(), p.keys.begin() + static_cast<std::ptrdiff_t>(start), p.keys.end());
    out.counts.insert(out.counts.end(), p.counts.begin() + static_cast<std::ptrdiff_t>(start), p.counts.end());
  }
  return out;
}

/// Inverse: expand (key, count) runs back to the flat sequence.
template <typename Key, typename Count>
std::vector<Key> expand_runs(std::span<const Key> keys, std::span<const Count> counts) {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  std::vector<Key> out;
  out.reserve(total);
  for (std::size_t r = 0; r < keys.size(); ++r) {
    out.insert(out.end(), counts[r], keys[r]);
  }
  return out;
}

/// Analytic GPU cost of reduce_by_key over n keys producing r runs.
template <typename Key, typename Count = std::uint32_t>
[[nodiscard]] KernelCost reduce_by_key_cost(std::size_t n, std::size_t runs) {
  KernelCost c;
  c.bytes_read = n * sizeof(Key);
  c.bytes_written = runs * (sizeof(Key) + sizeof(Count));
  c.flops = 2 * n;  // compare + conditional increment
  c.parallel_items = n;
  c.pattern = AccessPattern::kCoalescedStreaming;
  // thrust::reduce_by_key runs several internal passes with intermediate
  // allocations; calibrated so the modeled stage matches the ~100-160 GB/s
  // the paper measures for it on V100 (§V-B, Table V).
  c.custom_factor = 0.08;
  c.launches = 3;
  return c;
}

}  // namespace szp::sim
