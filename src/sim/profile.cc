#include "sim/profile.hh"

#include <algorithm>

namespace szp::sim {

double access_factor(AccessPattern p) {
  // Calibrated fractions of peak DRAM bandwidth achieved by each kernel
  // class.  Anchors: cuSZ's fine-grained Lorenzo construction sustains
  // ~200-300 GB/s on a 900 GB/s V100 (~0.3 of peak including its 2x traffic);
  // the coarse-grained reconstruction sustains 17-60 GB/s; cub-based scans
  // run near streaming speed.
  switch (p) {
    case AccessPattern::kCoalescedStreaming: return 0.78;
    case AccessPattern::kTiledShared:        return 0.55;
    case AccessPattern::kStrided:            return 0.065;
    case AccessPattern::kScattered:          return 0.25;
    case AccessPattern::kAtomicHeavy:        return 0.30;
  }
  return 0.5;
}

double effective_factor(const KernelCost& cost) {
  return cost.custom_factor > 0.0 ? cost.custom_factor : access_factor(cost.pattern);
}

KernelCost& KernelCost::operator+=(const KernelCost& o) {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  flops += o.flops;
  parallel_items = std::min(parallel_items == 1 ? o.parallel_items : parallel_items,
                            o.parallel_items == 1 ? parallel_items : o.parallel_items);
  // Composite stages inherit the least favorable derating factor.
  if (effective_factor(o) < effective_factor(*this)) {
    pattern = o.pattern;
    custom_factor = o.custom_factor;
  }
  launches += o.launches;
  return *this;
}

const StageReport* PipelineReport::find(const std::string& name) const {
  auto it = std::find_if(stages.begin(), stages.end(),
                         [&](const StageReport& s) { return s.name == name; });
  return it == stages.end() ? nullptr : &*it;
}

double PipelineReport::total_cpu_seconds() const {
  double t = 0.0;
  for (const auto& s : stages) t += s.cpu_seconds;
  return t;
}

}  // namespace szp::sim
