#include "sim/device.hh"

namespace szp::sim {

const DeviceSpec& v100() {
  static const DeviceSpec spec{
      .name = "V100-SXM2",
      .mem_bw_gbps = 900.0,
      .fp32_tflops = 14.13,
      .sm_count = 80,
      .max_threads_per_sm = 2048,
      .kernel_launch_us = 5.0,
      .device_alloc_us = 100.0,
  };
  return spec;
}

const DeviceSpec& a100() {
  static const DeviceSpec spec{
      .name = "A100-SXM4",
      .mem_bw_gbps = 1555.0,
      .fp32_tflops = 19.5,
      .sm_count = 108,
      .max_threads_per_sm = 2048,
      .kernel_launch_us = 5.0,
      .device_alloc_us = 100.0,
  };
  return spec;
}

}  // namespace szp::sim
