// szp::lossless — LZ77 + rANS: the Zstd stand-in.
//
// cuSZ's compression Step-9 hands the deflated Huffman stream to Zstd on
// the host (paper §II-A).  This codec plays that role with the same
// architecture Zstd uses: an LZ77 parse followed by ANS entropy coding of
// the token streams (Zstd's FSE is table-ANS; this uses range-ANS, the
// same family).  Compared to lzh (the gzip stand-in), fractional-bit
// coding lifts the ratio on skewed token distributions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lossless/lz77.hh"

namespace szp::lossless {

/// Compress a byte stream (self-describing output).
[[nodiscard]] std::vector<std::uint8_t> lzr_compress(std::span<const std::uint8_t> input,
                                                     const Lz77Config& cfg = {});

/// Inverse of lzr_compress.  Throws szp::DecodeError on malformed input.
[[nodiscard]] std::vector<std::uint8_t> lzr_decompress(std::span<const std::uint8_t> input);

/// Convenience: compression ratio on a buffer.
[[nodiscard]] double lzr_ratio(std::span<const std::uint8_t> input);

}  // namespace szp::lossless
