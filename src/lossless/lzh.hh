// szp::lossless — a DEFLATE-style LZ77 + canonical-Huffman byte codec.
//
// Plays the role of gzip/Zstd in the paper's reference schemes: `qg`
// (generic byte-level lossless over quant-codes) and `qhg` (gzip appended
// after Huffman, the paper's highest-CR reference, Table I / Table IV).
// Token layout follows DEFLATE: a literal/length alphabet (0-255 literals,
// 256 end-of-block, 257-285 length codes with extra bits) and a 30-symbol
// distance alphabet, both with dynamic canonical Huffman codebooks; matches
// come from a 32 KiB hash-chain window, greedy parse.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace szp::lossless {

struct LzhConfig {
  std::size_t window = 32768;     ///< max match distance
  std::size_t max_chain = 128;    ///< hash-chain search depth
  std::size_t min_match = 3;
  std::size_t max_match = 258;
};

/// Compress a byte stream.  Output is self-describing (original size and
/// both codebooks are embedded).
[[nodiscard]] std::vector<std::uint8_t> lzh_compress(std::span<const std::uint8_t> input,
                                                     const LzhConfig& cfg = {});

/// Inverse of lzh_compress.  Throws szp::DecodeError on malformed input.
[[nodiscard]] std::vector<std::uint8_t> lzh_decompress(std::span<const std::uint8_t> input);

/// Convenience: compression ratio this codec achieves on a buffer.
[[nodiscard]] double lzh_ratio(std::span<const std::uint8_t> input);

}  // namespace szp::lossless
