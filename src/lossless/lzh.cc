#include "lossless/lzh.hh"

#include <algorithm>
#include <stdexcept>

#include "core/error.hh"
#include "core/huffman/bitio.hh"
#include "core/huffman/codebook.hh"
#include "core/serialize.hh"
#include "lossless/lz77.hh"
#include "sim/check.hh"

namespace szp::lossless {

namespace {

constexpr std::uint32_t kMagic = 0x485A4C53;  // "SLZH"

}  // namespace

std::vector<std::uint8_t> lzh_compress(std::span<const std::uint8_t> input,
                                       const LzhConfig& cfg) {
  Lz77Config lzcfg;
  lzcfg.window = cfg.window;
  lzcfg.max_chain = cfg.max_chain;
  lzcfg.min_match = cfg.min_match;
  lzcfg.max_match = cfg.max_match;
  const auto tokens = lz77_tokenize(input, lzcfg);

  std::vector<std::uint64_t> lit_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  lz77_token_frequencies(tokens, lit_freq, dist_freq);

  const auto lit_book = HuffmanCodebook::build(lit_freq);
  const auto dist_book = HuffmanCodebook::build(dist_freq);

  ByteWriter w;
  w.put(kMagic);
  w.put<std::uint64_t>(input.size());
  lit_book.serialize(w);
  dist_book.serialize(w);

  // Bit emission is serial (each token's offset depends on all earlier
  // lengths), so one block; the BitWriter is block-owned heap state.  The
  // store side is still bounded: no token can emit more than both books'
  // longest codes plus the maximum extra bits (5 length + 13 distance).
  const std::uint64_t max_token_bits =
      lit_book.max_length() + 5ull + dist_book.max_length() + 13ull;
  const std::uint64_t sink_bytes = (tokens.size() * max_token_bits + 7) / 8;
  BitWriter bw;
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  chk::launch("lzh/encode", 1,
              chk::bufs(chk::in(std::span<const Lz77Token>(tokens), "tokens")),
              ctr::contract(ctr::reads_all("tokens"),
                            ctr::host_sink("bitstream",
                                           static_cast<std::int64_t>(sink_bytes))),
              [&](std::size_t, const auto& vtok) {
    for (std::size_t i = 0; i < vtok.size(); ++i) {
      const Lz77Token t = vtok[i];
      bw.put(lit_book.code(t.litlen_sym), lit_book.length(t.litlen_sym));
      if (t.litlen_sym >= 257) {
        const std::size_t lc = t.litlen_sym - 257u;
        if (kLenExtra[lc] > 0) bw.put(t.len_extra, kLenExtra[lc]);
        bw.put(dist_book.code(t.dist_sym), dist_book.length(t.dist_sym));
        if (kDistExtra[t.dist_sym] > 0) bw.put(t.dist_extra, kDistExtra[t.dist_sym]);
      }
    }
  });
  w.put_vector(bw.take());
  return w.take();
}

std::vector<std::uint8_t> lzh_decompress(std::span<const std::uint8_t> input) {
  return decode_guard("lzh archive", [&] {
  ByteReader r(input);
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SLZH stream");
  }
  const auto orig_size = r.get<std::uint64_t>();
  auto lit_book = HuffmanCodebook::deserialize(r);
  auto dist_book = HuffmanCodebook::deserialize(r);
  r.set_segment("bitstream");
  const auto bits = r.get_vector<std::uint8_t>();

  std::vector<std::uint8_t> out;
  // The declared size is untrusted: cap the speculative reservation and let
  // the vector grow naturally; the decode loop is bounded by the bitstream.
  out.reserve(std::min<std::uint64_t>(orig_size, 1u << 20));
  // Serial bit-level decode: one block reading the whole bitstream; the
  // growing output is block-owned heap state.
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  // The expansion loop throws the moment the output exceeds the declared
  // size, so orig_size is an enforced store ceiling even though the header
  // is untrusted (the *allocation* above stays capped regardless).
  chk::launch("lzh/decode", 1,
              chk::bufs(chk::in(std::span<const std::uint8_t>(bits), "bits")),
              ctr::contract(ctr::reads_all("bits"),
                            ctr::host_sink("out", static_cast<std::int64_t>(std::min<
                                std::uint64_t>(orig_size, 1ull << 62)))),
              [&](std::size_t, const auto& vbits) {
    vbits.note_read(0, vbits.size());
    BitReader br({vbits.data(), vbits.size()});
    for (;;) {
      Lz77Token t{};
      t.litlen_sym = static_cast<std::uint16_t>(lit_book.decode_one(br));
      if (t.litlen_sym >= 257) {
        const std::size_t lc = t.litlen_sym - 257u;
        if (lc >= kLenBase.size()) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream", "bad length symbol");
        }
        for (unsigned b = kLenExtra[lc]; b-- > 0;) {
          t.len_extra = static_cast<std::uint16_t>(t.len_extra | (br.get_bit() << b));
        }
        t.dist_sym = static_cast<std::uint8_t>(dist_book.decode_one(br));
        if (t.dist_sym >= kDistBase.size()) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream", "bad distance symbol");
        }
        for (unsigned b = kDistExtra[t.dist_sym]; b-- > 0;) {
          t.dist_extra = static_cast<std::uint16_t>(t.dist_extra | (br.get_bit() << b));
        }
      }
      if (!lz77_expand(t, out)) break;
      if (out.size() > orig_size) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream",
                          "decoded output exceeds the declared size");
      }
    }
  });
  if (out.size() != orig_size) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream",
                      "decoded " + std::to_string(out.size()) + " bytes, header declared " +
                          std::to_string(orig_size));
  }
  return out;
  });
}

double lzh_ratio(std::span<const std::uint8_t> input) {
  if (input.empty()) return 0.0;
  const auto compressed = lzh_compress(input);
  return static_cast<double>(input.size()) / static_cast<double>(compressed.size());
}

}  // namespace szp::lossless
