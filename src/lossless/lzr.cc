#include "lossless/lzr.hh"

#include <algorithm>
#include <stdexcept>

#include "core/error.hh"
#include "core/huffman/bitio.hh"
#include "core/serialize.hh"
#include "core/rans.hh"
#include "sim/check.hh"

namespace szp::lossless {

namespace {

constexpr std::uint32_t kMagic = 0x525A4C53;  // "SLZR"

}  // namespace

std::vector<std::uint8_t> lzr_compress(std::span<const std::uint8_t> input,
                                       const Lz77Config& cfg) {
  const auto tokens = lz77_tokenize(input, cfg);

  std::vector<std::uint64_t> lit_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  lz77_token_frequencies(tokens, lit_freq, dist_freq);

  // Split the token stream into the rANS symbol streams and the extra-bits
  // sidecar.  Serial (the sidecar's bit offsets are order-dependent), so one
  // block; the output streams are block-owned heap state with exact bounds:
  // one lit symbol per token, at most one dist symbol per token, and at most
  // 5 + 13 extra bits per token.
  std::vector<std::uint16_t> lit_syms;
  std::vector<std::uint16_t> dist_syms;
  lit_syms.reserve(tokens.size());
  BitWriter extras;
  const auto n_tok = static_cast<std::int64_t>(tokens.size());
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  chk::launch("lzr/token_split", 1,
              chk::bufs(chk::in(std::span<const Lz77Token>(tokens), "tokens")),
              ctr::contract(ctr::reads_all("tokens"),
                            ctr::host_sink("lit_syms", n_tok * 2),
                            ctr::host_sink("dist_syms", n_tok * 2),
                            ctr::host_sink("extras", (n_tok * 18 + 7) / 8)),
              [&](std::size_t, const auto& vtok) {
    for (std::size_t i = 0; i < vtok.size(); ++i) {
      const Lz77Token t = vtok[i];
      lit_syms.push_back(t.litlen_sym);
      if (t.litlen_sym >= 257) {
        const std::size_t lc = t.litlen_sym - 257u;
        if (kLenExtra[lc] > 0) extras.put(t.len_extra, kLenExtra[lc]);
        dist_syms.push_back(t.dist_sym);
        if (kDistExtra[t.dist_sym] > 0) extras.put(t.dist_extra, kDistExtra[t.dist_sym]);
      }
    }
  });

  const auto lit_model = RansModel::build(lit_freq);

  ByteWriter w;
  w.put(kMagic);
  w.put<std::uint64_t>(input.size());
  w.put<std::uint64_t>(lit_syms.size());
  w.put<std::uint64_t>(dist_syms.size());
  lit_model.serialize(w);
  w.put_vector(rans_encode(lit_syms, lit_model));
  if (!dist_syms.empty()) {
    const auto dist_model = RansModel::build(dist_freq);
    dist_model.serialize(w);
    w.put_vector(rans_encode(dist_syms, dist_model));
  }
  w.put_vector(extras.take());
  return w.take();
}

std::vector<std::uint8_t> lzr_decompress(std::span<const std::uint8_t> input) {
  return decode_guard("lzr archive", [&] {
  ByteReader r(input);
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SLZR stream");
  }
  const auto orig_size = r.get<std::uint64_t>();
  const auto n_tokens = r.get<std::uint64_t>();
  const auto n_matches = r.get<std::uint64_t>();
  // Every token expands to at least one output byte (bar the end marker) and
  // every match consumes a token, so both counts are bounded by the declared
  // size; reject splices before the rans_decode output allocations.
  if (n_tokens > orig_size + 1 || n_matches > n_tokens) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "token/match counts exceed the declared output size");
  }

  const auto lit_model = RansModel::deserialize(r);
  r.set_segment("rans stream");
  const auto lit_bytes = r.get_vector<std::uint8_t>();
  const auto lit_syms = rans_decode(lit_bytes, n_tokens, lit_model);

  std::vector<std::uint16_t> dist_syms;
  if (n_matches > 0) {
    const auto dist_model = RansModel::deserialize(r);
    r.set_segment("rans stream");
    const auto dist_bytes = r.get_vector<std::uint8_t>();
    dist_syms = rans_decode(dist_bytes, n_matches, dist_model);
  }
  r.set_segment("extra bits");
  const auto extra_bytes = r.get_vector<std::uint8_t>();

  std::vector<std::uint8_t> out;
  out.reserve(std::min<std::uint64_t>(orig_size, 1u << 20));
  // Serial token expansion: one block consuming the decoded symbol streams
  // and the extra-bits sidecar; the growing output is block-owned.
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  chk::launch("lzr/expand", 1,
              chk::bufs(chk::in(std::span<const std::uint16_t>(lit_syms), "lit_syms"),
                        chk::in(std::span<const std::uint16_t>(dist_syms), "dist_syms"),
                        chk::in(std::span<const std::uint8_t>(extra_bytes), "extras")),
              // The expansion loop throws past orig_size, so the untrusted
              // header still yields an enforced store ceiling.
              ctr::contract(ctr::reads_all("lit_syms"), ctr::reads_all("dist_syms"),
                            ctr::reads_all("extras"),
                            ctr::host_sink("out", static_cast<std::int64_t>(std::min<
                                std::uint64_t>(orig_size, 1ull << 62)))),
              [&](std::size_t, const auto& vlit, const auto& vdist, const auto& vextras) {
    vextras.note_read(0, vextras.size());
    BitReader extras({vextras.data(), vextras.size()});
    std::size_t match = 0;
    for (std::size_t i = 0; i < vlit.size(); ++i) {
      Lz77Token t{};
      t.litlen_sym = vlit[i];
      if (t.litlen_sym >= 257) {
        const std::size_t lc = t.litlen_sym - 257u;
        if (lc >= kLenBase.size()) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "token streams", "bad length symbol");
        }
        for (unsigned b = kLenExtra[lc]; b-- > 0;) {
          t.len_extra = static_cast<std::uint16_t>(t.len_extra | (extras.get_bit() << b));
        }
        if (match >= vdist.size()) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "token streams",
                            "match/distance stream mismatch");
        }
        const std::uint16_t ds = vdist[match++];
        if (ds >= kDistBase.size()) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "token streams",
                            "bad distance symbol");
        }
        t.dist_sym = static_cast<std::uint8_t>(ds);
        for (unsigned b = kDistExtra[ds]; b-- > 0;) {
          t.dist_extra = static_cast<std::uint16_t>(t.dist_extra | (extras.get_bit() << b));
        }
      }
      if (!lz77_expand(t, out)) break;
      if (out.size() > orig_size) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "token streams",
                          "decoded output exceeds the declared size");
      }
    }
  });
  if (out.size() != orig_size) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "token streams",
                      "decoded " + std::to_string(out.size()) + " bytes, header declared " +
                          std::to_string(orig_size));
  }
  return out;
  });
}

double lzr_ratio(std::span<const std::uint8_t> input) {
  if (input.empty()) return 0.0;
  const auto compressed = lzr_compress(input);
  return static_cast<double>(input.size()) / static_cast<double>(compressed.size());
}

}  // namespace szp::lossless
