// szp::lossless — shared LZ77 machinery: DEFLATE-style token alphabet
// (literal/length codes with extra bits, 30 distance codes) and the
// hash-chain greedy tokenizer.  Two entropy stages build on it:
//   * lzh.cc — canonical Huffman (the gzip stand-in),
//   * lzr.cc — rANS (the Zstd stand-in; Zstd's FSE is the same
//     table-variant ANS family).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace szp::lossless {

struct Lz77Config {
  std::size_t window = 32768;   ///< max match distance
  std::size_t max_chain = 128;  ///< hash-chain search depth
  std::size_t min_match = 3;
  std::size_t max_match = 258;
};

inline constexpr std::uint32_t kEndOfBlock = 256;
inline constexpr std::size_t kLitLenAlphabet = 286;
inline constexpr std::size_t kDistAlphabet = 30;

/// DEFLATE length codes 257..285: base length and extra bits.
inline constexpr std::array<std::uint16_t, 29> kLenBase{
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr std::array<std::uint8_t, 29> kLenExtra{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                                        2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

/// DEFLATE distance codes 0..29: base distance and extra bits.
inline constexpr std::array<std::uint32_t, 30> kDistBase{
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr std::array<std::uint8_t, 30> kDistExtra{0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

/// Length (3..258) -> index into kLenBase.
[[nodiscard]] std::size_t length_code(std::size_t len);

/// Distance (1..32768) -> index into kDistBase.
[[nodiscard]] std::size_t dist_code(std::size_t dist);

/// One LZ77 token: a literal (litlen_sym < 256), the end-of-block marker
/// (== 256), or a match (>= 257 with distance fields valid).
struct Lz77Token {
  std::uint16_t litlen_sym = 0;
  std::uint16_t len_extra = 0;   ///< extra-bit payload for the length
  std::uint8_t dist_sym = 0;
  std::uint16_t dist_extra = 0;  ///< extra-bit payload for the distance
};

/// Greedy hash-chain parse of `input` into tokens (terminated by an
/// end-of-block token).
[[nodiscard]] std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                                   const Lz77Config& cfg = {});

/// Tally literal/length and distance symbol frequencies over a token stream
/// (privatized-bins tile kernels, shared by the lzh and lzr entropy stages).
/// `lit_freq` must hold kLitLenAlphabet slots, `dist_freq` kDistAlphabet.
void lz77_token_frequencies(std::span<const Lz77Token> tokens,
                            std::span<std::uint64_t> lit_freq,
                            std::span<std::uint64_t> dist_freq);

/// Expand a token against already-decoded output (appends to `out`).
/// Returns false for the end-of-block token.
bool lz77_expand(const Lz77Token& token, std::vector<std::uint8_t>& out);

}  // namespace szp::lossless
