#include "lossless/lz77.hh"

#include <stdexcept>

namespace szp::lossless {

namespace {

std::uint32_t hash3(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) * 2654435761u ^
          static_cast<std::uint32_t>(p[1]) * 40503u ^ static_cast<std::uint32_t>(p[2]))
         & 0x7fffu;
}

}  // namespace

std::size_t length_code(std::size_t len) {
  std::size_t c = 0;
  while (c + 1 < kLenBase.size() && kLenBase[c + 1] <= len) ++c;
  return c;
}

std::size_t dist_code(std::size_t dist) {
  std::size_t c = 0;
  while (c + 1 < kDistBase.size() && kDistBase[c + 1] <= dist) ++c;
  return c;
}

std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Config& cfg) {
  std::vector<Lz77Token> tokens;
  tokens.reserve(input.size() / 3 + 2);

  std::vector<std::int64_t> head(1 << 15, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  const std::size_t n = input.size();
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0, best_dist = 0;
    if (pos + cfg.min_match <= n) {
      const std::uint32_t h = hash3(input.data() + pos);
      std::int64_t cand = head[h];
      std::size_t chain = 0;
      const std::size_t limit = std::min(cfg.max_match, n - pos);
      while (cand >= 0 && chain < cfg.max_chain &&
             pos - static_cast<std::size_t>(cand) <= cfg.window) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        while (len < limit && input[c + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - c;
          if (len == limit) break;
        }
        cand = prev[c];
        ++chain;
      }
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }

    if (best_len >= cfg.min_match) {
      const std::size_t lc = length_code(best_len);
      const std::size_t dc = dist_code(best_dist);
      Lz77Token t;
      t.litlen_sym = static_cast<std::uint16_t>(257 + lc);
      t.len_extra = static_cast<std::uint16_t>(best_len - kLenBase[lc]);
      t.dist_sym = static_cast<std::uint8_t>(dc);
      t.dist_extra = static_cast<std::uint16_t>(best_dist - kDistBase[dc]);
      tokens.push_back(t);
      // Insert skipped positions into the hash chains so later matches can
      // reference the interior of this match.
      for (std::size_t k = 1; k < best_len && pos + k + cfg.min_match <= n; ++k) {
        const std::uint32_t h = hash3(input.data() + pos + k);
        prev[pos + k] = head[h];
        head[h] = static_cast<std::int64_t>(pos + k);
      }
      pos += best_len;
    } else {
      Lz77Token t{};
      t.litlen_sym = input[pos];
      tokens.push_back(t);
      ++pos;
    }
  }
  Lz77Token eob{};
  eob.litlen_sym = kEndOfBlock;
  tokens.push_back(eob);
  return tokens;
}

bool lz77_expand(const Lz77Token& token, std::vector<std::uint8_t>& out) {
  if (token.litlen_sym == kEndOfBlock) return false;
  if (token.litlen_sym < 256) {
    out.push_back(static_cast<std::uint8_t>(token.litlen_sym));
    return true;
  }
  const std::size_t lc = token.litlen_sym - 257u;
  if (lc >= kLenBase.size() || token.dist_sym >= kDistBase.size()) {
    throw std::runtime_error("lz77_expand: bad token");
  }
  const std::size_t len = kLenBase[lc] + token.len_extra;
  const std::size_t dist = kDistBase[token.dist_sym] + token.dist_extra;
  if (dist > out.size()) {
    throw std::runtime_error("lz77_expand: distance before stream start");
  }
  const std::size_t start = out.size() - dist;
  for (std::size_t k = 0; k < len; ++k) out.push_back(out[start + k]);
  return true;
}

}  // namespace szp::lossless
