#include "lossless/lz77.hh"

#include <algorithm>
#include <stdexcept>

#include "core/error.hh"
#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp::lossless {

namespace {

std::uint32_t hash3(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2) {
  return (static_cast<std::uint32_t>(b0) * 2654435761u ^
          static_cast<std::uint32_t>(b1) * 40503u ^ static_cast<std::uint32_t>(b2))
         & 0x7fffu;
}

}  // namespace

std::size_t length_code(std::size_t len) {
  std::size_t c = 0;
  while (c + 1 < kLenBase.size() && kLenBase[c + 1] <= len) ++c;
  return c;
}

std::size_t dist_code(std::size_t dist) {
  std::size_t c = 0;
  while (c + 1 < kDistBase.size() && kDistBase[c + 1] <= dist) ++c;
  return c;
}

std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Config& cfg) {
  std::vector<Lz77Token> tokens;
  tokens.reserve(input.size() / 3 + 2);

  std::vector<std::int64_t> head(1 << 15, -1);
  std::vector<std::int64_t> prev(input.size(), -1);
  const std::size_t n = input.size();

  // The greedy parse is inherently serial (every match decision depends on
  // hash chains built by earlier positions), so it runs as one block — the
  // per-stream granularity a GPU deflate would use.  Registration still buys
  // bounds checking on every chain probe and match compare; the token list
  // is block-owned heap state.
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  chk::launch("lz77/tokenize", 1,
              chk::bufs(chk::in(input, "input"),
                        chk::inout(std::span<std::int64_t>(head), "head"),
                        chk::inout(std::span<std::int64_t>(prev), "prev")),
              ctr::contract(ctr::reads_all("input"), ctr::updates_all("head"),
                            ctr::updates_all("prev")),
              [&, n](std::size_t, const auto& vin, const auto& vhead, const auto& vprev) {
    std::size_t pos = 0;
    while (pos < n) {
      std::size_t best_len = 0, best_dist = 0;
      if (pos + cfg.min_match <= n) {
        const std::uint32_t h = hash3(vin[pos], vin[pos + 1], vin[pos + 2]);
        std::int64_t cand = vhead[h];
        std::size_t chain = 0;
        const std::size_t limit = std::min(cfg.max_match, n - pos);
        while (cand >= 0 && chain < cfg.max_chain &&
               pos - static_cast<std::size_t>(cand) <= cfg.window) {
          const auto c = static_cast<std::size_t>(cand);
          std::size_t len = 0;
          while (len < limit && vin[c + len] == vin[pos + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_dist = pos - c;
            if (len == limit) break;
          }
          cand = vprev[c];
          ++chain;
        }
        vprev[pos] = vhead[h];
        vhead[h] = static_cast<std::int64_t>(pos);
      }

      if (best_len >= cfg.min_match) {
        const std::size_t lc = length_code(best_len);
        const std::size_t dc = dist_code(best_dist);
        Lz77Token t;
        t.litlen_sym = static_cast<std::uint16_t>(257 + lc);
        t.len_extra = static_cast<std::uint16_t>(best_len - kLenBase[lc]);
        t.dist_sym = static_cast<std::uint8_t>(dc);
        t.dist_extra = static_cast<std::uint16_t>(best_dist - kDistBase[dc]);
        tokens.push_back(t);
        // Insert skipped positions into the hash chains so later matches can
        // reference the interior of this match.
        for (std::size_t k = 1; k < best_len && pos + k + cfg.min_match <= n; ++k) {
          const std::uint32_t h = hash3(vin[pos + k], vin[pos + k + 1], vin[pos + k + 2]);
          vprev[pos + k] = vhead[h];
          vhead[h] = static_cast<std::int64_t>(pos + k);
        }
        pos += best_len;
      } else {
        Lz77Token t{};
        t.litlen_sym = vin[pos];
        tokens.push_back(t);
        ++pos;
      }
    }
  });

  Lz77Token eob{};
  eob.litlen_sym = kEndOfBlock;
  tokens.push_back(eob);
  return tokens;
}

void lz77_token_frequencies(std::span<const Lz77Token> tokens,
                            std::span<std::uint64_t> lit_freq,
                            std::span<std::uint64_t> dist_freq) {
  if (lit_freq.size() != kLitLenAlphabet || dist_freq.size() != kDistAlphabet) {
    throw std::invalid_argument("lz77_token_frequencies: bad frequency extents");
  }
  std::fill(lit_freq.begin(), lit_freq.end(), 0);
  std::fill(dist_freq.begin(), dist_freq.end(), 0);
  const std::size_t n = tokens.size();
  if (n == 0) return;

  // Privatized-bins histogram over the token stream (same structure as
  // sim::device_histogram): each block tallies its tile into private rows,
  // a second kernel merges disjoint symbol ranges.
  constexpr std::size_t kTile = 1 << 14;
  const std::size_t tiles = sim::div_ceil(n, kTile);
  std::vector<std::uint64_t> priv_lit(tiles * kLitLenAlphabet, 0);
  std::vector<std::uint64_t> priv_dist(tiles * kDistAlphabet, 0);

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  constexpr auto kLit64 = static_cast<std::int64_t>(kLitLenAlphabet);
  constexpr auto kDist64 = static_cast<std::int64_t>(kDistAlphabet);
  chk::launch("lz77/token_freq", tiles,
              chk::bufs(chk::in(tokens, "tokens"),
                        chk::inout(std::span<std::uint64_t>(priv_lit), "priv_lit"),
                        chk::inout(std::span<std::uint64_t>(priv_dist), "priv_dist")),
              ctr::contract(
                  ctr::reads("tokens", ctr::b() * static_cast<std::int64_t>(kTile),
                             static_cast<std::int64_t>(kTile)).clamp(),
                  ctr::updates("priv_lit", ctr::b() * kLit64, kLit64),
                  ctr::updates("priv_dist", ctr::b() * kDist64, kDist64)),
              [&, n](std::size_t t, const auto& vtok, const auto& vlit, const auto& vdist) {
    const std::size_t lo = t * kTile;
    const std::size_t hi = std::min(lo + kTile, n);
    const std::size_t lrow = t * kLitLenAlphabet;
    const std::size_t drow = t * kDistAlphabet;
    for (std::size_t i = lo; i < hi; ++i) {
      const Lz77Token tok = vtok[i];
      vlit.atomic_add(lrow + tok.litlen_sym, 1);
      if (tok.litlen_sym >= 257) vdist.atomic_add(drow + tok.dist_sym, 1);
    }
  });

  constexpr std::size_t kMergeSyms = 64;
  constexpr auto kMerge64 = static_cast<std::int64_t>(kMergeSyms);
  const std::size_t total_syms = kLitLenAlphabet + kDistAlphabet;
  // Block `blk` owns symbols [blk*64, +64) of the concatenated lit‖dist
  // alphabet: column-strided reads over the private rows, clamped affine
  // windows into both output tables (the dist window starts negative for
  // the lit-only blocks and clamps to empty).
  chk::launch("lz77/freq_merge", sim::div_ceil(total_syms, kMergeSyms),
              chk::bufs(chk::in(std::span<const std::uint64_t>(priv_lit), "priv_lit"),
                        chk::in(std::span<const std::uint64_t>(priv_dist), "priv_dist"),
                        chk::out(lit_freq, "lit_freq"),
                        chk::out(dist_freq, "dist_freq")),
              ctr::contract(
                  ctr::reads("priv_lit", ctr::b() * kMerge64, kMerge64)
                      .strided(static_cast<std::int64_t>(tiles), kLit64).clamp(),
                  ctr::reads("priv_dist", ctr::b() * kMerge64 - kLit64, kMerge64)
                      .strided(static_cast<std::int64_t>(tiles), kDist64).clamp(),
                  ctr::writes("lit_freq", ctr::b() * kMerge64, kMerge64).clamp(),
                  ctr::writes("dist_freq", ctr::b() * kMerge64 - kLit64, kMerge64).clamp()),
              [&, tiles, total_syms](std::size_t blk, const auto& vplit, const auto& vpdist,
                                     const auto& vlit, const auto& vdist) {
    const std::size_t s0 = blk * kMergeSyms;
    const std::size_t s1 = std::min(s0 + kMergeSyms, total_syms);
    for (std::size_t s = s0; s < s1; ++s) {
      std::uint64_t sum = 0;
      if (s < kLitLenAlphabet) {
        for (std::size_t t = 0; t < tiles; ++t) sum += vplit[t * kLitLenAlphabet + s];
        vlit[s] = sum;
      } else {
        const std::size_t ds = s - kLitLenAlphabet;
        for (std::size_t t = 0; t < tiles; ++t) sum += vpdist[t * kDistAlphabet + ds];
        vdist[ds] = sum;
      }
    }
  });
}

bool lz77_expand(const Lz77Token& token, std::vector<std::uint8_t>& out) {
  if (token.litlen_sym == kEndOfBlock) return false;
  if (token.litlen_sym < 256) {
    out.push_back(static_cast<std::uint8_t>(token.litlen_sym));
    return true;
  }
  const std::size_t lc = token.litlen_sym - 257u;
  if (lc >= kLenBase.size() || token.dist_sym >= kDistBase.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "lz77 tokens",
                      "length/distance symbol outside the alphabet");
  }
  const std::size_t len = kLenBase[lc] + token.len_extra;
  const std::size_t dist = kDistBase[token.dist_sym] + token.dist_extra;
  if (dist > out.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "lz77 tokens",
                      "match distance " + std::to_string(dist) + " reaches before the start of "
                          "the " + std::to_string(out.size()) + "-byte output");
  }
  const std::size_t start = out.size() - dist;
  for (std::size_t k = 0; k < len; ++k) out.push_back(out[start + k]);
  return true;
}

}  // namespace szp::lossless
