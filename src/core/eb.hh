// szp — user-facing error-bound specification.
//
// The paper evaluates with error bounds *relative to the value range*
// (e.g., rel-eb 1e-4 in Table VII); SZ also supports absolute bounds.  The
// bound is resolved to an absolute `eb` before compression; dual
// quantization then guarantees |decompressed - original| < eb pointwise.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace szp {

enum class EbMode {
  kAbsolute,  ///< eb given directly in data units
  kRelative,  ///< eb = value * (max - min) of the field
  kPsnr,      ///< eb derived from a target PSNR in dB (SZ's PSNR mode,
              ///< paper §VI): assuming near-uniform quantization error,
              ///< mse = eb²/3, so eb = range · sqrt(3) · 10^(-psnr/20).
};

struct ErrorBound {
  EbMode mode = EbMode::kRelative;
  double value = 1e-4;

  static ErrorBound absolute(double eb) { return {EbMode::kAbsolute, eb}; }
  static ErrorBound relative(double eb) { return {EbMode::kRelative, eb}; }
  static ErrorBound psnr(double target_db) { return {EbMode::kPsnr, target_db}; }

  /// Resolve to an absolute bound given the field's value range.
  [[nodiscard]] double resolve(double range) const {
    if (value <= 0.0 || !std::isfinite(value)) {
      throw std::invalid_argument("ErrorBound: value must be positive and finite");
    }
    switch (mode) {
      case EbMode::kAbsolute: return value;
      case EbMode::kRelative: return value * (range > 0.0 ? range : 1.0);
      case EbMode::kPsnr:
        return (range > 0.0 ? range : 1.0) * std::sqrt(3.0) * std::pow(10.0, -value / 20.0);
    }
    return value;
  }
};

/// Min/max of a field (used both to resolve relative bounds and for PSNR).
/// Also tracks finiteness: NaN/Inf would silently defeat min/max scans.
struct ValueRange {
  double min = 0.0;
  double max = 0.0;
  bool finite = true;

  [[nodiscard]] double span() const { return max - min; }
  [[nodiscard]] double max_abs() const { return std::max(std::abs(min), std::abs(max)); }

  template <typename T>
  static ValueRange of(std::span<const T> data) {
    ValueRange r;
    if (data.empty()) return r;
    T lo = data[0], hi = data[0];
    bool fin = true;
#pragma omp parallel for reduction(min : lo) reduction(max : hi) reduction(&& : fin)
    for (long long i = 0; i < static_cast<long long>(data.size()); ++i) {
      const T v = data[static_cast<std::size_t>(i)];
      fin = fin && std::isfinite(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    r.min = lo;
    r.max = hi;
    r.finite = fin;
    return r;
  }

  template <typename T, typename Alloc>
  static ValueRange of(const std::vector<T, Alloc>& data) {
    return of(std::span<const T>(data.data(), data.size()));
  }
};

}  // namespace szp
