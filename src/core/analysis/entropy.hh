// szp — histogram-based compressibility estimation (paper §III-B.1).
//
// From the quant-code histogram alone (no tree build) the framework bounds
// the average Huffman bit length ⟨b⟩ = H(X) + R:
//   * lower redundancy  R⁻ = 1 − H(p1, 1−p1)  when p1 > 0.4   (Johnsen 1980)
//   * upper redundancy  R⁺ = p1 + 0.086                        (Gallager 1978)
// where p1 is the probability of the most likely symbol.  These bounds feed
// the RLE-vs-VLE workflow selector.
#pragma once

#include <cstdint>
#include <span>

namespace szp {

struct EntropyStats {
  double entropy_bits = 0.0;     ///< H(X), bits per symbol
  double p1 = 0.0;               ///< probability of the most likely symbol
  std::uint32_t top_symbol = 0;  ///< the most likely symbol
  double redundancy_lower = 0.0; ///< R⁻
  double redundancy_upper = 0.0; ///< R⁺
  std::uint64_t total = 0;       ///< number of samples in the histogram

  /// Estimated bounds on the average Huffman codeword length.
  [[nodiscard]] double avg_bits_lower() const { return entropy_bits + redundancy_lower; }
  [[nodiscard]] double avg_bits_upper() const { return entropy_bits + redundancy_upper; }
};

/// Compute entropy statistics from a symbol frequency histogram.
[[nodiscard]] EntropyStats entropy_stats(std::span<const std::uint64_t> freq);

/// Binary entropy H(p, 1-p) in bits; 0 at p ∈ {0, 1}.
[[nodiscard]] double binary_entropy(double p);

}  // namespace szp
