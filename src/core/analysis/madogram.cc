#include "core/analysis/madogram.hh"

#include <cmath>
#include <random>

namespace szp {

namespace {

template <typename T>
MadogramResult madogram_impl(std::span<const T> data, const MadogramConfig& cfg) {
  MadogramResult res;
  const std::size_t dmax = cfg.max_distance;
  res.abs_difference.assign(dmax, 0.0);
  res.binary_variance.assign(dmax, 0.0);
  if (data.size() < 2 || dmax == 0) return res;

  std::vector<std::uint64_t> count(dmax, 0);
  std::mt19937_64 rng(cfg.seed);
  std::uniform_int_distribution<std::size_t> pick_a(0, data.size() - 2);
  std::uniform_int_distribution<std::size_t> pick_d(1, dmax);

  for (std::size_t s = 0; s < cfg.samples; ++s) {
    const std::size_t a = pick_a(rng);
    const std::size_t d = pick_d(rng);
    if (a + d >= data.size()) continue;  // (a+d) must stay in the data range
    const double diff = std::abs(static_cast<double>(data[a]) - static_cast<double>(data[a + d]));
    res.abs_difference[d - 1] += diff;
    res.binary_variance[d - 1] += data[a] != data[a + d] ? 1.0 : 0.0;
    ++count[d - 1];
  }

  // Average each distance bin by its own sample count, then regress.
  double sum_rough = 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t bins = 0;
  for (std::size_t d = 0; d < dmax; ++d) {
    if (count[d] == 0) continue;
    res.abs_difference[d] /= static_cast<double>(count[d]);
    res.binary_variance[d] /= static_cast<double>(count[d]);
    sum_rough += res.binary_variance[d];
    const double x = static_cast<double>(d + 1);
    sx += x;
    sy += res.abs_difference[d];
    sxx += x * x;
    sxy += x * res.abs_difference[d];
    ++bins;
  }
  if (bins > 0) res.mean_roughness = sum_rough / static_cast<double>(bins);
  if (bins > 1) {
    const double nb = static_cast<double>(bins);
    const double denom = nb * sxx - sx * sx;
    if (denom != 0.0) res.slope = (nb * sxy - sx * sy) / denom;
  }
  return res;
}

}  // namespace

MadogramResult madogram(std::span<const float> data, const MadogramConfig& cfg) {
  return madogram_impl(data, cfg);
}

MadogramResult madogram(std::span<const std::uint16_t> data, const MadogramConfig& cfg) {
  return madogram_impl(data, cfg);
}

double adjacent_roughness(std::span<const std::uint16_t> data) {
  if (data.size() < 2) return 0.0;
  std::uint64_t changes = 0;
#pragma omp parallel for reduction(+ : changes)
  for (long long i = 1; i < static_cast<long long>(data.size()); ++i) {
    const auto k = static_cast<std::size_t>(i);
    changes += data[k] != data[k - 1] ? 1u : 0u;
  }
  return static_cast<double>(changes) / static_cast<double>(data.size() - 1);
}

}  // namespace szp
