// szp — the compressibility-aware workflow selector (paper §III, generalized).
//
// The paper's practical rule is binary: "when Huffman is likely to achieve
// an average bit-length lower than 1.09, we can use RLE" — at that point the
// symbol stream is dominated by one value (p1 near 1), so runs are long and
// RLE beats or matches VLE while also breaking VLE's 32x ceiling for floats.
//
// This module generalizes that cutoff into a cost model over *every*
// registered codec (per the synergistic-orchestration direction of arXiv
// 2507.11165): each codec projects, from the quant-code histogram alone (no
// trial encode), its payload bits per symbol, its fixed section overhead,
// and the analytic KernelCost of its encode/decode kernels.  The selector
// turns those into an estimated compression ratio and a modeled encode time
// on the configured DeviceSpec, normalizes both against the best candidate,
// and ranks by a user-weighted ratio/throughput objective:
//
//   score(c) = w_ratio * ratio(c)/max_ratio + w_tput * min_time/time(c)
//
// The paper's rule falls out as the special case {candidates = {Huffman,
// RLE+VLE}, w_tput = 0}: RLE wins exactly when 32·(1−p1) < max(1, H+R⁻),
// and on the skewed alphabets the rule targets the crossover sits at
// ⟨b⟩ ≈ 1.09 (see DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analysis/entropy.hh"

namespace szp::sim {
struct DeviceSpec;
}

namespace szp {

enum class Workflow : std::uint8_t {
  kHuffman = 0,  ///< Lorenzo + multi-byte VLE (cuSZ default)
  kRle = 1,      ///< Lorenzo + RLE
  kRleVle = 2,   ///< Lorenzo + RLE + VLE over run values/lengths
  kRans = 3,     ///< Lorenzo + rANS over quant-codes (extension: fractional-
                 ///< bit entropy coding breaks Huffman's 1-bit floor without
                 ///< the RLE metadata; not in the paper)
  kLz77 = 4,     ///< LZ77 tokens over the packed quant-code bytes, stored raw
                 ///< (the fast dictionary tier; archive format v3)
  kLzh = 5,      ///< LZ77 + canonical Huffman over the packed quant-code
                 ///< bytes (the paper's `qg` gzip reference as a pipeline
                 ///< codec; archive format v3)
  kLzr = 6,      ///< LZ77 + rANS (the Zstd stand-in; archive format v3)
  kAuto = 255,   ///< let the cost-model selector rank every registered codec
};

struct SelectorConfig {
  bool prefer_rle_vle = true;  ///< when plain RLE and RLE+VLE tie, take VLE
  /// Objective weights.  ratio_weight rewards the projected compression
  /// ratio, throughput_weight rewards modeled encode speed; both are
  /// normalized against the best candidate, so only their relative size
  /// matters.  The defaults lean toward ratio (the paper's framing: encode
  /// throughput differences between the GPU codecs are second-order next to
  /// the CR differences the selector exists to capture).
  double ratio_weight = 0.65;
  double throughput_weight = 0.35;
  /// Device the throughput term is modeled on; nullptr means sim::v100()
  /// (the paper's primary evaluation card).
  const sim::DeviceSpec* device = nullptr;
};

/// One row of the selector's ranking: the per-codec evidence the decision
/// was made from (also what `szp analyze --codecs` prints).
struct CodecScore {
  Workflow workflow = Workflow::kHuffman;
  const char* name = "";            ///< registry name of the codec
  double est_bits_per_symbol = 0.0; ///< projected payload ⟨b⟩
  double est_fixed_bytes = 0.0;     ///< projected section overhead (books,
                                    ///< tables, chunk metadata)
  double est_ratio = 0.0;           ///< projected CR including the overhead
  double modeled_encode_seconds = 0.0;
  double modeled_decode_seconds = 0.0;
  double score = 0.0;               ///< weighted objective, higher is better
};

struct WorkflowDecision {
  Workflow workflow = Workflow::kHuffman;
  EntropyStats stats;            ///< the histogram evidence
  double est_avg_bits = 0.0;     ///< projected Huffman ⟨b⟩ = max(1, H + R⁻)
  double est_vle_cr = 0.0;       ///< projected CR of Workflow-Huffman
  double est_rle_bits = 0.0;     ///< projected ⟨b⟩_RLE from p1 (geometric runs)
  std::vector<CodecScore> scores;  ///< every registered codec, best first
};

/// Decide the workflow from a quant-code histogram by ranking every codec
/// in the StageRegistry under `cfg`'s objective.  `bytes_per_value` is the
/// uncompressed element width (4 for float).
[[nodiscard]] WorkflowDecision select_workflow(std::span<const std::uint64_t> freq,
                                               std::size_t bytes_per_value = 4,
                                               const SelectorConfig& cfg = {});

}  // namespace szp

