// szp — the compressibility-aware workflow selector (paper §III).
//
// Decides, from the quant-code histogram alone (no Huffman tree, no trial
// encode), whether to run Workflow-Huffman (Lorenzo + multi-byte VLE) or
// Workflow-RLE (Lorenzo + RLE, optionally + VLE).  The paper's practical
// rule: "when Huffman is likely to achieve an average bit-length lower than
// 1.09, we can use RLE" — at that point the symbol stream is dominated by
// one value (p1 near 1), so runs are long and RLE beats or matches VLE
// while also breaking VLE's 32x ceiling for floats.
#pragma once

#include <cstdint>
#include <span>

#include "core/analysis/entropy.hh"

namespace szp {

enum class Workflow : std::uint8_t {
  kHuffman = 0,  ///< Lorenzo + multi-byte VLE (cuSZ default)
  kRle = 1,      ///< Lorenzo + RLE
  kRleVle = 2,   ///< Lorenzo + RLE + VLE over run values/lengths
  kRans = 3,     ///< Lorenzo + rANS over quant-codes (extension: fractional-
                 ///< bit entropy coding breaks Huffman's 1-bit floor without
                 ///< the RLE metadata; not in the paper)
  kAuto = 255,   ///< let the selector decide between kHuffman and kRleVle
};

struct SelectorConfig {
  double avg_bits_threshold = 1.09;  ///< the paper's ⟨b⟩ cutoff for RLE
  bool prefer_rle_vle = true;        ///< when RLE wins, append the VLE stage
};

struct WorkflowDecision {
  Workflow workflow = Workflow::kHuffman;
  EntropyStats stats;            ///< the histogram evidence
  double est_avg_bits = 0.0;     ///< estimate used against the threshold
  double est_vle_cr = 0.0;       ///< projected CR of Workflow-Huffman
  double est_rle_bits = 0.0;     ///< projected ⟨b⟩_RLE from p1 (geometric runs)
};

/// Decide the workflow from a quant-code histogram.  `bytes_per_value` is
/// the uncompressed element width (4 for float).
[[nodiscard]] WorkflowDecision select_workflow(std::span<const std::uint64_t> freq,
                                               std::size_t bytes_per_value = 4,
                                               const SelectorConfig& cfg = {});

}  // namespace szp
