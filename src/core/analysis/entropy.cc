#include "core/analysis/entropy.hh"

#include <cmath>

namespace szp {

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

EntropyStats entropy_stats(std::span<const std::uint64_t> freq) {
  EntropyStats s;
  for (const auto f : freq) s.total += f;
  if (s.total == 0) return s;

  std::uint64_t top = 0;
  const auto total = static_cast<double>(s.total);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] == 0) continue;
    const double p = static_cast<double>(freq[i]) / total;
    s.entropy_bits -= p * std::log2(p);
    if (freq[i] > top) {
      top = freq[i];
      s.top_symbol = static_cast<std::uint32_t>(i);
    }
  }
  s.p1 = static_cast<double>(top) / total;
  // Johnsen's lower bound applies when p1 > 0.4; below that use 0
  // (Huffman can be entropy-tight).
  s.redundancy_lower = s.p1 > 0.4 ? 1.0 - binary_entropy(s.p1) : 0.0;
  s.redundancy_upper = s.p1 + 0.086;  // Gallager, no restriction
  return s;
}

}  // namespace szp
