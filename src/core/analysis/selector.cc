#include "core/analysis/selector.hh"

#include <algorithm>
#include <cmath>

#include "core/pipeline/registry.hh"
#include "sim/device.hh"
#include "sim/perf_model.hh"

namespace szp {

WorkflowDecision select_workflow(std::span<const std::uint64_t> freq,
                                 std::size_t bytes_per_value, const SelectorConfig& cfg) {
  WorkflowDecision d;
  d.stats = entropy_stats(freq);

  // Legacy evidence fields (the paper's §III quantities), kept because the
  // CLI and tests report them and because the ⟨b⟩ ≤ 1.09 rule is the
  // ratio-only two-candidate special case of the ranking below.
  d.est_avg_bits = std::max(1.0, d.stats.avg_bits_lower());
  const double value_bits = static_cast<double>(bytes_per_value) * 8.0;
  d.est_vle_cr = d.est_avg_bits > 0.0 ? value_bits / d.est_avg_bits : 0.0;
  const double change_rate = std::max(1e-12, 1.0 - d.stats.p1);
  d.est_rle_bits = 32.0 * change_rate;

  // --- Rank every registered codec ----------------------------------------
  const sim::DeviceSpec& dev = cfg.device != nullptr ? *cfg.device : sim::v100();
  const auto& registry = pipeline::StageRegistry::instance();
  const double n = std::max(1.0, static_cast<double>(d.stats.total));

  pipeline::CodecSignals sig;
  sig.stats = d.stats;
  sig.freq = freq;
  sig.n = d.stats.total;
  sig.bytes_per_value = bytes_per_value;

  d.scores.reserve(registry.codecs().size());
  for (const auto& codec : registry.codecs()) {
    const pipeline::CodecEstimate est = codec->estimate(sig);
    CodecScore s;
    s.workflow = codec->id();
    s.name = codec->name();
    s.est_bits_per_symbol = est.payload_bits_per_symbol;
    s.est_fixed_bytes = est.fixed_bytes;
    // Projected CR of the quant-code section: payload plus the fixed
    // books/tables/chunk-metadata overhead (which is what sinks the
    // heavyweight codecs on small slabs).
    const double section_bits = est.payload_bits_per_symbol * n + est.fixed_bytes * 8.0;
    s.est_ratio = value_bits * n / std::max(1.0, section_bits);
    s.modeled_encode_seconds = sim::modeled_seconds(dev, est.encode_cost);
    s.modeled_decode_seconds = sim::modeled_seconds(dev, est.decode_cost);
    d.scores.push_back(s);
  }

  double best_ratio = 0.0;
  double best_time = 0.0;
  for (const auto& s : d.scores) {
    best_ratio = std::max(best_ratio, s.est_ratio);
    if (best_time == 0.0 || s.modeled_encode_seconds < best_time) {
      best_time = s.modeled_encode_seconds;
    }
  }

  // score = w_r * ratio/best_ratio + w_t * best_time/time — both terms are
  // in [0, 1] and equal 1 for the best candidate on that axis, so only the
  // relative weights matter.
  for (auto& s : d.scores) {
    const double ratio_norm = best_ratio > 0.0 ? s.est_ratio / best_ratio : 0.0;
    const double time_norm =
        s.modeled_encode_seconds > 0.0 ? best_time / s.modeled_encode_seconds : 1.0;
    s.score = cfg.ratio_weight * ratio_norm + cfg.throughput_weight * time_norm;
  }

  // Rank best-first with a deterministic tie-break on the workflow tag;
  // cfg.prefer_rle_vle keeps the paper's preference when plain RLE and
  // RLE+VLE land on exactly the same score.
  std::stable_sort(d.scores.begin(), d.scores.end(), [&](const CodecScore& a,
                                                         const CodecScore& b) {
    if (a.score != b.score) return a.score > b.score;
    const auto rank = [&](const CodecScore& s) {
      if (s.workflow == Workflow::kRleVle) return cfg.prefer_rle_vle ? -1 : 1;
      if (s.workflow == Workflow::kRle) return cfg.prefer_rle_vle ? 1 : -1;
      return static_cast<int>(s.workflow);
    };
    return rank(a) < rank(b);
  });

  d.workflow = d.scores.empty() ? Workflow::kHuffman : d.scores.front().workflow;
  return d;
}

}  // namespace szp

