#include "core/analysis/selector.hh"

#include <algorithm>

namespace szp {

WorkflowDecision select_workflow(std::span<const std::uint64_t> freq,
                                 std::size_t bytes_per_value, const SelectorConfig& cfg) {
  WorkflowDecision d;
  d.stats = entropy_stats(freq);

  // Estimate ⟨b⟩ without building the tree.  On the highly skewed alphabets
  // the RLE decision cares about (p1 near 1), Huffman sits essentially at
  // the Johnsen lower bound H + R⁻, so that is the "likely achievable"
  // value the paper's rule tests against 1.09; floored at 1 bit (no code is
  // shorter).
  d.est_avg_bits = std::max(1.0, d.stats.avg_bits_lower());

  const double value_bits = static_cast<double>(bytes_per_value) * 8.0;
  d.est_vle_cr = d.est_avg_bits > 0.0 ? value_bits / d.est_avg_bits : 0.0;

  // ⟨b⟩_RLE estimate: with i.i.d. symbol changes at rate (1 − p1) the
  // expected run length is 1/(1 − p1); each run costs 32 bits (u16 value +
  // u16 count).
  const double change_rate = std::max(1e-12, 1.0 - d.stats.p1);
  d.est_rle_bits = 32.0 * change_rate;

  if (d.est_avg_bits <= cfg.avg_bits_threshold) {
    d.workflow = cfg.prefer_rle_vle ? Workflow::kRleVle : Workflow::kRle;
  } else {
    d.workflow = Workflow::kHuffman;
  }
  return d;
}

}  // namespace szp
