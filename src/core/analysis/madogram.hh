// szp — smoothness estimation via sampled madogram / binary variance
// (paper §III-B.2).
//
// The variogram 2γ(s1,s2) = E[(Z(s1)−Z(s2))²] is adapted twice: the power
// is replaced by |Z(s1)−Z(s2)| (madogram — encoding is unidimensional), and
// then by the binary indicator [Z(s1)≠Z(s2)] whose expectation is the RLE
// *roughness* (a run breaks exactly when the value changes).  Smoothness is
// 1 − roughness.  Pairs (a, a+d) are sampled with d ∈ [1, Dmax]; the
// enumeration of all pairs would be O(n²).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace szp {

struct MadogramConfig {
  std::size_t max_distance = 200;  ///< D_max in the paper
  std::size_t samples = 100000;    ///< sampled pairs
  std::uint64_t seed = 0x5a5a1234;
};

struct MadogramResult {
  /// Index d-1 holds the statistic at distance d (size max_distance).
  std::vector<double> abs_difference;   ///< madogram: mean |Z(a)−Z(a+d)|
  std::vector<double> binary_variance;  ///< roughness: P[Z(a)≠Z(a+d)]
  double mean_roughness = 0.0;          ///< average binary variance over d
  double slope = 0.0;                   ///< linear-regression slope of the madogram

  [[nodiscard]] double smoothness() const { return 1.0 - mean_roughness; }
};

/// Sampled madogram of a float field (used on prequantized data in Fig 2a).
[[nodiscard]] MadogramResult madogram(std::span<const float> data, const MadogramConfig& cfg = {});

/// Sampled madogram of a quant-code field (Fig 2a middle/right panels).
[[nodiscard]] MadogramResult madogram(std::span<const std::uint16_t> data,
                                      const MadogramConfig& cfg = {});

/// Adjacent-pair roughness (distance-1 binary variance computed exactly, not
/// sampled): the direct predictor of RLE run structure — expected runs =
/// 1 + roughness·(n−1).
[[nodiscard]] double adjacent_roughness(std::span<const std::uint16_t> data);

}  // namespace szp
