// szp — CRC-32 (IEEE 802.3 polynomial) for archive integrity.
//
// Every Compressor archive carries a trailing checksum over its contents;
// decompression verifies it before parsing, so bit rot in storage or
// transfer is reported as a clean error instead of silently corrupt
// science data.
#pragma once

#include <cstdint>
#include <span>

namespace szp {

/// CRC-32 of `bytes` (reflected, init/xorout 0xffffffff — the zlib/PNG
/// convention).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Incremental form: feed chunks with the previous return value (start with
/// crc32_init()); finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xffffffffu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> bytes);
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

}  // namespace szp
