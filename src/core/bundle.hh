// szp — multi-field bundle: a named collection of compressed archives.
//
// Scientific outputs are rarely a single field (CESM-ATM alone has 77
// variables per snapshot, Table III).  A Bundle packs many independently
// compressed fields — plain archives or streaming containers — into one
// self-describing blob with a name index, so a whole snapshot travels as
// one object while individual variables stay independently extractable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace szp {

struct BundleSalvage;

class Bundle {
 public:
  struct Entry {
    std::string name;
    std::size_t compressed_bytes = 0;
  };

  /// Add a compressed archive under a unique name.
  void add(std::string name, std::vector<std::uint8_t> archive);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// The archive stored under `name`; throws std::out_of_range if absent.
  [[nodiscard]] const std::vector<std::uint8_t>& archive(const std::string& name) const;

  /// Pack into one self-describing blob (format v2: a per-entry CRC-32 over
  /// each name+archive pair, plus the whole-blob trailing CRC-32).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a serialized bundle (v1 or v2); verifies every checksum and
  /// throws DecodeError on any mismatch.
  [[nodiscard]] static Bundle deserialize(std::span<const std::uint8_t> bytes);

  /// Salvage intact entries from a corrupt bundle.  v2 bundles verify each
  /// entry's own CRC, so damage is localized; a v1 bundle with a bad
  /// whole-blob CRC has no per-entry evidence, so every entry is reported
  /// corrupt.  Throws DecodeError only when the header itself is unusable.
  [[nodiscard]] static BundleSalvage deserialize_tolerant(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::uint8_t>> archives_;
};

/// Result of Bundle::deserialize_tolerant: a best-effort parse of a damaged
/// bundle.
struct BundleSalvage {
  Bundle bundle;                     ///< entries whose integrity verified
  std::vector<std::string> corrupt;  ///< names (or "entry #i") that did not
  bool container_crc_ok = true;      ///< whole-blob trailing CRC verdict
};

}  // namespace szp
