// szp — multi-field bundle: a named collection of compressed archives.
//
// Scientific outputs are rarely a single field (CESM-ATM alone has 77
// variables per snapshot, Table III).  A Bundle packs many independently
// compressed fields — plain archives or streaming containers — into one
// self-describing blob with a name index, so a whole snapshot travels as
// one object while individual variables stay independently extractable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace szp {

class Bundle {
 public:
  struct Entry {
    std::string name;
    std::size_t compressed_bytes = 0;
  };

  /// Add a compressed archive under a unique name.
  void add(std::string name, std::vector<std::uint8_t> archive);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// The archive stored under `name`; throws std::out_of_range if absent.
  [[nodiscard]] const std::vector<std::uint8_t>& archive(const std::string& name) const;

  /// Pack into one self-describing blob (with its own trailing CRC-32).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a serialized bundle; verifies the checksum.
  [[nodiscard]] static Bundle deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::uint8_t>> archives_;
};

}  // namespace szp
