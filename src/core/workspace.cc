#include "core/workspace.hh"

namespace szp {

std::array<std::size_t, Workspace::kTrackedBuffers> Workspace::capacities() const {
  return {
      lorenzo.quant.capacity(),     lorenzo.outlier_dense.capacity(),
      regression.quant.capacity(),  regression.outlier_dense.capacity(),
      regression.coefficients.capacity(),
      interp.quant.capacity(),      interp.outlier_dense.capacity(),
      interp.anchors.capacity(),
      outliers.indices.capacity(),  outliers.values.capacity(),
      gather_tile_nnz.capacity(),   gather_offsets.capacity(),
      freq.capacity(),              hist_priv.capacity(),
      huffman.payload.capacity(),   huffman.chunk_offsets.capacity(),
      huffman.gaps.capacity(),      huffman_chunk_bytes.capacity(),
      vle_freq.capacity(),          book_freq.capacity(),
      codec_bytes.capacity(),       slab_io.capacity(),
  };
}

WorkspaceLease::~WorkspaceLease() {
  if (ws_ != nullptr && pool_ != nullptr) {
    pool_->release(std::move(ws_), caps_at_acquire_);
  }
}

WorkspaceLease WorkspacePool::acquire() {
  std::unique_ptr<Workspace> ws;
  {
    const MutexLock lock(mutex_);
    ++stats_.leases;
    if (!idle_.empty()) {
      ws = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ++stats_.created;
    }
  }
  if (ws == nullptr) ws = std::make_unique<Workspace>();
  const auto caps = ws->capacities();
  return WorkspaceLease(this, std::move(ws), caps);
}

void WorkspacePool::release(std::unique_ptr<Workspace> ws,
                            const std::array<std::size_t, Workspace::kTrackedBuffers>&
                                caps_at_acquire) {
  const auto caps_now = ws->capacities();
  std::size_t grew = 0;
  for (std::size_t i = 0; i < caps_now.size(); ++i) {
    if (caps_now[i] > caps_at_acquire[i]) ++grew;
  }
  const MutexLock lock(mutex_);
  stats_.grow_events += grew;
  idle_.push_back(std::move(ws));
}

WorkspacePool::Stats WorkspacePool::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

WorkspacePool& default_workspace_pool() {
  static WorkspacePool pool;
  return pool;
}

}  // namespace szp
