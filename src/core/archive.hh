// szp — SZP+ archive framing: the fixed header that every archive starts
// with and the trailing CRC-32 that seals it.
//
// Exactly one module owns the byte layout.  Compression writes the header
// through write_header(), decompression and inspect() parse it through
// read_header(), and both directions share checked_body()/append_crc32() for
// the integrity seal — so a format change is a one-file edit and the three
// consumers can never drift apart.  Predictor aux payloads (regression
// coefficients, interpolation anchors) and workflow payloads are *not*
// framed here: they belong to the registered pipeline stages
// (core/pipeline/), which serialize directly after the header in
// registration order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.hh"
#include "core/serialize.hh"

namespace szp::archive {

inline constexpr std::uint32_t kMagic = 0x2B505A53;  // "SZP+"
/// Format v2: the original four workflows (tags ≤ kRans).  Archives that
/// use them keep writing v2 so every pre-codec-tier archive and golden
/// stays byte-identical in both directions.
inline constexpr std::uint16_t kVersion = 2;
/// Format v3: identical layout, but the workflow slot may carry the LZ
/// codec tags (kLz77/kLzh/kLzr).  Readers accept both versions; writers
/// emit the lowest version that can express the archive.
inline constexpr std::uint16_t kVersionCodec = 3;

/// The fixed-size leading header of an SZP+ archive (everything before the
/// predictor aux payload).
struct ArchiveHeader {
  Workflow workflow = Workflow::kHuffman;
  DType dtype = DType::kFloat32;
  Extents extents;
  double eb_abs = 0.0;          ///< kernel-side absolute bound
  std::uint32_t capacity = 0;   ///< quantizer capacity (histogram bins)
  PredictorKind predictor = PredictorKind::kLorenzo;
};

/// Serialize the header (magic, version, rank, workflow, dtype, extents,
/// bound, capacity, predictor — in that order, little-endian).
void write_header(ByteWriter& w, const ArchiveHeader& h);

/// Parse and validate the header, leaving the reader positioned at the
/// predictor aux payload.  Throws DecodeError on any inconsistency;
/// every field is validated before it is trusted.
[[nodiscard]] ArchiveHeader read_header(ByteReader& r);

/// Verify and strip the trailing CRC-32, returning the archive body.
[[nodiscard]] std::span<const std::uint8_t> checked_body(std::span<const std::uint8_t> archive);

/// Seal a finished archive body with its trailing CRC-32.
void append_crc32(std::vector<std::uint8_t>& bytes);

}  // namespace szp::archive
