#include "core/compressor.hh"

#include <cmath>
#include <stdexcept>

#include "core/archive.hh"
#include "core/error.hh"
#include "core/metrics.hh"
#include "core/pipeline/registry.hh"
#include "core/serialize.hh"
#include "sim/histogram.hh"
#include "sim/sparse.hh"
#include "sim/timer.hh"

namespace szp {

namespace {

/// Residual exactness precondition (DESIGN.md §7): prequantized magnitudes
/// must stay well inside qdiff_t so the 7-term 3-D Lorenzo combination
/// cannot overflow.
void validate_exactness(const ValueRange& range, double eb_abs) {
  const double max_abs = std::max(std::abs(range.min), std::abs(range.max));
  if (max_abs / (2.0 * eb_abs) >= static_cast<double>(1u << 27)) {
    throw std::invalid_argument(
        "Compressor: error bound too tight relative to the value magnitude "
        "(max|d|/2eb must be < 2^27 for exact integer reconstruction)");
  }
}

template <typename T>
Compressed compress_impl(const CompressConfig& cfg_, std::span<const T> data,
                         const Extents& ext, Workspace& ws) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("Compressor::compress: data must be non-empty and match extents");
  }
  if (ext.rank < 1 || ext.rank > 3) {
    throw std::invalid_argument("Compressor::compress: rank must be 1, 2, or 3");
  }
  cfg_.quant.validate();

  Compressed out;
  CompressStats& st = out.stats;
  st.original_bytes = data.size_bytes();

  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("Compressor::compress: data contains non-finite values");
  }
  // The kernels run with a slightly tightened bound so the user-visible
  // guarantee |d - d'| < eb holds *strictly* even when prequantization
  // rounds a midpoint (error exactly eb) and the output value rounds to T.
  const double ulp = std::is_same_v<T, float> ? 0x1p-22 : 0x1p-51;
  const double eb_user = cfg_.eb.resolve(range.span());
  const double margin = std::max(eb_user * 1e-6, range.max_abs() * ulp);
  if (margin >= 0.5 * eb_user) {
    throw std::invalid_argument(
        "Compressor::compress: error bound is at the limit of the element type's "
        "precision for this value magnitude");
  }
  st.eb_abs = eb_user;
  const double eb_kernel = eb_user - margin;
  validate_exactness(range, eb_kernel);

  const auto& registry = pipeline::StageRegistry::instance();

  // --- Prediction + quantization -----------------------------------------
  sim::Timer t;
  const pipeline::PredictStage& predictor = registry.predict(cfg_.predictor);
  const pipeline::PredictProduct prod = predictor.construct(data, ext, eb_kernel, cfg_, ws);
  st.pipeline.add({predictor.construct_stage(), st.original_bytes, t.seconds(), prod.cost});

  // --- Gather outliers (dense -> sparse) --------------------------------
  t.reset();
  sim::KernelCost gather_c;
  {
    sim::traffic::Scope gather_scope;  // contract-derived volumes
    sim::dense_to_sparse_into(prod.outlier_dense, ws.outliers, ws.gather_tile_nnz,
                              ws.gather_offsets);
    gather_c = sim::gather_cost(data.size(), sizeof(qdiff_t), ws.outliers.nnz(),
                                sizeof(std::uint64_t));
    gather_scope.apply(gather_c);
  }
  st.outlier_count = ws.outliers.nnz();
  st.pipeline.add({"gather_outlier", st.original_bytes, t.seconds(), gather_c});

  // --- Histogram ---------------------------------------------------------
  t.reset();
  sim::KernelCost hist_c;
  {
    sim::traffic::Scope hist_scope;  // contract-derived volumes
    sim::device_histogram_into(prod.quant, cfg_.quant.capacity, ws.freq, ws.hist_priv);
    hist_c = sim::histogram_cost(data.size(), sizeof(quant_t), cfg_.quant.capacity);
    hist_scope.apply(hist_c);
  }
  st.pipeline.add({"histogram", st.original_bytes, t.seconds(), hist_c});

  // --- Workflow selection -------------------------------------------------
  Workflow wf = cfg_.workflow;
  st.decision = select_workflow(ws.freq, sizeof(T), cfg_.selector);
  if (wf == Workflow::kAuto) wf = st.decision.workflow;
  st.workflow_used = wf;
  if (wf == Workflow::kAuto) {
    throw std::logic_error("Compressor::compress: unresolved kAuto workflow");
  }

  // --- Header + predictor aux payload -------------------------------------
  ByteWriter w;
  archive::write_header(
      w, {wf, std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64, ext, eb_kernel,
          cfg_.quant.capacity, cfg_.predictor});
  predictor.write_aux(w, ws);

  // --- Outlier section ----------------------------------------------------
  w.put_vector(ws.outliers.indices);
  w.put_vector(ws.outliers.values);

  // --- Quant-code payload --------------------------------------------------
  const pipeline::EncodeContext ectx{cfg_, ws.freq, st.original_bytes};
  registry.codec(wf).encode(prod.quant, ectx, ws, w, st.pipeline);

  out.bytes = w.take();
  // Trailing integrity checksum over everything above.
  archive::append_crc32(out.bytes);
  st.compressed_bytes = out.bytes.size();
  st.ratio = compression_ratio(st.original_bytes, st.compressed_bytes);
  return out;
}

}  // namespace

Compressed Compressor::compress(std::span<const float> data, const Extents& ext) const {
  auto lease = pool_.acquire();
  return compress_impl(cfg_, data, ext, *lease);
}

Compressed Compressor::compress(std::span<const double> data, const Extents& ext) const {
  auto lease = pool_.acquire();
  return compress_impl(cfg_, data, ext, *lease);
}

Compressed Compressor::compress(std::span<const float> data, const Extents& ext,
                                const CompressConfig& cfg) const {
  auto lease = pool_.acquire();
  return compress_impl(cfg, data, ext, *lease);
}

Compressed Compressor::compress(std::span<const double> data, const Extents& ext,
                                const CompressConfig& cfg) const {
  auto lease = pool_.acquire();
  return compress_impl(cfg, data, ext, *lease);
}

Compressed Compressor::compress(std::span<const float> data, const Extents& ext,
                                const CompressConfig& cfg, Workspace& ws) const {
  return compress_impl(cfg, data, ext, ws);
}

Compressed Compressor::compress(std::span<const double> data, const Extents& ext,
                                const CompressConfig& cfg, Workspace& ws) const {
  return compress_impl(cfg, data, ext, ws);
}

Compressor::ArchiveInfo Compressor::inspect(std::span<const std::uint8_t> archive) {
  return decode_guard("szp archive", [&] {
    ByteReader r(archive::checked_body(archive));
    const archive::ArchiveHeader h = archive::read_header(r);
    ArchiveInfo info;
    info.workflow = h.workflow;
    info.dtype = h.dtype;
    info.extents = h.extents;
    info.eb_abs = h.eb_abs;
    info.capacity = h.capacity;
    info.predictor = h.predictor;
    return info;
  });
}

Decompressed Compressor::decompress(std::span<const std::uint8_t> archive,
                                    const ReconstructConfig& recon) {
  return decode_guard("szp archive", [&] {
    ByteReader r(archive::checked_body(archive));
    const archive::ArchiveHeader h = archive::read_header(r);
    const auto& registry = pipeline::StageRegistry::instance();
    const pipeline::PredictStage& predictor = registry.predict(h.predictor);

    pipeline::PredictorAux aux;
    predictor.read_aux(r, aux);

    const std::size_t n = h.extents.count();
    const std::size_t payload_bytes =
        n * (h.dtype == DType::kFloat32 ? sizeof(float) : sizeof(double));

    sim::SparseVector<qdiff_t> outliers;
    r.set_segment("outliers");
    outliers.indices = r.get_vector<std::uint64_t>();
    outliers.values = r.get_vector<qdiff_t>();
    if (outliers.indices.size() != outliers.values.size()) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                        "index/value stream size mismatch (" +
                            std::to_string(outliers.indices.size()) + " vs " +
                            std::to_string(outliers.values.size()) + ")");
    }
    // Every outlier index feeds a scatter write; validate against the element
    // count so a corrupt index cannot write outside the output buffer.
    for (const auto idx : outliers.indices) {
      if (idx >= n) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                          "outlier index " + std::to_string(idx) + " outside the " +
                              std::to_string(n) + "-element grid");
      }
    }

    Decompressed out;
    out.extents = h.extents;
    out.dtype = h.dtype;

    // --- Decode quant-codes -------------------------------------------------
    r.set_segment("quant-codes");
    const pipeline::DecodeContext dctx{n, payload_bytes};
    // The codec fills exactly n symbols or throws; n was validated by
    // read_header before this allocation.
    std::vector<quant_t> quant(n);
    registry.codec(h.workflow).decode(r, dctx, quant, out.pipeline);

    // --- Scatter outliers + predictor reconstruction ------------------------
    const QuantConfig qcfg{h.capacity};
    predictor.reconstruct(quant, outliers, aux, h.extents, h.eb_abs, qcfg, recon,
                          payload_bytes, out);
    return out;
  });
}

}  // namespace szp
