#include "core/compressor.hh"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/checksum.hh"
#include "core/error.hh"
#include "core/huffman/codec.hh"
#include "core/predictor/interpolation.hh"
#include "core/predictor/regression.hh"
#include "core/metrics.hh"
#include "core/rle/rle.hh"
#include "core/rans.hh"
#include "core/serialize.hh"
#include "sim/histogram.hh"
#include "sim/sparse.hh"
#include "sim/timer.hh"

namespace szp {

namespace {

constexpr std::uint32_t kMagic = 0x2B505A53;  // "SZP+"
constexpr std::uint16_t kVersion = 2;

void write_huffman_section(ByteWriter& w, const HuffmanCodebook& book,
                           const HuffmanEncoded& enc) {
  book.serialize(w);
  w.put<std::uint64_t>(enc.num_symbols);
  w.put<std::uint32_t>(enc.chunk_size);
  w.put<std::uint32_t>(enc.gap_stride);
  w.put_vector(enc.chunk_offsets);
  if (enc.gap_stride > 0) w.put_vector(enc.gaps);
  w.put_vector(enc.payload);
}

struct HuffmanSection {
  HuffmanCodebook book;
  HuffmanEncoded enc;
};

HuffmanSection read_huffman_section(ByteReader& r) {
  HuffmanSection s;
  s.book = HuffmanCodebook::deserialize(r);
  r.set_segment("huffman stream");
  s.enc.num_symbols = r.get<std::uint64_t>();
  s.enc.chunk_size = r.get<std::uint32_t>();
  s.enc.gap_stride = r.get<std::uint32_t>();
  s.enc.chunk_offsets = r.get_vector<std::uint64_t>();
  if (s.enc.gap_stride > 0) s.enc.gaps = r.get_vector<std::uint32_t>();
  s.enc.payload = r.get_vector<std::uint8_t>();
  return s;
}

/// Residual exactness precondition (DESIGN.md §7): prequantized magnitudes
/// must stay well inside qdiff_t so the 7-term 3-D Lorenzo combination
/// cannot overflow.
void validate_exactness(const ValueRange& range, double eb_abs) {
  const double max_abs = std::max(std::abs(range.min), std::abs(range.max));
  if (max_abs / (2.0 * eb_abs) >= static_cast<double>(1u << 27)) {
    throw std::invalid_argument(
        "Compressor: error bound too tight relative to the value magnitude "
        "(max|d|/2eb must be < 2^27 for exact integer reconstruction)");
  }
}

template <typename T>
Compressed compress_impl(const CompressConfig& cfg_, std::span<const T> data,
                         const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("Compressor::compress: data must be non-empty and match extents");
  }
  if (ext.rank < 1 || ext.rank > 3) {
    throw std::invalid_argument("Compressor::compress: rank must be 1, 2, or 3");
  }
  cfg_.quant.validate();

  Compressed out;
  CompressStats& st = out.stats;
  st.original_bytes = data.size_bytes();

  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("Compressor::compress: data contains non-finite values");
  }
  // The kernels run with a slightly tightened bound so the user-visible
  // guarantee |d - d'| < eb holds *strictly* even when prequantization
  // rounds a midpoint (error exactly eb) and the output value rounds to T.
  const double ulp = std::is_same_v<T, float> ? 0x1p-22 : 0x1p-51;
  const double eb_user = cfg_.eb.resolve(range.span());
  const double margin = std::max(eb_user * 1e-6, range.max_abs() * ulp);
  if (margin >= 0.5 * eb_user) {
    throw std::invalid_argument(
        "Compressor::compress: error bound is at the limit of the element type's "
        "precision for this value magnitude");
  }
  st.eb_abs = eb_user;
  const double eb_kernel = eb_user - margin;
  validate_exactness(range, eb_kernel);

  // --- Prediction + quantization -----------------------------------------
  sim::Timer t;
  sim::device_vector<quant_t> quant_codes;
  sim::device_vector<qdiff_t> outlier_dense;
  std::vector<float> coefficients;  // regression coefficients / interp anchors
  int interp_level = 0;
  if (cfg_.predictor == PredictorKind::kLorenzo) {
    auto lorenzo = lorenzo_construct(data, ext, eb_kernel, cfg_.quant,
                                     OutlierScheme::kResidual, cfg_.construct_variant);
    quant_codes = std::move(lorenzo.quant);
    outlier_dense = std::move(lorenzo.outlier_dense);
    st.pipeline.add({"lorenzo_construct", st.original_bytes, t.seconds(), lorenzo.cost});
  } else if (cfg_.predictor == PredictorKind::kRegression) {
    auto reg = regression_construct(data, ext, eb_kernel, cfg_.quant);
    quant_codes = std::move(reg.quant);
    outlier_dense = std::move(reg.outlier_dense);
    coefficients = std::move(reg.coefficients);
    st.pipeline.add({"regression_construct", st.original_bytes, t.seconds(), reg.cost});
  } else {
    auto itp = interpolation_construct(data, ext, eb_kernel, cfg_.quant);
    quant_codes = std::move(itp.quant);
    outlier_dense = std::move(itp.outlier_dense);
    coefficients = std::move(itp.anchors);  // reuse the aux-payload slot
    interp_level = itp.level;
    st.pipeline.add({"interpolation_construct", st.original_bytes, t.seconds(), itp.cost});
  }

  // --- Gather outliers (dense -> sparse) --------------------------------
  t.reset();
  auto outliers = sim::dense_to_sparse<qdiff_t>(
      std::span<const qdiff_t>(outlier_dense.data(), outlier_dense.size()));
  st.outlier_count = outliers.nnz();
  st.pipeline.add({"gather_outlier", st.original_bytes, t.seconds(),
                   sim::gather_cost(data.size(), sizeof(qdiff_t), outliers.nnz(),
                                    sizeof(std::uint64_t))});

  // --- Histogram ---------------------------------------------------------
  t.reset();
  const auto freq = sim::device_histogram<quant_t>(
      std::span<const quant_t>(quant_codes.data(), quant_codes.size()),
      cfg_.quant.capacity);
  st.pipeline.add({"histogram", st.original_bytes, t.seconds(),
                   sim::histogram_cost(data.size(), sizeof(quant_t), cfg_.quant.capacity)});

  // --- Workflow selection -------------------------------------------------
  Workflow wf = cfg_.workflow;
  st.decision = select_workflow(freq, sizeof(T), cfg_.selector);
  if (wf == Workflow::kAuto) wf = st.decision.workflow;
  st.workflow_used = wf;

  // --- Header -------------------------------------------------------------
  ByteWriter w;
  w.put(kMagic);
  w.put(kVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(wf));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(
      std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<double>(eb_kernel);
  w.put<std::uint32_t>(cfg_.quant.capacity);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg_.predictor));
  if (cfg_.predictor == PredictorKind::kRegression) {
    w.put_vector(coefficients);
  } else if (cfg_.predictor == PredictorKind::kInterpolation) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(interp_level));
    w.put_vector(coefficients);
  }

  // --- Outlier section ----------------------------------------------------
  w.put_vector(outliers.indices);
  w.put_vector(outliers.values);

  // --- Quant-code payload ---------------------------------------------------
  const std::span<const quant_t> quant(quant_codes.data(), quant_codes.size());
  switch (wf) {
    case Workflow::kHuffman: {
      t.reset();
      const auto book = HuffmanCodebook::build(freq);
      st.pipeline.add({"huffman_book", st.original_bytes, t.seconds(), book.build_cost()});
      t.reset();
      const auto enc = huffman_encode(quant, book, cfg_.huffman_chunk,
                                      HuffmanEncVariant::kOptimized, cfg_.huffman_gap_stride);
      st.pipeline.add({"huffman_encode", st.original_bytes, t.seconds(), enc.cost});
      write_huffman_section(w, book, enc);
      break;
    }
    case Workflow::kRle: {
      t.reset();
      const auto rle = rle_encode(quant);
      st.pipeline.add({"rle_encode", st.original_bytes, t.seconds(), rle.cost});
      w.put<std::uint64_t>(rle.num_symbols);
      w.put_vector(rle.values);
      w.put_vector(rle.counts);
      break;
    }
    case Workflow::kRleVle: {
      t.reset();
      const auto rle = rle_encode(quant);
      st.pipeline.add({"rle_encode", st.original_bytes, t.seconds(), rle.cost});
      t.reset();
      // VLE over both run streams (values and lengths), each with its own
      // codebook built from its own histogram.
      const auto vfreq = sim::device_histogram<quant_t>(
          std::span<const quant_t>(rle.values.data(), rle.values.size()), cfg_.quant.capacity);
      const auto vbook = HuffmanCodebook::build(vfreq);
      const auto venc = huffman_encode(rle.values, vbook, cfg_.huffman_chunk);
      const auto cfreq = sim::device_histogram<std::uint16_t>(
          std::span<const std::uint16_t>(rle.counts.data(), rle.counts.size()), 65536);
      const auto cbook = HuffmanCodebook::build(cfreq);
      const auto cenc = huffman_encode(
          std::span<const quant_t>(rle.counts.data(), rle.counts.size()), cbook,
          cfg_.huffman_chunk);
      sim::KernelCost vle_cost = venc.cost;
      vle_cost += cenc.cost;
      st.pipeline.add({"rle_vle", st.original_bytes, t.seconds(), vle_cost});
      w.put<std::uint64_t>(rle.num_symbols);
      write_huffman_section(w, vbook, venc);
      write_huffman_section(w, cbook, cenc);
      break;
    }
    case Workflow::kRans: {
      t.reset();
      const auto model = RansModel::build(freq);
      const auto enc = rans_encode(
          std::span<const std::uint16_t>(quant.data(), quant.size()), model);
      sim::KernelCost cost;
      cost.bytes_read = quant.size_bytes();
      cost.bytes_written = enc.size();
      cost.flops = quant.size() * 20;  // div/mod state updates
      cost.parallel_items = quant.size();
      cost.pattern = sim::AccessPattern::kScattered;
      cost.custom_factor = 0.06;  // ANS is heavier per symbol than Huffman
      st.pipeline.add({"rans_encode", st.original_bytes, t.seconds(), cost});
      model.serialize(w);
      w.put<std::uint64_t>(quant.size());
      w.put_vector(enc);
      break;
    }
    case Workflow::kAuto:
      throw std::logic_error("Compressor::compress: unresolved kAuto workflow");
  }

  out.bytes = w.take();
  // Trailing integrity checksum over everything above.
  {
    const std::uint32_t crc = crc32(out.bytes);
    ByteWriter tail;
    tail.put(crc);
    const auto tail_bytes = tail.take();
    out.bytes.insert(out.bytes.end(), tail_bytes.begin(), tail_bytes.end());
  }
  st.compressed_bytes = out.bytes.size();
  st.ratio = compression_ratio(st.original_bytes, st.compressed_bytes);
  return out;
}

/// Verify and strip the trailing CRC-32.
std::span<const std::uint8_t> checked_body(std::span<const std::uint8_t> archive) {
  if (archive.size() < 4) {
    throw DecodeError(DecodeErrorKind::kTruncated, "archive",
                      "too small to hold the trailing checksum");
  }
  const auto body = archive.subspan(0, archive.size() - 4);
  std::uint32_t stored = 0;
  std::memcpy(&stored, archive.data() + archive.size() - 4, 4);
  if (crc32(body) != stored) {
    throw DecodeError(DecodeErrorKind::kChecksumMismatch, "archive",
                      "trailing CRC-32 does not match the archive body");
  }
  return body;
}

/// Shared header parse for inspect/decompress; leaves the reader positioned
/// at the predictor aux payload.
struct ParsedHeader {
  Workflow workflow;
  DType dtype;
  Extents extents;
  double eb_abs;
  std::uint32_t capacity;
  PredictorKind predictor;
};

ParsedHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an szp archive");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "archive version " + std::to_string(version) + ", expected " +
                          std::to_string(kVersion));
  }
  ParsedHeader h;
  h.extents.rank = r.get<std::uint8_t>();
  const auto wf = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.eb_abs = r.get<double>();
  h.capacity = r.get<std::uint32_t>();
  const auto pred = r.get<std::uint8_t>();

  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  if (wf > static_cast<std::uint8_t>(Workflow::kRans) ||
      static_cast<Workflow>(wf) == Workflow::kAuto) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown workflow tag " + std::to_string(wf));
  }
  h.workflow = static_cast<Workflow>(wf);
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  if (!(h.eb_abs > 0.0) || !std::isfinite(h.eb_abs)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "error bound is not a finite positive value");
  }
  if (h.capacity < 2) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "quantizer capacity " + std::to_string(h.capacity) + " below 2");
  }
  if (pred > static_cast<std::uint8_t>(PredictorKind::kInterpolation)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown predictor tag " + std::to_string(pred));
  }
  h.predictor = static_cast<PredictorKind>(pred);
  return h;
}

}  // namespace

Compressed Compressor::compress(std::span<const float> data, const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

Compressed Compressor::compress(std::span<const double> data, const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

Compressor::ArchiveInfo Compressor::inspect(std::span<const std::uint8_t> archive) {
  return decode_guard("szp archive", [&] {
    ByteReader r(checked_body(archive));
    const ParsedHeader h = read_header(r);
    ArchiveInfo info;
    info.workflow = h.workflow;
    info.dtype = h.dtype;
    info.extents = h.extents;
    info.eb_abs = h.eb_abs;
    info.capacity = h.capacity;
    info.predictor = h.predictor;
    return info;
  });
}

Decompressed Compressor::decompress(std::span<const std::uint8_t> archive,
                                    const ReconstructConfig& recon) {
  return decode_guard("szp archive", [&] {
  ByteReader r(checked_body(archive));
  const ParsedHeader h = read_header(r);
  const Workflow wf = h.workflow;
  const DType dtype = h.dtype;
  const Extents ext = h.extents;
  const double eb_abs = h.eb_abs;
  const std::uint32_t capacity = h.capacity;
  const PredictorKind predictor = h.predictor;
  std::vector<float> coefficients;
  int interp_level = 0;
  if (predictor == PredictorKind::kRegression) {
    r.set_segment("coefficients");
    coefficients = r.get_vector<float>();
  } else if (predictor == PredictorKind::kInterpolation) {
    r.set_segment("coefficients");
    interp_level = r.get<std::uint8_t>();
    coefficients = r.get_vector<float>();
  }
  const auto radius = static_cast<std::int32_t>(capacity / 2);
  const std::size_t n = ext.count();
  const std::size_t payload_bytes =
      n * (dtype == DType::kFloat32 ? sizeof(float) : sizeof(double));

  sim::SparseVector<qdiff_t> outliers;
  r.set_segment("outliers");
  outliers.indices = r.get_vector<std::uint64_t>();
  outliers.values = r.get_vector<qdiff_t>();
  if (outliers.indices.size() != outliers.values.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                      "index/value stream size mismatch (" +
                          std::to_string(outliers.indices.size()) + " vs " +
                          std::to_string(outliers.values.size()) + ")");
  }
  // Every outlier index feeds a scatter write; validate against the element
  // count so a corrupt index cannot write outside the output buffer.
  for (const auto idx : outliers.indices) {
    if (idx >= n) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                        "outlier index " + std::to_string(idx) + " outside the " +
                            std::to_string(n) + "-element grid");
    }
  }

  Decompressed out;
  out.extents = ext;
  out.dtype = dtype;

  // --- Decode quant-codes ---------------------------------------------------
  sim::Timer t;
  r.set_segment("quant-codes");
  std::vector<quant_t> quant;
  switch (wf) {
    case Workflow::kHuffman: {
      auto s = read_huffman_section(r);
      auto dec = huffman_decode(s.enc, s.book);
      quant = std::move(dec.symbols);
      out.pipeline.add({"huffman_decode", payload_bytes, t.seconds(), dec.cost});
      break;
    }
    case Workflow::kRle: {
      RleEncoded rle;
      rle.num_symbols = r.get<std::uint64_t>();
      rle.values = r.get_vector<quant_t>();
      rle.counts = r.get_vector<std::uint16_t>();
      auto dec = rle_decode(rle);
      quant = std::move(dec.symbols);
      out.pipeline.add({"rle_decode", payload_bytes, t.seconds(), dec.cost});
      break;
    }
    case Workflow::kRleVle: {
      RleEncoded rle;
      rle.num_symbols = r.get<std::uint64_t>();
      auto vs = read_huffman_section(r);
      auto cs = read_huffman_section(r);
      auto vdec = huffman_decode(vs.enc, vs.book);
      auto cdec = huffman_decode(cs.enc, cs.book);
      rle.values = std::move(vdec.symbols);
      rle.counts.assign(cdec.symbols.begin(), cdec.symbols.end());
      auto dec = rle_decode(rle);
      quant = std::move(dec.symbols);
      sim::KernelCost cost = vdec.cost;
      cost += cdec.cost;
      cost += dec.cost;
      out.pipeline.add({"rle_vle_decode", payload_bytes, t.seconds(), cost});
      break;
    }
    case Workflow::kRans: {
      const auto model = RansModel::deserialize(r);
      r.set_segment("quant-codes");
      const auto count = r.get<std::uint64_t>();
      if (count != n) {
        // Checked before rans_decode so a spliced count cannot drive the
        // symbol-buffer allocation past the grid size.
        throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                          "rans symbol count " + std::to_string(count) +
                              " does not match the " + std::to_string(n) + "-element grid");
      }
      const auto enc = r.get_vector<std::uint8_t>();
      const auto syms = rans_decode(enc, count, model);
      quant.assign(syms.begin(), syms.end());
      sim::KernelCost cost;
      cost.bytes_read = enc.size();
      cost.bytes_written = count * sizeof(quant_t);
      cost.flops = count * 450;  // serial state chain, like Huffman decode
      cost.parallel_items = count;
      cost.pattern = sim::AccessPattern::kCoalescedStreaming;
      out.pipeline.add({"rans_decode", payload_bytes, t.seconds(), cost});
      break;
    }
    case Workflow::kAuto:
      throw std::logic_error("Compressor::decompress: kAuto survived header validation");
  }
  if (quant.size() != n) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                      "decoded " + std::to_string(quant.size()) + " symbols, the grid holds " +
                          std::to_string(n));
  }

  const QuantConfig qcfg{capacity};

  // --- Regression/interpolation paths: dense outliers, direct rebuild ------
  if (predictor != PredictorKind::kLorenzo) {
    t.reset();
    std::vector<qdiff_t> outlier_dense(n, 0);
    sim::scatter_add(outliers, std::span<qdiff_t>(outlier_dense));
    out.pipeline.add({"scatter_outlier", payload_bytes, t.seconds(),
                      sim::scatter_cost(outliers.nnz(), sizeof(qdiff_t),
                                        sizeof(std::uint64_t))});
    t.reset();
    sim::KernelCost recon_cost;
    const bool reg = predictor == PredictorKind::kRegression;
    if (dtype == DType::kFloat32) {
      out.data.resize(n);
      recon_cost = reg ? regression_reconstruct<float>(quant, outlier_dense, coefficients,
                                                       ext, eb_abs, qcfg, out.data)
                       : interpolation_reconstruct<float>(quant, outlier_dense, coefficients,
                                                          interp_level, true, ext, eb_abs,
                                                          qcfg, out.data);
    } else {
      out.data_f64.resize(n);
      recon_cost = reg ? regression_reconstruct<double>(quant, outlier_dense, coefficients,
                                                        ext, eb_abs, qcfg, out.data_f64)
                       : interpolation_reconstruct<double>(quant, outlier_dense, coefficients,
                                                           interp_level, true, ext, eb_abs,
                                                           qcfg, out.data_f64);
    }
    out.pipeline.add({reg ? "regression_reconstruct" : "interpolation_reconstruct",
                      payload_bytes, t.seconds(), recon_cost});
    return out;
  }

  // --- Fuse quant ⊕ outlier (Algorithm 1 line 9) ---------------------------
  t.reset();
  std::vector<qdiff_t> qprime(n);
  fuse_quant_codes(quant, radius, qprime);
  sim::scatter_add(outliers, std::span<qdiff_t>(qprime));
  // Combined cost assembled by hand: the streaming fuse dominates the
  // traffic; the sparse scatter rides along (outliers are rare), so the
  // stage keeps the streaming access profile.
  sim::KernelCost fuse_cost;
  fuse_cost.bytes_read = n * sizeof(quant_t) + outliers.nnz() * 16;
  fuse_cost.bytes_written = n * sizeof(qdiff_t) + outliers.nnz() * sizeof(qdiff_t);
  fuse_cost.flops = n + outliers.nnz();
  fuse_cost.parallel_items = n;
  fuse_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  fuse_cost.launches = 2;
  out.pipeline.add({"scatter_outlier", payload_bytes, t.seconds(), fuse_cost});

  // --- Partial-sum Lorenzo reconstruction ----------------------------------
  t.reset();
  sim::KernelCost recon_cost;
  if (dtype == DType::kFloat32) {
    out.data.resize(n);
    recon_cost = lorenzo_reconstruct_fused<float>(qprime, ext, eb_abs, out.data, recon);
  } else {
    out.data_f64.resize(n);
    recon_cost = lorenzo_reconstruct_fused<double>(qprime, ext, eb_abs, out.data_f64, recon);
  }
  out.pipeline.add({"lorenzo_reconstruct", payload_bytes, t.seconds(), recon_cost});
  return out;
  });
}

}  // namespace szp
