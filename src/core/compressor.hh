// szp — the public compression API (the paper's Fig 1 cuSZ+ pipeline).
//
// Compression:  prequant+predict construct → gather outliers → histogram →
//               [selector] → {Huffman | RLE [+VLE] | rANS} encode
// Decompression: decode quant-codes → scatter outliers →
//               predictor reconstruction → scale by 2eb.
//
// The Compressor itself is thin: it validates inputs, resolves the error
// bound, and assembles the pipeline by StageRegistry lookup
// (core/pipeline/) around the shared archive framing (core/archive.hh).
// Per-call scratch comes from a reusable WorkspacePool (core/workspace.hh),
// so a reused Compressor performs zero steady-state allocations in the
// compression hot path.
//
// Every stage is timed on the host and carries an analytic KernelCost so
// benches can print both measured-CPU and modeled-V100/A100 throughputs
// (see DESIGN.md §2 for the substitution rationale).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analysis/selector.hh"
#include "core/eb.hh"
#include "core/predictor/lorenzo.hh"
#include "core/types.hh"
#include "core/workspace.hh"
#include "sim/profile.hh"

namespace szp {

/// Element type of the uncompressed field.  Doubles raise the Huffman CR
/// ceiling from 32x to 64x (paper §III) and permit error bounds below
/// float32 precision.
enum class DType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// Which prediction model transforms values into quant-codes.
enum class PredictorKind : std::uint8_t {
  kLorenzo = 0,     ///< first-order Lorenzo with dual quantization (default;
                    ///< decompression is the partial-sum kernel)
  kRegression = 1,  ///< per-chunk linear-regression planes (SZ2-style; the
                    ///< paper's future-work predictor — see
                    ///< predictor/regression.hh for the trade-offs)
  kInterpolation = 2,  ///< multi-level (cubic) interpolation (SZ3-style,
                       ///< the paper's reference [19]; see
                       ///< predictor/interpolation.hh)
};

struct CompressConfig {
  ErrorBound eb = ErrorBound::relative(1e-4);
  QuantConfig quant;
  Workflow workflow = Workflow::kAuto;
  SelectorConfig selector;
  std::uint32_t huffman_chunk = 4096;  ///< symbols per encode chunk
  /// When nonzero (must divide huffman_chunk), record a gap array so Huffman
  /// decoding parallelizes per sub-block of this many symbols — the
  /// fine-grained decoder of the paper's reference [15] (4 bytes metadata
  /// per sub-block).
  std::uint32_t huffman_gap_stride = 0;
  ConstructVariant construct_variant = ConstructVariant::kOptimized;
  PredictorKind predictor = PredictorKind::kLorenzo;
};

struct CompressStats {
  Workflow workflow_used = Workflow::kHuffman;
  double eb_abs = 0.0;
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
  std::size_t outlier_count = 0;
  WorkflowDecision decision;        ///< selector evidence (valid when consulted)
  sim::PipelineReport pipeline;     ///< per-stage timings and kernel costs
};

struct Compressed {
  std::vector<std::uint8_t> bytes;  ///< self-describing archive
  CompressStats stats;
};

struct Decompressed {
  DType dtype = DType::kFloat32;
  std::vector<float> data;        ///< filled when dtype == kFloat32
  std::vector<double> data_f64;   ///< filled when dtype == kFloat64
  Extents extents;
  sim::PipelineReport pipeline;
};

/// Error-bounded lossy compressor (cuSZ+).  Holds only its configuration
/// plus a pool of reusable workspaces; safe to reuse across fields (and
/// worth it: a reused Compressor compresses without steady-state
/// allocations).  Copying copies the configuration only — the copy starts
/// with a cold pool.
class Compressor {
 public:
  Compressor() = default;
  explicit Compressor(CompressConfig cfg) : cfg_(std::move(cfg)) {}
  Compressor(const Compressor& other) : cfg_(other.cfg_) {}
  Compressor& operator=(const Compressor& other) {
    cfg_ = other.cfg_;
    return *this;
  }

  [[nodiscard]] const CompressConfig& config() const { return cfg_; }

  /// Compress one field (float32 or float64).  Throws std::invalid_argument
  /// on empty/mismatched input, non-finite data, or an error bound too
  /// tight for exact integer residual arithmetic (max|d|/2eb must stay
  /// below 2^27).
  [[nodiscard]] Compressed compress(std::span<const float> data, const Extents& ext) const;
  [[nodiscard]] Compressed compress(std::span<const double> data, const Extents& ext) const;

  /// Compress with a per-call config override (e.g. the streaming layer's
  /// pre-resolved absolute bound), still reusing this Compressor's
  /// workspace pool.
  [[nodiscard]] Compressed compress(std::span<const float> data, const Extents& ext,
                                    const CompressConfig& cfg) const;
  [[nodiscard]] Compressed compress(std::span<const double> data, const Extents& ext,
                                    const CompressConfig& cfg) const;

  /// Compress through an explicitly supplied workspace (bypasses the pool).
  /// A long-lived worker — one slab-streaming thread compressing many slabs
  /// — leases once via lease_workspace() and passes the workspace here, so
  /// the pool mutex and per-lease capacity accounting are paid once per
  /// worker instead of once per slab.  The workspace must not be shared
  /// across concurrent calls.
  [[nodiscard]] Compressed compress(std::span<const float> data, const Extents& ext,
                                    const CompressConfig& cfg, Workspace& ws) const;
  [[nodiscard]] Compressed compress(std::span<const double> data, const Extents& ext,
                                    const CompressConfig& cfg, Workspace& ws) const;

  /// Exclusive RAII lease on one of this Compressor's pooled workspaces,
  /// for use with the explicit-workspace compress overloads.
  [[nodiscard]] WorkspaceLease lease_workspace() const { return pool_.acquire(); }

  template <typename T, typename Alloc>
  [[nodiscard]] Compressed compress(const std::vector<T, Alloc>& data, const Extents& ext) const {
    return compress(std::span<const T>(data.data(), data.size()), ext);
  }

  /// Decompress an archive produced by compress().  `recon` selects the
  /// reconstruction kernel variant (Table II ablation); the default is the
  /// optimized partial-sum kernel.
  [[nodiscard]] static Decompressed decompress(std::span<const std::uint8_t> archive,
                                               const ReconstructConfig& recon = {});

  /// Parse an archive's header without decompressing the payload.
  struct ArchiveInfo {
    Extents extents;
    DType dtype = DType::kFloat32;
    Workflow workflow = Workflow::kHuffman;
    PredictorKind predictor = PredictorKind::kLorenzo;
    double eb_abs = 0.0;
    std::uint32_t capacity = 0;
  };
  [[nodiscard]] static ArchiveInfo inspect(std::span<const std::uint8_t> archive);

  /// Pool accounting for this Compressor's workspaces (allocation tests and
  /// the reuse bench read `created` / `grow_events`).
  [[nodiscard]] WorkspacePool::Stats workspace_stats() const { return pool_.stats(); }

 private:
  CompressConfig cfg_{};
  /// compress() is logically const; the pool is bookkeeping, not state.
  mutable WorkspacePool pool_;
};

}  // namespace szp
