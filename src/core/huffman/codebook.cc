#include "core/huffman/codebook.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace szp {

namespace {

struct Node {
  std::uint64_t weight;
  std::uint32_t order;  // tie-break for determinism
  std::int32_t left = -1, right = -1;
  std::int32_t symbol = -1;  // leaf only
};

}  // namespace

HuffmanCodebook HuffmanCodebook::build(std::span<const std::uint64_t> freq) {
  if (freq.empty() || freq.size() > 65536) {
    throw std::invalid_argument("HuffmanCodebook: alphabet size must be in [1, 65536]");
  }
  HuffmanCodebook cb;
  cb.lengths_.assign(freq.size(), 0);
  cb.codes_.assign(freq.size(), 0);

  std::vector<Node> nodes;
  nodes.reserve(2 * freq.size());
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], static_cast<std::uint32_t>(nodes.size()), -1, -1,
                       static_cast<std::int32_t>(s)});
    }
  }

  if (nodes.empty()) {
    cb.max_len_ = 0;
    cb.assign_canonical_codes();
    return cb;
  }
  if (nodes.size() == 1) {
    cb.lengths_[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    cb.max_len_ = 1;
    cb.assign_canonical_codes();
    return cb;
  }

  // Standard heap-based tree build (the single-GPU-thread procedure of cuSZ).
  const auto cmp = [&nodes](std::int32_t a, std::int32_t b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    if (nodes[sa].weight != nodes[sb].weight) return nodes[sa].weight > nodes[sb].weight;
    return nodes[sa].order > nodes[sb].order;
  };
  std::priority_queue<std::int32_t, std::vector<std::int32_t>, decltype(cmp)> heap(cmp);
  for (std::size_t i = 0; i < nodes.size(); ++i) heap.push(static_cast<std::int32_t>(i));

  while (heap.size() > 1) {
    const std::int32_t a = heap.top();
    heap.pop();
    const std::int32_t b = heap.top();
    heap.pop();
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    nodes.push_back({nodes[sa].weight + nodes[sb].weight,
                     static_cast<std::uint32_t>(nodes.size()), a, b, -1});
    heap.push(static_cast<std::int32_t>(nodes.size() - 1));
  }

  // Depth-first length assignment (iterative to bound stack depth).
  std::vector<std::pair<std::int32_t, unsigned>> stack{{heap.top(), 0}};
  unsigned max_len = 0;
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(idx)];
    if (nd.symbol >= 0) {
      const unsigned len = depth == 0 ? 1 : depth;  // root-as-leaf safety
      if (len > kMaxCodeLen) {
        throw std::runtime_error("HuffmanCodebook: code length exceeds 63 bits");
      }
      cb.lengths_[static_cast<std::size_t>(nd.symbol)] = static_cast<std::uint8_t>(len);
      max_len = std::max(max_len, len);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  cb.max_len_ = max_len;
  cb.assign_canonical_codes();
  return cb;
}

void HuffmanCodebook::assign_canonical_codes() {
  first_code_.fill(0);
  first_index_.fill(0);
  count_.fill(0);
  sorted_symbols_.clear();

  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) ++count_[lengths_[s]];
  }

  // Canonical numbering: codes of each length start where the previous
  // length's codes end, left-shifted.
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
  }

  sorted_symbols_.resize(index);
  std::array<std::uint32_t, kMaxCodeLen + 1> next{};
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    const std::uint32_t pos = first_index_[len] + next[len];
    sorted_symbols_[pos] = static_cast<std::uint32_t>(s);
    codes_[s] = first_code_[len] + next[len];
    ++next[len];
  }
}

double HuffmanCodebook::average_bits(std::span<const std::uint64_t> freq) const {
  if (freq.size() != lengths_.size()) {
    throw std::invalid_argument("HuffmanCodebook::average_bits: frequency size mismatch");
  }
  std::uint64_t total = 0, bits = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    total += freq[s];
    bits += freq[s] * lengths_[s];
  }
  return total > 0 ? static_cast<double>(bits) / static_cast<double>(total) : 0.0;
}

sim::KernelCost HuffmanCodebook::build_cost() const {
  // One GPU thread builds the tree (paper §I): pure latency, no parallelism.
  sim::KernelCost c;
  const auto cap = static_cast<std::uint64_t>(lengths_.size());
  c.bytes_read = cap * sizeof(std::uint64_t);
  c.bytes_written = cap * (sizeof(std::uint64_t) + 1);
  c.flops = cap * 64;  // heap operations
  c.parallel_items = 1;
  c.pattern = sim::AccessPattern::kStrided;
  // Serial build latency dominates; modeled as a fixed-launch burden
  // (~0.2 ms for a 1024-symbol book, consistent with Table VII's overall
  // compression throughput on the small CESM fields).
  c.launches = 40;
  return c;
}

void HuffmanCodebook::serialize(ByteWriter& w) const {
  // Sparse form: most alphabets (e.g. the 65536-entry run-length book) have
  // few live symbols, so (symbol, length) pairs beat a dense lengths array.
  w.put<std::uint32_t>(static_cast<std::uint32_t>(lengths_.size()));
  std::uint32_t live = 0;
  for (const auto l : lengths_) live += l > 0 ? 1u : 0u;
  w.put<std::uint32_t>(live);
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) {
      w.put<std::uint32_t>(static_cast<std::uint32_t>(s));
      w.put<std::uint8_t>(lengths_[s]);
    }
  }
}

HuffmanCodebook HuffmanCodebook::deserialize(ByteReader& r) {
  r.set_segment("codebook");
  HuffmanCodebook cb;
  const auto alphabet = r.get<std::uint32_t>();
  if (alphabet == 0 || alphabet > 65536) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "codebook",
                      "alphabet size " + std::to_string(alphabet) + " outside [1, 65536]");
  }
  cb.lengths_.assign(alphabet, 0);
  const auto live = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < live; ++i) {
    const auto sym = r.get<std::uint32_t>();
    const auto len = r.get<std::uint8_t>();
    if (sym >= alphabet || len == 0 || len > kMaxCodeLen || cb.lengths_[sym] != 0) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "codebook",
                        "corrupt symbol entry " + std::to_string(i) + " of " +
                            std::to_string(live));
    }
    cb.lengths_[sym] = len;
  }
  // Kraft inequality: a decodable prefix code satisfies sum(2^-len) <= 1.
  // An over-subscribed length set from a spliced stream would make canonical
  // code assignment ambiguous and decode silently wrong symbols.
  unsigned __int128 kraft = 0;
  for (const auto l : cb.lengths_) {
    if (l > 0) kraft += static_cast<unsigned __int128>(1) << (kMaxCodeLen - l);
  }
  if (kraft > static_cast<unsigned __int128>(1) << kMaxCodeLen) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "codebook",
                      "code lengths violate the Kraft inequality (over-subscribed code space)");
  }
  cb.codes_.assign(cb.lengths_.size(), 0);
  cb.max_len_ = 0;
  for (const auto l : cb.lengths_) cb.max_len_ = std::max<unsigned>(cb.max_len_, l);
  cb.assign_canonical_codes();
  return cb;
}

}  // namespace szp
