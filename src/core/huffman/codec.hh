// szp — chunked Huffman encoder/decoder (paper Steps 5-8: histogram →
// codebook → per-chunk encode → deflate/concatenate).
//
// Symbols are encoded in independent chunks of `chunk_size`; chunk output
// offsets come from a device-wide exclusive scan of the per-chunk encoded
// sizes (the "deflating" step).  Chunks start byte-aligned — at most 7 bits
// padding per 4096-symbol chunk (<0.03%), which keeps the concatenation a
// race-free parallel copy; this is the chunkwise metadata overhead the
// paper notes for CUSZ-VLE.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/huffman/codebook.hh"
#include "core/types.hh"
#include "sim/profile.hh"

namespace szp {

/// Which encoder the cost model attributes (Table VI's Huffman rows): the
/// cuSZ baseline stores full words per thread regardless of code length;
/// the optimized cuSZ+ encoder only stores when a unit fills, making store
/// traffic inversely proportional to compression ratio (paper §V-C.1).
enum class HuffmanEncVariant { kBaseline, kOptimized };

struct HuffmanEncoded {
  std::vector<std::uint8_t> payload;         ///< concatenated chunk bitstreams
  std::vector<std::uint64_t> chunk_offsets;  ///< byte offset per chunk, size nchunks+1
  std::uint64_t num_symbols = 0;
  std::uint32_t chunk_size = 4096;

  /// Gap array (the fine-grained decoding aid of Tian et al., IPDPS'21 —
  /// the paper's reference [15]): when gap_stride > 0, every chunk records
  /// the bit offset of each gap_stride-symbol sub-block, so decoding can
  /// parallelize at sub-block rather than chunk granularity at the cost of
  /// 4 bytes of metadata per sub-block.
  std::uint32_t gap_stride = 0;
  std::vector<std::uint32_t> gaps;  ///< per chunk: subblocks_per_chunk entries

  sim::KernelCost cost;  ///< encode + deflate kernels

  [[nodiscard]] std::size_t byte_size() const {
    return payload.size() + chunk_offsets.size() * sizeof(std::uint64_t) +
           gaps.size() * sizeof(std::uint32_t);
  }
};

/// Encode symbols with the codebook.  Parallel over chunks.  A nonzero
/// gap_stride (must divide chunk_size) additionally records the gap array.
[[nodiscard]] HuffmanEncoded huffman_encode(std::span<const quant_t> symbols,
                                            const HuffmanCodebook& book,
                                            std::uint32_t chunk_size = 4096,
                                            HuffmanEncVariant variant = HuffmanEncVariant::kOptimized,
                                            std::uint32_t gap_stride = 0);

/// Workspace-reuse variant: fills `enc` (and uses `chunk_bytes` as the
/// per-chunk size scratch) with capacity-preserving assigns, so repeated
/// calls at the same size allocate nothing (see core/workspace.hh).
void huffman_encode_into(std::span<const quant_t> symbols, const HuffmanCodebook& book,
                         std::uint32_t chunk_size, HuffmanEncVariant variant,
                         std::uint32_t gap_stride, HuffmanEncoded& enc,
                         std::vector<std::uint64_t>& chunk_bytes);

struct HuffmanDecoded {
  std::vector<quant_t> symbols;
  sim::KernelCost cost;
};

/// Decode all chunks (parallel over chunks, canonical table walk within).
/// When the encoding carries a gap array, decoding enters each sub-block at
/// its recorded bit offset instead, raising the decode parallelism from
/// one-per-chunk to one-per-sub-block.
[[nodiscard]] HuffmanDecoded huffman_decode(const HuffmanEncoded& enc,
                                            const HuffmanCodebook& book);

}  // namespace szp
