// szp — MSB-first bit stream I/O used by the Huffman codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hh"

namespace szp {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  /// Append the low `len` bits of `code`, most significant first.
  void put(std::uint64_t code, unsigned len) {
    for (unsigned i = len; i-- > 0;) {
      const unsigned bit = static_cast<unsigned>((code >> i) & 1u);
      if (fill_ == 0) buf_.push_back(0);
      buf_.back() = static_cast<std::uint8_t>(buf_.back() | (bit << (7 - fill_)));
      fill_ = (fill_ + 1) & 7;
    }
    bits_ += len;
  }

  [[nodiscard]] std::uint64_t bit_count() const { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  unsigned fill_ = 0;
  std::uint64_t bits_ = 0;
};

/// MSB-first bit writer over a caller-owned byte range, accumulating into a
/// 64-bit register and storing whole bytes.  Produces the same bytes as
/// BitWriter (trailing partial byte zero-padded) without growing a heap
/// buffer per chunk — the Huffman deflate kernel writes each chunk directly
/// into its scan-assigned slice of the pooled payload.  The caller sizes the
/// span from the phase-1 byte counts; flush() pads and stores the last
/// partial byte.
class SpanBitWriter {
 public:
  explicit SpanBitWriter(std::span<std::uint8_t> out) : out_(out) {}

  /// Append the low `len` bits of `code`, most significant first.
  void put(std::uint64_t code, unsigned len) {
    if (len > 56) {  // keep acc_ from overflowing: fill_ <= 7 after stores
      const unsigned hi = len - 56;
      put(code >> 56, hi);
      len = 56;
      code &= (std::uint64_t{1} << 56) - 1;
    }
    acc_ = (acc_ << len) | (len == 0 ? 0 : (code & (~std::uint64_t{0} >> (64 - len))));
    fill_ += len;
    bits_ += len;
    while (fill_ >= 8) {
      fill_ -= 8;
      out_[pos_++] = static_cast<std::uint8_t>(acc_ >> fill_);
    }
  }

  /// Store the trailing partial byte (zero-padded), as BitWriter does.
  void flush() {
    if (fill_ > 0) {
      out_[pos_++] = static_cast<std::uint8_t>(acc_ << (8 - fill_));
      fill_ = 0;
    }
  }

  [[nodiscard]] std::uint64_t bit_count() const { return bits_; }
  [[nodiscard]] std::size_t byte_count() const { return pos_; }

 private:
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
  std::uint64_t bits_ = 0;
};

/// MSB-first bit reader over a byte span, optionally starting mid-stream
/// (used by the gap-array decoder to enter a chunk at a recorded offset).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes, std::uint64_t start_bit = 0)
      : bytes_(bytes), pos_(start_bit) {}

  [[nodiscard]] unsigned get_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= bytes_.size()) {
      throw DecodeError(DecodeErrorKind::kTruncated, "bitstream",
                        "read past end of a " + std::to_string(bytes_.size()) + "-byte stream");
    }
    const unsigned bit = (bytes_[byte] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  [[nodiscard]] std::uint64_t bit_position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::uint64_t pos_ = 0;
};

}  // namespace szp
