// szp — MSB-first bit stream I/O used by the Huffman codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hh"

namespace szp {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  /// Append the low `len` bits of `code`, most significant first.
  void put(std::uint64_t code, unsigned len) {
    for (unsigned i = len; i-- > 0;) {
      const unsigned bit = static_cast<unsigned>((code >> i) & 1u);
      if (fill_ == 0) buf_.push_back(0);
      buf_.back() = static_cast<std::uint8_t>(buf_.back() | (bit << (7 - fill_)));
      fill_ = (fill_ + 1) & 7;
    }
    bits_ += len;
  }

  [[nodiscard]] std::uint64_t bit_count() const { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  unsigned fill_ = 0;
  std::uint64_t bits_ = 0;
};

/// MSB-first bit reader over a byte span, optionally starting mid-stream
/// (used by the gap-array decoder to enter a chunk at a recorded offset).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes, std::uint64_t start_bit = 0)
      : bytes_(bytes), pos_(start_bit) {}

  [[nodiscard]] unsigned get_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= bytes_.size()) {
      throw DecodeError(DecodeErrorKind::kTruncated, "bitstream",
                        "read past end of a " + std::to_string(bytes_.size()) + "-byte stream");
    }
    const unsigned bit = (bytes_[byte] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  [[nodiscard]] std::uint64_t bit_position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::uint64_t pos_ = 0;
};

}  // namespace szp
