#include "core/huffman/codec.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/huffman/bitio.hh"
#include "sim/check.hh"
#include "sim/device_scan.hh"
#include "sim/launch.hh"

namespace szp {

void huffman_encode_into(std::span<const quant_t> symbols, const HuffmanCodebook& book,
                         std::uint32_t chunk_size, HuffmanEncVariant variant,
                         std::uint32_t gap_stride, HuffmanEncoded& enc,
                         std::vector<std::uint64_t>& chunk_bytes) {
  if (chunk_size == 0) throw std::invalid_argument("huffman_encode: chunk_size must be > 0");
  if (gap_stride != 0 && chunk_size % gap_stride != 0) {
    throw std::invalid_argument("huffman_encode: gap_stride must divide chunk_size");
  }
  enc.cost = {};
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for enc.cost
  enc.num_symbols = symbols.size();
  enc.chunk_size = chunk_size;
  enc.gap_stride = gap_stride;

  const std::size_t n = symbols.size();
  const std::size_t nchunks = n == 0 ? 0 : sim::div_ceil(n, chunk_size);
  enc.chunk_offsets.assign(nchunks + 1, 0);
  const std::size_t subblocks_per_chunk = gap_stride > 0 ? chunk_size / gap_stride : 0;
  enc.gaps.assign(gap_stride > 0 ? nchunks * subblocks_per_chunk : 0, 0);
  if (n == 0) {
    enc.payload.clear();
    return;
  }

  // Phase 1: per-chunk encoded byte size (code lengths only; parallel).
  // Exceptions must not escape the parallel region, so uncodable symbols
  // are flagged and reported afterwards.
  // The bad_symbol flag is an intentionally shared atomic, so it stays
  // outside the checker's buffer registry (see DESIGN.md).
  chunk_bytes.assign(nchunks, 0);
  std::atomic<bool> bad_symbol{false};
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  const auto csz = static_cast<std::int64_t>(chunk_size);
  chk::launch("huffman_encode/chunk_sizes", nchunks,
              chk::bufs(chk::in(symbols, "symbols"),
                        chk::out(std::span<std::uint64_t>(chunk_bytes), "chunk_bytes")),
              ctr::contract(ctr::reads("symbols", ctr::b() * csz, csz).clamp(),
                            ctr::writes("chunk_bytes", ctr::b(), 1)),
              [&, n, chunk_size, gap_stride](std::size_t c, const auto& vsym,
                                             const auto& vbytes) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(lo + chunk_size, n);
    // Lane model (word-mode checking): each gap-stride sub-block of the
    // chunk is a cooperating thread summing its own symbols' code lengths
    // into a register; after the reduction barrier, thread 0 stores the
    // chunk's byte count.  Without a gap array the whole chunk is one lane.
    const std::size_t lane_stride = gap_stride > 0 ? gap_stride : chunk_size;
    std::uint64_t bits = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if ((i - lo) % lane_stride == 0) {
        chk::this_thread(static_cast<std::uint32_t>((i - lo) / lane_stride));
      }
      const unsigned len = book.length(vsym[i]);
      if (len == 0) {
        bad_symbol.store(true, std::memory_order_relaxed);
        return;
      }
      bits += len;
    }
    chk::barrier();
    chk::this_thread(0);
    vbytes[c] = (bits + 7) / 8;
  });
  if (bad_symbol.load()) {
    throw std::invalid_argument("huffman_encode: input contains a symbol with no code");
  }

  // Deflate step: exclusive scan of chunk sizes gives each chunk's offset.
  const std::uint64_t total = sim::device_exclusive_scan(
      std::span<const std::uint64_t>(chunk_bytes),
      std::span<std::uint64_t>(enc.chunk_offsets.data(), nchunks));
  enc.chunk_offsets[nchunks] = total;
  enc.payload.assign(total, 0);

  // Phase 2: each chunk writes its own byte range (race-free, parallel),
  // recording sub-block bit offsets when a gap array was requested.
  // The payload slice each chunk writes comes out of the offset scan — a
  // data-dependent footprint the affine prover cannot discharge, so the
  // deflate kernel honestly stays on dynamic (word-shadow) checking.
  ctr::Contract deflate_contract;
  deflate_contract.clauses.push_back(ctr::reads("symbols", ctr::b() * csz, csz).clamp());
  deflate_contract.clauses.push_back(ctr::reads("offsets", ctr::b(), 2));
  // The scan total is the exact payload volume — declare it as the dynamic
  // clause's upper bound so the traffic analyzer (and the checked cross-
  // validation of observed bytes) has a real ceiling instead of the whole
  // pre-sized buffer.
  deflate_contract.clauses.push_back(
      ctr::writes_dyn("payload", static_cast<std::int64_t>(total)));
  if (gap_stride > 0) {
    const auto spc = static_cast<std::int64_t>(subblocks_per_chunk);
    deflate_contract.clauses.push_back(ctr::writes("gaps", ctr::b() * spc, spc));
  }
  chk::launch("huffman_encode/deflate", nchunks,
              chk::bufs(chk::in(symbols, "symbols"),
                        chk::in(std::span<const std::uint64_t>(enc.chunk_offsets), "offsets"),
                        chk::out(std::span<std::uint8_t>(enc.payload), "payload"),
                        chk::out(std::span<std::uint32_t>(enc.gaps), "gaps")),
              deflate_contract,
              [&, n, chunk_size, gap_stride, subblocks_per_chunk](
                  std::size_t c, const auto& vsym, const auto& voffsets, const auto& vpayload,
                  const auto& vgaps) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(lo + chunk_size, n);
    // Write straight into this chunk's scan-assigned payload slice — no
    // per-chunk heap buffer, no copy; neighbors' slices stay disjoint.
    const auto off = static_cast<std::size_t>(voffsets[c]);
    const auto len = static_cast<std::size_t>(voffsets[c + 1]) - off;
    vpayload.note_write(off, len);
    SpanBitWriter bw(std::span<std::uint8_t>(vpayload.data() + off, len));
    for (std::size_t i = lo; i < hi; ++i) {
      if (gap_stride > 0 && (i - lo) % gap_stride == 0) {
        vgaps[c * subblocks_per_chunk + (i - lo) / gap_stride] =
            static_cast<std::uint32_t>(bw.bit_count());
      }
      bw.put(book.code(vsym[i]), book.length(vsym[i]));
    }
    bw.flush();
  });

  // Cost model (paper §V-C.1): traffic comes from the footprint contracts
  // (chunk_sizes + scan + deflate, including the scan-bounded payload
  // volume); the baseline variant additionally stores a full word per
  // thread before compaction, which no contract of the optimized kernels
  // models — add that delta on top of the derived stores.
  traffic_scope.apply(enc.cost);
  enc.cost.bytes_read += book.alphabet_size() * 9;
  if (variant == HuffmanEncVariant::kBaseline && n * sizeof(std::uint32_t) > total) {
    enc.cost.bytes_written += n * sizeof(std::uint32_t) - total;
  }
  enc.cost.flops = n * 8;
  enc.cost.parallel_items = n;
  enc.cost.pattern = sim::AccessPattern::kScattered;
  enc.cost.custom_factor = 0.09;  // calibrated to Table VI Huffman rows
}

HuffmanEncoded huffman_encode(std::span<const quant_t> symbols, const HuffmanCodebook& book,
                              std::uint32_t chunk_size, HuffmanEncVariant variant,
                              std::uint32_t gap_stride) {
  HuffmanEncoded enc;
  std::vector<std::uint64_t> chunk_bytes;
  huffman_encode_into(symbols, book, chunk_size, variant, gap_stride, enc, chunk_bytes);
  return enc;
}

HuffmanDecoded huffman_decode(const HuffmanEncoded& enc, const HuffmanCodebook& book) {
  HuffmanDecoded dec;
  const std::size_t n = enc.num_symbols;
  if (n == 0) {
    return dec;
  }
  // Metadata validation happens *before* the output allocation: every field
  // here may come from an untrusted archive.  Each encoded symbol costs at
  // least one payload bit, so num_symbols is bounded by the payload size —
  // this also keeps the div_ceil below from wrapping on a spliced count.
  if (n > enc.payload.size() * 8) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                      "symbol count " + std::to_string(n) + " exceeds the " +
                          std::to_string(enc.payload.size() * 8) + " payload bits");
  }
  if (enc.chunk_size == 0 ||
      enc.chunk_offsets.size() != sim::div_ceil(n, enc.chunk_size) + 1) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                      "inconsistent chunk metadata");
  }
  if (enc.gap_stride > 0 &&
      (enc.gap_stride > enc.chunk_size || enc.chunk_size % enc.gap_stride != 0)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                      "gap stride does not divide the chunk size");
  }
  // Validate offsets before the parallel region so no chunk can read out of
  // the payload's bounds.
  for (std::size_t c = 1; c < enc.chunk_offsets.size(); ++c) {
    if (enc.chunk_offsets[c] < enc.chunk_offsets[c - 1] ||
        enc.chunk_offsets[c] > enc.payload.size()) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                        "corrupt chunk offsets");
    }
  }

  const std::size_t nchunks = enc.chunk_offsets.size() - 1;
  const std::size_t subblocks_per_chunk =
      enc.gap_stride > 0 ? enc.chunk_size / enc.gap_stride : 1;
  if (enc.gap_stride > 0 && enc.gaps.size() != nchunks * subblocks_per_chunk) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                      "gap array size mismatch");
  }
  dec.symbols.resize(n);
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for dec.cost
  // Decode unit `u` covers symbols [u*stride, u*stride + stride) ∩ [0, n):
  // with chunk_size = subblocks_per_chunk * stride, the chunk/sub-block
  // decomposition collapses to one affine window per unit.  The payload
  // range each unit reads comes from the (data-dependent) offset table, so
  // that read is declared dynamic; reads never impede the disjointness
  // proof for the symbol writes.
  const auto stride64 = static_cast<std::int64_t>(
      enc.gap_stride > 0 ? enc.gap_stride : enc.chunk_size);
  ctr::Contract decode_contract;
  decode_contract.clauses.push_back(ctr::writes("symbols", ctr::b() * stride64, stride64).clamp());
  // Worst-case read volumes across the launch: every unit of a chunk
  // re-reads that chunk's whole payload slice (sub-block units share the
  // slice), and each unit loads its chunk's two bounding offsets.
  decode_contract.clauses.push_back(ctr::reads_dyn(
      "payload", static_cast<std::int64_t>(enc.payload.size() * subblocks_per_chunk)));
  decode_contract.clauses.push_back(ctr::reads_dyn(
      "offsets", static_cast<std::int64_t>(2 * nchunks * subblocks_per_chunk)));
  if (enc.gap_stride > 0) decode_contract.clauses.push_back(ctr::reads("gaps", ctr::b(), 1));
  chk::launch("huffman_decode", nchunks * subblocks_per_chunk,
              chk::bufs(chk::in(std::span<const std::uint8_t>(enc.payload), "payload"),
                        chk::in(std::span<const std::uint64_t>(enc.chunk_offsets), "offsets"),
                        chk::in(std::span<const std::uint32_t>(enc.gaps), "gaps"),
                        chk::out(std::span<quant_t>(dec.symbols), "symbols")),
              decode_contract,
              [&, n, subblocks_per_chunk](std::size_t unit, const auto& vpayload,
                                          const auto& voffsets, const auto& vgaps,
                                          const auto& vsym) {
    const std::size_t c = unit / subblocks_per_chunk;
    const std::size_t sub = unit % subblocks_per_chunk;
    const std::size_t stride = enc.gap_stride > 0 ? enc.gap_stride : enc.chunk_size;
    const std::size_t lo = c * enc.chunk_size + sub * stride;
    if (lo >= n) return;
    const std::size_t hi =
        std::min(std::min(lo + stride, (c + 1) * static_cast<std::size_t>(enc.chunk_size)), n);
    const auto off = static_cast<std::size_t>(voffsets[c]);
    const auto end = static_cast<std::size_t>(voffsets[c + 1]);
    const std::uint64_t start_bit = enc.gap_stride > 0 ? vgaps[unit] : 0;
    vpayload.note_read(off, end - off);
    BitReader br(std::span<const std::uint8_t>(vpayload.data() + off, end - off), start_bit);
    // A corrupt bitstream (invalid code, or a spliced gap offset pointing
    // past the chunk) throws DecodeError right here, inside the grid; the
    // exception-safe launch drains the remaining blocks and rethrows it.
    for (std::size_t i = lo; i < hi; ++i) {
      vsym[i] = static_cast<quant_t>(book.decode_one(br));
    }
  });

  traffic_scope.apply(dec.cost);
  dec.cost.bytes_read += book.alphabet_size() * 9;  // codebook is not a launch buffer
  // The canonical decode is a dependent bit-serial table walk: latency/
  // compute-bound, not bandwidth-bound — which is why the paper sees it
  // stagnate from V100 to A100 (§V-C.2).  The per-symbol weight is
  // calibrated to Table VII's ~40-50 GB/s V100 decode rows for the chunked
  // decoder; gap-array decoding keeps warps converged over short chains,
  // which reference [15] reports as a multi-x decode gain (weight
  // calibrated accordingly).
  const std::size_t chain = enc.gap_stride > 0 ? enc.gap_stride : enc.chunk_size;
  dec.cost.flops =
      n * (130 + 320 * std::min<std::size_t>(chain, 4096) / 4096);
  dec.cost.parallel_items = n;
  dec.cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  return dec;
}

}  // namespace szp
