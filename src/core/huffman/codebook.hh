// szp — canonical Huffman codebook over multi-byte symbols (paper §III-A.1:
// quant-codes are enumerated as symbols that may exceed one byte, so the
// alphabet is the quantizer capacity, up to 65536).
//
// The tree is built serially from the histogram — deliberately so: cuSZ/cuSZ+
// build the codebook with a single GPU thread (paper §I), which is why the
// codebook stage is a latency bottleneck on small fields.  The canonical
// form makes the decoder table-driven (first_code/first_index per length),
// matching cuSZ's canonical codebook design.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/serialize.hh"
#include "sim/profile.hh"

namespace szp {

class HuffmanCodebook {
 public:
  static constexpr unsigned kMaxCodeLen = 63;

  /// Build from symbol frequencies (the histogram).  Symbols with zero
  /// frequency get no code.  Degenerate alphabets (0 or 1 live symbols) are
  /// assigned a 1-bit code.
  static HuffmanCodebook build(std::span<const std::uint64_t> freq);

  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }
  [[nodiscard]] unsigned length(std::size_t symbol) const { return lengths_[symbol]; }
  [[nodiscard]] std::uint64_t code(std::size_t symbol) const { return codes_[symbol]; }
  [[nodiscard]] unsigned max_length() const { return max_len_; }

  /// Average codeword bit length weighted by the given frequencies.
  [[nodiscard]] double average_bits(std::span<const std::uint64_t> freq) const;

  /// Decode one symbol from the reader (canonical table walk).
  template <typename Reader>
  [[nodiscard]] std::uint32_t decode_one(Reader& reader) const {
    std::uint64_t code = 0;
    for (unsigned len = 1; len <= max_len_; ++len) {
      code = (code << 1) | reader.get_bit();
      if (count_[len] > 0 && code - first_code_[len] < count_[len]) {
        return sorted_symbols_[first_index_[len] + static_cast<std::uint32_t>(code - first_code_[len])];
      }
    }
    throw DecodeError(DecodeErrorKind::kCorruptStream, "bitstream",
                      "no canonical Huffman code matches the next " +
                          std::to_string(max_len_) + " bits");
  }

  /// Analytic GPU cost of the (single-threaded) codebook construction.
  [[nodiscard]] sim::KernelCost build_cost() const;

  void serialize(ByteWriter& w) const;
  static HuffmanCodebook deserialize(ByteReader& r);

 private:
  void assign_canonical_codes();

  std::vector<std::uint8_t> lengths_;        // per symbol; 0 = absent
  std::vector<std::uint64_t> codes_;         // canonical, MSB-first
  unsigned max_len_ = 0;

  // Canonical decode tables, indexed by code length.
  std::array<std::uint64_t, kMaxCodeLen + 1> first_code_{};
  std::array<std::uint32_t, kMaxCodeLen + 1> first_index_{};
  std::array<std::uint32_t, kMaxCodeLen + 1> count_{};
  std::vector<std::uint32_t> sorted_symbols_;  // symbols ordered by (length, value)
};

}  // namespace szp
