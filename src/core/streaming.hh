// szp — blocked ("streaming") compression for fields larger than device
// memory.
//
// The paper notes (§V-A.3): "when the field is too large to fit in a single
// GPU's memory, CUSZ+ divides it into blocks and then compresses by block."
// StreamingCompressor implements that: the field is partitioned into slabs
// along its slowest-varying axis, each slab is compressed independently
// (its own workflow selection, codebook, and outlier stream), and the slab
// archives are packed into a self-describing container.
//
// Slab independence buys two things.  First, partial access:
// decompress_slab() reconstructs one slab without touching the others — the
// coarse-grained decompression granularity cuSZ's block split was designed
// for (§II-A).  Second, parallelism: slabs are compressed by a bounded
// producer/consumer worker pool that overlaps per-slab compression with
// container packing (host-orchestrated, one pooled workspace per worker;
// see DESIGN.md §2.2).  Finished slab archives are packed into the
// container strictly in index order, so the container bytes are identical
// to a serial run.  compress_many() applies the same one-level fan-out
// across whole fields.
//
// A relative error bound is resolved against the *whole field's* range
// before slabbing, so every slab honors the same absolute bound and the
// result is identical in quality to single-shot compression.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/compressor.hh"

namespace szp {

namespace io {
class FieldSource;
class ContainerSink;
}  // namespace io

struct StreamingConfig {
  CompressConfig base;
  /// Maximum elements per slab (default 2^22 ~ 16 MB of float32).
  std::size_t max_slab_elems = std::size_t{1} << 22;
  /// Compress slabs concurrently (the container bytes do not depend on
  /// this: slab archives are packed in index order either way).
  bool parallel = true;
  /// Worker-thread count for the slab pipeline.  0 = auto: the SZP_WORKERS
  /// environment variable when set, otherwise the OpenMP thread budget.
  /// The slab *plan* never depends on the worker count unless
  /// auto_slab_thickness is set, so containers stay byte-stable across
  /// machines.
  std::size_t workers = 0;
  /// Opt-in heuristic slab sizing: pick a thickness that yields ~3 slabs
  /// per worker (bounded above by max_slab_elems) so uneven per-slab
  /// workflow-selection cost load-balances across the pool.  Off by
  /// default because the slab split is part of the container bytes.
  bool auto_slab_thickness = false;
  /// Bound on how far compression may run ahead of in-order packing, in
  /// slabs (0 = auto: 2x the worker count).  Caps the number of finished
  /// slab archives held in memory awaiting their turn in the container.
  std::size_t queue_window = 0;
  /// Hard cap on the pipeline's resident bytes (0 = unbudgeted).  The plan
  /// resolves slab thickness, worker count, and queue window against the
  /// model  W·slab + Q·(slab + overhead) ≤ budget  (W staging buffers in
  /// flight, Q finished archives parked awaiting in-order packing; see
  /// DESIGN.md §2.3), and compression refuses with std::invalid_argument
  /// when even a single one-plane slab cannot fit.  The budget shapes the
  /// slab plan, so it is part of the container bytes — the same config
  /// yields byte-identical containers in memory and file-to-file.
  std::size_t memory_budget = 0;
  /// File ingest mode for compress_file()/decompress_file(): mmap the input
  /// when the platform supports it (zero-copy slab spans, residency managed
  /// by the page cache), else — or when false — positional reads into
  /// per-worker staging buffers, whose residency the budget meters.
  bool use_mmap = true;
};

struct SlabInfo {
  Extents extents;        ///< the slab's own extents
  std::size_t offset = 0; ///< element offset of the slab in the field
  double ratio = 0.0;
  Workflow workflow = Workflow::kHuffman;
};

/// Host wall-clock attribution for one streaming compress, so a
/// parallel-vs-serial loss can be pinned to a phase instead of guessed at.
/// compress/pack are summed across workers and overlap in the parallel
/// pipeline (packing is folded into the worker loop), so they need not sum
/// to — and may exceed — the end-to-end wall time.
struct StreamingPhaseTimings {
  double range_seconds = 0.0;     ///< whole-field bound resolution
  double read_seconds = 0.0;      ///< slab ingest (source reads), summed over workers
  double compress_seconds = 0.0;  ///< per-slab compression, summed over workers
  double pack_seconds = 0.0;      ///< container packing, summed over workers
  double write_seconds = 0.0;     ///< sink writes (subset of pack), in-order packer only
};

struct StreamingStats {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
  double eb_abs = 0.0;
  std::vector<SlabInfo> slabs;
  StreamingPhaseTimings phases;
  /// Worker threads the slab pipeline actually ran with (1 when serial,
  /// when nested under an outer fan-out, or when there is a single slab).
  std::size_t workers_used = 1;
  /// High-water mark of bytes the pipeline itself held resident: staging
  /// buffers for viewless sources, finished slabs parked awaiting in-order
  /// packing, and container bytes retained by an in-memory sink.  Bytes a
  /// zero-copy view (span, mmap) or the OS page cache hold are not charged
  /// — they are the caller's/kernel's residency, not the pipeline's.
  std::size_t peak_resident_bytes = 0;
};

struct StreamingCompressed {
  std::vector<std::uint8_t> bytes;
  StreamingStats stats;
};

struct StreamingDecompressed {
  DType dtype = DType::kFloat32;
  std::vector<float> data;
  std::vector<double> data_f64;
  Extents extents;
};

/// Result of an out-of-core decompress: what the container declared, plus
/// the run's stats.  For decode runs the stats read "backwards":
/// original_bytes is the raw field emitted, compressed_bytes the container
/// ingested, compress_seconds the per-slab *decode* time, and pack/write
/// cover the in-order emission of raw element bytes.
struct StreamingFileInfo {
  DType dtype = DType::kFloat32;
  Extents extents;
  StreamingStats stats;
};

/// One validated entry of a container's slab directory.  `bytes` is a view
/// into the container buffer the index was built from — the index is valid
/// only as long as that buffer is.
struct ContainerSlab {
  std::size_t offset = 0;               ///< element offset in the field
  std::size_t count = 0;                ///< element count of the slab
  std::span<const std::uint8_t> bytes;  ///< the nested SZP+ archive
};

/// The parsed, fully validated slab directory of a container: build it once
/// with StreamingCompressor::index(), then decompress_slab() is O(1) per
/// slab instead of re-walking the preceding directory entries.
struct ContainerIndex {
  Extents extents;
  DType dtype = DType::kFloat32;
  std::vector<ContainerSlab> slabs;
};

class StreamingCompressor {
 public:
  StreamingCompressor() = default;
  explicit StreamingCompressor(StreamingConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }

  [[nodiscard]] StreamingCompressed compress(std::span<const float> data,
                                             const Extents& ext) const;
  [[nodiscard]] StreamingCompressed compress(std::span<const double> data,
                                             const Extents& ext) const;

  /// Per-call config override: compress with `cfg` instead of the
  /// constructed config, reusing this instance's compressor and workspace
  /// pool.  Lets one warm instance serve calls with different
  /// parallel/worker/slab settings (and lets the bench compare serial vs
  /// parallel through identical pooled buffers).
  [[nodiscard]] StreamingCompressed compress(std::span<const float> data, const Extents& ext,
                                             const StreamingConfig& cfg) const;
  [[nodiscard]] StreamingCompressed compress(std::span<const double> data, const Extents& ext,
                                             const StreamingConfig& cfg) const;

  template <typename T, typename Alloc>
  [[nodiscard]] StreamingCompressed compress(const std::vector<T, Alloc>& data,
                                             const Extents& ext) const {
    return compress(std::span<const T>(data.data(), data.size()), ext);
  }

  /// Out-of-core tier: compress raw element bytes flowing from a
  /// FieldSource into a ContainerSink, so ingest (read), per-slab
  /// compression, in-order packing, and emission (write) all overlap in the
  /// same bounded producer/consumer queue — peak residency is bounded by
  /// the worker count and queue window (or cfg.memory_budget), never by
  /// field size.  The container bytes are identical to the in-memory
  /// compress() of the same field under the same config, by construction.
  /// `dtype` declares the element type of the source bytes; the source size
  /// must equal ext.count() * element size exactly.
  StreamingStats compress_stream(io::FieldSource& src, DType dtype, const Extents& ext,
                                 io::ContainerSink& sink) const;
  StreamingStats compress_stream(io::FieldSource& src, DType dtype, const Extents& ext,
                                 io::ContainerSink& sink, const StreamingConfig& cfg) const;

  /// File-to-file convenience over compress_stream(): `input` holds raw
  /// little-endian elements of `dtype` with extents `ext`; the container is
  /// streamed to `output`.  Ingest is mmap-backed when cfg.use_mmap (and
  /// the platform allows), positional reads otherwise.
  StreamingStats compress_file(const std::filesystem::path& input,
                               const std::filesystem::path& output, const Extents& ext,
                               DType dtype) const;
  StreamingStats compress_file(const std::filesystem::path& input,
                               const std::filesystem::path& output, const Extents& ext,
                               DType dtype, const StreamingConfig& cfg) const;

  /// Out-of-core decode: stream a container from a FieldSource, decode
  /// slabs through the same bounded queue, and emit raw element bytes to
  /// the sink strictly in field order.  Never materializes the whole field:
  /// peak residency is staging + parked decoded slabs, budget-capped via
  /// cfg.memory_budget like the compress side.
  [[nodiscard]] static StreamingFileInfo decompress_stream(io::FieldSource& container,
                                                           io::ContainerSink& raw);
  [[nodiscard]] static StreamingFileInfo decompress_stream(io::FieldSource& container,
                                                           io::ContainerSink& raw,
                                                           const StreamingConfig& cfg);

  /// File-to-file decode: reads the SZPC container at `input`, writes the
  /// raw little-endian element bytes to `output`.
  [[nodiscard]] static StreamingFileInfo decompress_file(const std::filesystem::path& input,
                                                         const std::filesystem::path& output);
  [[nodiscard]] static StreamingFileInfo decompress_file(const std::filesystem::path& input,
                                                         const std::filesystem::path& output,
                                                         const StreamingConfig& cfg);

  /// Compress a batch of fields (fields[i] has extents exts[i]), fanning the
  /// fields out across workers when cfg.parallel is set.  Equivalent to
  /// calling compress() per field, in order.
  [[nodiscard]] std::vector<StreamingCompressed> compress_many(
      std::span<const std::span<const float>> fields, std::span<const Extents> exts) const;
  [[nodiscard]] std::vector<StreamingCompressed> compress_many(
      std::span<const std::span<const double>> fields, std::span<const Extents> exts) const;

  /// Reassemble the whole field (slabs decode concurrently into their
  /// disjoint output ranges).  The config overload honors cfg.parallel and
  /// cfg.workers, so a serial config genuinely serializes both directions;
  /// the no-config overload decodes with the default (parallel) config.
  [[nodiscard]] static StreamingDecompressed decompress(std::span<const std::uint8_t> container);
  [[nodiscard]] static StreamingDecompressed decompress(std::span<const std::uint8_t> container,
                                                        const StreamingConfig& cfg);

  /// Number of slabs in a container (without decompressing anything).
  [[nodiscard]] static std::size_t slab_count(std::span<const std::uint8_t> container);

  /// Parse and validate the whole slab directory once (no payload decode).
  /// The returned index views the container buffer; keep it alive.
  [[nodiscard]] static ContainerIndex index(std::span<const std::uint8_t> container);

  /// Decompress a single slab (partial access).  `info_out`, if non-null,
  /// receives the slab's extents and element offset within the full field.
  /// The container overload rebuilds the directory index per call; when
  /// reading many slabs from one container, build the index once and use
  /// the ContainerIndex overload (O(1) per slab).
  [[nodiscard]] static StreamingDecompressed decompress_slab(
      std::span<const std::uint8_t> container, std::size_t slab_index,
      SlabInfo* info_out = nullptr);
  [[nodiscard]] static StreamingDecompressed decompress_slab(
      const ContainerIndex& index, std::size_t slab_index, SlabInfo* info_out = nullptr);

 private:
  StreamingConfig cfg_{};
  /// Slab compression funnels through this Compressor so its workspace pool
  /// persists across compress() calls (compress() stays logically const).
  /// Each pipeline worker leases one workspace for its whole lifetime
  /// (Compressor::lease_workspace), so the pool's capability-annotated
  /// Mutex (core/thread_safety.hh) is taken once per worker, not once per
  /// slab.  The pipeline's own coordination (slab claiming, the in-order
  /// pack frontier) lives in a short-lived engine local to compress_impl;
  /// worker-local state (the per-slab outputs) is disjoint by index.
  Compressor slab_compressor_{};
};

}  // namespace szp
