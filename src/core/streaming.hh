// szp — blocked ("streaming") compression for fields larger than device
// memory.
//
// The paper notes (§V-A.3): "when the field is too large to fit in a single
// GPU's memory, CUSZ+ divides it into blocks and then compresses by block."
// StreamingCompressor implements that: the field is partitioned into slabs
// along its slowest-varying axis, each slab is compressed independently
// (its own workflow selection, codebook, and outlier stream), and the slab
// archives are packed into a self-describing container.
//
// Slab independence buys two things.  First, partial access:
// decompress_slab() reconstructs one slab without touching the others — the
// coarse-grained decompression granularity cuSZ's block split was designed
// for (§II-A).  Second, parallelism: slabs are compressed concurrently via
// the launch substrate (host-orchestrated, one pooled workspace per worker;
// see DESIGN.md §2.2), and the slab archives are packed into the container
// serially in index order, so the container bytes are identical to a serial
// run.  compress_many() applies the same fan-out across whole fields.
//
// A relative error bound is resolved against the *whole field's* range
// before slabbing, so every slab honors the same absolute bound and the
// result is identical in quality to single-shot compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.hh"

namespace szp {

struct StreamingConfig {
  CompressConfig base;
  /// Maximum elements per slab (default 2^22 ~ 16 MB of float32).
  std::size_t max_slab_elems = std::size_t{1} << 22;
  /// Compress slabs concurrently (the container bytes do not depend on
  /// this: slab archives are packed in index order either way).
  bool parallel = true;
};

struct SlabInfo {
  Extents extents;        ///< the slab's own extents
  std::size_t offset = 0; ///< element offset of the slab in the field
  double ratio = 0.0;
  Workflow workflow = Workflow::kHuffman;
};

struct StreamingStats {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
  double eb_abs = 0.0;
  std::vector<SlabInfo> slabs;
};

struct StreamingCompressed {
  std::vector<std::uint8_t> bytes;
  StreamingStats stats;
};

struct StreamingDecompressed {
  DType dtype = DType::kFloat32;
  std::vector<float> data;
  std::vector<double> data_f64;
  Extents extents;
};

/// One validated entry of a container's slab directory.  `bytes` is a view
/// into the container buffer the index was built from — the index is valid
/// only as long as that buffer is.
struct ContainerSlab {
  std::size_t offset = 0;               ///< element offset in the field
  std::size_t count = 0;                ///< element count of the slab
  std::span<const std::uint8_t> bytes;  ///< the nested SZP+ archive
};

/// The parsed, fully validated slab directory of a container: build it once
/// with StreamingCompressor::index(), then decompress_slab() is O(1) per
/// slab instead of re-walking the preceding directory entries.
struct ContainerIndex {
  Extents extents;
  DType dtype = DType::kFloat32;
  std::vector<ContainerSlab> slabs;
};

class StreamingCompressor {
 public:
  StreamingCompressor() = default;
  explicit StreamingCompressor(StreamingConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }

  [[nodiscard]] StreamingCompressed compress(std::span<const float> data,
                                             const Extents& ext) const;
  [[nodiscard]] StreamingCompressed compress(std::span<const double> data,
                                             const Extents& ext) const;

  template <typename T, typename Alloc>
  [[nodiscard]] StreamingCompressed compress(const std::vector<T, Alloc>& data,
                                             const Extents& ext) const {
    return compress(std::span<const T>(data.data(), data.size()), ext);
  }

  /// Compress a batch of fields (fields[i] has extents exts[i]), fanning the
  /// fields out across workers when cfg.parallel is set.  Equivalent to
  /// calling compress() per field, in order.
  [[nodiscard]] std::vector<StreamingCompressed> compress_many(
      std::span<const std::span<const float>> fields, std::span<const Extents> exts) const;
  [[nodiscard]] std::vector<StreamingCompressed> compress_many(
      std::span<const std::span<const double>> fields, std::span<const Extents> exts) const;

  /// Reassemble the whole field (slabs decode concurrently into their
  /// disjoint output ranges).
  [[nodiscard]] static StreamingDecompressed decompress(std::span<const std::uint8_t> container);

  /// Number of slabs in a container (without decompressing anything).
  [[nodiscard]] static std::size_t slab_count(std::span<const std::uint8_t> container);

  /// Parse and validate the whole slab directory once (no payload decode).
  /// The returned index views the container buffer; keep it alive.
  [[nodiscard]] static ContainerIndex index(std::span<const std::uint8_t> container);

  /// Decompress a single slab (partial access).  `info_out`, if non-null,
  /// receives the slab's extents and element offset within the full field.
  /// The container overload rebuilds the directory index per call; when
  /// reading many slabs from one container, build the index once and use
  /// the ContainerIndex overload (O(1) per slab).
  [[nodiscard]] static StreamingDecompressed decompress_slab(
      std::span<const std::uint8_t> container, std::size_t slab_index,
      SlabInfo* info_out = nullptr);
  [[nodiscard]] static StreamingDecompressed decompress_slab(
      const ContainerIndex& index, std::size_t slab_index, SlabInfo* info_out = nullptr);

 private:
  StreamingConfig cfg_{};
  /// Slab compression funnels through this Compressor so its workspace pool
  /// persists across compress() calls (compress() stays logically const).
  /// Parallel slab workers share it concurrently; every cross-worker
  /// mutation funnels into WorkspacePool's capability-annotated Mutex
  /// (core/thread_safety.hh), so -Wthread-safety polices the whole chain —
  /// by design there is no StreamingCompressor-level lock. Worker-local
  /// state (the per-slab outputs) is disjoint by index and needs none.
  Compressor slab_compressor_{};
};

}  // namespace szp
