// szp — blocked ("streaming") compression for fields larger than device
// memory.
//
// The paper notes (§V-A.3): "when the field is too large to fit in a single
// GPU's memory, CUSZ+ divides it into blocks and then compresses by block."
// StreamingCompressor implements that: the field is partitioned into slabs
// along its slowest-varying axis, each slab is compressed independently
// (its own workflow selection, codebook, and outlier stream), and the slab
// archives are packed into a self-describing container.
//
// Because slabs are independent, the container supports partial access:
// decompress_slab() reconstructs one slab without touching the others —
// the coarse-grained decompression granularity cuSZ's block split was
// designed for (§II-A).
//
// A relative error bound is resolved against the *whole field's* range
// before slabbing, so every slab honors the same absolute bound and the
// result is identical in quality to single-shot compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.hh"

namespace szp {

struct StreamingConfig {
  CompressConfig base;
  /// Maximum elements per slab (default 2^22 ~ 16 MB of float32).
  std::size_t max_slab_elems = std::size_t{1} << 22;
};

struct SlabInfo {
  Extents extents;        ///< the slab's own extents
  std::size_t offset = 0; ///< element offset of the slab in the field
  double ratio = 0.0;
  Workflow workflow = Workflow::kHuffman;
};

struct StreamingStats {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
  double eb_abs = 0.0;
  std::vector<SlabInfo> slabs;
};

struct StreamingCompressed {
  std::vector<std::uint8_t> bytes;
  StreamingStats stats;
};

struct StreamingDecompressed {
  DType dtype = DType::kFloat32;
  std::vector<float> data;
  std::vector<double> data_f64;
  Extents extents;
};

class StreamingCompressor {
 public:
  StreamingCompressor() = default;
  explicit StreamingCompressor(StreamingConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }

  [[nodiscard]] StreamingCompressed compress(std::span<const float> data,
                                             const Extents& ext) const;
  [[nodiscard]] StreamingCompressed compress(std::span<const double> data,
                                             const Extents& ext) const;

  template <typename T, typename Alloc>
  [[nodiscard]] StreamingCompressed compress(const std::vector<T, Alloc>& data,
                                             const Extents& ext) const {
    return compress(std::span<const T>(data.data(), data.size()), ext);
  }

  /// Reassemble the whole field.
  [[nodiscard]] static StreamingDecompressed decompress(std::span<const std::uint8_t> container);

  /// Number of slabs in a container (without decompressing anything).
  [[nodiscard]] static std::size_t slab_count(std::span<const std::uint8_t> container);

  /// Decompress a single slab (partial access).  `info_out`, if non-null,
  /// receives the slab's extents and element offset within the full field.
  [[nodiscard]] static StreamingDecompressed decompress_slab(
      std::span<const std::uint8_t> container, std::size_t slab_index,
      SlabInfo* info_out = nullptr);

 private:
  StreamingConfig cfg_{};
};

}  // namespace szp
