// szp — clang thread-safety annotation macros and capability-annotated
// mutex wrappers.
//
// clang's -Wthread-safety analysis needs capability attributes on the mutex
// type itself to follow lock acquisitions; the standard library's std::mutex
// carries none, so GUARDED_BY members locked through std::lock_guard are
// invisible to it.  Mutex/MutexLock below are the thinnest possible
// annotated wrappers (the Abseil/Chromium idiom): std::mutex semantics,
// plus the attributes the analysis consumes.  Under gcc (or clang without
// the attribute) every macro expands to nothing and the wrappers compile to
// the plain std::mutex calls.
//
// The analysis runs as an error in the clang-tidy lint leg
// (clang-diagnostic-thread-safety*, see .clang-tidy and tools/lint.sh).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SZP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SZP_THREAD_ANNOTATION
#define SZP_THREAD_ANNOTATION(x)
#endif

/// Type declares a lockable capability ("mutex").
#define SZP_CAPABILITY(x) SZP_THREAD_ANNOTATION(capability(x))
/// Member may only be touched while the given mutex is held.
#define SZP_GUARDED_BY(x) SZP_THREAD_ANNOTATION(guarded_by(x))
/// Function may only be called with the given mutex held by the caller.
#define SZP_REQUIRES(...) SZP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (and does not release it).
#define SZP_ACQUIRE(...) SZP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define SZP_RELEASE(...) SZP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// RAII type whose lifetime brackets a capability acquisition.
#define SZP_SCOPED_CAPABILITY SZP_THREAD_ANNOTATION(scoped_lockable)
/// Function must NOT be called with the given mutex held (deadlock guard).
#define SZP_EXCLUDES(...) SZP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model.
#define SZP_NO_THREAD_SAFETY_ANALYSIS SZP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace szp {

/// std::mutex with the capability attribute the thread-safety analysis
/// needs.  Use with MutexLock; the raw lock()/unlock() pair is annotated
/// for the rare manual site.
class SZP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SZP_ACQUIRE() { m_.lock(); }
  void unlock() SZP_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex (std::lock_guard shape, annotated).
class SZP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SZP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() SZP_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace szp
