#include "core/rans.hh"

#include <algorithm>
#include <stdexcept>

namespace szp {

namespace {

// Standard 32-bit byte-wise rANS constants (ryg_rans layout): state stays
// in [kLow, kLow << 8) between symbols.
constexpr std::uint32_t kLow = 1u << 23;

}  // namespace

RansModel RansModel::build(std::span<const std::uint64_t> counts) {
  if (counts.empty() || counts.size() > 65536) {
    throw std::invalid_argument("RansModel: alphabet size must be in [1, 65536]");
  }
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) {
    throw std::invalid_argument("RansModel: all symbol counts are zero");
  }

  RansModel m;
  m.freq_.assign(counts.size(), 0);

  // Normalization to kProbScale with a floor of 1 for every occurring
  // symbol (an occurring symbol with frequency 0 would be unencodable).
  std::uint32_t assigned = 0;
  std::size_t live = 0;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    ++live;
    const double exact =
        static_cast<double>(counts[s]) * kProbScale / static_cast<double>(total);
    auto f = static_cast<std::uint32_t>(exact);
    if (f == 0) f = 1;
    m.freq_[s] = f;
    assigned += f;
    remainders.emplace_back(exact - static_cast<double>(f), s);
  }
  if (live > kProbScale) {
    throw std::invalid_argument(
        "RansModel: more live symbols than probability slots (raise kProbBits)");
  }

  if (assigned < kProbScale) {
    // Hand out the shortfall by largest remainder.
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::size_t idx = 0;
    while (assigned < kProbScale) {
      ++m.freq_[remainders[idx % remainders.size()].second];
      ++assigned;
      ++idx;
    }
  } else if (assigned > kProbScale) {
    // Claw the overshoot back from the largest frequencies (never below 1).
    std::vector<std::size_t> by_freq;
    for (std::size_t s = 0; s < counts.size(); ++s) {
      if (m.freq_[s] > 1) by_freq.push_back(s);
    }
    std::sort(by_freq.begin(), by_freq.end(),
              [&](std::size_t a, std::size_t b) { return m.freq_[a] > m.freq_[b]; });
    std::uint32_t excess = assigned - kProbScale;
    // Proportional first pass, then one-by-one for the tail.
    for (const std::size_t s : by_freq) {
      if (excess == 0) break;
      const std::uint32_t take = std::min(excess, m.freq_[s] - 1);
      m.freq_[s] -= take;
      excess -= take;
    }
    if (excess != 0) {
      throw std::logic_error("RansModel: normalization failed to converge");
    }
  }

  m.finalize();
  return m;
}

void RansModel::finalize() {
  cum_.assign(freq_.size() + 1, 0);
  for (std::size_t s = 0; s < freq_.size(); ++s) cum_[s + 1] = cum_[s] + freq_[s];
  if (cum_.back() != kProbScale) {
    throw std::logic_error("RansModel: frequencies do not sum to the probability scale");
  }
  slot_to_symbol_.assign(kProbScale, 0);
  for (std::size_t s = 0; s < freq_.size(); ++s) {
    for (std::uint32_t k = cum_[s]; k < cum_[s + 1]; ++k) {
      slot_to_symbol_[k] = static_cast<std::uint16_t>(s);
    }
  }
}

void RansModel::serialize(ByteWriter& w) const {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(freq_.size()));
  std::uint32_t live = 0;
  for (const auto f : freq_) live += f > 0 ? 1u : 0u;
  w.put<std::uint32_t>(live);
  for (std::size_t s = 0; s < freq_.size(); ++s) {
    if (freq_[s] > 0) {
      w.put<std::uint16_t>(static_cast<std::uint16_t>(s));
      w.put<std::uint16_t>(static_cast<std::uint16_t>(freq_[s]));
    }
  }
}

RansModel RansModel::deserialize(ByteReader& r) {
  r.set_segment("rans model");
  const auto alphabet = r.get<std::uint32_t>();
  if (alphabet == 0 || alphabet > 65536) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "rans model",
                      "alphabet size " + std::to_string(alphabet) + " outside [1, 65536]");
  }
  RansModel m;
  m.freq_.assign(alphabet, 0);
  const auto live = r.get<std::uint32_t>();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < live; ++i) {
    const auto sym = r.get<std::uint16_t>();
    const auto f = r.get<std::uint16_t>();
    if (sym >= alphabet || f == 0 || m.freq_[sym] != 0) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "rans model",
                        "corrupt frequency entry " + std::to_string(i) + " of " +
                            std::to_string(live));
    }
    m.freq_[sym] = f;
    total += f;
  }
  if (total != kProbScale) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "rans model",
                      "frequencies sum to " + std::to_string(total) + ", not the scale " +
                          std::to_string(kProbScale));
  }
  m.finalize();
  return m;
}

std::vector<std::uint8_t> rans_encode(std::span<const std::uint16_t> symbols,
                                      const RansModel& model) {
  // Encode in reverse so decoding streams forward.
  std::vector<std::uint8_t> reversed;
  reversed.reserve(symbols.size() / 2 + 8);
  std::uint32_t x = kLow;
  for (std::size_t i = symbols.size(); i-- > 0;) {
    const std::uint16_t s = symbols[i];
    if (s >= model.alphabet_size() || model.freq(s) == 0) {
      throw std::invalid_argument("rans_encode: symbol not in model");
    }
    const std::uint32_t f = model.freq(s);
    // Renormalize: keep x below the point where the update would overflow.
    const std::uint32_t x_max = ((kLow >> RansModel::kProbBits) << 8) * f;
    while (x >= x_max) {
      reversed.push_back(static_cast<std::uint8_t>(x & 0xff));
      x >>= 8;
    }
    x = ((x / f) << RansModel::kProbBits) + (x % f) + model.cum(s);
  }
  // Flush the 32-bit state.
  for (int k = 0; k < 4; ++k) {
    reversed.push_back(static_cast<std::uint8_t>(x & 0xff));
    x >>= 8;
  }
  return {reversed.rbegin(), reversed.rend()};
}

std::vector<std::uint16_t> rans_decode(std::span<const std::uint8_t> bytes, std::size_t count,
                                       const RansModel& model) {
  std::vector<std::uint16_t> out(count);
  std::size_t pos = 0;
  const auto next_byte = [&]() -> std::uint32_t {
    if (pos >= bytes.size()) {
      throw DecodeError(DecodeErrorKind::kTruncated, "rans stream",
                        "state renormalization ran past the " + std::to_string(bytes.size()) +
                            "-byte stream");
    }
    return bytes[pos++];
  };

  std::uint32_t x = 0;
  for (int k = 0; k < 4; ++k) x = (x << 8) | next_byte();

  constexpr std::uint32_t kMask = RansModel::kProbScale - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t slot = x & kMask;
    const std::uint16_t s = model.symbol_at(slot);
    out[i] = s;
    x = model.freq(s) * (x >> RansModel::kProbBits) + slot - model.cum(s);
    while (x < kLow) x = (x << 8) | next_byte();
  }
  if (x != kLow) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "rans stream",
                      "final decoder state mismatch");
  }
  return out;
}

}  // namespace szp
