#include <array>
#include <cmath>
#include <stdexcept>

#include "core/predictor/lorenzo.hh"
#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp {

namespace {

// Largest chunk across ranks: 256 (1D), 256 (2D 16x16), 512 (3D 8x8x8).
constexpr std::size_t kMaxChunkElems = 512;

// Bandwidth derating factors calibrated against the construction
// throughputs published for cuSZ (Table VI "cuSZ" column) and cuSZ+
// (Table VI "ours"), per rank.  See DESIGN.md §2 (roofline substitution).
constexpr std::array<double, 4> kBaselineFactor{0.0, 0.58, 0.70, 0.56};
constexpr std::array<double, 4> kOptimizedFactor{0.0, 0.85, 0.76, 0.82};

struct ChunkGeometry {
  ChunkShape shape;
  std::size_t gx, gy, gz;  // grid extents in chunks
};

ChunkGeometry make_grid(const Extents& ext) {
  ChunkGeometry g{ChunkShape::for_rank(ext.rank), 0, 0, 0};
  g.gx = sim::div_ceil(ext.nx, g.shape.cx);
  g.gy = sim::div_ceil(ext.ny, g.shape.cy);
  g.gz = sim::div_ceil(ext.nz, g.shape.cz);
  return g;
}

}  // namespace

template <typename T>
void lorenzo_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                            const QuantConfig& qcfg, OutlierScheme scheme,
                            ConstructVariant variant, LorenzoConstructResult& res) {
  qcfg.validate();
  if (data.size() != ext.count()) {
    throw std::invalid_argument("lorenzo_construct: data size does not match extents");
  }
  if (!(eb_abs > 0.0) || !std::isfinite(eb_abs)) {
    throw std::invalid_argument("lorenzo_construct: error bound must be positive and finite");
  }

  const std::size_t n = ext.count();
  res.cost = {};
  res.quant.assign(n, 0);
  res.outlier_dense.assign(n, 0);

  const double inv2eb = 1.0 / (2.0 * eb_abs);
  const std::int64_t r = qcfg.radius();
  const auto grid = make_grid(ext);
  const ChunkShape cs = grid.shape;
  const bool stage_copy = variant == ConstructVariant::kBaseline;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for res.cost
  // Every block owns one chunk-shaped tile of the row-major field: the same
  // box for the read of `data` and the writes of `quant`/`outlier`.
  const auto tile_of = [&](ctr::AccessKind a, const char* buf) {
    return ctr::box(a, buf, ctr::bx() * cs.cx, static_cast<std::int64_t>(cs.cx),
                    ctr::by() * cs.cy, static_cast<std::int64_t>(cs.cy), ctr::bz() * cs.cz,
                    static_cast<std::int64_t>(cs.cz), static_cast<std::int64_t>(ext.nx),
                    static_cast<std::int64_t>(ext.ny), static_cast<std::int64_t>(ext.nz));
  };
  chk::launch_3d("lorenzo_construct",
                 {static_cast<std::uint32_t>(grid.gx), static_cast<std::uint32_t>(grid.gy),
                  static_cast<std::uint32_t>(grid.gz)},
                 chk::bufs(chk::in(data, "data"),
                           chk::out(std::span<quant_t>(res.quant), "quant"),
                           chk::out(std::span<qdiff_t>(res.outlier_dense), "outlier")),
                 ctr::contract(tile_of(ctr::AccessKind::kRead, "data"),
                               tile_of(ctr::AccessKind::kWrite, "quant"),
                               tile_of(ctr::AccessKind::kWrite, "outlier")),
                 [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& vdata,
                     const auto& vquant, const auto& voutlier) {
    const std::size_t x0 = bx * cs.cx, y0 = by * cs.cy, z0 = bz * cs.cz;
    const std::size_t w = std::min(cs.cx, ext.nx - x0);
    const std::size_t h = std::min(cs.cy, ext.ny - y0);
    const std::size_t d = std::min(cs.cz, ext.nz - z0);

    // "Shared memory": the prequantized chunk, needed by the prediction
    // pass (prequant barrier in Algorithm 1 line 2).
    std::array<std::int64_t, kMaxChunkElems> pq;
    std::array<T, kMaxChunkElems> staged;  // baseline-variant staging

    const auto lidx = [&](std::size_t lz, std::size_t ly, std::size_t lx) {
      return (lz * h + ly) * w + lx;
    };

    if (stage_copy) {
      // cuSZ-style: copy global -> shared first, then prequant from shared.
      for (std::size_t lz = 0; lz < d; ++lz)
        for (std::size_t ly = 0; ly < h; ++ly)
          for (std::size_t lx = 0; lx < w; ++lx)
            staged[lidx(lz, ly, lx)] =
                vdata[ext.index(z0 + lz, y0 + ly, x0 + lx)];
      for (std::size_t i = 0; i < w * h * d; ++i)
        pq[i] = std::llround(static_cast<double>(staged[i]) * inv2eb);
    } else {
      // cuSZ+-style: prequant straight from global into registers/shared.
      for (std::size_t lz = 0; lz < d; ++lz)
        for (std::size_t ly = 0; ly < h; ++ly)
          for (std::size_t lx = 0; lx < w; ++lx)
            pq[lidx(lz, ly, lx)] = std::llround(
                static_cast<double>(vdata[ext.index(z0 + lz, y0 + ly, x0 + lx)]) * inv2eb);
    }

    // Prediction + postquant.  Neighbors outside the chunk are zero, which
    // is the convention that turns reconstruction into a partial sum.
    const auto at = [&](std::ptrdiff_t lz, std::ptrdiff_t ly, std::ptrdiff_t lx) -> std::int64_t {
      if (lx < 0 || ly < 0 || lz < 0) return 0;
      return pq[lidx(static_cast<std::size_t>(lz), static_cast<std::size_t>(ly),
                     static_cast<std::size_t>(lx))];
    };

    for (std::size_t lz = 0; lz < d; ++lz) {
      for (std::size_t ly = 0; ly < h; ++ly) {
        for (std::size_t lx = 0; lx < w; ++lx) {
          const auto x = static_cast<std::ptrdiff_t>(lx);
          const auto y = static_cast<std::ptrdiff_t>(ly);
          const auto z = static_cast<std::ptrdiff_t>(lz);
          std::int64_t pred = 0;
          switch (ext.rank) {
            case 1:
              pred = at(0, 0, x - 1);
              break;
            case 2:
              pred = at(0, y - 1, x) + at(0, y, x - 1) - at(0, y - 1, x - 1);
              break;
            case 3:
              pred = at(z, y - 1, x) + at(z, y, x - 1) + at(z - 1, y, x)
                   - at(z, y - 1, x - 1) - at(z - 1, y - 1, x) - at(z - 1, y, x - 1)
                   + at(z - 1, y - 1, x - 1);
              break;
            default: break;
          }
          const std::int64_t delta = pq[lidx(lz, ly, lx)] - pred;
          const std::size_t gi = ext.index(z0 + lz, y0 + ly, x0 + lx);
          if (delta > -r && delta < r) {
            vquant[gi] = static_cast<quant_t>(delta + r);
          } else if (scheme == OutlierScheme::kResidual) {
            // Modified quantization (cuSZ+): quant-code encodes δ'=0 and the
            // true residual goes to the outlier stream.
            vquant[gi] = static_cast<quant_t>(r);
            voutlier[gi] = static_cast<qdiff_t>(delta);
          } else {
            // cuSZ: placeholder 0, outlier carries the prequantized value.
            vquant[gi] = 0;
            voutlier[gi] = static_cast<qdiff_t>(pq[lidx(lz, ly, lx)]);
          }
        }
      }
    }
  });

  // Traffic from the footprint contract (tile boxes over data/quant/outlier);
  // arithmetic and calibration stay the wrapper's.
  traffic_scope.apply(res.cost);
  res.cost.flops = n * (2 + (std::size_t{1} << ext.rank));
  res.cost.parallel_items = n;
  res.cost.pattern = stage_copy ? sim::AccessPattern::kTiledShared
                                : sim::AccessPattern::kCoalescedStreaming;
  res.cost.custom_factor = stage_copy ? kBaselineFactor[static_cast<std::size_t>(ext.rank)]
                                      : kOptimizedFactor[static_cast<std::size_t>(ext.rank)];
}

template <typename T>
LorenzoConstructResult lorenzo_construct(std::span<const T> data, const Extents& ext,
                                         double eb_abs, const QuantConfig& qcfg,
                                         OutlierScheme scheme, ConstructVariant variant) {
  LorenzoConstructResult res;
  lorenzo_construct_into(data, ext, eb_abs, qcfg, scheme, variant, res);
  return res;
}

template void lorenzo_construct_into<float>(std::span<const float>, const Extents&, double,
                                            const QuantConfig&, OutlierScheme, ConstructVariant,
                                            LorenzoConstructResult&);
template void lorenzo_construct_into<double>(std::span<const double>, const Extents&, double,
                                             const QuantConfig&, OutlierScheme, ConstructVariant,
                                             LorenzoConstructResult&);
template LorenzoConstructResult lorenzo_construct<float>(std::span<const float>, const Extents&,
                                                         double, const QuantConfig&,
                                                         OutlierScheme, ConstructVariant);
template LorenzoConstructResult lorenzo_construct<double>(std::span<const double>, const Extents&,
                                                          double, const QuantConfig&,
                                                          OutlierScheme, ConstructVariant);

}  // namespace szp
