#include "core/predictor/regression.hh"

#include <cmath>
#include <stdexcept>

#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp {

namespace {

struct Grid {
  ChunkShape cs;
  std::size_t gx, gy, gz;
};

Grid make_grid(const Extents& ext) {
  Grid g{ChunkShape::for_rank(ext.rank), 0, 0, 0};
  g.gx = sim::div_ceil(ext.nx, g.cs.cx);
  g.gy = sim::div_ceil(ext.ny, g.cs.cy);
  g.gz = sim::div_ceil(ext.nz, g.cs.cz);
  return g;
}

/// Closed-form least squares on a regular grid: with centered coordinates
/// u = pos - mean(pos) per axis, the design matrix is orthogonal, so
/// slope_axis = sum(u·d) / sum(u²) and b0 = mean(d).
struct PlaneFit {
  double b0 = 0, bx = 0, by = 0, bz = 0;
  double mx = 0, my = 0, mz = 0;  // coordinate means

  [[nodiscard]] double at(std::size_t lz, std::size_t ly, std::size_t lx) const {
    return b0 + bx * (static_cast<double>(lx) - mx) + by * (static_cast<double>(ly) - my) +
           bz * (static_cast<double>(lz) - mz);
  }
};

}  // namespace

std::size_t regression_chunk_count(const Extents& ext) {
  const Grid g = make_grid(ext);
  return g.gx * g.gy * g.gz;
}

template <typename T>
void regression_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                               const QuantConfig& qcfg, RegressionResult& res) {
  qcfg.validate();
  if (data.size() != ext.count()) {
    throw std::invalid_argument("regression_construct: data size does not match extents");
  }
  if (!(eb_abs > 0.0) || !std::isfinite(eb_abs)) {
    throw std::invalid_argument("regression_construct: error bound must be positive and finite");
  }

  const std::size_t n = ext.count();
  res.cost = {};
  res.quant.assign(n, 0);
  res.outlier_dense.assign(n, 0);
  const Grid grid = make_grid(ext);
  const std::size_t nchunks = grid.gx * grid.gy * grid.gz;
  res.coefficients.assign(nchunks * 4, 0.0f);

  const double inv2eb = 1.0 / (2.0 * eb_abs);
  const std::int64_t r = qcfg.radius();
  const ChunkShape cs = grid.cs;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for res.cost
  const auto tile_of = [&](ctr::AccessKind a, const char* buf) {
    return ctr::box(a, buf, ctr::bx() * cs.cx, static_cast<std::int64_t>(cs.cx),
                    ctr::by() * cs.cy, static_cast<std::int64_t>(cs.cy), ctr::bz() * cs.cz,
                    static_cast<std::int64_t>(cs.cz), static_cast<std::int64_t>(ext.nx),
                    static_cast<std::int64_t>(ext.ny), static_cast<std::int64_t>(ext.nz));
  };
  // coefficients[4 * chunk_id .. +4) with chunk_id = (bz*gy + by)*gx + bx.
  const ctr::Term coef_base =
      ctr::bx() * 4 + ctr::by() * (4 * grid.gx) + ctr::bz() * (4 * grid.gx * grid.gy);
  chk::launch_3d("regression_construct",
                 {static_cast<std::uint32_t>(grid.gx), static_cast<std::uint32_t>(grid.gy),
                  static_cast<std::uint32_t>(grid.gz)},
                 chk::bufs(chk::in(data, "data"),
                           chk::out(std::span<quant_t>(res.quant), "quant"),
                           chk::out(std::span<qdiff_t>(res.outlier_dense), "outlier"),
                           chk::inout(std::span<float>(res.coefficients), "coefficients")),
                 ctr::contract(tile_of(ctr::AccessKind::kRead, "data"),
                               tile_of(ctr::AccessKind::kWrite, "quant"),
                               tile_of(ctr::AccessKind::kWrite, "outlier"),
                               ctr::updates("coefficients", coef_base, 4)),
                 [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& vdata,
                     const auto& vquant, const auto& voutlier, const auto& vcoef) {
    const std::size_t x0 = bx * cs.cx, y0 = by * cs.cy, z0 = bz * cs.cz;
    const std::size_t w = std::min(cs.cx, ext.nx - x0);
    const std::size_t h = std::min(cs.cy, ext.ny - y0);
    const std::size_t d = std::min(cs.cz, ext.nz - z0);

    // Pass 1: accumulate the orthogonal least-squares sums.
    PlaneFit fit;
    fit.mx = (static_cast<double>(w) - 1.0) / 2.0;
    fit.my = (static_cast<double>(h) - 1.0) / 2.0;
    fit.mz = (static_cast<double>(d) - 1.0) / 2.0;
    double sum = 0, sux = 0, suy = 0, suz = 0, sxx = 0, syy = 0, szz = 0;
    for (std::size_t lz = 0; lz < d; ++lz) {
      for (std::size_t ly = 0; ly < h; ++ly) {
        for (std::size_t lx = 0; lx < w; ++lx) {
          const double v = vdata[ext.index(z0 + lz, y0 + ly, x0 + lx)];
          const double ux = static_cast<double>(lx) - fit.mx;
          const double uy = static_cast<double>(ly) - fit.my;
          const double uz = static_cast<double>(lz) - fit.mz;
          sum += v;
          sux += ux * v;
          suy += uy * v;
          suz += uz * v;
          sxx += ux * ux;
          syy += uy * uy;
          szz += uz * uz;
        }
      }
    }
    // sxx/syy/szz already sum u² over every element of the chunk, so each
    // slope is simply sum(u·d)/sum(u²).
    const auto count = static_cast<double>(w * h * d);
    fit.b0 = sum / count;
    fit.bx = sxx > 0 ? sux / sxx : 0.0;
    fit.by = syy > 0 ? suy / syy : 0.0;
    fit.bz = szz > 0 ? suz / szz : 0.0;

    // Store coefficients as float32 (they are reread in this exact
    // precision during reconstruction, so the bound is unaffected).
    const std::size_t chunk_id =
        (static_cast<std::size_t>(bz) * grid.gy + by) * grid.gx + bx;
    vcoef[chunk_id * 4 + 0] = static_cast<float>(fit.b0);
    vcoef[chunk_id * 4 + 1] = static_cast<float>(fit.bx);
    vcoef[chunk_id * 4 + 2] = static_cast<float>(fit.by);
    vcoef[chunk_id * 4 + 3] = static_cast<float>(fit.bz);
    fit.b0 = vcoef[chunk_id * 4 + 0];
    fit.bx = vcoef[chunk_id * 4 + 1];
    fit.by = vcoef[chunk_id * 4 + 2];
    fit.bz = vcoef[chunk_id * 4 + 3];

    // Pass 2: quantize residuals against the (rounded) fit.
    for (std::size_t lz = 0; lz < d; ++lz) {
      for (std::size_t ly = 0; ly < h; ++ly) {
        for (std::size_t lx = 0; lx < w; ++lx) {
          const std::size_t gi = ext.index(z0 + lz, y0 + ly, x0 + lx);
          const double resid = static_cast<double>(vdata[gi]) - fit.at(lz, ly, lx);
          const std::int64_t k = std::llround(resid * inv2eb);
          if (k > -r && k < r) {
            vquant[gi] = static_cast<quant_t>(k + r);
          } else {
            vquant[gi] = static_cast<quant_t>(r);
            voutlier[gi] = static_cast<qdiff_t>(k);
          }
        }
      }
    }
  });

  // Traffic from the footprint contract (the residual pass re-reads the
  // chunk it just fitted, which the per-block footprint model treats as
  // cached); arithmetic and calibration stay hand-written.
  traffic_scope.apply(res.cost);
  res.cost.flops = n * 14;
  res.cost.parallel_items = n;
  res.cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  res.cost.custom_factor = 0.55;  // two-pass fit is heavier than Lorenzo
  res.cost.launches = 2;
}

template <typename T>
RegressionResult regression_construct(std::span<const T> data, const Extents& ext, double eb_abs,
                                      const QuantConfig& qcfg) {
  RegressionResult res;
  regression_construct_into(data, ext, eb_abs, qcfg, res);
  return res;
}

template <typename T>
sim::KernelCost regression_reconstruct(std::span<const quant_t> quant,
                                       std::span<const qdiff_t> outlier_dense,
                                       std::span<const float> coefficients, const Extents& ext,
                                       double eb_abs, const QuantConfig& qcfg,
                                       std::span<T> out) {
  const std::size_t n = ext.count();
  if (quant.size() != n || outlier_dense.size() != n || out.size() != n) {
    throw std::invalid_argument("regression_reconstruct: size mismatch");
  }
  const Grid grid = make_grid(ext);
  if (coefficients.size() != grid.gx * grid.gy * grid.gz * 4) {
    throw std::invalid_argument("regression_reconstruct: coefficient count mismatch");
  }
  const double eb2 = 2.0 * eb_abs;
  const std::int64_t r = qcfg.radius();
  const ChunkShape cs = grid.cs;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for the cost
  const auto tile_of = [&](ctr::AccessKind a, const char* buf) {
    return ctr::box(a, buf, ctr::bx() * cs.cx, static_cast<std::int64_t>(cs.cx),
                    ctr::by() * cs.cy, static_cast<std::int64_t>(cs.cy), ctr::bz() * cs.cz,
                    static_cast<std::int64_t>(cs.cz), static_cast<std::int64_t>(ext.nx),
                    static_cast<std::int64_t>(ext.ny), static_cast<std::int64_t>(ext.nz));
  };
  chk::launch_3d("regression_reconstruct",
                 {static_cast<std::uint32_t>(grid.gx), static_cast<std::uint32_t>(grid.gy),
                  static_cast<std::uint32_t>(grid.gz)},
                 chk::bufs(chk::in(quant, "quant"), chk::in(outlier_dense, "outlier"),
                           chk::in(coefficients, "coefficients"), chk::out(out, "out")),
                 ctr::contract(tile_of(ctr::AccessKind::kRead, "quant"),
                               tile_of(ctr::AccessKind::kRead, "outlier"),
                               ctr::reads("coefficients",
                                          ctr::bx() * 4 + ctr::by() * (4 * grid.gx) +
                                              ctr::bz() * (4 * grid.gx * grid.gy),
                                          4),
                               tile_of(ctr::AccessKind::kWrite, "out")),
                 [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& vquant,
                     const auto& voutlier, const auto& vcoef, const auto& vout) {
    const std::size_t x0 = bx * cs.cx, y0 = by * cs.cy, z0 = bz * cs.cz;
    const std::size_t w = std::min(cs.cx, ext.nx - x0);
    const std::size_t h = std::min(cs.cy, ext.ny - y0);
    const std::size_t d = std::min(cs.cz, ext.nz - z0);
    const std::size_t chunk_id =
        (static_cast<std::size_t>(bz) * grid.gy + by) * grid.gx + bx;
    PlaneFit fit;
    fit.b0 = vcoef[chunk_id * 4 + 0];
    fit.bx = vcoef[chunk_id * 4 + 1];
    fit.by = vcoef[chunk_id * 4 + 2];
    fit.bz = vcoef[chunk_id * 4 + 3];
    fit.mx = (static_cast<double>(w) - 1.0) / 2.0;
    fit.my = (static_cast<double>(h) - 1.0) / 2.0;
    fit.mz = (static_cast<double>(d) - 1.0) / 2.0;

    for (std::size_t lz = 0; lz < d; ++lz) {
      for (std::size_t ly = 0; ly < h; ++ly) {
        for (std::size_t lx = 0; lx < w; ++lx) {
          const std::size_t gi = ext.index(z0 + lz, y0 + ly, x0 + lx);
          const std::int64_t k =
              static_cast<std::int64_t>(vquant[gi]) - r + voutlier[gi];
          vout[gi] = static_cast<T>(fit.at(lz, ly, lx) + static_cast<double>(k) * eb2);
        }
      }
    }
  });

  sim::KernelCost c;
  traffic_scope.apply(c);  // contract-derived: quant+outlier+coef reads, out store
  c.flops = n * 8;
  c.parallel_items = n;
  c.pattern = sim::AccessPattern::kCoalescedStreaming;
  c.custom_factor = 0.65;  // no scan passes: embarrassingly parallel
  return c;
}

template void regression_construct_into<float>(std::span<const float>, const Extents&, double,
                                               const QuantConfig&, RegressionResult&);
template void regression_construct_into<double>(std::span<const double>, const Extents&, double,
                                                const QuantConfig&, RegressionResult&);
template RegressionResult regression_construct<float>(std::span<const float>, const Extents&,
                                                      double, const QuantConfig&);
template RegressionResult regression_construct<double>(std::span<const double>, const Extents&,
                                                       double, const QuantConfig&);
template sim::KernelCost regression_reconstruct<float>(std::span<const quant_t>,
                                                       std::span<const qdiff_t>,
                                                       std::span<const float>, const Extents&,
                                                       double, const QuantConfig&,
                                                       std::span<float>);
template sim::KernelCost regression_reconstruct<double>(std::span<const quant_t>,
                                                        std::span<const qdiff_t>,
                                                        std::span<const float>, const Extents&,
                                                        double, const QuantConfig&,
                                                        std::span<double>);

}  // namespace szp
