// szp — multi-level interpolation predictor (SZ3-style, Zhao et al.
// ICDE'21 — the paper's reference [19], "dynamic spline interpolation").
//
// A dyadic hierarchy over the whole field: anchors on a coarse 2^L-stride
// lattice are stored raw; every finer level predicts its new points by
// interpolating *reconstructed* values along one axis at a time (cubic
// where four neighbors exist, linear at borders), and quantizes the
// residuals like the other predictors.  Compression and decompression walk
// the identical level/pass/point order, so predictions match exactly.
//
// Compared to Lorenzo: interpolation sees neighbors on both sides, which
// wins on very smooth fields at loose bounds, but each level depends on the
// previous one, so reconstruction is level-synchronous rather than a single
// partial-sum pass.
#pragma once

#include <span>
#include <vector>

#include "core/eb.hh"
#include "core/types.hh"
#include "sim/aligned.hh"
#include "sim/profile.hh"

namespace szp {

struct InterpolationConfig {
  int max_level = 5;  ///< anchor stride = 2^max_level (clamped to the field)
  bool cubic = true;  ///< cubic where 4 neighbors exist, else linear
};

struct InterpolationResult {
  sim::device_vector<quant_t> quant;          ///< one code per element (anchors = radius)
  sim::device_vector<qdiff_t> outlier_dense;  ///< residual quanta beyond radius
  std::vector<float> anchors;                 ///< raw values on the 2^L lattice
  int level = 0;                              ///< the L actually used
  sim::KernelCost cost;
};

template <typename T>
[[nodiscard]] InterpolationResult interpolation_construct(std::span<const T> data,
                                                          const Extents& ext, double eb_abs,
                                                          const QuantConfig& quant,
                                                          const InterpolationConfig& cfg = {});

/// Workspace-reuse variant: fills the caller's result struct with
/// capacity-preserving assigns (see core/workspace.hh).
template <typename T>
void interpolation_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                                  const QuantConfig& quant, const InterpolationConfig& cfg,
                                  InterpolationResult& res);

template <typename T>
sim::KernelCost interpolation_reconstruct(std::span<const quant_t> quant,
                                          std::span<const qdiff_t> outlier_dense,
                                          std::span<const float> anchors, int level,
                                          bool cubic, const Extents& ext, double eb_abs,
                                          const QuantConfig& qcfg, std::span<T> out);

/// Number of anchor values for a field at the given level.
[[nodiscard]] std::size_t interpolation_anchor_count(const Extents& ext, int level);

}  // namespace szp
