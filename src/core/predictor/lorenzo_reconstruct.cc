#include <array>
#include <stdexcept>

#include "core/predictor/lorenzo.hh"
#include "sim/block_scan.hh"
#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp {

namespace {

constexpr std::size_t kMaxChunkElems = 512;

// Bandwidth derating factors calibrated from Table II of the paper (V100
// columns): coarse cuSZ kernel, naive shared-memory partial sum, and the
// optimized fused partial sum, per rank.
constexpr std::array<double, 4> kCoarseFactor{0.0, 0.037, 0.33, 0.066};
constexpr std::array<double, 4> kNaiveFactor{0.0, 0.56, 0.44, 0.39};
constexpr std::array<double, 4> kFusedFactor{0.0, 0.70, 0.57, 0.53};

struct Grid {
  ChunkShape cs;
  std::size_t gx, gy, gz;
};

Grid make_grid(const Extents& ext) {
  Grid g{ChunkShape::for_rank(ext.rank), 0, 0, 0};
  g.gx = sim::div_ceil(ext.nx, g.cs.cx);
  g.gy = sim::div_ceil(ext.ny, g.cs.cy);
  g.gz = sim::div_ceil(ext.nz, g.cs.cz);
  return g;
}

/// N-pass in-place partial sums over one chunk of the global q' array,
/// through an accessor (`qat(gi)` -> qdiff_t& for global index gi).
/// This is the paper's Algorithm 1 lines 10-12: x-pass, then y-pass, then
/// z-pass, each an inclusive scan with the requested per-thread
/// sequentiality.  Each scan is attributed to the virtual threads that run
/// it on the GPU — per-fragment lanes along x, one lane per column/pillar
/// for y/z — with a barrier between passes (the kernel's __syncthreads()),
/// so word-granular checking sees the real cooperation structure.
template <typename QAt>
void chunk_partial_sums_at(QAt&& qat, const Extents& ext, std::size_t x0, std::size_t y0,
                           std::size_t z0, std::size_t w, std::size_t h, std::size_t d,
                           std::size_t seq) {
  // x-pass: contiguous rows, div_ceil(w, seq) lanes per row.
  const auto lanes_per_row = static_cast<std::uint32_t>(sim::div_ceil(w, seq == 0 ? 1 : seq));
  std::uint32_t lane_base = 0;
  for (std::size_t lz = 0; lz < d; ++lz) {
    for (std::size_t ly = 0; ly < h; ++ly) {
      const std::size_t base = ext.index(z0 + lz, y0 + ly, x0);
      sim::block_inclusive_scan_at<qdiff_t>(
          [&](std::size_t i) -> qdiff_t& { return qat(base + i); }, w, seq, lane_base);
      lane_base += lanes_per_row;
    }
  }
  sim::checked::barrier();
  if (ext.rank < 2) return;
  // y-pass: columns (stride nx), one lane per column.
  std::uint32_t lane = 0;
  for (std::size_t lz = 0; lz < d; ++lz) {
    for (std::size_t lx = 0; lx < w; ++lx) {
      const std::size_t base = ext.index(z0 + lz, y0, x0 + lx);
      sim::block_inclusive_scan_strided_at<qdiff_t>(
          [&](std::size_t k) -> qdiff_t& { return qat(base + k * ext.nx); }, h, lane++);
    }
  }
  sim::checked::barrier();
  if (ext.rank < 3) return;
  // z-pass: pillars (stride nx*ny), one lane per pillar.
  lane = 0;
  for (std::size_t ly = 0; ly < h; ++ly) {
    for (std::size_t lx = 0; lx < w; ++lx) {
      const std::size_t base = ext.index(z0, y0 + ly, x0 + lx);
      sim::block_inclusive_scan_strided_at<qdiff_t>(
          [&](std::size_t k) -> qdiff_t& { return qat(base + k * ext.nx * ext.ny); }, d, lane++);
    }
  }
  sim::checked::barrier();
}

/// Raw-pointer convenience wrapper (thread-private staging, interval mode).
void chunk_partial_sums(qdiff_t* q, const Extents& ext, std::size_t x0, std::size_t y0,
                        std::size_t z0, std::size_t w, std::size_t h, std::size_t d,
                        std::size_t seq) {
  chunk_partial_sums_at([q](std::size_t gi) -> qdiff_t& { return q[gi]; }, ext, x0, y0, z0, w,
                        h, d, seq);
}

}  // namespace

sim::KernelCost fuse_quant_codes(std::span<const quant_t> quant, std::int32_t radius,
                                 std::span<qdiff_t> qprime_out) {
  if (quant.size() != qprime_out.size()) {
    throw std::invalid_argument("fuse_quant_codes: size mismatch");
  }
  const std::size_t n = quant.size();
  const std::size_t tiles = sim::div_ceil(n, std::size_t{1} << 16);
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for the cost
  constexpr std::int64_t kTile = std::int64_t{1} << 16;
  chk::launch("fuse_quant_codes", tiles,
              chk::bufs(chk::in(quant, "quant"), chk::out(qprime_out, "qprime")),
              ctr::contract(ctr::reads("quant", ctr::b() * kTile, kTile).clamp(),
                            ctr::writes("qprime", ctr::b() * kTile, kTile).clamp()),
              [&, n, radius](std::size_t t, const auto& vquant, const auto& vqprime) {
    const std::size_t lo = t << 16;
    const std::size_t hi = std::min(lo + (std::size_t{1} << 16), n);
    for (std::size_t i = lo; i < hi; ++i) {
      vqprime[i] = static_cast<qdiff_t>(vquant[i]) - radius;
    }
  });
  sim::KernelCost c;
  traffic_scope.apply(c);  // contract-derived: quant read + qprime write
  c.flops = n;
  c.parallel_items = n;
  c.pattern = sim::AccessPattern::kCoalescedStreaming;
  return c;
}

template <typename T>
sim::KernelCost lorenzo_reconstruct_fused(std::span<qdiff_t> qprime, const Extents& ext,
                                          double eb_abs, std::span<T> out,
                                          const ReconstructConfig& cfg) {
  if (qprime.size() != ext.count() || out.size() != ext.count()) {
    throw std::invalid_argument("lorenzo_reconstruct_fused: size mismatch");
  }
  if (cfg.variant == ReconstructVariant::kCoarseChunkSerial) {
    throw std::invalid_argument(
        "lorenzo_reconstruct_fused: coarse variant needs lorenzo_reconstruct_coarse");
  }
  const bool naive = cfg.variant == ReconstructVariant::kNaivePartialSum;
  const std::size_t seq = naive ? 1 : cfg.sequentiality;
  const double eb2 = 2.0 * eb_abs;
  const auto grid = make_grid(ext);
  const ChunkShape cs = grid.cs;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for the cost
  const auto tile_of = [&](ctr::AccessKind a, const char* buf) {
    return ctr::box(a, buf, ctr::bx() * cs.cx, static_cast<std::int64_t>(cs.cx),
                    ctr::by() * cs.cy, static_cast<std::int64_t>(cs.cy), ctr::bz() * cs.cz,
                    static_cast<std::int64_t>(cs.cz), static_cast<std::int64_t>(ext.nx),
                    static_cast<std::int64_t>(ext.ny), static_cast<std::int64_t>(ext.nz));
  };
  chk::launch_3d("lorenzo_reconstruct_fused",
                 {static_cast<std::uint32_t>(grid.gx), static_cast<std::uint32_t>(grid.gy),
                  static_cast<std::uint32_t>(grid.gz)},
                 chk::bufs(chk::inout(qprime, "qprime"), chk::out(out, "out")),
                 ctr::contract(tile_of(ctr::AccessKind::kReadWrite, "qprime"),
                               tile_of(ctr::AccessKind::kWrite, "out")),
                 [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& vqprime,
                     const auto& vout) {
    const std::size_t x0 = bx * cs.cx, y0 = by * cs.cy, z0 = bz * cs.cz;
    const std::size_t w = std::min(cs.cx, ext.nx - x0);
    const std::size_t h = std::min(cs.cy, ext.ny - y0);
    const std::size_t d = std::min(cs.cz, ext.nz - z0);

    if (naive) {
      // Proof-of-concept kernel: stage the chunk through "shared memory",
      // scan with 1 item per thread, write back.
      std::array<qdiff_t, kMaxChunkElems> shared;
      for (std::size_t lz = 0; lz < d; ++lz)
        for (std::size_t ly = 0; ly < h; ++ly)
          for (std::size_t lx = 0; lx < w; ++lx)
            shared[(lz * h + ly) * w + lx] = vqprime[ext.index(z0 + lz, y0 + ly, x0 + lx)];
      Extents local = ext.rank == 1   ? Extents::d1(w)
                      : ext.rank == 2 ? Extents::d2(h, w)
                                      : Extents::d3(d, h, w);
      chunk_partial_sums(shared.data(), local, 0, 0, 0, w, h, d, 1);
      for (std::size_t lz = 0; lz < d; ++lz)
        for (std::size_t ly = 0; ly < h; ++ly)
          for (std::size_t lx = 0; lx < w; ++lx)
            vqprime[ext.index(z0 + lz, y0 + ly, x0 + lx)] = shared[(lz * h + ly) * w + lx];
    } else if (vqprime.word_granular()) {
      // Word mode: route every scan access through the view so the shadow
      // sees each virtual thread's per-word footprint and barrier epochs.
      chunk_partial_sums_at([&vqprime](std::size_t gi) -> qdiff_t& { return vqprime[gi]; },
                            ext, x0, y0, z0, w, h, d, seq);
    } else {
      // The scan passes walk the chunk with raw strided pointers; declare
      // the chunk's row footprint (the union of all three passes) up front.
      for (std::size_t lz = 0; lz < d; ++lz)
        for (std::size_t ly = 0; ly < h; ++ly)
          vqprime.note_rw(ext.index(z0 + lz, y0 + ly, x0), w);
      chunk_partial_sums(vqprime.data(), ext, x0, y0, z0, w, h, d, seq);
    }

    // Algorithm 1 line 13: scale back to data units.
    for (std::size_t lz = 0; lz < d; ++lz)
      for (std::size_t ly = 0; ly < h; ++ly)
        for (std::size_t lx = 0; lx < w; ++lx) {
          const std::size_t gi = ext.index(z0 + lz, y0 + ly, x0 + lx);
          vout[gi] = static_cast<T>(static_cast<double>(vqprime[gi]) * eb2);
        }
  });

  const std::size_t n = ext.count();
  sim::KernelCost c;
  // Contract-derived traffic (qprime is read+written in place, out stored);
  // the simulated fused launch stands in for one launch per scan direction
  // on the device, so the modeled launch count stays ext.rank.
  traffic_scope.apply(c);
  c.flops = n * (2 * static_cast<std::size_t>(ext.rank) + 2);
  c.parallel_items = n;
  c.pattern = naive ? sim::AccessPattern::kTiledShared
                    : sim::AccessPattern::kCoalescedStreaming;
  const auto& table = naive ? kNaiveFactor : kFusedFactor;
  c.custom_factor = table[static_cast<std::size_t>(ext.rank)];
  c.launches = ext.rank;  // one fused launch per scan direction
  return c;
}

template <typename T>
sim::KernelCost lorenzo_reconstruct_coarse(std::span<const quant_t> quant,
                                           std::span<const qdiff_t> outlier_value_dense,
                                           const Extents& ext, double eb_abs,
                                           const QuantConfig& qcfg, std::span<T> out) {
  if (quant.size() != ext.count() || out.size() != ext.count() ||
      outlier_value_dense.size() != ext.count()) {
    throw std::invalid_argument("lorenzo_reconstruct_coarse: size mismatch");
  }
  const double eb2 = 2.0 * eb_abs;
  const std::int64_t r = qcfg.radius();
  const auto grid = make_grid(ext);
  const ChunkShape cs = grid.cs;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for the cost
  const auto tile_of = [&](ctr::AccessKind a, const char* buf) {
    return ctr::box(a, buf, ctr::bx() * cs.cx, static_cast<std::int64_t>(cs.cx),
                    ctr::by() * cs.cy, static_cast<std::int64_t>(cs.cy), ctr::bz() * cs.cz,
                    static_cast<std::int64_t>(cs.cz), static_cast<std::int64_t>(ext.nx),
                    static_cast<std::int64_t>(ext.ny), static_cast<std::int64_t>(ext.nz));
  };
  chk::launch_3d("lorenzo_reconstruct_coarse",
                 {static_cast<std::uint32_t>(grid.gx), static_cast<std::uint32_t>(grid.gy),
                  static_cast<std::uint32_t>(grid.gz)},
                 chk::bufs(chk::in(quant, "quant"),
                           chk::in(outlier_value_dense, "outlier"),
                           chk::out(out, "out")),
                 ctr::contract(tile_of(ctr::AccessKind::kRead, "quant"),
                               tile_of(ctr::AccessKind::kRead, "outlier"),
                               tile_of(ctr::AccessKind::kWrite, "out")),
                 [&](std::uint32_t bx, std::uint32_t by, std::uint32_t bz, const auto& vquant,
                     const auto& voutlier, const auto& vout) {
    const std::size_t x0 = bx * cs.cx, y0 = by * cs.cy, z0 = bz * cs.cz;
    const std::size_t w = std::min(cs.cx, ext.nx - x0);
    const std::size_t h = std::min(cs.cy, ext.ny - y0);
    const std::size_t d = std::min(cs.cz, ext.nz - z0);

    std::array<std::int64_t, kMaxChunkElems> pq;  // reconstructed prequant values
    const auto lidx = [&](std::size_t lz, std::size_t ly, std::size_t lx) {
      return (lz * h + ly) * w + lx;
    };
    const auto at = [&](std::ptrdiff_t lz, std::ptrdiff_t ly, std::ptrdiff_t lx) -> std::int64_t {
      if (lx < 0 || ly < 0 || lz < 0) return 0;
      return pq[lidx(static_cast<std::size_t>(lz), static_cast<std::size_t>(ly),
                     static_cast<std::size_t>(lx))];
    };

    // Serial raster-order reconstruction: each value depends on its fully
    // reconstructed predecessors (the data dependency §II-B.2 describes).
    for (std::size_t lz = 0; lz < d; ++lz) {
      for (std::size_t ly = 0; ly < h; ++ly) {
        for (std::size_t lx = 0; lx < w; ++lx) {
          const auto x = static_cast<std::ptrdiff_t>(lx);
          const auto y = static_cast<std::ptrdiff_t>(ly);
          const auto z = static_cast<std::ptrdiff_t>(lz);
          std::int64_t pred = 0;
          switch (ext.rank) {
            case 1: pred = at(0, 0, x - 1); break;
            case 2: pred = at(0, y - 1, x) + at(0, y, x - 1) - at(0, y - 1, x - 1); break;
            case 3:
              pred = at(z, y - 1, x) + at(z, y, x - 1) + at(z - 1, y, x)
                   - at(z, y - 1, x - 1) - at(z - 1, y - 1, x) - at(z - 1, y, x - 1)
                   + at(z - 1, y - 1, x - 1);
              break;
            default: break;
          }
          const std::size_t gi = ext.index(z0 + lz, y0 + ly, x0 + lx);
          const quant_t q = vquant[gi];
          std::int64_t val;
          if (q == 0) {
            val = voutlier[gi];  // divergent outlier branch
          } else {
            val = pred + (static_cast<std::int64_t>(q) - r);
          }
          pq[lidx(lz, ly, lx)] = val;
          vout[gi] = static_cast<T>(static_cast<double>(val) * eb2);
        }
      }
    }
  });

  const std::size_t n = ext.count();
  const std::size_t chunks = grid.gx * grid.gy * grid.gz;
  sim::KernelCost c;
  traffic_scope.apply(c);  // contract-derived: quant+outlier reads, out store
  c.flops = n * (2 * static_cast<std::size_t>(ext.rank) + 4);
  c.parallel_items = chunks;  // one virtual thread per chunk
  c.pattern = sim::AccessPattern::kStrided;
  c.custom_factor = kCoarseFactor[static_cast<std::size_t>(ext.rank)];
  return c;
}

template sim::KernelCost lorenzo_reconstruct_fused<float>(std::span<qdiff_t>, const Extents&,
                                                          double, std::span<float>,
                                                          const ReconstructConfig&);
template sim::KernelCost lorenzo_reconstruct_fused<double>(std::span<qdiff_t>, const Extents&,
                                                           double, std::span<double>,
                                                           const ReconstructConfig&);
template sim::KernelCost lorenzo_reconstruct_coarse<float>(std::span<const quant_t>,
                                                           std::span<const qdiff_t>,
                                                           const Extents&, double,
                                                           const QuantConfig&, std::span<float>);
template sim::KernelCost lorenzo_reconstruct_coarse<double>(std::span<const quant_t>,
                                                            std::span<const qdiff_t>,
                                                            const Extents&, double,
                                                            const QuantConfig&, std::span<double>);

}  // namespace szp
