// szp — block-wise linear-regression predictor (SZ2-style, Liang et al.
// Big Data'18), the alternative predictor the cuSZ+ paper names as future
// work ("implement other data prediction methods such as
// linear-regression-based predictors", §VII).
//
// Each chunk (same shapes as the Lorenzo chunks: 256 / 16x16 / 8x8x8) gets
// a least-squares plane fit f(z,y,x) = b0 + b1·x + b2·y + b3·z; residuals
// against the fitted plane are quantized exactly like Lorenzo residuals
// (code = round(residual/2eb) + radius, out-of-range residuals to the
// outlier stream).  Unlike Lorenzo, reconstruction needs no partial sums —
// every element is independent given the block's coefficients — but the
// coefficients must ride in the archive (4 float32 per block) and smooth
// data compresses worse than Lorenzo because residuals do not telescope.
//
// The error bound holds regardless of fit quality: reconstruction is
// d' = f(pos) + code·2eb with the *same* f used during construction.
#pragma once

#include <span>
#include <vector>

#include "core/eb.hh"
#include "core/types.hh"
#include "sim/aligned.hh"
#include "sim/profile.hh"

namespace szp {

struct RegressionResult {
  sim::device_vector<quant_t> quant;          ///< one code per element
  sim::device_vector<qdiff_t> outlier_dense;  ///< residual quanta beyond radius
  std::vector<float> coefficients;            ///< 4 per chunk: b0, b1, b2, b3
  sim::KernelCost cost;
};

/// Fit per-chunk planes and quantize the residuals.
template <typename T>
[[nodiscard]] RegressionResult regression_construct(std::span<const T> data, const Extents& ext,
                                                    double eb_abs, const QuantConfig& quant);

/// Workspace-reuse variant: fills the caller's result struct with
/// capacity-preserving assigns (see core/workspace.hh).
template <typename T>
void regression_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                               const QuantConfig& quant, RegressionResult& res);

/// Reconstruct from codes + outliers + coefficients.  Fully parallel per
/// element (no scan passes).
template <typename T>
sim::KernelCost regression_reconstruct(std::span<const quant_t> quant,
                                       std::span<const qdiff_t> outlier_dense,
                                       std::span<const float> coefficients, const Extents& ext,
                                       double eb_abs, const QuantConfig& qcfg, std::span<T> out);

/// Number of chunks (hence coefficient quadruples) for a field.
[[nodiscard]] std::size_t regression_chunk_count(const Extents& ext);

}  // namespace szp
