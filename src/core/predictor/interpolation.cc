#include "core/predictor/interpolation.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/launch.hh"

namespace szp {

namespace {

/// Largest usable anchor level: the stride must stay within the largest
/// axis so at least one interpolation level exists where possible.
int clamp_level(const Extents& ext, int requested) {
  const std::size_t max_dim = std::max({ext.nx, ext.ny, ext.nz});
  int level = std::max(requested, 0);
  while (level > 0 && (std::size_t{1} << level) >= max_dim) --level;
  return level;
}

std::size_t axis_anchor_count(std::size_t n, std::size_t stride) {
  return (n - 1) / stride + 1;
}

/// Axis-interpolated prediction from reconstructed values at ±s (and ±3s
/// for the cubic form), with a one-sided copy at the upper border.
struct AxisPredictor {
  const float* rec;
  std::size_t stride_elems;  // memory stride of one axis step of size s
  std::size_t count;         // axis length in elements
  std::size_t s;             // axis step in index units
  bool cubic;

  [[nodiscard]] double at(std::size_t base_offset, std::size_t i) const {
    const auto v = [&](std::size_t idx) {
      return static_cast<double>(rec[base_offset + (idx / s) * stride_elems]);
    };
    if (i + s >= count) {
      return v(i - s);  // upper border: copy the left neighbor
    }
    if (cubic && i >= 3 * s && i + 3 * s < count) {
      return (-v(i - 3 * s) + 9.0 * v(i - s) + 9.0 * v(i + s) - v(i + 3 * s)) / 16.0;
    }
    return 0.5 * (v(i - s) + v(i + s));
  }
};

/// One quantize-or-reconstruct step shared by both directions.
struct PointCodec {
  double inv2eb;
  double eb2;
  std::int64_t radius;

  /// Compression: emit the code/outlier for `original` and return the
  /// reconstructed value.
  double encode(double original, double pred, quant_t* code, qdiff_t* outlier) const {
    const std::int64_t q = std::llround((original - pred) * inv2eb);
    if (q > -radius && q < radius) {
      *code = static_cast<quant_t>(q + radius);
      *outlier = 0;
    } else {
      *code = static_cast<quant_t>(radius);
      *outlier = static_cast<qdiff_t>(q);
    }
    return pred + static_cast<double>(q) * eb2;
  }

  /// Decompression: rebuild the value from code/outlier.
  [[nodiscard]] double decode(quant_t code, qdiff_t outlier, double pred) const {
    const std::int64_t q = static_cast<std::int64_t>(code) - radius + outlier;
    return pred + static_cast<double>(q) * eb2;
  }
};

/// Visit every new point of the level with stride `s`, one axis pass at a
/// time, in an order identical between compression and decompression.
/// `fn(gi, pred)` handles one point given its axis-interpolated prediction.
template <typename Fn>
void sweep_level(const Extents& ext, float* rec, std::size_t s, bool cubic, Fn&& fn) {
  const std::size_t s2 = 2 * s;

  // Pass 1 — interpolate along x: coarse y/z, new x.
  for (std::size_t z = 0; z < ext.nz; z += s2) {
    for (std::size_t y = 0; y < ext.ny; y += s2) {
      AxisPredictor px{rec, s, ext.nx, s, cubic};
      const std::size_t row = ext.index(z, y, 0);
      for (std::size_t x = s; x < ext.nx; x += s2) {
        fn(row + x, px.at(row, x));
      }
    }
  }
  if (ext.rank >= 2) {
    // Pass 2 — along y: new y rows, x already filled at stride s.
    for (std::size_t z = 0; z < ext.nz; z += s2) {
      for (std::size_t y = s; y < ext.ny; y += s2) {
        AxisPredictor py{rec, s * ext.nx, ext.ny, s, cubic};
        for (std::size_t x = 0; x < ext.nx; x += s) {
          const std::size_t col = ext.index(z, 0, x);
          fn(ext.index(z, y, x), py.at(col, y));
        }
      }
    }
  }
  if (ext.rank >= 3) {
    // Pass 3 — along z: new z planes, x/y already at stride s.
    for (std::size_t z = s; z < ext.nz; z += s2) {
      for (std::size_t y = 0; y < ext.ny; y += s) {
        AxisPredictor pz{rec, s * ext.nx * ext.ny, ext.nz, s, cubic};
        for (std::size_t x = 0; x < ext.nx; x += s) {
          const std::size_t pillar = ext.index(0, y, x);
          fn(ext.index(z, y, x), pz.at(pillar, z));
        }
      }
    }
  }
}

sim::KernelCost interpolation_cost(const Extents& ext, int level, std::size_t elem_bytes) {
  const std::size_t n = ext.count();
  sim::KernelCost c;
  c.bytes_read = 3 * n * sizeof(float) + n * elem_bytes;
  c.bytes_written = n * (sizeof(quant_t) + sizeof(float));
  c.flops = n * 10;
  c.parallel_items = n / 2;  // the finest level's point count
  c.pattern = sim::AccessPattern::kStrided;
  c.custom_factor = 0.30;  // level-synchronous, mixed-stride access
  c.launches = 3 * std::max(level, 1);
  return c;
}

}  // namespace

std::size_t interpolation_anchor_count(const Extents& ext, int level) {
  const std::size_t stride = std::size_t{1} << clamp_level(ext, level);
  std::size_t count = axis_anchor_count(ext.nx, stride);
  if (ext.rank >= 2) count *= axis_anchor_count(ext.ny, stride);
  if (ext.rank >= 3) count *= axis_anchor_count(ext.nz, stride);
  return count;
}

template <typename T>
void interpolation_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                                  const QuantConfig& qcfg, const InterpolationConfig& cfg,
                                  InterpolationResult& res) {
  qcfg.validate();
  if (data.size() != ext.count()) {
    throw std::invalid_argument("interpolation_construct: data size does not match extents");
  }
  if (!(eb_abs > 0.0) || !std::isfinite(eb_abs)) {
    throw std::invalid_argument("interpolation_construct: bad error bound");
  }

  const std::size_t n = ext.count();
  res.cost = {};
  res.level = clamp_level(ext, cfg.max_level);
  res.quant.assign(n, static_cast<quant_t>(qcfg.radius()));
  res.outlier_dense.assign(n, 0);

  const std::size_t stride = std::size_t{1} << res.level;
  const PointCodec codec{1.0 / (2.0 * eb_abs), 2.0 * eb_abs, qcfg.radius()};

  // Working buffer of reconstructed values; every point is overwritten
  // before any finer level reads it.
  std::vector<float> rec(n);

  // Anchors: stored raw (float) on the 2^L lattice, raster order.
  res.anchors.clear();
  res.anchors.reserve(interpolation_anchor_count(ext, res.level));
  for (std::size_t z = 0; z < ext.nz; z += (ext.rank >= 3 ? stride : ext.nz)) {
    for (std::size_t y = 0; y < ext.ny; y += (ext.rank >= 2 ? stride : ext.ny)) {
      for (std::size_t x = 0; x < ext.nx; x += stride) {
        const std::size_t gi = ext.index(z, y, x);
        const auto v = static_cast<float>(data[gi]);
        res.anchors.push_back(v);
        rec[gi] = v;
      }
    }
  }

  // Levels from coarse to fine.
  for (std::size_t s = stride / 2; s >= 1; s /= 2) {
    sweep_level(ext, rec.data(), s, cfg.cubic, [&](std::size_t gi, double pred) {
      rec[gi] = static_cast<float>(codec.encode(static_cast<double>(data[gi]), pred,
                                                &res.quant[gi], &res.outlier_dense[gi]));
    });
    if (s == 1) break;
  }

  res.cost = interpolation_cost(ext, res.level, sizeof(T));
}

template <typename T>
InterpolationResult interpolation_construct(std::span<const T> data, const Extents& ext,
                                            double eb_abs, const QuantConfig& qcfg,
                                            const InterpolationConfig& cfg) {
  InterpolationResult res;
  interpolation_construct_into(data, ext, eb_abs, qcfg, cfg, res);
  return res;
}

template <typename T>
sim::KernelCost interpolation_reconstruct(std::span<const quant_t> quant,
                                          std::span<const qdiff_t> outlier_dense,
                                          std::span<const float> anchors, int level,
                                          bool cubic, const Extents& ext, double eb_abs,
                                          const QuantConfig& qcfg, std::span<T> out) {
  const std::size_t n = ext.count();
  if (quant.size() != n || outlier_dense.size() != n || out.size() != n) {
    throw std::invalid_argument("interpolation_reconstruct: size mismatch");
  }
  const int lvl = clamp_level(ext, level);
  if (anchors.size() != interpolation_anchor_count(ext, lvl)) {
    throw std::invalid_argument("interpolation_reconstruct: anchor count mismatch");
  }
  const std::size_t stride = std::size_t{1} << lvl;
  const PointCodec codec{1.0 / (2.0 * eb_abs), 2.0 * eb_abs, qcfg.radius()};

  std::vector<float> rec(n);
  std::size_t a = 0;
  for (std::size_t z = 0; z < ext.nz; z += (ext.rank >= 3 ? stride : ext.nz)) {
    for (std::size_t y = 0; y < ext.ny; y += (ext.rank >= 2 ? stride : ext.ny)) {
      for (std::size_t x = 0; x < ext.nx; x += stride) {
        rec[ext.index(z, y, x)] = anchors[a++];
      }
    }
  }

  for (std::size_t s = stride / 2; s >= 1; s /= 2) {
    sweep_level(ext, rec.data(), s, cubic, [&](std::size_t gi, double pred) {
      rec[gi] = static_cast<float>(codec.decode(quant[gi], outlier_dense[gi], pred));
    });
    if (s == 1) break;
  }

  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<T>(rec[i]);
  return interpolation_cost(ext, lvl, sizeof(T));
}

template void interpolation_construct_into<float>(std::span<const float>, const Extents&,
                                                  double, const QuantConfig&,
                                                  const InterpolationConfig&,
                                                  InterpolationResult&);
template void interpolation_construct_into<double>(std::span<const double>, const Extents&,
                                                   double, const QuantConfig&,
                                                   const InterpolationConfig&,
                                                   InterpolationResult&);
template InterpolationResult interpolation_construct<float>(std::span<const float>,
                                                            const Extents&, double,
                                                            const QuantConfig&,
                                                            const InterpolationConfig&);
template InterpolationResult interpolation_construct<double>(std::span<const double>,
                                                             const Extents&, double,
                                                             const QuantConfig&,
                                                             const InterpolationConfig&);
template sim::KernelCost interpolation_reconstruct<float>(std::span<const quant_t>,
                                                          std::span<const qdiff_t>,
                                                          std::span<const float>, int, bool,
                                                          const Extents&, double,
                                                          const QuantConfig&, std::span<float>);
template sim::KernelCost interpolation_reconstruct<double>(std::span<const quant_t>,
                                                           std::span<const qdiff_t>,
                                                           std::span<const float>, int, bool,
                                                           const Extents&, double,
                                                           const QuantConfig&, std::span<double>);

}  // namespace szp
