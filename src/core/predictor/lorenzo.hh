// szp — first-order Lorenzo predictor with dual quantization (paper §IV-A)
// and the three Lorenzo reconstruction strategies evaluated in Table II:
//
//   * kCoarseChunkSerial  — cuSZ baseline: one (virtual) thread serially
//     reconstructs a whole chunk, with a divergent outlier branch
//     (quant-code 0 is the outlier placeholder, outliers live in
//     prequantized-*value* space).
//   * kNaivePartialSum    — proof-of-concept cuSZ+ kernel: chunk staged
//     through "shared memory", one item per thread, N-pass partial sums.
//   * kOptimizedPartialSum — the paper's optimized kernel: in-place fused
//     passes with per-thread sequentiality (default 8), warp-shuffle style
//     fragment propagation.
//
// Construction is chunked (256 / 16x16 / 8x8x8) with a zero prediction
// boundary per chunk, which removes inter-chunk dependencies and is exactly
// the property that makes reconstruction a chunk-local inclusive partial
// sum (the paper's §IV-B proof).
#pragma once

#include <span>
#include <vector>

#include "core/eb.hh"
#include "core/types.hh"
#include "sim/aligned.hh"
#include "sim/profile.hh"
#include "sim/sparse.hh"

namespace szp {

/// Where out-of-range residuals go.
enum class OutlierScheme {
  kResidual,  ///< cuSZ+ (modified quantization, §IV-B.1): store the residual
              ///< δ itself; quant-code is `radius` (δ=0); the decoder fuses
              ///< quant ⊕ outlier with no branch.
  kValue,     ///< cuSZ baseline: store the prequantized value d°; quant-code
              ///< 0 is a placeholder that the serial decoder branches on.
};

enum class ReconstructVariant {
  kCoarseChunkSerial,
  kNaivePartialSum,
  kOptimizedPartialSum,
};

/// Which construction kernel the cost model attributes (the host execution
/// differs only in the staging copy; see lorenzo_construct.cc).
enum class ConstructVariant {
  kBaseline,  ///< cuSZ: shared-memory staging, 1 item/thread
  kOptimized, ///< cuSZ+: register reuse via in-warp shuffle, coarsened threads
};

struct LorenzoConstructResult {
  sim::device_vector<quant_t> quant;          ///< one code per element
  sim::device_vector<qdiff_t> outlier_dense;  ///< zeros except out-of-range entries
  sim::KernelCost cost;
};

/// Dual-quantized Lorenzo construction: prequant d° = round(d/2eb), predict
/// within the chunk, emit quant-codes and a dense outlier array (gathered to
/// sparse by a separate stage, as in the paper's pipeline).
///
/// T is float or double (the paper supports both; doubles raise the VLE
/// compression-ratio ceiling from 32x to 64x).  Requires max|d|/(2*eb) <
/// 2^27 so residual arithmetic stays exact in qdiff_t; the Compressor
/// validates this before calling.
template <typename T>
[[nodiscard]] LorenzoConstructResult lorenzo_construct(
    std::span<const T> data, const Extents& ext, double eb_abs,
    const QuantConfig& quant, OutlierScheme scheme = OutlierScheme::kResidual,
    ConstructVariant variant = ConstructVariant::kOptimized);

/// Workspace-reuse variant: fills the caller's result struct with
/// capacity-preserving assigns, so a reused `res` allocates nothing once
/// its buffers have grown to the field size (see core/workspace.hh).
template <typename T>
void lorenzo_construct_into(std::span<const T> data, const Extents& ext, double eb_abs,
                            const QuantConfig& quant, OutlierScheme scheme,
                            ConstructVariant variant, LorenzoConstructResult& res);

struct ReconstructConfig {
  ReconstructVariant variant = ReconstructVariant::kOptimizedPartialSum;
  std::size_t sequentiality = 8;  ///< items per virtual thread in scan passes
};

/// cuSZ+ fine-grained reconstruction (Algorithm 1, decompression half).
/// `qprime` is the *fused* residual field: (quant - radius) with sparse
/// outliers already scattered in; it is consumed in place (the partial sums
/// overwrite it with the reconstructed prequant values).
/// Writes d = partial_sum * 2eb into `out`.
template <typename T>
sim::KernelCost lorenzo_reconstruct_fused(std::span<qdiff_t> qprime, const Extents& ext,
                                          double eb_abs, std::span<T> out,
                                          const ReconstructConfig& cfg = {});

/// cuSZ baseline coarse-grained reconstruction: quant-codes plus a dense
/// value-space outlier array (placeholder code 0), one virtual thread per
/// chunk, serial raster order with the divergent outlier branch.
template <typename T>
sim::KernelCost lorenzo_reconstruct_coarse(std::span<const quant_t> quant,
                                           std::span<const qdiff_t> outlier_value_dense,
                                           const Extents& ext, double eb_abs,
                                           const QuantConfig& qcfg, std::span<T> out);

/// Helper shared by the decompressor: q' = (quant - radius), then callers
/// scatter outliers on top.  Returns the kernel cost of the fuse pass.
sim::KernelCost fuse_quant_codes(std::span<const quant_t> quant, std::int32_t radius,
                                 std::span<qdiff_t> qprime_out);

// --- Container conveniences (spans are not deduced from vectors) ----------

template <typename T, typename A>
[[nodiscard]] LorenzoConstructResult lorenzo_construct(
    const std::vector<T, A>& data, const Extents& ext, double eb_abs,
    const QuantConfig& quant, OutlierScheme scheme = OutlierScheme::kResidual,
    ConstructVariant variant = ConstructVariant::kOptimized) {
  return lorenzo_construct(std::span<const T>(data.data(), data.size()), ext, eb_abs, quant,
                           scheme, variant);
}

template <typename T, typename Aq, typename Ao>
sim::KernelCost lorenzo_reconstruct_fused(std::vector<qdiff_t, Aq>& qprime, const Extents& ext,
                                          double eb_abs, std::vector<T, Ao>& out,
                                          const ReconstructConfig& cfg = {}) {
  return lorenzo_reconstruct_fused(std::span<qdiff_t>(qprime.data(), qprime.size()), ext,
                                   eb_abs, std::span<T>(out.data(), out.size()), cfg);
}

template <typename T, typename A>
sim::KernelCost lorenzo_reconstruct_coarse(std::span<const quant_t> quant,
                                           std::span<const qdiff_t> outlier_value_dense,
                                           const Extents& ext, double eb_abs,
                                           const QuantConfig& qcfg, std::vector<T, A>& out) {
  return lorenzo_reconstruct_coarse(quant, outlier_value_dense, ext, eb_abs, qcfg,
                                    std::span<T>(out.data(), out.size()));
}

}  // namespace szp
