// szp — fundamental types shared across the compressor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace szp {

/// Quant-code symbol ("multi-byte symbol" in the paper: the enumeration of
/// in-range prediction residuals, §III-A.1).  Capacity defaults to 1024, so
/// one symbol spans two bytes.
using quant_t = std::uint16_t;

/// Signed residual / partial-sum accumulator.  Dual-quantization keeps all
/// reconstruction arithmetic in this integer domain (paper §IV-A.1b), which
/// is exact and lets the partial-sum reorder additions freely.
using qdiff_t = std::int32_t;

/// Row-major extents of a 1/2/3-D field; x is the fastest-varying axis.
struct Extents {
  std::size_t nx = 1;
  std::size_t ny = 1;
  std::size_t nz = 1;
  int rank = 1;

  static Extents d1(std::size_t nx) { return {nx, 1, 1, 1}; }
  static Extents d2(std::size_t ny, std::size_t nx) { return {nx, ny, 1, 2}; }
  static Extents d3(std::size_t nz, std::size_t ny, std::size_t nx) { return {nx, ny, nz, 3}; }

  [[nodiscard]] std::size_t count() const { return nx * ny * nz; }

  [[nodiscard]] std::size_t index(std::size_t z, std::size_t y, std::size_t x) const {
    return (z * ny + y) * nx + x;
  }

  [[nodiscard]] bool operator==(const Extents&) const = default;
};

/// Quantizer configuration.  `capacity` is the number of representable
/// quant-codes (the histogram bin count / Huffman alphabet size); `radius`
/// is the zero point: code = residual + radius.
struct QuantConfig {
  std::uint32_t capacity = 1024;

  [[nodiscard]] std::int32_t radius() const { return static_cast<std::int32_t>(capacity / 2); }

  void validate() const {
    if (capacity < 4 || capacity > 65536 || (capacity & 1) != 0) {
      throw std::invalid_argument("QuantConfig: capacity must be even and in [4, 65536]");
    }
  }
};

/// Chunk (thread-block tile) shapes, matching the paper: 256 for 1-D,
/// 16x16 for 2-D, 8x8x8 for 3-D.  Chunks are compressed independently with
/// a zero prediction boundary, which is what makes reconstruction a
/// chunk-local partial sum.
struct ChunkShape {
  std::size_t cx = 256;
  std::size_t cy = 1;
  std::size_t cz = 1;

  static ChunkShape for_rank(int rank) {
    switch (rank) {
      case 1: return {256, 1, 1};
      case 2: return {16, 16, 1};
      case 3: return {8, 8, 8};
      default: throw std::invalid_argument("ChunkShape: rank must be 1, 2, or 3");
    }
  }

  [[nodiscard]] std::size_t count() const { return cx * cy * cz; }
};

}  // namespace szp
