#include "core/metrics.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/eb.hh"

namespace szp {

template <typename T>
DistortionMetrics compare_fields(std::span<const T> original,
                                 std::span<const T> decompressed) {
  if (original.size() != decompressed.size()) {
    throw std::invalid_argument("compare_fields: size mismatch");
  }
  DistortionMetrics m;
  if (original.empty()) return m;

  const ValueRange range = ValueRange::of(original);
  m.value_range = range.span();

  double sum_sq = 0.0;
  double max_err = 0.0;
#pragma omp parallel for reduction(+ : sum_sq) reduction(max : max_err)
  for (long long i = 0; i < static_cast<long long>(original.size()); ++i) {
    const auto k = static_cast<std::size_t>(i);
    const double e =
        static_cast<double>(original[k]) - static_cast<double>(decompressed[k]);
    sum_sq += e * e;
    const double ae = std::abs(e);
    if (ae > max_err) max_err = ae;
  }
  m.max_abs_error = max_err;
  m.mse = sum_sq / static_cast<double>(original.size());
  if (m.mse > 0.0 && m.value_range > 0.0) {
    m.psnr_db = 20.0 * std::log10(m.value_range) - 10.0 * std::log10(m.mse);
    m.nrmse = std::sqrt(m.mse) / m.value_range;
  } else {
    m.psnr_db = std::numeric_limits<double>::infinity();
    m.nrmse = 0.0;
  }
  return m;
}

template DistortionMetrics compare_fields<float>(std::span<const float>,
                                                  std::span<const float>);
template DistortionMetrics compare_fields<double>(std::span<const double>,
                                                  std::span<const double>);

}  // namespace szp
