// szp — reusable per-call scratch for the compression pipeline.
//
// Every compress() call needs the same family of O(n) buffers: the
// predictor's quant-code and dense-outlier arrays, the histogram bins and
// their block-private replicas, the gathered outlier stream plus its tile
// scratch, and the Huffman encoder's chunk metadata and payload.  Allocating
// them per call makes repeated-field compression malloc-bound; FZ-GPU makes
// the same observation for real device buffers (HPDC'23).  A Workspace owns
// one instance of each buffer and the pipeline stages fill them with
// capacity-preserving assign()/resize() calls, so a reused Compressor
// reaches a steady state where no pipeline buffer grows at all.
//
// Concurrency: a Workspace is single-threaded state.  WorkspacePool hands
// out exclusive leases from a mutex-protected free list — parallel slab
// streaming acquires one workspace per worker from its Compressor's pool,
// and at steady state the pool holds max-concurrency workspaces and
// acquire() allocates nothing.
//
// Accounting: the pool cannot see inside malloc, so it counts *grow events*
// instead — a lease compares the capacity of every tracked buffer at
// release against acquire; any increase is a grow event.  The allocation
// test (test_pipeline.cc) asserts grow events and workspace creations both
// stop after warm-up, and BENCH_pipeline.json measures the wall-clock win.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/huffman/codec.hh"
#include "core/predictor/interpolation.hh"
#include "core/predictor/lorenzo.hh"
#include "core/predictor/regression.hh"
#include "core/thread_safety.hh"
#include "core/types.hh"
#include "sim/sparse.hh"

namespace szp {

/// The pipeline's reusable buffers.  Stages fill the slots that belong to
/// them (see core/pipeline/stage.hh); unused slots stay empty and cost
/// nothing.
struct Workspace {
  // --- Predictor products (one slot per registered predictor) -------------
  LorenzoConstructResult lorenzo;
  RegressionResult regression;
  InterpolationResult interp;

  // --- Outlier gather (dense -> sparse) ------------------------------------
  sim::SparseVector<qdiff_t> outliers;
  std::vector<std::size_t> gather_tile_nnz;
  std::vector<std::size_t> gather_offsets;

  // --- Histogram -----------------------------------------------------------
  std::vector<std::uint64_t> freq;       ///< quant-code histogram
  std::vector<std::uint64_t> hist_priv;  ///< block-private bin replicas

  // --- Codec scratch -------------------------------------------------------
  HuffmanEncoded huffman;                     ///< reused encode product
  std::vector<std::uint64_t> huffman_chunk_bytes;
  std::vector<std::uint64_t> vle_freq;        ///< RLE+VLE stream histograms

  /// Codebook memoization: the canonical book is a pure function of the
  /// histogram, so a reused workspace skips the serial rebuild when the
  /// histogram repeats (time-series snapshots of one field) — the build is
  /// the latency bottleneck on small fields (codebook.hh).  Deterministic
  /// construction keeps the cached and rebuilt books byte-identical.
  HuffmanCodebook book;
  std::vector<std::uint64_t> book_freq;  ///< histogram `book` was built from

  /// Packed little-endian quant-code bytes for the LZ codec family
  /// (core/codec/lz_codecs.cc): the pack kernel fills it in place, so
  /// repeated LZ compression allocates no staging buffer.
  std::vector<std::uint8_t> codec_bytes;

  // --- Out-of-core slab I/O ------------------------------------------------
  /// Per-worker slab staging buffer for sources without a zero-copy view
  /// (plain-file ingest): each pipeline worker read_at()s its claimed slab
  /// into its leased workspace's slab_io, so steady-state out-of-core
  /// streaming allocates no read buffers either.
  std::vector<std::uint8_t> slab_io;

  /// Number of tracked buffers in the capacity snapshot.
  static constexpr std::size_t kTrackedBuffers = 22;

  /// Capacity snapshot of every tracked buffer, in a fixed order.  A fixed
  /// array (not a vector) so lease accounting itself never allocates —
  /// acquire/release sit on the parallel-slab hot path.
  [[nodiscard]] std::array<std::size_t, kTrackedBuffers> capacities() const;
};

/// Exclusive RAII lease on one pool workspace; returns it on destruction.
class WorkspacePool;
class WorkspaceLease {
 public:
  /// An empty lease: holds no workspace, releases nothing.  Lets callers
  /// keep a "lease this worker may or may not hold" slot (e.g. the
  /// single-worker streaming path leases only under a parallel config).
  WorkspaceLease() = default;
  WorkspaceLease(WorkspaceLease&&) noexcept = default;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(WorkspaceLease&&) = delete;
  ~WorkspaceLease();

  [[nodiscard]] explicit operator bool() const { return ws_ != nullptr; }
  [[nodiscard]] Workspace& operator*() { return *ws_; }
  [[nodiscard]] Workspace* operator->() { return ws_.get(); }

 private:
  friend class WorkspacePool;
  WorkspaceLease(WorkspacePool* pool, std::unique_ptr<Workspace> ws,
                 const std::array<std::size_t, Workspace::kTrackedBuffers>& caps)
      : pool_(pool), ws_(std::move(ws)), caps_at_acquire_(caps) {}

  WorkspacePool* pool_ = nullptr;
  std::unique_ptr<Workspace> ws_;
  std::array<std::size_t, Workspace::kTrackedBuffers> caps_at_acquire_;
};

/// Mutex-protected free list of workspaces.  acquire() pops an idle
/// workspace (or creates one on a cold pool); the lease returns it.
class WorkspacePool {
 public:
  struct Stats {
    std::size_t created = 0;      ///< workspaces ever constructed
    std::size_t leases = 0;       ///< acquire() calls served
    std::size_t grow_events = 0;  ///< tracked-buffer capacity growths
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  [[nodiscard]] WorkspaceLease acquire() SZP_EXCLUDES(mutex_);
  [[nodiscard]] Stats stats() const SZP_EXCLUDES(mutex_);

 private:
  friend class WorkspaceLease;
  void release(std::unique_ptr<Workspace> ws,
               const std::array<std::size_t, Workspace::kTrackedBuffers>& caps_at_acquire)
      SZP_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_ SZP_GUARDED_BY(mutex_);
  Stats stats_ SZP_GUARDED_BY(mutex_);
};

/// Process-wide pool backing the static decompress()/inspect() entry points
/// and any caller that does not hold a Compressor.
[[nodiscard]] WorkspacePool& default_workspace_pool();

}  // namespace szp
