// szp — little-endian byte-stream serialization for archives.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace szp {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void put_span(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size_bytes());
  }

  template <typename T, typename Alloc>
  void put_vector(const std::vector<T, Alloc>& v) {
    put_span(std::span<const T>(v.data(), v.size()));
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("ByteReader: truncated archive (need " + std::to_string(n) +
                               " bytes, have " + std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace szp
