// szp — little-endian byte-stream serialization for archives.
//
// The reader side treats the stream as untrusted: every length field is
// validated against the remaining bytes with overflow-safe arithmetic
// *before* any allocation, and failures surface as szp::DecodeError tagged
// with the segment the caller declared via set_segment().
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/error.hh"

namespace szp {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void put_span(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size_bytes());
  }

  template <typename T, typename Alloc>
  void put_vector(const std::vector<T, Alloc>& v) {
    put_span(std::span<const T>(v.data(), v.size()));
  }

  /// Pre-size the underlying buffer (capacity hint, e.g. a streaming
  /// container's estimated total from its first packed slab) so incremental
  /// packing does not pay repeated reallocation-and-copy.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Label the archive segment being parsed; it is embedded in every
  /// DecodeError this reader throws so operators can localize corruption.
  void set_segment(const char* segment) { segment_ = segment; }
  [[nodiscard]] const char* segment() const { return segment_; }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    const std::uint64_t n = checked_count(sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), bytes_.data() + pos_, static_cast<std::size_t>(n) * sizeof(T));
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  /// Zero-copy variant of get_vector<uint8_t>: a view into the underlying
  /// buffer, valid for its lifetime.  Used for nested archives (streaming
  /// slabs, bundle entries) so skipping or re-parsing never copies.
  [[nodiscard]] std::span<const std::uint8_t> get_bytes() {
    const std::uint64_t n = checked_count(1);
    const auto view = bytes_.subspan(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return view;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  /// Overflow-safe: pos_ <= bytes_.size() is an invariant, so the
  /// subtraction cannot wrap — unlike the naive `pos_ + n > size()`, which a
  /// crafted n close to UINT64_MAX would defeat.
  void require(std::size_t n) const {
    if (n > bytes_.size() - pos_) {
      throw DecodeError(DecodeErrorKind::kTruncated, segment_,
                        "need " + std::to_string(n) + " bytes, have " +
                            std::to_string(bytes_.size() - pos_));
    }
  }

  /// Read a 64-bit element count and validate it against the remaining bytes
  /// *before* any multiplication or allocation, so a spliced length field
  /// can neither wrap the bounds check nor trigger a huge allocation.
  [[nodiscard]] std::uint64_t checked_count(std::size_t elem_size) {
    const auto n = get<std::uint64_t>();
    if (n > remaining() / elem_size) {
      throw DecodeError(DecodeErrorKind::kLengthOverflow, segment_,
                        "length field " + std::to_string(n) + " x " +
                            std::to_string(elem_size) + " bytes exceeds the " +
                            std::to_string(remaining()) + " remaining");
    }
    return n;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  const char* segment_ = "archive";
};

}  // namespace szp
