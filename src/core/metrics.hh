// szp — distortion and ratio metrics reported by the paper's evaluation
// (compression ratio, PSNR, max pointwise error).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace szp {

struct DistortionMetrics {
  double max_abs_error = 0.0;
  double mse = 0.0;
  double psnr_db = 0.0;   ///< 20*log10(range) - 10*log10(mse)
  double nrmse = 0.0;     ///< sqrt(mse)/range
  double value_range = 0.0;
};

/// Pointwise comparison of original vs decompressed fields (must be the
/// same length).  Instantiated for float and double.
template <typename T>
[[nodiscard]] DistortionMetrics compare_fields(std::span<const T> original,
                                               std::span<const T> decompressed);

/// Vector convenience (avoids span-conversion noise at call sites).
template <typename T, typename A1, typename A2>
[[nodiscard]] DistortionMetrics compare_fields(const std::vector<T, A1>& original,
                                               const std::vector<T, A2>& decompressed) {
  return compare_fields(std::span<const T>(original.data(), original.size()),
                        std::span<const T>(decompressed.data(), decompressed.size()));
}

/// Compression ratio: original bytes / compressed bytes.
[[nodiscard]] inline double compression_ratio(std::size_t original_bytes,
                                              std::size_t compressed_bytes) {
  return compressed_bytes > 0
             ? static_cast<double>(original_bytes) / static_cast<double>(compressed_bytes)
             : 0.0;
}

}  // namespace szp
