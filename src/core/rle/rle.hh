// szp — run-length encoding of quant-codes (paper §III-B, Workflow-RLE).
//
// Implemented over the substrate's reduce_by_key (the paper uses
// thrust::reduce_by_key, §V-B).  Runs longer than 65535 are split so counts
// serialize as u16; the optional VLE stage (RLE+VLE) Huffman-codes both the
// run-value stream and the run-length stream, which is what delivers the
// paper's "steady 2x-3x gain beyond RLE".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hh"
#include "sim/profile.hh"

namespace szp {

struct RleEncoded {
  std::vector<quant_t> values;        ///< one per run
  std::vector<std::uint16_t> counts;  ///< run lengths (long runs split)
  std::uint64_t num_symbols = 0;      ///< original sequence length
  sim::KernelCost cost;

  [[nodiscard]] std::size_t run_count() const { return values.size(); }
  [[nodiscard]] std::size_t byte_size() const {
    return values.size() * sizeof(quant_t) + counts.size() * sizeof(std::uint16_t);
  }
};

/// Collapse the symbol stream into (value, count) runs.
[[nodiscard]] RleEncoded rle_encode(std::span<const quant_t> symbols);

struct RleDecoded {
  std::vector<quant_t> symbols;
  sim::KernelCost cost;
};

/// Expand runs back to the flat symbol stream.
[[nodiscard]] RleDecoded rle_decode(const RleEncoded& enc);

/// Average encoded bits per original symbol for plain RLE (value+count pairs
/// over run lengths) — the paper's ⟨b⟩_RLE used by the workflow selector.
[[nodiscard]] double rle_bits_per_symbol(const RleEncoded& enc);

}  // namespace szp
