#include "core/rle/rle.hh"

#include <limits>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/reduce_by_key.hh"

namespace szp {

RleEncoded rle_encode(std::span<const quant_t> symbols) {
  RleEncoded enc;
  enc.num_symbols = symbols.size();
  if (symbols.empty()) return enc;

  sim::traffic::Scope traffic_scope;  // contract-derived volumes for enc.cost
  auto runs = sim::reduce_by_key<quant_t, std::uint64_t>(symbols);

  enc.values.reserve(runs.keys.size());
  enc.counts.reserve(runs.keys.size());
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint16_t>::max();
  for (std::size_t r = 0; r < runs.keys.size(); ++r) {
    std::uint64_t remaining = runs.counts[r];
    while (remaining > kMax) {
      enc.values.push_back(runs.keys[r]);
      enc.counts.push_back(static_cast<std::uint16_t>(kMax));
      remaining -= kMax;
    }
    enc.values.push_back(runs.keys[r]);
    enc.counts.push_back(static_cast<std::uint16_t>(remaining));
  }

  enc.cost = sim::reduce_by_key_cost<quant_t>(symbols.size(), enc.values.size());
  // Traffic from the footprint contract of the tile_runs launch; the run
  // merge is host-side, so the hand-modeled store volume for the compacted
  // (value, count) pairs is added on top.
  traffic_scope.apply(enc.cost);
  enc.cost.bytes_written += enc.byte_size();
  return enc;
}

RleDecoded rle_decode(const RleEncoded& enc) {
  RleDecoded dec;
  if (enc.values.size() != enc.counts.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "rle streams",
                      "values/counts size mismatch (" + std::to_string(enc.values.size()) +
                          " vs " + std::to_string(enc.counts.size()) + ")");
  }
  // Offsets of each run in the output (exclusive scan), then parallel fill.
  // The sum is validated against the declared symbol count *before* the
  // output allocation, so a spliced count cannot trigger a huge resize.
  std::vector<std::uint64_t> offset(enc.counts.size() + 1, 0);
  for (std::size_t r = 0; r < enc.counts.size(); ++r) {
    offset[r + 1] = offset[r] + enc.counts[r];
  }
  if (offset.back() != enc.num_symbols) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "rle streams",
                      "run lengths sum to " + std::to_string(offset.back()) +
                          ", declared symbol count is " + std::to_string(enc.num_symbols));
  }
  dec.symbols.resize(enc.num_symbols);
  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for dec.cost
  // Each run writes [offset[r], offset[r+1]) — run lengths are data, so the
  // write footprint is data-dependent and the expand kernel honestly stays
  // on dynamic (word-shadow) checking.
  chk::launch("rle_decode/expand", enc.values.size(),
              chk::bufs(chk::in(std::span<const quant_t>(enc.values), "values"),
                        chk::in(std::span<const std::uint64_t>(offset), "offset"),
                        chk::out(std::span<quant_t>(dec.symbols), "symbols")),
              ctr::contract(ctr::reads("values", ctr::b(), 1),
                            ctr::reads("offset", ctr::b(), 2),
                            // The validated run-length sum is the exact
                            // expanded volume: the dynamic clause's bound.
                            ctr::writes_dyn("symbols",
                                            static_cast<std::int64_t>(enc.num_symbols))),
              [](std::size_t r, const auto& vvalues, const auto& voffset, const auto& vsym) {
    const auto lo = static_cast<std::size_t>(voffset[r]);
    const auto hi = static_cast<std::size_t>(voffset[r + 1]);
    vsym.note_write(lo, hi - lo);
    std::fill(vsym.data() + lo, vsym.data() + hi, vvalues[r]);
  });

  // Traffic from the expand contract (the offset scan above is host-side
  // metadata validation, not a device launch).
  traffic_scope.apply(dec.cost);
  dec.cost.flops = enc.num_symbols;
  dec.cost.parallel_items = enc.values.empty() ? 1 : enc.values.size();
  dec.cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  return dec;
}

double rle_bits_per_symbol(const RleEncoded& enc) {
  if (enc.num_symbols == 0) return 0.0;
  const double bits = static_cast<double>(enc.byte_size()) * 8.0;
  return bits / static_cast<double>(enc.num_symbols);
}

}  // namespace szp
