#include "core/bundle.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/checksum.hh"
#include "core/serialize.hh"

namespace szp {

namespace {
constexpr std::uint32_t kMagic = 0x424E5A53;  // "SZNB"
constexpr std::uint16_t kVersion = 1;
}  // namespace

void Bundle::add(std::string name, std::vector<std::uint8_t> archive) {
  if (name.empty() || name.size() > 4096) {
    throw std::invalid_argument("Bundle::add: name must be non-empty and short");
  }
  if (contains(name)) {
    throw std::invalid_argument("Bundle::add: duplicate field name '" + name + "'");
  }
  names_.push_back(std::move(name));
  archives_.push_back(std::move(archive));
}

bool Bundle::contains(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

std::vector<Bundle::Entry> Bundle::entries() const {
  std::vector<Entry> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.push_back({names_[i], archives_[i].size()});
  }
  return out;
}

const std::vector<std::uint8_t>& Bundle::archive(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::out_of_range("Bundle: no field named '" + name + "'");
  }
  return archives_[static_cast<std::size_t>(it - names_.begin())];
}

std::vector<std::uint8_t> Bundle::serialize() const {
  ByteWriter w;
  w.put(kMagic);
  w.put(kVersion);
  w.put<std::uint64_t>(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.put_span(std::span<const char>(names_[i].data(), names_[i].size()));
    w.put_vector(archives_[i]);
  }
  auto bytes = w.take();
  const std::uint32_t crc = crc32(bytes);
  ByteWriter tail;
  tail.put(crc);
  const auto tail_bytes = tail.take();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  return bytes;
}

Bundle Bundle::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) {
    throw std::runtime_error("Bundle: blob too small");
  }
  const auto body = bytes.subspan(0, bytes.size() - 4);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, 4);
  if (crc32(body) != stored) {
    throw std::runtime_error("Bundle: checksum mismatch (corrupt bundle)");
  }

  ByteReader r(body);
  if (r.get<std::uint32_t>() != kMagic) {
    throw std::runtime_error("Bundle: bad magic");
  }
  if (r.get<std::uint16_t>() != kVersion) {
    throw std::runtime_error("Bundle: unsupported version");
  }
  Bundle b;
  const auto count = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_bytes = r.get_vector<char>();
    auto archive = r.get_vector<std::uint8_t>();
    b.add(std::string(name_bytes.begin(), name_bytes.end()), std::move(archive));
  }
  return b;
}

}  // namespace szp
