#include "core/bundle.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/checksum.hh"
#include "core/error.hh"
#include "core/serialize.hh"

namespace szp {

namespace {
constexpr std::uint32_t kMagic = 0x424E5A53;  // "SZNB"
constexpr std::uint16_t kVersion = 2;  // v2 added per-entry CRC-32; v1 still readable

std::uint32_t entry_crc(const std::string& name, std::span<const std::uint8_t> archive) {
  auto state = crc32_init();
  state = crc32_update(
      state, {reinterpret_cast<const std::uint8_t*>(name.data()), name.size()});
  state = crc32_update(state, archive);
  return crc32_final(state);
}

/// Whole-blob CRC check; returns the body span (blob minus trailer).
std::span<const std::uint8_t> split_body(std::span<const std::uint8_t> bytes, bool* crc_ok) {
  if (bytes.size() < 4) {
    throw DecodeError(DecodeErrorKind::kTruncated, "bundle",
                      "blob too small to hold the trailing checksum");
  }
  const auto body = bytes.subspan(0, bytes.size() - 4);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, 4);
  *crc_ok = crc32(body) == stored;
  return body;
}

struct BundleHeader {
  std::uint16_t version;
  std::uint64_t count;
};

BundleHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZNB bundle");
  }
  BundleHeader h{};
  h.version = r.get<std::uint16_t>();
  if (h.version < 1 || h.version > kVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "bundle version " + std::to_string(h.version) + ", this reader handles 1-" +
                          std::to_string(kVersion));
  }
  h.count = r.get<std::uint64_t>();
  // Each entry is at least two u64 length prefixes (plus a CRC in v2).
  if (h.count > r.remaining() / 16) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "entry count " + std::to_string(h.count) + " exceeds what " +
                          std::to_string(r.remaining()) + " remaining bytes can hold");
  }
  return h;
}

void validate_name(const std::string& name, const Bundle& b) {
  if (name.empty() || name.size() > 4096) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "name index",
                      "entry name empty or over 4096 bytes");
  }
  if (b.contains(name)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "name index",
                      "duplicate field name '" + name + "'");
  }
}
}  // namespace

void Bundle::add(std::string name, std::vector<std::uint8_t> archive) {
  if (name.empty() || name.size() > 4096) {
    throw std::invalid_argument("Bundle::add: name must be non-empty and short");
  }
  if (contains(name)) {
    throw std::invalid_argument("Bundle::add: duplicate field name '" + name + "'");
  }
  names_.push_back(std::move(name));
  archives_.push_back(std::move(archive));
}

bool Bundle::contains(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

std::vector<Bundle::Entry> Bundle::entries() const {
  std::vector<Entry> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.push_back({names_[i], archives_[i].size()});
  }
  return out;
}

const std::vector<std::uint8_t>& Bundle::archive(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::out_of_range("Bundle: no field named '" + name + "'");
  }
  return archives_[static_cast<std::size_t>(it - names_.begin())];
}

std::vector<std::uint8_t> Bundle::serialize() const {
  ByteWriter w;
  w.put(kMagic);
  w.put(kVersion);
  w.put<std::uint64_t>(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.put_span(std::span<const char>(names_[i].data(), names_[i].size()));
    w.put_vector(archives_[i]);
    w.put(entry_crc(names_[i], archives_[i]));
  }
  auto bytes = w.take();
  const std::uint32_t crc = crc32(bytes);
  ByteWriter tail;
  tail.put(crc);
  const auto tail_bytes = tail.take();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  return bytes;
}

Bundle Bundle::deserialize(std::span<const std::uint8_t> bytes) {
  return decode_guard("bundle", [&] {
    bool crc_ok = false;
    const auto body = split_body(bytes, &crc_ok);
    if (!crc_ok) {
      throw DecodeError(DecodeErrorKind::kChecksumMismatch, "bundle",
                        "trailing CRC-32 does not match the bundle body");
    }
    ByteReader r(body);
    const BundleHeader h = read_header(r);
    Bundle b;
    for (std::uint64_t i = 0; i < h.count; ++i) {
      r.set_segment("name index");
      const auto name_bytes = r.get_vector<char>();
      std::string name(name_bytes.begin(), name_bytes.end());
      r.set_segment("entry payload");
      auto archive = r.get_vector<std::uint8_t>();
      if (h.version >= 2 && r.get<std::uint32_t>() != entry_crc(name, archive)) {
        throw DecodeError(DecodeErrorKind::kChecksumMismatch, "entry payload",
                          "per-entry CRC-32 mismatch on entry " + std::to_string(i));
      }
      validate_name(name, b);
      b.add(std::move(name), std::move(archive));
    }
    return b;
  });
}

BundleSalvage Bundle::deserialize_tolerant(std::span<const std::uint8_t> bytes) {
  return decode_guard("bundle", [&] {
    BundleSalvage res;
    const auto body = split_body(bytes, &res.container_crc_ok);
    ByteReader r(body);
    const BundleHeader h = read_header(r);
    for (std::uint64_t i = 0; i < h.count; ++i) {
      const std::string fallback = "entry #" + std::to_string(i);
      try {
        r.set_segment("name index");
        const auto name_bytes = r.get_vector<char>();
        std::string name(name_bytes.begin(), name_bytes.end());
        r.set_segment("entry payload");
        auto archive = r.get_vector<std::uint8_t>();
        bool intact;
        if (h.version >= 2) {
          // Per-entry evidence localizes the damage.
          intact = r.get<std::uint32_t>() == entry_crc(name, archive);
        } else {
          // v1 has only the whole-blob CRC: with it broken, no individual
          // entry can be vouched for.
          intact = res.container_crc_ok;
        }
        if (!intact || name.empty() || name.size() > 4096 || res.bundle.contains(name)) {
          res.corrupt.push_back(name.empty() ? fallback : name);
          continue;
        }
        res.bundle.add(std::move(name), std::move(archive));
      } catch (const DecodeError&) {
        // A broken length field desynchronizes the stream; nothing after
        // this point can be framed reliably.
        for (std::uint64_t k = i; k < h.count; ++k) {
          res.corrupt.push_back("entry #" + std::to_string(k));
        }
        break;
      }
    }
    return res;
  });
}

}  // namespace szp
