// szp — the stage registry: PredictorKind -> PredictStage and
// Workflow -> LosslessCodec.
//
// The built-in stages (Lorenzo / regression / interpolation predictors;
// Huffman / RLE / RLE+VLE / rANS / lz77 / lzh / lzr codecs) are registered
// lazily inside instance()'s constructor rather than by static-initializer
// side effects: self-registering translation units would be dropped by the
// linker when szp_core is consumed as a static library, and lazy
// construction is also immune to initialization-order issues.
//
// Extending the pipeline (see DESIGN.md §2.1):
//   1. implement PredictStage (stage.hh) or LosslessCodec (core/codec/);
//   2. call StageRegistry::instance().add(std::make_unique<MyStage>())
//      during startup, before the first compress/decompress;
//   3. allot the next PredictorKind / Workflow tag — the archive header
//      stores it, so tags are append-only (codec tags past kRans write
//      archive format version 3, core/archive.hh).
// Registration is not thread-safe against concurrent lookups; do it before
// spinning up compression threads.
#pragma once

#include <memory>
#include <vector>

#include "core/codec/codec.hh"
#include "core/pipeline/stage.hh"

namespace szp::pipeline {

class StageRegistry {
 public:
  /// The process-wide registry, with all built-in stages registered.
  [[nodiscard]] static StageRegistry& instance();

  StageRegistry(const StageRegistry&) = delete;
  StageRegistry& operator=(const StageRegistry&) = delete;

  void add(std::unique_ptr<PredictStage> stage);
  void add(std::unique_ptr<LosslessCodec> codec);

  /// Lookups throw std::logic_error for an unregistered key (and for
  /// Workflow::kAuto, which the selector must resolve before encoding).
  [[nodiscard]] const PredictStage& predict(PredictorKind kind) const;
  [[nodiscard]] const LosslessCodec& codec(Workflow wf) const;

  [[nodiscard]] const std::vector<std::unique_ptr<PredictStage>>& predictors() const {
    return predictors_;
  }
  /// Registration order; the selector ranks (and `analyze --codecs` prints)
  /// exactly this set.
  [[nodiscard]] const std::vector<std::unique_ptr<LosslessCodec>>& codecs() const {
    return codecs_;
  }

 private:
  StageRegistry();  // registers the built-ins

  std::vector<std::unique_ptr<PredictStage>> predictors_;
  std::vector<std::unique_ptr<LosslessCodec>> codecs_;
};

}  // namespace szp::pipeline

