// szp — the stage registry: PredictorKind -> PredictStage and
// Workflow -> EncodeStage / DecodeStage.
//
// The built-in stages (Lorenzo / regression / interpolation predictors;
// Huffman / RLE / RLE+VLE / rANS codecs) are registered lazily inside
// instance()'s constructor rather than by static-initializer side effects:
// self-registering translation units would be dropped by the linker when
// szp_core is consumed as a static library, and lazy construction is also
// immune to initialization-order issues.
//
// Extending the pipeline (see DESIGN.md §2.1):
//   1. implement PredictStage (or EncodeStage + DecodeStage) from stage.hh;
//   2. call StageRegistry::instance().add(std::make_unique<MyStage>())
//      during startup, before the first compress/decompress;
//   3. for predictors, allot the next PredictorKind tag — the archive header
//      stores it, so tags are append-only.
// Registration is not thread-safe against concurrent lookups; do it before
// spinning up compression threads.
#pragma once

#include <memory>
#include <vector>

#include "core/pipeline/stage.hh"

namespace szp::pipeline {

class StageRegistry {
 public:
  /// The process-wide registry, with all built-in stages registered.
  [[nodiscard]] static StageRegistry& instance();

  StageRegistry(const StageRegistry&) = delete;
  StageRegistry& operator=(const StageRegistry&) = delete;

  void add(std::unique_ptr<PredictStage> stage);
  void add(std::unique_ptr<EncodeStage> stage);
  void add(std::unique_ptr<DecodeStage> stage);

  /// Lookups throw std::logic_error for an unregistered key (and for
  /// Workflow::kAuto, which the selector must resolve before encoding).
  [[nodiscard]] const PredictStage& predict(PredictorKind kind) const;
  [[nodiscard]] const EncodeStage& encoder(Workflow wf) const;
  [[nodiscard]] const DecodeStage& decoder(Workflow wf) const;

  [[nodiscard]] const std::vector<std::unique_ptr<PredictStage>>& predictors() const {
    return predictors_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<EncodeStage>>& encoders() const {
    return encoders_;
  }

 private:
  StageRegistry();  // registers the built-ins

  std::vector<std::unique_ptr<PredictStage>> predictors_;
  std::vector<std::unique_ptr<EncodeStage>> encoders_;
  std::vector<std::unique_ptr<DecodeStage>> decoders_;
};

}  // namespace szp::pipeline
