// szp — the stage-typed pipeline layer.
//
// The paper's Fig. 1 pipeline is an explicit composition:
//
//   prequant+predict → gather outliers → histogram → selector →
//   {Huffman | RLE [+VLE] | rANS}  (and the mirrored decode chain)
//
// cuSZ is pitched as a modular framework precisely so the predictor and the
// codec can be swapped (Tian et al., PACT'20).  This header makes that
// modularity structural for the *prediction* half: each predictor branch is
// a PredictStage and the Compressor assembles a pipeline by registry lookup
// (registry.hh) instead of hard-coded switch arms.  The quant-code payload
// half lives behind the LosslessCodec interface (core/codec/codec.hh) in the
// same registry.  Adding a predictor or codec is: implement the interface,
// register it, done — the Compressor, the streaming layer, the CLI, and the
// benches pick it up through the same lookup.
//
// Contract highlights:
//   * Stages serialize *directly* after the fixed archive header
//     (core/archive.hh) in a layout they own; the encode and decode halves
//     of one workflow must agree byte-for-byte.
//   * Stages report their work as PipelineReport entries using the same
//     stage names the monolithic compressor used ("lorenzo_construct",
//     "huffman_book", ... ) — tests and the perf benches pin those names.
//   * Construction writes into the caller's Workspace (core/workspace.hh)
//     through capacity-preserving fills, never into fresh allocations, so
//     repeated compression is allocation-free at steady state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.hh"
#include "core/serialize.hh"
#include "core/workspace.hh"
#include "sim/profile.hh"
#include "sim/sparse.hh"

namespace szp::pipeline {

/// Predictor sidecar payload decoded from the archive: regression
/// coefficients or interpolation anchors (and the interpolation level).
struct PredictorAux {
  std::vector<float> coefficients;
  int level = 0;
};

/// What a predictor's construct pass produced: views into the Workspace
/// buffers the stage filled, plus the analytic kernel cost.
struct PredictProduct {
  std::span<const quant_t> quant;
  std::span<const qdiff_t> outlier_dense;
  sim::KernelCost cost;
};

/// One prediction model: the construct half of compression and the
/// reconstruct half of decompression, plus its aux-payload serialization.
class PredictStage {
 public:
  virtual ~PredictStage() = default;

  [[nodiscard]] virtual PredictorKind kind() const = 0;
  /// PipelineReport entry name of the construct pass (pinned by tests).
  [[nodiscard]] virtual const char* construct_stage() const = 0;

  /// Fill ws with quant-codes and the dense outlier array for `data`.
  [[nodiscard]] virtual PredictProduct construct(std::span<const float> data, const Extents& ext,
                                                 double eb_kernel, const CompressConfig& cfg,
                                                 Workspace& ws) const = 0;
  [[nodiscard]] virtual PredictProduct construct(std::span<const double> data, const Extents& ext,
                                                 double eb_kernel, const CompressConfig& cfg,
                                                 Workspace& ws) const = 0;

  /// Serialize the aux payload construct() left in ws (nothing for Lorenzo).
  virtual void write_aux(ByteWriter& w, const Workspace& ws) const = 0;
  /// Mirror of write_aux on the decode side.
  virtual void read_aux(ByteReader& r, PredictorAux& aux) const = 0;

  /// Rebuild the field from decoded quant-codes and the sparse outlier
  /// stream; appends its own PipelineReport entries (scatter + reconstruct)
  /// and fills out.data / out.data_f64 according to out.dtype.
  virtual void reconstruct(std::span<const quant_t> quant,
                           const sim::SparseVector<qdiff_t>& outliers, const PredictorAux& aux,
                           const Extents& ext, double eb_abs, const QuantConfig& qcfg,
                           const ReconstructConfig& recon, std::size_t payload_bytes,
                           Decompressed& out) const = 0;
};

}  // namespace szp::pipeline
