// szp — the built-in PredictStage implementations: Lorenzo (dual
// quantization + partial-sum reconstruction), block-wise linear regression,
// and multi-level interpolation.  Each stage transplants the corresponding
// branch of the former monolithic Compressor, byte-for-byte: the aux
// payloads (nothing / coefficients / level + anchors) and the PipelineReport
// stage names are pinned by the golden-archive tests.
#include "core/pipeline/builtin.hh"

#include <cstdint>
#include <vector>

#include "core/predictor/interpolation.hh"
#include "core/predictor/regression.hh"
#include "sim/timer.hh"

namespace szp::pipeline {

namespace {

/// Dense-outlier scatter shared by the regression and interpolation decode
/// paths (Lorenzo scatters into the fused residual field instead).
std::vector<qdiff_t> scatter_dense(const sim::SparseVector<qdiff_t>& outliers, std::size_t n,
                                   std::size_t payload_bytes, sim::PipelineReport& report) {
  sim::Timer t;
  std::vector<qdiff_t> outlier_dense(n, 0);
  sim::KernelCost cost;
  {
    sim::traffic::Scope scope;  // contract-derived volumes
    sim::scatter_add(outliers, std::span<qdiff_t>(outlier_dense));
    cost = sim::scatter_cost(outliers.nnz(), sizeof(qdiff_t), sizeof(std::uint64_t));
    scope.apply(cost);
  }
  report.add({"scatter_outlier", payload_bytes, t.seconds(), cost});
  return outlier_dense;
}

class LorenzoStage final : public PredictStage {
 public:
  [[nodiscard]] PredictorKind kind() const override { return PredictorKind::kLorenzo; }
  [[nodiscard]] const char* construct_stage() const override { return "lorenzo_construct"; }

  [[nodiscard]] PredictProduct construct(std::span<const float> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }
  [[nodiscard]] PredictProduct construct(std::span<const double> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }

  void write_aux(ByteWriter&, const Workspace&) const override {}  // no sidecar
  void read_aux(ByteReader&, PredictorAux&) const override {}

  void reconstruct(std::span<const quant_t> quant, const sim::SparseVector<qdiff_t>& outliers,
                   const PredictorAux&, const Extents& ext, double eb_abs,
                   const QuantConfig& qcfg, const ReconstructConfig& recon,
                   std::size_t payload_bytes, Decompressed& out) const override {
    const std::size_t n = ext.count();
    const auto radius = static_cast<std::int32_t>(qcfg.capacity / 2);

    // --- Fuse quant ⊕ outlier (Algorithm 1 line 9) -------------------------
    sim::Timer t;
    std::vector<qdiff_t> qprime(n);
    // The streaming fuse dominates the traffic; the sparse scatter rides
    // along (outliers are rare), so the stage keeps the streaming access
    // profile.  Volumes for both launches come from their contracts.
    sim::KernelCost fuse_cost;
    {
      sim::traffic::Scope scope;
      fuse_quant_codes(quant, radius, qprime);
      sim::scatter_add(outliers, std::span<qdiff_t>(qprime));
      scope.apply(fuse_cost);
    }
    fuse_cost.flops = n + outliers.nnz();
    fuse_cost.parallel_items = n;
    fuse_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    fuse_cost.launches = 2;
    out.pipeline.add({"scatter_outlier", payload_bytes, t.seconds(), fuse_cost});

    // --- Partial-sum Lorenzo reconstruction --------------------------------
    t.reset();
    sim::KernelCost recon_cost;
    if (out.dtype == DType::kFloat32) {
      out.data.resize(n);
      recon_cost = lorenzo_reconstruct_fused<float>(qprime, ext, eb_abs, out.data, recon);
    } else {
      out.data_f64.resize(n);
      recon_cost = lorenzo_reconstruct_fused<double>(qprime, ext, eb_abs, out.data_f64, recon);
    }
    out.pipeline.add({"lorenzo_reconstruct", payload_bytes, t.seconds(), recon_cost});
  }

 private:
  template <typename T>
  PredictProduct construct_impl(std::span<const T> data, const Extents& ext, double eb_kernel,
                                const CompressConfig& cfg, Workspace& ws) const {
    lorenzo_construct_into(data, ext, eb_kernel, cfg.quant, OutlierScheme::kResidual,
                           cfg.construct_variant, ws.lorenzo);
    return {std::span<const quant_t>(ws.lorenzo.quant.data(), ws.lorenzo.quant.size()),
            std::span<const qdiff_t>(ws.lorenzo.outlier_dense.data(),
                                     ws.lorenzo.outlier_dense.size()),
            ws.lorenzo.cost};
  }
};

class RegressionStage final : public PredictStage {
 public:
  [[nodiscard]] PredictorKind kind() const override { return PredictorKind::kRegression; }
  [[nodiscard]] const char* construct_stage() const override { return "regression_construct"; }

  [[nodiscard]] PredictProduct construct(std::span<const float> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }
  [[nodiscard]] PredictProduct construct(std::span<const double> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }

  void write_aux(ByteWriter& w, const Workspace& ws) const override {
    w.put_vector(ws.regression.coefficients);
  }
  void read_aux(ByteReader& r, PredictorAux& aux) const override {
    r.set_segment("coefficients");
    aux.coefficients = r.get_vector<float>();
  }

  void reconstruct(std::span<const quant_t> quant, const sim::SparseVector<qdiff_t>& outliers,
                   const PredictorAux& aux, const Extents& ext, double eb_abs,
                   const QuantConfig& qcfg, const ReconstructConfig&,
                   std::size_t payload_bytes, Decompressed& out) const override {
    const std::size_t n = ext.count();
    const auto outlier_dense = scatter_dense(outliers, n, payload_bytes, out.pipeline);
    sim::Timer t;
    sim::KernelCost recon_cost;
    if (out.dtype == DType::kFloat32) {
      out.data.resize(n);
      recon_cost = regression_reconstruct<float>(quant, outlier_dense, aux.coefficients, ext,
                                                 eb_abs, qcfg, out.data);
    } else {
      out.data_f64.resize(n);
      recon_cost = regression_reconstruct<double>(quant, outlier_dense, aux.coefficients, ext,
                                                  eb_abs, qcfg, out.data_f64);
    }
    out.pipeline.add({"regression_reconstruct", payload_bytes, t.seconds(), recon_cost});
  }

 private:
  template <typename T>
  PredictProduct construct_impl(std::span<const T> data, const Extents& ext, double eb_kernel,
                                const CompressConfig& cfg, Workspace& ws) const {
    regression_construct_into(data, ext, eb_kernel, cfg.quant, ws.regression);
    return {std::span<const quant_t>(ws.regression.quant.data(), ws.regression.quant.size()),
            std::span<const qdiff_t>(ws.regression.outlier_dense.data(),
                                     ws.regression.outlier_dense.size()),
            ws.regression.cost};
  }
};

class InterpolationStage final : public PredictStage {
 public:
  [[nodiscard]] PredictorKind kind() const override { return PredictorKind::kInterpolation; }
  [[nodiscard]] const char* construct_stage() const override {
    return "interpolation_construct";
  }

  [[nodiscard]] PredictProduct construct(std::span<const float> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }
  [[nodiscard]] PredictProduct construct(std::span<const double> data, const Extents& ext,
                                         double eb_kernel, const CompressConfig& cfg,
                                         Workspace& ws) const override {
    return construct_impl(data, ext, eb_kernel, cfg, ws);
  }

  void write_aux(ByteWriter& w, const Workspace& ws) const override {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(ws.interp.level));
    w.put_vector(ws.interp.anchors);
  }
  void read_aux(ByteReader& r, PredictorAux& aux) const override {
    r.set_segment("coefficients");
    aux.level = r.get<std::uint8_t>();
    aux.coefficients = r.get_vector<float>();
  }

  void reconstruct(std::span<const quant_t> quant, const sim::SparseVector<qdiff_t>& outliers,
                   const PredictorAux& aux, const Extents& ext, double eb_abs,
                   const QuantConfig& qcfg, const ReconstructConfig&,
                   std::size_t payload_bytes, Decompressed& out) const override {
    const std::size_t n = ext.count();
    const auto outlier_dense = scatter_dense(outliers, n, payload_bytes, out.pipeline);
    sim::Timer t;
    sim::KernelCost recon_cost;
    if (out.dtype == DType::kFloat32) {
      out.data.resize(n);
      recon_cost = interpolation_reconstruct<float>(quant, outlier_dense, aux.coefficients,
                                                    aux.level, true, ext, eb_abs, qcfg,
                                                    out.data);
    } else {
      out.data_f64.resize(n);
      recon_cost = interpolation_reconstruct<double>(quant, outlier_dense, aux.coefficients,
                                                     aux.level, true, ext, eb_abs, qcfg,
                                                     out.data_f64);
    }
    out.pipeline.add({"interpolation_reconstruct", payload_bytes, t.seconds(), recon_cost});
  }

 private:
  template <typename T>
  PredictProduct construct_impl(std::span<const T> data, const Extents& ext, double eb_kernel,
                                const CompressConfig& cfg, Workspace& ws) const {
    interpolation_construct_into(data, ext, eb_kernel, cfg.quant, InterpolationConfig{},
                                 ws.interp);
    return {std::span<const quant_t>(ws.interp.quant.data(), ws.interp.quant.size()),
            std::span<const qdiff_t>(ws.interp.outlier_dense.data(),
                                     ws.interp.outlier_dense.size()),
            ws.interp.cost};
  }
};

}  // namespace

std::unique_ptr<PredictStage> make_lorenzo_stage() { return std::make_unique<LorenzoStage>(); }
std::unique_ptr<PredictStage> make_regression_stage() {
  return std::make_unique<RegressionStage>();
}
std::unique_ptr<PredictStage> make_interpolation_stage() {
  return std::make_unique<InterpolationStage>();
}

}  // namespace szp::pipeline
