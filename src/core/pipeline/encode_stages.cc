// szp — the built-in EncodeStage/DecodeStage pairs, one per Workflow:
// chunked Huffman, RLE, RLE+VLE (Huffman over both run streams), and rANS.
// Each pair transplants the corresponding switch arm of the former
// monolithic Compressor; the section byte layouts and the PipelineReport
// stage names are pinned by the golden-archive tests.
#include "core/pipeline/builtin.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "core/huffman/codec.hh"
#include "core/rans.hh"
#include "core/rle/rle.hh"
#include "sim/histogram.hh"
#include "sim/timer.hh"

namespace szp::pipeline {

namespace {

void write_huffman_section(ByteWriter& w, const HuffmanCodebook& book,
                           const HuffmanEncoded& enc) {
  book.serialize(w);
  w.put<std::uint64_t>(enc.num_symbols);
  w.put<std::uint32_t>(enc.chunk_size);
  w.put<std::uint32_t>(enc.gap_stride);
  w.put_vector(enc.chunk_offsets);
  if (enc.gap_stride > 0) w.put_vector(enc.gaps);
  w.put_vector(enc.payload);
}

struct HuffmanSection {
  HuffmanCodebook book;
  HuffmanEncoded enc;
};

HuffmanSection read_huffman_section(ByteReader& r) {
  HuffmanSection s;
  s.book = HuffmanCodebook::deserialize(r);
  r.set_segment("huffman stream");
  s.enc.num_symbols = r.get<std::uint64_t>();
  s.enc.chunk_size = r.get<std::uint32_t>();
  s.enc.gap_stride = r.get<std::uint32_t>();
  s.enc.chunk_offsets = r.get_vector<std::uint64_t>();
  if (s.enc.gap_stride > 0) s.enc.gaps = r.get_vector<std::uint32_t>();
  s.enc.payload = r.get_vector<std::uint8_t>();
  return s;
}

class HuffmanEncodeStage final : public EncodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kHuffman; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const bool cached = ws.book_freq.size() == ctx.freq.size() &&
                        std::equal(ws.book_freq.begin(), ws.book_freq.end(), ctx.freq.begin());
    if (!cached) {
      ws.book = HuffmanCodebook::build(ctx.freq);
      ws.book_freq.assign(ctx.freq.begin(), ctx.freq.end());
    }
    report.add({"huffman_book", ctx.original_bytes, t.seconds(), ws.book.build_cost()});
    t.reset();
    huffman_encode_into(quant, ws.book, ctx.cfg.huffman_chunk, HuffmanEncVariant::kOptimized,
                        ctx.cfg.huffman_gap_stride, ws.huffman, ws.huffman_chunk_bytes);
    report.add({"huffman_encode", ctx.original_bytes, t.seconds(), ws.huffman.cost});
    write_huffman_section(w, ws.book, ws.huffman);
  }
};

class HuffmanDecodeStage final : public DecodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kHuffman; }

  [[nodiscard]] std::vector<quant_t> decode(ByteReader& r, const DecodeContext& ctx,
                                            sim::PipelineReport& report) const override {
    sim::Timer t;
    auto s = read_huffman_section(r);
    auto dec = huffman_decode(s.enc, s.book);
    report.add({"huffman_decode", ctx.payload_bytes, t.seconds(), dec.cost});
    return std::move(dec.symbols);
  }
};

class RleEncodeStage final : public EncodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRle; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace&,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto rle = rle_encode(quant);
    report.add({"rle_encode", ctx.original_bytes, t.seconds(), rle.cost});
    w.put<std::uint64_t>(rle.num_symbols);
    w.put_vector(rle.values);
    w.put_vector(rle.counts);
  }
};

class RleDecodeStage final : public DecodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRle; }

  [[nodiscard]] std::vector<quant_t> decode(ByteReader& r, const DecodeContext& ctx,
                                            sim::PipelineReport& report) const override {
    sim::Timer t;
    RleEncoded rle;
    rle.num_symbols = r.get<std::uint64_t>();
    rle.values = r.get_vector<quant_t>();
    rle.counts = r.get_vector<std::uint16_t>();
    auto dec = rle_decode(rle);
    report.add({"rle_decode", ctx.payload_bytes, t.seconds(), dec.cost});
    return std::move(dec.symbols);
  }
};

class RleVleEncodeStage final : public EncodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRleVle; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto rle = rle_encode(quant);
    report.add({"rle_encode", ctx.original_bytes, t.seconds(), rle.cost});
    t.reset();
    // VLE over both run streams (values and lengths), each with its own
    // codebook built from its own histogram.  The streams go through the
    // workspace's codec scratch back to back, so the value section is
    // serialized before the scratch is reused for the count stream.
    sim::device_histogram_into<quant_t>(
        std::span<const quant_t>(rle.values.data(), rle.values.size()),
        ctx.cfg.quant.capacity, ws.vle_freq, ws.hist_priv);
    const auto vbook = HuffmanCodebook::build(ws.vle_freq);
    huffman_encode_into(rle.values, vbook, ctx.cfg.huffman_chunk,
                        HuffmanEncVariant::kOptimized, 0, ws.huffman, ws.huffman_chunk_bytes);
    sim::KernelCost vle_cost = ws.huffman.cost;
    w.put<std::uint64_t>(rle.num_symbols);
    write_huffman_section(w, vbook, ws.huffman);
    sim::device_histogram_into<std::uint16_t>(
        std::span<const std::uint16_t>(rle.counts.data(), rle.counts.size()), 65536,
        ws.vle_freq, ws.hist_priv);
    const auto cbook = HuffmanCodebook::build(ws.vle_freq);
    huffman_encode_into(std::span<const quant_t>(rle.counts.data(), rle.counts.size()), cbook,
                        ctx.cfg.huffman_chunk, HuffmanEncVariant::kOptimized, 0, ws.huffman,
                        ws.huffman_chunk_bytes);
    vle_cost += ws.huffman.cost;
    report.add({"rle_vle", ctx.original_bytes, t.seconds(), vle_cost});
    write_huffman_section(w, cbook, ws.huffman);
  }
};

class RleVleDecodeStage final : public DecodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRleVle; }

  [[nodiscard]] std::vector<quant_t> decode(ByteReader& r, const DecodeContext& ctx,
                                            sim::PipelineReport& report) const override {
    sim::Timer t;
    RleEncoded rle;
    rle.num_symbols = r.get<std::uint64_t>();
    auto vs = read_huffman_section(r);
    auto cs = read_huffman_section(r);
    auto vdec = huffman_decode(vs.enc, vs.book);
    auto cdec = huffman_decode(cs.enc, cs.book);
    rle.values = std::move(vdec.symbols);
    rle.counts.assign(cdec.symbols.begin(), cdec.symbols.end());
    auto dec = rle_decode(rle);
    sim::KernelCost cost = vdec.cost;
    cost += cdec.cost;
    cost += dec.cost;
    report.add({"rle_vle_decode", ctx.payload_bytes, t.seconds(), cost});
    return std::move(dec.symbols);
  }
};

class RansEncodeStage final : public EncodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRans; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace&,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto model = RansModel::build(ctx.freq);
    const auto enc =
        rans_encode(std::span<const std::uint16_t>(quant.data(), quant.size()), model);
    sim::KernelCost cost;
    cost.bytes_read = quant.size_bytes();
    cost.bytes_written = enc.size();
    cost.flops = quant.size() * 20;  // div/mod state updates
    cost.parallel_items = quant.size();
    cost.pattern = sim::AccessPattern::kScattered;
    cost.custom_factor = 0.06;  // ANS is heavier per symbol than Huffman
    report.add({"rans_encode", ctx.original_bytes, t.seconds(), cost});
    model.serialize(w);
    w.put<std::uint64_t>(quant.size());
    w.put_vector(enc);
  }
};

class RansDecodeStage final : public DecodeStage {
 public:
  [[nodiscard]] Workflow workflow() const override { return Workflow::kRans; }

  [[nodiscard]] std::vector<quant_t> decode(ByteReader& r, const DecodeContext& ctx,
                                            sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto model = RansModel::deserialize(r);
    r.set_segment("quant-codes");
    const auto count = r.get<std::uint64_t>();
    if (count != ctx.n) {
      // Checked before rans_decode so a spliced count cannot drive the
      // symbol-buffer allocation past the grid size.
      throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                        "rans symbol count " + std::to_string(count) +
                            " does not match the " + std::to_string(ctx.n) + "-element grid");
    }
    const auto enc = r.get_vector<std::uint8_t>();
    const auto syms = rans_decode(enc, count, model);
    std::vector<quant_t> quant(syms.begin(), syms.end());
    sim::KernelCost cost;
    cost.bytes_read = enc.size();
    cost.bytes_written = count * sizeof(quant_t);
    cost.flops = count * 450;  // serial state chain, like Huffman decode
    cost.parallel_items = count;
    cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    report.add({"rans_decode", ctx.payload_bytes, t.seconds(), cost});
    return quant;
  }
};

}  // namespace

std::unique_ptr<EncodeStage> make_huffman_encoder() {
  return std::make_unique<HuffmanEncodeStage>();
}
std::unique_ptr<EncodeStage> make_rle_encoder() { return std::make_unique<RleEncodeStage>(); }
std::unique_ptr<EncodeStage> make_rle_vle_encoder() {
  return std::make_unique<RleVleEncodeStage>();
}
std::unique_ptr<EncodeStage> make_rans_encoder() { return std::make_unique<RansEncodeStage>(); }

std::unique_ptr<DecodeStage> make_huffman_decoder() {
  return std::make_unique<HuffmanDecodeStage>();
}
std::unique_ptr<DecodeStage> make_rle_decoder() { return std::make_unique<RleDecodeStage>(); }
std::unique_ptr<DecodeStage> make_rle_vle_decoder() {
  return std::make_unique<RleVleDecodeStage>();
}
std::unique_ptr<DecodeStage> make_rans_decoder() { return std::make_unique<RansDecodeStage>(); }

}  // namespace szp::pipeline
