// szp — factories for the built-in pipeline stages and codecs.  Only the
// registry constructor (registry.cc) needs these; everyone else goes
// through StageRegistry lookups.
#pragma once

#include <memory>

#include "core/codec/codec.hh"
#include "core/pipeline/stage.hh"

namespace szp::pipeline {

std::unique_ptr<PredictStage> make_lorenzo_stage();
std::unique_ptr<PredictStage> make_regression_stage();
std::unique_ptr<PredictStage> make_interpolation_stage();

std::unique_ptr<LosslessCodec> make_huffman_codec();
std::unique_ptr<LosslessCodec> make_rle_codec();
std::unique_ptr<LosslessCodec> make_rle_vle_codec();
std::unique_ptr<LosslessCodec> make_rans_codec();
std::unique_ptr<LosslessCodec> make_lz77_codec();
std::unique_ptr<LosslessCodec> make_lzh_codec();
std::unique_ptr<LosslessCodec> make_lzr_codec();

}  // namespace szp::pipeline

