// szp — factories for the built-in pipeline stages.  Only the registry
// constructor (registry.cc) needs these; everyone else goes through
// StageRegistry lookups.
#pragma once

#include <memory>

#include "core/pipeline/stage.hh"

namespace szp::pipeline {

std::unique_ptr<PredictStage> make_lorenzo_stage();
std::unique_ptr<PredictStage> make_regression_stage();
std::unique_ptr<PredictStage> make_interpolation_stage();

std::unique_ptr<EncodeStage> make_huffman_encoder();
std::unique_ptr<EncodeStage> make_rle_encoder();
std::unique_ptr<EncodeStage> make_rle_vle_encoder();
std::unique_ptr<EncodeStage> make_rans_encoder();

std::unique_ptr<DecodeStage> make_huffman_decoder();
std::unique_ptr<DecodeStage> make_rle_decoder();
std::unique_ptr<DecodeStage> make_rle_vle_decoder();
std::unique_ptr<DecodeStage> make_rans_decoder();

}  // namespace szp::pipeline
