#include "core/pipeline/registry.hh"

#include <stdexcept>
#include <string>

#include "core/pipeline/builtin.hh"

namespace szp::pipeline {

StageRegistry& StageRegistry::instance() {
  static StageRegistry registry;
  return registry;
}

StageRegistry::StageRegistry() {
  add(make_lorenzo_stage());
  add(make_regression_stage());
  add(make_interpolation_stage());
  add(make_huffman_codec());
  add(make_rle_codec());
  add(make_rle_vle_codec());
  add(make_rans_codec());
  add(make_lz77_codec());
  add(make_lzh_codec());
  add(make_lzr_codec());
}

void StageRegistry::add(std::unique_ptr<PredictStage> stage) {
  predictors_.push_back(std::move(stage));
}
void StageRegistry::add(std::unique_ptr<LosslessCodec> codec) {
  codecs_.push_back(std::move(codec));
}

const PredictStage& StageRegistry::predict(PredictorKind kind) const {
  // Latest registration wins, so a stage can be overridden in tests.
  for (auto it = predictors_.rbegin(); it != predictors_.rend(); ++it) {
    if ((*it)->kind() == kind) return **it;
  }
  throw std::logic_error("StageRegistry: no predictor stage registered for tag " +
                         std::to_string(static_cast<int>(kind)));
}

const LosslessCodec& StageRegistry::codec(Workflow wf) const {
  for (auto it = codecs_.rbegin(); it != codecs_.rend(); ++it) {
    if ((*it)->id() == wf) return **it;
  }
  throw std::logic_error("StageRegistry: no codec registered for workflow tag " +
                         std::to_string(static_cast<int>(wf)));
}

}  // namespace szp::pipeline

