#include "core/pipeline/registry.hh"

#include <stdexcept>
#include <string>

#include "core/pipeline/builtin.hh"

namespace szp::pipeline {

StageRegistry& StageRegistry::instance() {
  static StageRegistry registry;
  return registry;
}

StageRegistry::StageRegistry() {
  add(make_lorenzo_stage());
  add(make_regression_stage());
  add(make_interpolation_stage());
  add(make_huffman_encoder());
  add(make_rle_encoder());
  add(make_rle_vle_encoder());
  add(make_rans_encoder());
  add(make_huffman_decoder());
  add(make_rle_decoder());
  add(make_rle_vle_decoder());
  add(make_rans_decoder());
}

void StageRegistry::add(std::unique_ptr<PredictStage> stage) {
  predictors_.push_back(std::move(stage));
}
void StageRegistry::add(std::unique_ptr<EncodeStage> stage) {
  encoders_.push_back(std::move(stage));
}
void StageRegistry::add(std::unique_ptr<DecodeStage> stage) {
  decoders_.push_back(std::move(stage));
}

const PredictStage& StageRegistry::predict(PredictorKind kind) const {
  // Latest registration wins, so a stage can be overridden in tests.
  for (auto it = predictors_.rbegin(); it != predictors_.rend(); ++it) {
    if ((*it)->kind() == kind) return **it;
  }
  throw std::logic_error("StageRegistry: no predictor stage registered for tag " +
                         std::to_string(static_cast<int>(kind)));
}

const EncodeStage& StageRegistry::encoder(Workflow wf) const {
  for (auto it = encoders_.rbegin(); it != encoders_.rend(); ++it) {
    if ((*it)->workflow() == wf) return **it;
  }
  throw std::logic_error("StageRegistry: no encode stage registered for workflow tag " +
                         std::to_string(static_cast<int>(wf)));
}

const DecodeStage& StageRegistry::decoder(Workflow wf) const {
  for (auto it = decoders_.rbegin(); it != decoders_.rend(); ++it) {
    if ((*it)->workflow() == wf) return **it;
  }
  throw std::logic_error("StageRegistry: no decode stage registered for workflow tag " +
                         std::to_string(static_cast<int>(wf)));
}

}  // namespace szp::pipeline
