#include "core/streaming.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"
#include "sim/launch.hh"

namespace szp {

namespace {

constexpr std::uint32_t kContainerMagic = 0x43505A53;  // "SZPC"
constexpr std::uint16_t kContainerVersion = 1;

/// Slab partition along the slowest axis: slab thickness chosen so each
/// slab holds at most max_slab_elems.
struct SlabPlan {
  std::size_t slow_extent;      ///< the slowest axis's length
  std::size_t plane_elems;      ///< elements per unit of the slowest axis
  std::size_t thickness;        ///< slowest-axis units per slab
  std::size_t count;            ///< number of slabs
};

SlabPlan plan_slabs(const Extents& ext, std::size_t max_slab_elems) {
  SlabPlan p{};
  switch (ext.rank) {
    case 1: p.slow_extent = ext.nx; p.plane_elems = 1; break;
    case 2: p.slow_extent = ext.ny; p.plane_elems = ext.nx; break;
    case 3: p.slow_extent = ext.nz; p.plane_elems = ext.nx * ext.ny; break;
    default: throw std::invalid_argument("StreamingCompressor: rank must be 1, 2, or 3");
  }
  if (p.plane_elems > max_slab_elems) {
    throw std::invalid_argument(
        "StreamingCompressor: a single plane exceeds max_slab_elems; raise the limit");
  }
  p.thickness = std::max<std::size_t>(1, max_slab_elems / p.plane_elems);
  p.count = (p.slow_extent + p.thickness - 1) / p.thickness;
  return p;
}

Extents slab_extents(const Extents& ext, std::size_t len) {
  switch (ext.rank) {
    case 1: return Extents::d1(len);
    case 2: return Extents::d2(len, ext.nx);
    default: return Extents::d3(len, ext.ny, ext.nx);
  }
}

template <typename T>
StreamingCompressed compress_impl(const StreamingConfig& cfg, const Compressor& compressor,
                                  std::span<const T> data, const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  const SlabPlan plan = plan_slabs(ext, cfg.max_slab_elems);

  // Resolve a relative bound against the whole field once, so every slab
  // carries the same absolute bound.
  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("StreamingCompressor::compress: non-finite values");
  }
  CompressConfig slab_cfg = cfg.base;
  slab_cfg.eb = ErrorBound::absolute(cfg.base.eb.resolve(range.span()));

  StreamingCompressed out;
  out.stats.original_bytes = data.size_bytes();
  out.stats.eb_abs = slab_cfg.eb.value;

  // Compress the slabs — concurrently when configured.  This is host
  // orchestration over disjoint per-slab outputs, not a simulated kernel,
  // so it uses the plain launcher rather than checked::launch: the results
  // are non-trivially-copyable and stay outside the checker's byte-level
  // buffer registry (see DESIGN.md §2.2).  Each worker leases its own
  // workspace from the shared Compressor's pool.
  std::vector<Compressed> slabs(plan.count);
  const auto compress_slab = [&](std::size_t s) {
    const std::size_t begin = s * plan.thickness;
    const std::size_t len = std::min(plan.thickness, plan.slow_extent - begin);
    const Extents sub = slab_extents(ext, len);
    const std::size_t offset = begin * plan.plane_elems;
    slabs[s] = compressor.compress(std::span<const T>(data.data() + offset, sub.count()), sub,
                                   slab_cfg);
  };
  if (cfg.parallel) {
    sim::launch_blocks(plan.count, compress_slab);
  } else {
    for (std::size_t s = 0; s < plan.count; ++s) compress_slab(s);
  }

  // Pack the container serially in index order, so the bytes are identical
  // to a serial run.
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(
      std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<std::uint64_t>(plan.count);

  for (std::size_t s = 0; s < plan.count; ++s) {
    const std::size_t begin = s * plan.thickness;
    const std::size_t len = std::min(plan.thickness, plan.slow_extent - begin);
    const std::size_t offset = begin * plan.plane_elems;

    SlabInfo info;
    info.extents = slab_extents(ext, len);
    info.offset = offset;
    info.ratio = slabs[s].stats.ratio;
    info.workflow = slabs[s].stats.workflow_used;
    out.stats.slabs.push_back(info);

    w.put<std::uint64_t>(offset);
    w.put_vector(slabs[s].bytes);
  }

  out.bytes = w.take();
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.ratio = compression_ratio(out.stats.original_bytes, out.stats.compressed_bytes);
  return out;
}

template <typename T>
std::vector<StreamingCompressed> compress_many_impl(const StreamingConfig& cfg,
                                                    const Compressor& compressor,
                                                    std::span<const std::span<const T>> fields,
                                                    std::span<const Extents> exts) {
  if (fields.size() != exts.size()) {
    throw std::invalid_argument(
        "StreamingCompressor::compress_many: one extents entry per field required");
  }
  std::vector<StreamingCompressed> out(fields.size());
  const auto compress_field = [&](std::size_t f) {
    out[f] = compress_impl(cfg, compressor, fields[f], exts[f]);
  };
  if (cfg.parallel) {
    // Fields fan out across workers; the per-field slab loops serialize
    // inside the outer parallel region (nested teams are disabled), so the
    // fan-out stays one-level.
    sim::launch_blocks(fields.size(), compress_field);
  } else {
    for (std::size_t f = 0; f < fields.size(); ++f) compress_field(f);
  }
  return out;
}

struct ContainerHeader {
  Extents extents;
  DType dtype;
  std::size_t slabs;
};

ContainerHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kContainerMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZPC container");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kContainerVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "container version " + std::to_string(version) + ", expected " +
                          std::to_string(kContainerVersion));
  }
  ContainerHeader h{};
  h.extents.rank = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.slabs = r.get<std::uint64_t>();
  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  // Each slab entry is at least a u64 offset plus a u64 length prefix.
  if (h.slabs > r.remaining() / 16) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "slab count " + std::to_string(h.slabs) + " exceeds what " +
                          std::to_string(r.remaining()) + " remaining bytes can hold");
  }
  return h;
}

/// Walk the slab directory without decoding payloads: inspect each nested
/// archive's header and require the slabs to tile the field back-to-back,
/// exactly as the writer lays them out.  Runs *before* the output field is
/// allocated, so spliced extents cannot drive a huge resize.
ContainerIndex index_impl(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  ContainerIndex idx;
  idx.extents = h.extents;
  idx.dtype = h.dtype;
  idx.slabs.reserve(h.slabs);
  std::uint64_t covered = 0;
  const std::uint64_t total = h.extents.count();
  for (std::size_t s = 0; s < h.slabs; ++s) {
    r.set_segment("slab directory");
    ContainerSlab ref{};
    ref.offset = r.get<std::uint64_t>();
    ref.bytes = r.get_bytes();
    const auto info = Compressor::inspect(ref.bytes);
    if (info.dtype != h.dtype) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " element type disagrees with the container");
    }
    ref.count = info.extents.count();
    if (ref.offset != covered || covered + ref.count > total) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " at offset " +
                            std::to_string(ref.offset) + " does not tile the field");
    }
    covered += ref.count;
    idx.slabs.push_back(ref);
  }
  if (covered != total) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                      "slabs cover " + std::to_string(covered) + " of " + std::to_string(total) +
                          " elements");
  }
  return idx;
}

}  // namespace

StreamingCompressed StreamingCompressor::compress(std::span<const float> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const float>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const double>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::size_t StreamingCompressor::slab_count(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
    ByteReader r(container);
    return read_header(r).slabs;
  });
}

ContainerIndex StreamingCompressor::index(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] { return index_impl(container); });
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
  const ContainerIndex idx = index_impl(container);

  StreamingDecompressed out;
  out.extents = idx.extents;
  out.dtype = idx.dtype;
  if (idx.dtype == DType::kFloat32) {
    out.data.resize(idx.extents.count());
  } else {
    out.data_f64.resize(idx.extents.count());
  }

  // Slabs decode concurrently: the directory pass proved their output
  // ranges tile the field disjointly, so this is host orchestration over
  // independent decodes (plain launcher; see the compress-side note).
  sim::launch_blocks(idx.slabs.size(), [&](std::size_t s) {
    const ContainerSlab& ref = idx.slabs[s];
    auto slab = Compressor::decompress(ref.bytes);
    // The directory pass validated offset/count tiling from the slab
    // headers; re-check against the decoded payload before the copy.
    const std::size_t decoded =
        idx.dtype == DType::kFloat32 ? slab.data.size() : slab.data_f64.size();
    if (decoded != ref.count) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab decoded to " + std::to_string(decoded) +
                            " elements, its header declared " + std::to_string(ref.count));
    }
    if (idx.dtype == DType::kFloat32) {
      std::copy(slab.data.begin(), slab.data.end(),
                out.data.begin() + static_cast<std::ptrdiff_t>(ref.offset));
    } else {
      std::copy(slab.data_f64.begin(), slab.data_f64.end(),
                out.data_f64.begin() + static_cast<std::ptrdiff_t>(ref.offset));
    }
  });
  return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(const ContainerIndex& index,
                                                           std::size_t slab_index,
                                                           SlabInfo* info_out) {
  // A bad index with a well-formed container is a caller error, not archive
  // corruption; keep its own exception type.
  if (slab_index >= index.slabs.size()) {
    throw std::out_of_range("StreamingCompressor::decompress_slab: slab index out of range");
  }
  return decode_guard("streaming container", [&] {
    const ContainerSlab& ref = index.slabs[slab_index];
    auto slab = Compressor::decompress(ref.bytes);

    StreamingDecompressed out;
    out.extents = slab.extents;
    out.dtype = index.dtype;
    out.data = std::move(slab.data);
    out.data_f64 = std::move(slab.data_f64);
    if (info_out != nullptr) {
      info_out->extents = slab.extents;
      info_out->offset = ref.offset;
    }
    return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(
    std::span<const std::uint8_t> container, std::size_t slab_index, SlabInfo* info_out) {
  return decompress_slab(index(container), slab_index, info_out);
}

}  // namespace szp
