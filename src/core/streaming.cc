#include "core/streaming.hh"

#include <algorithm>
#include <stdexcept>

#include "core/metrics.hh"
#include "core/serialize.hh"

namespace szp {

namespace {

constexpr std::uint32_t kContainerMagic = 0x43505A53;  // "SZPC"
constexpr std::uint16_t kContainerVersion = 1;

/// Slab partition along the slowest axis: slab thickness chosen so each
/// slab holds at most max_slab_elems.
struct SlabPlan {
  std::size_t slow_extent;      ///< the slowest axis's length
  std::size_t plane_elems;      ///< elements per unit of the slowest axis
  std::size_t thickness;        ///< slowest-axis units per slab
  std::size_t count;            ///< number of slabs
};

SlabPlan plan_slabs(const Extents& ext, std::size_t max_slab_elems) {
  SlabPlan p{};
  switch (ext.rank) {
    case 1: p.slow_extent = ext.nx; p.plane_elems = 1; break;
    case 2: p.slow_extent = ext.ny; p.plane_elems = ext.nx; break;
    case 3: p.slow_extent = ext.nz; p.plane_elems = ext.nx * ext.ny; break;
    default: throw std::invalid_argument("StreamingCompressor: rank must be 1, 2, or 3");
  }
  if (p.plane_elems > max_slab_elems) {
    throw std::invalid_argument(
        "StreamingCompressor: a single plane exceeds max_slab_elems; raise the limit");
  }
  p.thickness = std::max<std::size_t>(1, max_slab_elems / p.plane_elems);
  p.count = (p.slow_extent + p.thickness - 1) / p.thickness;
  return p;
}

Extents slab_extents(const Extents& ext, std::size_t begin, std::size_t len) {
  switch (ext.rank) {
    case 1: return Extents::d1(len);
    case 2: return Extents::d2(len, ext.nx);
    default: return Extents::d3(len, ext.ny, ext.nx);
  }
  (void)begin;
}

template <typename T>
StreamingCompressed compress_impl(const StreamingConfig& cfg, std::span<const T> data,
                                  const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  const SlabPlan plan = plan_slabs(ext, cfg.max_slab_elems);

  // Resolve a relative bound against the whole field once, so every slab
  // carries the same absolute bound.
  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("StreamingCompressor::compress: non-finite values");
  }
  CompressConfig slab_cfg = cfg.base;
  slab_cfg.eb = ErrorBound::absolute(cfg.base.eb.resolve(range.span()));
  const Compressor compressor(slab_cfg);

  StreamingCompressed out;
  out.stats.original_bytes = data.size_bytes();
  out.stats.eb_abs = slab_cfg.eb.value;

  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(
      std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<std::uint64_t>(plan.count);

  for (std::size_t s = 0; s < plan.count; ++s) {
    const std::size_t begin = s * plan.thickness;
    const std::size_t len = std::min(plan.thickness, plan.slow_extent - begin);
    const Extents sub = slab_extents(ext, begin, len);
    const std::size_t offset = begin * plan.plane_elems;

    const auto slab = compressor.compress(
        std::span<const T>(data.data() + offset, sub.count()), sub);

    SlabInfo info;
    info.extents = sub;
    info.offset = offset;
    info.ratio = slab.stats.ratio;
    info.workflow = slab.stats.workflow_used;
    out.stats.slabs.push_back(info);

    w.put<std::uint64_t>(offset);
    w.put_vector(slab.bytes);
  }

  out.bytes = w.take();
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.ratio = compression_ratio(out.stats.original_bytes, out.stats.compressed_bytes);
  return out;
}

struct ContainerHeader {
  Extents extents;
  DType dtype;
  std::size_t slabs;
};

ContainerHeader read_header(ByteReader& r) {
  if (r.get<std::uint32_t>() != kContainerMagic) {
    throw std::runtime_error("StreamingCompressor: bad container magic");
  }
  if (r.get<std::uint16_t>() != kContainerVersion) {
    throw std::runtime_error("StreamingCompressor: unsupported container version");
  }
  ContainerHeader h{};
  h.extents.rank = r.get<std::uint8_t>();
  h.dtype = static_cast<DType>(r.get<std::uint8_t>());
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.slabs = r.get<std::uint64_t>();
  return h;
}

}  // namespace

StreamingCompressed StreamingCompressor::compress(std::span<const float> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

std::size_t StreamingCompressor::slab_count(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  return read_header(r).slabs;
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);

  StreamingDecompressed out;
  out.extents = h.extents;
  out.dtype = h.dtype;
  if (h.dtype == DType::kFloat32) {
    out.data.resize(h.extents.count());
  } else {
    out.data_f64.resize(h.extents.count());
  }

  for (std::size_t s = 0; s < h.slabs; ++s) {
    const auto offset = r.get<std::uint64_t>();
    const auto bytes = r.get_vector<std::uint8_t>();
    auto slab = Compressor::decompress(bytes);
    if (h.dtype == DType::kFloat32) {
      if (offset + slab.data.size() > out.data.size()) {
        throw std::runtime_error("StreamingCompressor: slab exceeds field bounds");
      }
      std::copy(slab.data.begin(), slab.data.end(),
                out.data.begin() + static_cast<std::ptrdiff_t>(offset));
    } else {
      if (offset + slab.data_f64.size() > out.data_f64.size()) {
        throw std::runtime_error("StreamingCompressor: slab exceeds field bounds");
      }
      std::copy(slab.data_f64.begin(), slab.data_f64.end(),
                out.data_f64.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  }
  return out;
}

StreamingDecompressed StreamingCompressor::decompress_slab(
    std::span<const std::uint8_t> container, std::size_t slab_index, SlabInfo* info_out) {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  if (slab_index >= h.slabs) {
    throw std::out_of_range("StreamingCompressor::decompress_slab: slab index out of range");
  }
  for (std::size_t s = 0; s < slab_index; ++s) {
    (void)r.get<std::uint64_t>();
    (void)r.get_vector<std::uint8_t>();  // skip (length-prefixed)
  }
  const auto offset = r.get<std::uint64_t>();
  const auto bytes = r.get_vector<std::uint8_t>();
  auto slab = Compressor::decompress(bytes);

  StreamingDecompressed out;
  out.extents = slab.extents;
  out.dtype = h.dtype;
  out.data = std::move(slab.data);
  out.data_f64 = std::move(slab.data_f64);
  if (info_out != nullptr) {
    info_out->extents = slab.extents;
    info_out->offset = offset;
  }
  return out;
}

}  // namespace szp
