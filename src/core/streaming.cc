#include "core/streaming.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/error.hh"
#include "core/io/io.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"
#include "sim/launch.hh"
#include "sim/timer.hh"

namespace szp {

namespace {

constexpr std::uint32_t kContainerMagic = 0x43505A53;  // "SZPC"
constexpr std::uint16_t kContainerVersion = 1;

/// Fixed container prefix: magic u32, version u16, rank u8, dtype u8,
/// nx/ny/nz/slab-count u64 — what read_header() consumes.
constexpr std::size_t kContainerHeaderBytes = 40;

/// Planning allowance per parked slab archive beyond its input bytes
/// (archive header, codebook, chunk metadata).  The budget model charges a
/// parked archive at slab_bytes + this; the residency meter reports what
/// actually happened.
constexpr std::size_t kSlabArchiveOverhead = 4096;

/// Worker count for the slab pipeline: explicit config wins, then the
/// SZP_WORKERS environment variable, then the OpenMP thread budget.
/// Deliberately independent of cfg.parallel — the slab *plan* may consult
/// the worker count (auto_slab_thickness, memory_budget), and the plan must
/// not differ between a serial and a parallel run or their containers would
/// diverge.
std::size_t resolve_workers(const StreamingConfig& cfg) {
  if (cfg.workers != 0) return cfg.workers;
  if (const char* env = std::getenv("SZP_WORKERS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 4096) return static_cast<std::size_t>(v);
  }
#ifdef _OPENMP
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

/// Slab partition along the slowest axis: slab thickness chosen so each
/// slab holds at most max_slab_elems.
struct SlabPlan {
  std::size_t slow_extent;      ///< the slowest axis's length
  std::size_t plane_elems;      ///< elements per unit of the slowest axis
  std::size_t thickness;        ///< slowest-axis units per slab
  std::size_t count;            ///< number of slabs
};

SlabPlan plan_slabs(const Extents& ext, const StreamingConfig& cfg, std::size_t workers) {
  SlabPlan p{};
  switch (ext.rank) {
    case 1: p.slow_extent = ext.nx; p.plane_elems = 1; break;
    case 2: p.slow_extent = ext.ny; p.plane_elems = ext.nx; break;
    case 3: p.slow_extent = ext.nz; p.plane_elems = ext.nx * ext.ny; break;
    default: throw std::invalid_argument("StreamingCompressor: rank must be 1, 2, or 3");
  }
  if (p.plane_elems > cfg.max_slab_elems) {
    throw std::invalid_argument(
        "StreamingCompressor: a single plane exceeds max_slab_elems; raise the limit");
  }
  p.thickness = std::max<std::size_t>(1, cfg.max_slab_elems / p.plane_elems);
  if (cfg.auto_slab_thickness) {
    // Aim for ~3 slabs per worker so slabs with uneven workflow-selection
    // cost load-balance across the pool, without dropping below one slow-
    // axis unit or exceeding the max_slab_elems memory cap.
    const std::size_t target_slabs = std::max<std::size_t>(1, 3 * workers);
    const std::size_t balanced =
        std::max<std::size_t>(1, (p.slow_extent + target_slabs - 1) / target_slabs);
    p.thickness = std::min(p.thickness, balanced);
  }
  p.count = (p.slow_extent + p.thickness - 1) / p.thickness;
  return p;
}

/// The full out-of-core plan: the slab split plus the worker count and
/// queue window the memory budget admits.
struct StreamPlan {
  SlabPlan slabs;
  std::size_t workers;  ///< cap on pipeline workers (== resolved when unbudgeted)
  std::size_t window;   ///< queue window the budget model assumed
};

/// Resolve slab thickness, worker count, and queue window against
/// cfg.memory_budget.  Residency model (DESIGN.md §2.3): W staging buffers
/// of one slab each (viewless ingest) plus Q parked archives of at most
/// slab_bytes + kSlabArchiveOverhead awaiting in-order packing:
///
///   W·S + Q·(S + overhead) <= budget,  S = thickness · plane_bytes
///
/// Workers halve until a plan fits; refuse when even one single-plane slab
/// with one worker cannot.  Unbudgeted configs pass through plan_slabs()
/// unchanged, so existing containers are byte-stable.
StreamPlan plan_stream(const Extents& ext, const StreamingConfig& cfg, std::size_t plan_workers,
                       std::size_t elem_size) {
  StreamPlan p{};
  p.slabs = plan_slabs(ext, cfg, plan_workers);
  p.workers = plan_workers;
  p.window =
      std::max<std::size_t>(1, cfg.queue_window != 0 ? cfg.queue_window : 2 * plan_workers);
  if (cfg.memory_budget == 0) return p;

  const std::size_t budget = cfg.memory_budget;
  const std::size_t plane_bytes = p.slabs.plane_elems * elem_size;
  std::size_t w = std::max<std::size_t>(1, plan_workers);
  for (;;) {
    const std::size_t q =
        std::max<std::size_t>(1, cfg.queue_window != 0 ? cfg.queue_window : 2 * w);
    const std::size_t fixed = q * kSlabArchiveOverhead;
    if (budget > fixed) {
      const std::size_t max_slab_bytes = (budget - fixed) / (w + q);
      const std::size_t t = max_slab_bytes / plane_bytes;
      if (t >= 1) {
        p.workers = w;
        p.window = q;
        p.slabs.thickness = std::min(p.slabs.thickness, t);
        p.slabs.count =
            (p.slabs.slow_extent + p.slabs.thickness - 1) / p.slabs.thickness;
        return p;
      }
    }
    if (w == 1) break;
    w /= 2;
  }
  throw ConfigError(
      "StreamingCompressor: memory budget " + std::to_string(budget) +
      " bytes is too small: one single-plane slab plus its packed archive needs about " +
      std::to_string(2 * plane_bytes + kSlabArchiveOverhead) + " bytes");
}

Extents slab_extents(const Extents& ext, std::size_t len) {
  switch (ext.rank) {
    case 1: return Extents::d1(len);
    case 2: return Extents::d2(len, ext.nx);
    default: return Extents::d3(len, ext.ny, ext.nx);
  }
}

/// Whole-field min/max as a block-reduce over the launch substrate: the
/// per-block loops are plain scalar code (no nested OpenMP pragma), the
/// block partials merge exactly, so the resolved bound is identical to the
/// single-pass ValueRange::of scan — but the scan now parallelizes instead
/// of running serially before any slab worker starts.
template <typename T>
ValueRange field_range_blocked(std::span<const T> data) {
  constexpr std::size_t kBlock = std::size_t{1} << 16;
  const std::size_t blocks = sim::div_ceil(data.size(), kBlock);
  std::vector<ValueRange> partial(blocks);
  sim::launch_blocks(blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBlock;
    const std::size_t end = std::min(begin + kBlock, data.size());
    T lo = data[begin];
    T hi = data[begin];
    bool fin = true;
    for (std::size_t i = begin; i < end; ++i) {
      const T v = data[i];
      fin = fin && std::isfinite(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    partial[b] = ValueRange{static_cast<double>(lo), static_cast<double>(hi), fin};
  });
  ValueRange r = partial[0];
  for (std::size_t b = 1; b < blocks; ++b) {
    r.min = std::min(r.min, partial[b].min);
    r.max = std::max(r.max, partial[b].max);
    r.finite = r.finite && partial[b].finite;
  }
  return r;
}

/// min/max for a viewless source: one chunk-sized staging buffer, serial
/// positional reads.  Costs a second pass over the file, which only a
/// relative/PSNR bound pays — an absolute bound skips the scan entirely.
template <typename T>
ValueRange field_range_streamed(const io::FieldSource& src, std::size_t count) {
  constexpr std::size_t kChunk = std::size_t{1} << 16;
  std::vector<std::uint8_t> buf(std::min(count, kChunk) * sizeof(T));
  ValueRange r{};
  bool first = true;
  for (std::size_t begin = 0; begin < count; begin += kChunk) {
    const std::size_t n = std::min(kChunk, count - begin);
    src.read_at(begin * sizeof(T), std::span<std::uint8_t>(buf.data(), n * sizeof(T)));
    const T* p = reinterpret_cast<const T*>(buf.data());
    T lo = p[0];
    T hi = p[0];
    bool fin = true;
    for (std::size_t i = 0; i < n; ++i) {
      fin = fin && std::isfinite(p[i]);
      lo = std::min(lo, p[i]);
      hi = std::max(hi, p[i]);
    }
    const ValueRange part{static_cast<double>(lo), static_cast<double>(hi), fin};
    if (first) {
      r = part;
      first = false;
    } else {
      r.min = std::min(r.min, part.min);
      r.max = std::max(r.max, part.max);
      r.finite = r.finite && part.finite;
    }
  }
  return r;
}

/// Dynamic one-level fan-out: `count` independent work items claimed by up
/// to `workers` threads from a shared counter (no static pre-assignment, so
/// uneven item cost load-balances).  Exceptions are captured and the
/// lowest-index one is rethrown after every item has run, exactly like
/// sim::launch_blocks.  Used for compress_many fields and decompress slabs.
template <typename Body>
void fan_out_dynamic(std::size_t count, std::size_t workers, const Body& body) {
#ifdef _OPENMP
  if (workers > 1 && count > 1 && !sim::in_parallel_worker()) {
    std::atomic<std::size_t> next{0};
    sim::detail::FirstBlockError err;
    const int team = static_cast<int>(std::min(workers, count));
#pragma omp parallel num_threads(team)
    {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        try {
          body(i);
        } catch (...) {
          err.note(i);
        }
      }
    }
    err.rethrow_if_set();
    return;
  }
#else
  (void)workers;
#endif
  // Serial: the first fault is the lowest-index fault, so direct
  // propagation already matches the parallel path's determinism.
  for (std::size_t i = 0; i < count; ++i) body(i);
}

/// High-water accounting for bytes the pipeline itself holds resident:
/// staging buffers, parked items awaiting in-order consumption, retained
/// sink bytes.  Lock-free so produce-side charging never contends with the
/// engine mutex.
struct ResidencyMeter {
  std::atomic<std::size_t> current{0};
  std::atomic<std::size_t> peak{0};

  void add(std::size_t n) {
    if (n == 0) return;
    const std::size_t cur = current.fetch_add(n, std::memory_order_relaxed) + n;
    std::size_t p = peak.load(std::memory_order_relaxed);
    while (cur > p && !peak.compare_exchange_weak(p, cur, std::memory_order_relaxed)) {
    }
  }
  void sub(std::size_t n) {
    if (n != 0) current.fetch_sub(n, std::memory_order_relaxed);
  }
};

/// Read/write wall-clock attribution, accumulated by the produce/consume
/// closures (the engine only times whole produce/consume calls).  One lock
/// per slab is noise next to a slab compress.
struct PhaseClock {
  std::mutex m;
  double read = 0.0;
  double write = 0.0;

  void add_read(double s) {
    const std::lock_guard<std::mutex> lk(m);
    read += s;
  }
  void add_write(double s) {
    const std::lock_guard<std::mutex> lk(m);
    write += s;
  }
};

/// Shared state of the bounded producer/consumer pipeline.  Workers claim
/// item indices from `next` (dynamic schedule); finished items park in
/// `done` until the cooperative packer role drains them into the consumer
/// strictly in index order.  `next < frontier + window` bounds how far
/// production runs ahead of consumption, capping the finished-item backlog
/// held in memory.
template <typename Item>
struct EngineState {
  std::mutex m;
  std::condition_variable cv;
  std::size_t next = 0;       ///< next item index to claim
  std::size_t frontier = 0;   ///< next item index to consume
  bool packing = false;       ///< a worker currently holds the packer role
  bool stop = false;          ///< error seen: stop claiming, wind down
  std::size_t err_slab = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;
  std::vector<Item> done;
  std::vector<char> ready;
  double produce_seconds = 0.0;  ///< summed across workers (can exceed wall)
  double consume_seconds = 0.0;
};

struct PipelineSeconds {
  double produce = 0.0;
  double consume = 0.0;
};

/// The bounded ordered pipeline (DESIGN.md §2.2/§2.3), generalized over
/// what flows through it: compress runs it with Item = Compressed (produce
/// = read + compress a slab, consume = pack it), out-of-core decode with
/// Item = a decoded slab (produce = read + decode, consume = emit raw
/// bytes).  Every worker alternates between claiming the next index and
/// producing it, or — when the lowest unconsumed item is finished and
/// nobody else holds the packer role — draining consecutive finished items
/// through `consume` in index order.  On faults the lowest-index error wins
/// deterministically (claims are monotonic, so every item below a faulting
/// one ran to completion).
///
/// Single-worker runs execute serially: the two-phase reference schedule
/// (produce everything, then consume everything) when `interleave_serial`
/// is false — the in-memory default, where holding all items costs nothing
/// extra — or item-by-item interleaving when true, so bounded-residency
/// out-of-core runs never hold more than one finished item.
template <typename Item, typename MakeCtx, typename Produce, typename Consume>
PipelineSeconds run_ordered_pipeline(std::size_t count, std::size_t workers, std::size_t window,
                                     bool interleave_serial, const MakeCtx& make_ctx,
                                     const Produce& produce, const Consume& consume) {
  PipelineSeconds out;
#ifndef _OPENMP
  workers = 1;
#endif
  if (workers <= 1 || count <= 1) {
    auto ctx = make_ctx();
    if (interleave_serial) {
      for (std::size_t s = 0; s < count; ++s) {
        sim::Timer t;
        Item item = produce(ctx, s);
        out.produce += t.seconds();
        t.reset();
        consume(s, std::move(item));
        out.consume += t.seconds();
      }
    } else {
      std::vector<Item> items;
      items.reserve(count);
      sim::Timer t;
      for (std::size_t s = 0; s < count; ++s) items.push_back(produce(ctx, s));
      out.produce = t.seconds();
      t.reset();
      for (std::size_t s = 0; s < count; ++s) consume(s, std::move(items[s]));
      out.consume = t.seconds();
    }
    return out;
  }
#ifdef _OPENMP
  EngineState<Item> st;
  st.done.resize(count);
  st.ready.assign(count, 0);
  window = std::max<std::size_t>(1, window);

  const auto worker = [&]() {
    try {
      auto ctx = make_ctx();
      std::unique_lock<std::mutex> lk(st.m);
      for (;;) {
        if (st.stop) return;
        if (!st.packing && st.frontier < count && st.ready[st.frontier] != 0) {
          // Packer role: exclusive by the `packing` flag, in index order by
          // the frontier — so consume() needs no further synchronization.
          st.packing = true;
          while (!st.stop && st.frontier < count && st.ready[st.frontier] != 0) {
            const std::size_t s = st.frontier;
            Item item = std::move(st.done[s]);
            lk.unlock();
            sim::Timer t;
            bool pack_ok = true;
            try {
              consume(s, std::move(item));
            } catch (...) {
              pack_ok = false;
              lk.lock();
              if (s < st.err_slab) {
                st.err_slab = s;
                st.err = std::current_exception();
              }
              st.stop = true;
            }
            if (pack_ok) {
              const double dt = t.seconds();
              lk.lock();
              st.consume_seconds += dt;
              ++st.frontier;
            }
            st.cv.notify_all();  // the window advanced (or we are stopping)
          }
          st.packing = false;
          continue;
        }
        if (!st.stop && st.next < count && st.next < st.frontier + window) {
          const std::size_t s = st.next++;
          lk.unlock();
          sim::Timer t;
          bool ok = true;
          Item item;
          try {
            item = produce(ctx, s);
          } catch (...) {
            ok = false;
            lk.lock();
            // Keep the lowest-index fault: claims are monotonic, so every
            // item below a faulting one was claimed and ran to completion —
            // the winner is deterministic regardless of interleaving.
            if (s < st.err_slab) {
              st.err_slab = s;
              st.err = std::current_exception();
            }
            st.stop = true;
          }
          if (ok) {
            const double dt = t.seconds();
            lk.lock();
            st.produce_seconds += dt;
            st.done[s] = std::move(item);
            st.ready[s] = 1;
          }
          st.cv.notify_all();
          continue;
        }
        if (st.frontier >= count) return;  // everything consumed
        st.cv.wait(lk, [&] {
          return st.stop || st.frontier >= count ||
                 (!st.packing && st.ready[st.frontier] != 0) ||
                 (st.next < count && st.next < st.frontier + window);
        });
      }
    } catch (...) {
      // Context creation (e.g. lease acquisition) failed; surface it unless
      // an item already recorded a more specific fault.
      const std::lock_guard<std::mutex> lk(st.m);
      if (!st.err) st.err = std::current_exception();
      st.stop = true;
      st.cv.notify_all();
    }
  };

#pragma omp parallel num_threads(static_cast<int>(workers))
  { worker(); }

  if (st.err) std::rethrow_exception(st.err);
  out.produce = st.produce_seconds;
  out.consume = st.consume_seconds;
#endif
  return out;
}

/// Per-worker pipeline context: a leased workspace (under a parallel
/// config) and a slab staging buffer for viewless sources.  Staging prefers
/// the workspace's tracked slab_io buffer so steady-state out-of-core runs
/// allocate nothing; a worker without a lease falls back to its own vector.
struct WorkerCtx {
  WorkspaceLease lease;
  std::vector<std::uint8_t> own_buf;
  std::size_t charged = 0;  ///< staging capacity already on the meter
};

std::vector<std::uint8_t>& staging_buffer(WorkerCtx& ctx) {
  return ctx.lease ? ctx.lease->slab_io : ctx.own_buf;
}

template <typename T>
StreamingStats compress_stream_impl(const StreamingConfig& cfg, const Compressor& compressor,
                                    io::FieldSource& src, const Extents& ext,
                                    io::ContainerSink& sink) {
  const std::size_t total = ext.count();
  if (total == 0) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  if (src.size_bytes() != total * sizeof(T)) {
    throw std::invalid_argument("StreamingCompressor::compress: source " + src.name() +
                                " holds " + std::to_string(src.size_bytes()) +
                                " bytes, extents declare " + std::to_string(total * sizeof(T)));
  }
  const std::size_t plan_workers = resolve_workers(cfg);
  const StreamPlan plan = plan_stream(ext, cfg, plan_workers, sizeof(T));

  StreamingStats stats;
  stats.original_bytes = src.size_bytes();

  const std::span<const std::uint8_t> view = src.view();
  const T* view_elems = view.empty() ? nullptr : reinterpret_cast<const T*>(view.data());
  ResidencyMeter meter;
  PhaseClock clock;

  // Resolve a relative/PSNR bound against the whole field once, so every
  // slab carries the same absolute bound.  An absolute bound needs no field
  // scan at all — finiteness is re-validated by each slab's own compress
  // pass — which removes the serial whole-field read that used to run
  // before any worker could start.
  sim::Timer phase_timer;
  CompressConfig slab_cfg = cfg.base;
  if (cfg.base.eb.mode != EbMode::kAbsolute) {
    const ValueRange range = view_elems != nullptr
                                 ? field_range_blocked(std::span<const T>(view_elems, total))
                                 : field_range_streamed<T>(src, total);
    if (!range.finite) {
      throw std::invalid_argument("StreamingCompressor::compress: non-finite values");
    }
    slab_cfg.eb = ErrorBound::absolute(cfg.base.eb.resolve(range.span()));
  }
  stats.phases.range_seconds = phase_timer.seconds();
  stats.eb_abs = slab_cfg.eb.value;  // absolute by now, either way

  // The container header.  Sink writes happen only on the packer role's
  // thread (or here, before any worker starts), so the container bytes are
  // identical to a serial in-memory run by construction.
  {
    ByteWriter w;
    w.put(kContainerMagic);
    w.put(kContainerVersion);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(
        std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
    w.put<std::uint64_t>(ext.nx);
    w.put<std::uint64_t>(ext.ny);
    w.put<std::uint64_t>(ext.nz);
    w.put<std::uint64_t>(plan.slabs.count);
    const auto header = w.take();
    sink.write(header);
    if (sink.retains_bytes()) meter.add(header.size());
  }

  const auto slab_geom = [&](std::size_t s, Extents& sub, std::size_t& offset) {
    const std::size_t begin = s * plan.slabs.thickness;
    const std::size_t len = std::min(plan.slabs.thickness, plan.slabs.slow_extent - begin);
    sub = slab_extents(ext, len);
    offset = begin * plan.slabs.plane_elems;
  };

  // How many workers actually run: the config's parallel switch, the
  // machine, the plan, and the memory budget all cap it, and a compress
  // nested under an outer fan-out (compress_many) always runs single-worker
  // so the fan-out stays explicitly one-level.
  std::size_t exec_workers = 1;
#ifdef _OPENMP
  if (cfg.parallel && !sim::in_parallel_worker()) {
    exec_workers = std::min({plan.workers, plan.slabs.count});
  }
#endif
  stats.workers_used = std::max<std::size_t>(1, exec_workers);
  const std::size_t window = std::max<std::size_t>(
      1, cfg.queue_window != 0 ? cfg.queue_window : 2 * std::max<std::size_t>(1, exec_workers));

  const auto make_ctx = [&] {
    // Lease iff the config is parallel (single-worker parallel runs keep
    // the pipeline's per-worker discipline; a genuinely serial config skips
    // the pool round-trip) — lease assignment is deleted, so build in place.
    return WorkerCtx{cfg.parallel ? compressor.lease_workspace() : WorkspaceLease(), {}, 0};
  };

  const auto produce = [&](WorkerCtx& ctx, std::size_t s) -> Compressed {
    Extents sub;
    std::size_t offset = 0;
    slab_geom(s, sub, offset);
    std::span<const T> span;
    if (view_elems != nullptr) {
      span = std::span<const T>(view_elems + offset, sub.count());
    } else {
      std::vector<std::uint8_t>& buf = staging_buffer(ctx);
      const std::size_t nbytes = sub.count() * sizeof(T);
      sim::Timer rt;
      buf.resize(nbytes);
      src.read_at(offset * sizeof(T), std::span<std::uint8_t>(buf.data(), nbytes));
      clock.add_read(rt.seconds());
      if (buf.capacity() > ctx.charged) {
        meter.add(buf.capacity() - ctx.charged);
        ctx.charged = buf.capacity();
      }
      span = std::span<const T>(reinterpret_cast<const T*>(buf.data()), sub.count());
    }
    Compressed slab = ctx.lease ? compressor.compress(span, sub, slab_cfg, *ctx.lease)
                                : compressor.compress(span, sub, slab_cfg);
    meter.add(slab.bytes.size());  // parked until the packer drains it
    return slab;
  };

  const auto consume = [&](std::size_t s, Compressed&& slab) {
    Extents sub;
    std::size_t offset = 0;
    slab_geom(s, sub, offset);
    if (s == 0) {
      // Size the container off the first slab (offset + length prefix +
      // payload per entry) so incremental packing does not pay repeated
      // reallocation-and-copy (retaining sinks) — streaming sinks ignore it.
      sink.reserve_hint(plan.slabs.count * (slab.bytes.size() + 16));
    }
    SlabInfo info;
    info.extents = sub;
    info.offset = offset;
    info.ratio = slab.stats.ratio;
    info.workflow = slab.stats.workflow_used;
    stats.slabs.push_back(info);
    std::array<std::uint8_t, 16> prefix{};
    const std::uint64_t off64 = offset;
    const std::uint64_t len64 = slab.bytes.size();
    std::memcpy(prefix.data(), &off64, 8);
    std::memcpy(prefix.data() + 8, &len64, 8);
    const std::size_t parked = slab.bytes.size();
    sim::Timer wt;
    sink.write(prefix);
    sink.write(slab.bytes);
    clock.add_write(wt.seconds());
    if (sink.retains_bytes()) meter.add(prefix.size() + parked);
    meter.sub(parked);
  };

  // A retaining sink holds the whole container anyway, so the serial path
  // keeps the two-phase reference schedule (compress everything, then pack
  // — interleaving only costs cache locality when nothing runs
  // concurrently).  Streaming sinks and budgeted runs interleave so no more
  // than one finished slab is ever parked.
  const bool interleave_serial = !sink.retains_bytes() || cfg.memory_budget != 0;
  const PipelineSeconds t =
      run_ordered_pipeline<Compressed>(plan.slabs.count, exec_workers, window,
                                       interleave_serial, make_ctx, produce, consume);
  sink.finish();

  stats.phases.read_seconds = clock.read;
  stats.phases.write_seconds = clock.write;
  stats.phases.compress_seconds = std::max(0.0, t.produce - clock.read);
  stats.phases.pack_seconds = t.consume;
  stats.compressed_bytes = sink.bytes_written();
  stats.ratio = compression_ratio(stats.original_bytes, stats.compressed_bytes);
  stats.peak_resident_bytes = meter.peak.load(std::memory_order_relaxed);
  return stats;
}

template <typename T>
StreamingCompressed compress_impl(const StreamingConfig& cfg, const Compressor& compressor,
                                  std::span<const T> data, const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  io::SpanFieldSource src(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size_bytes()));
  io::VectorSink sink;
  StreamingCompressed out;
  out.stats = compress_stream_impl<T>(cfg, compressor, src, ext, sink);
  out.bytes = sink.take();
  return out;
}

template <typename T>
std::vector<StreamingCompressed> compress_many_impl(const StreamingConfig& cfg,
                                                    const Compressor& compressor,
                                                    std::span<const std::span<const T>> fields,
                                                    std::span<const Extents> exts) {
  if (fields.size() != exts.size()) {
    throw std::invalid_argument(
        "StreamingCompressor::compress_many: one extents entry per field required");
  }
  std::vector<StreamingCompressed> out(fields.size());
  const auto compress_field = [&](std::size_t f) {
    out[f] = compress_impl(cfg, compressor, fields[f], exts[f]);
  };
  if (cfg.parallel) {
    // Fields fan out across workers; each nested compress_impl detects the
    // active outer region and runs single-worker (stats.workers_used == 1),
    // so the fan-out is explicitly one-level regardless of the OpenMP
    // runtime's nesting default.
    fan_out_dynamic(fields.size(), resolve_workers(cfg), compress_field);
  } else {
    for (std::size_t f = 0; f < fields.size(); ++f) compress_field(f);
  }
  return out;
}

struct ContainerHeader {
  Extents extents;
  DType dtype;
  std::size_t slabs;
};

/// Parse and validate the fixed container prefix.  The slab-count bound is
/// checked separately (check_slab_bound) so callers reading the header from
/// a 40-byte staging buffer can bound against the *file's* remaining bytes
/// rather than the buffer's.
ContainerHeader read_header_fields(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kContainerMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZPC container");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kContainerVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "container version " + std::to_string(version) + ", expected " +
                          std::to_string(kContainerVersion));
  }
  ContainerHeader h{};
  h.extents.rank = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.slabs = r.get<std::uint64_t>();
  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  return h;
}

/// Each slab entry is at least a u64 offset plus a u64 length prefix;
/// `available` is whatever byte count follows the header (buffer remainder
/// in memory, file size minus header on disk).
void check_slab_bound(const ContainerHeader& h, std::size_t available) {
  if (h.slabs > available / 16) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "slab count " + std::to_string(h.slabs) + " exceeds what " +
                          std::to_string(available) + " remaining bytes can hold");
  }
}

ContainerHeader read_header(ByteReader& r) {
  ContainerHeader h = read_header_fields(r);
  check_slab_bound(h, r.remaining());
  return h;
}

/// Walk the slab directory without decoding payloads: inspect each nested
/// archive's header and require the slabs to tile the field back-to-back,
/// exactly as the writer lays them out.  Runs *before* the output field is
/// allocated, so spliced extents cannot drive a huge resize.
ContainerIndex index_impl(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  ContainerIndex idx;
  idx.extents = h.extents;
  idx.dtype = h.dtype;
  idx.slabs.reserve(h.slabs);
  std::uint64_t covered = 0;
  const std::uint64_t total = h.extents.count();
  for (std::size_t s = 0; s < h.slabs; ++s) {
    r.set_segment("slab directory");
    ContainerSlab ref{};
    ref.offset = r.get<std::uint64_t>();
    ref.bytes = r.get_bytes();
    const auto info = Compressor::inspect(ref.bytes);
    if (info.dtype != h.dtype) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " element type disagrees with the container");
    }
    ref.count = info.extents.count();
    if (ref.offset != covered || covered + ref.count > total) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " at offset " +
                            std::to_string(ref.offset) + " does not tile the field");
    }
    covered += ref.count;
    idx.slabs.push_back(ref);
  }
  if (covered != total) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                      "slabs cover " + std::to_string(covered) + " of " + std::to_string(total) +
                          " elements");
  }
  return idx;
}

/// Structural map of a container read through a viewless source: header
/// plus the byte position/length of every slab payload.  Bounds-checks the
/// directory against the file size (so a spliced length cannot drive reads
/// past the end) but defers tiling validation to the in-order consume pass
/// — the out-of-core decode never allocates the whole field, so there is no
/// huge-resize hazard to front-run.
struct FileSlabRef {
  std::size_t field_offset;
  std::size_t payload_pos;
  std::size_t payload_len;
};

struct FileContainerMap {
  ContainerHeader header{};
  std::vector<FileSlabRef> slabs;
  std::size_t max_payload = 0;
};

FileContainerMap walk_container(const io::FieldSource& src) {
  const std::size_t fsize = src.size_bytes();
  std::array<std::uint8_t, kContainerHeaderBytes> hb{};
  const std::size_t hlen = std::min<std::size_t>(fsize, hb.size());
  src.read_at(0, std::span<std::uint8_t>(hb.data(), hlen));
  ByteReader r(std::span<const std::uint8_t>(hb.data(), hlen));
  FileContainerMap map;
  map.header = read_header_fields(r);  // throws kTruncated when hlen < header
  check_slab_bound(map.header, fsize - kContainerHeaderBytes);
  map.slabs.reserve(map.header.slabs);
  std::size_t pos = kContainerHeaderBytes;
  for (std::size_t s = 0; s < map.header.slabs; ++s) {
    if (fsize - pos < 16) {
      throw DecodeError(DecodeErrorKind::kTruncated, "slab directory",
                        "need 16 bytes, have " + std::to_string(fsize - pos));
    }
    std::array<std::uint8_t, 16> entry{};
    src.read_at(pos, std::span<std::uint8_t>(entry.data(), entry.size()));
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::memcpy(&off, entry.data(), 8);
    std::memcpy(&len, entry.data() + 8, 8);
    if (len > fsize - pos - 16) {
      throw DecodeError(DecodeErrorKind::kTruncated, "slab directory",
                        "need " + std::to_string(len) + " bytes, have " +
                            std::to_string(fsize - pos - 16));
    }
    map.slabs.push_back(FileSlabRef{static_cast<std::size_t>(off), pos + 16,
                                    static_cast<std::size_t>(len)});
    map.max_payload = std::max(map.max_payload, static_cast<std::size_t>(len));
    pos += 16 + static_cast<std::size_t>(len);
  }
  return map;
}

/// One decoded slab flowing through the out-of-core decode pipeline.
struct DecodedSlab {
  Decompressed d;
  std::size_t declared_offset = 0;  ///< element offset from the directory
  std::size_t resident = 0;         ///< bytes charged to the meter while parked
};

std::span<const std::uint8_t> decoded_bytes(const Decompressed& d) {
  if (d.dtype == DType::kFloat32) {
    return {reinterpret_cast<const std::uint8_t*>(d.data.data()),
            d.data.size() * sizeof(float)};
  }
  return {reinterpret_cast<const std::uint8_t*>(d.data_f64.data()),
          d.data_f64.size() * sizeof(double)};
}

/// Cap decode workers/window so the budget model fits:
///   W·produce_cost + Q·park_cost <= budget
/// produce_cost bounds what one in-flight slab holds (payload staging plus
/// its decoded elements), park_cost what a finished slab parks awaiting
/// in-order emission (decoded elements only; the staging buffer is reused).
void resolve_decode_budget(std::size_t budget, std::size_t produce_cost, std::size_t park_cost,
                           std::size_t cfg_window, std::size_t& workers, std::size_t& window) {
  if (budget == 0) return;
  produce_cost = std::max<std::size_t>(1, produce_cost);
  park_cost = std::max<std::size_t>(1, park_cost);
  std::size_t w = std::max<std::size_t>(1, workers);
  for (;;) {
    const std::size_t q =
        std::max<std::size_t>(1, cfg_window != 0 ? cfg_window : 2 * w);
    if (w * produce_cost + q * park_cost <= budget) {
      workers = w;
      window = q;
      return;
    }
    if (w == 1) break;
    w /= 2;
  }
  if (produce_cost + park_cost <= budget) {
    workers = 1;
    window = 1;
    return;
  }
  throw ConfigError(
      "StreamingCompressor: memory budget " + std::to_string(budget) +
      " bytes is too small to decode this container: one slab in flight needs about " +
      std::to_string(produce_cost + park_cost) + " bytes");
}

StreamingFileInfo decompress_stream_impl(io::FieldSource& src, io::ContainerSink& sink,
                                         const StreamingConfig& cfg) {
  const std::span<const std::uint8_t> view = src.view();
  ResidencyMeter meter;
  PhaseClock clock;
  StreamingFileInfo out;
  out.stats.compressed_bytes = src.size_bytes();

  // Directory pass: zero-copy via the validated in-memory index when the
  // source has a view (span, mmap); a structural walk with positional reads
  // otherwise, with tiling validated incrementally by the in-order consume.
  ContainerIndex idx;
  FileContainerMap map;
  const bool has_view = !view.empty();
  std::size_t slab_count = 0;
  std::size_t esize = 0;
  std::size_t max_slab_elems_est = 0;
  if (has_view) {
    idx = index_impl(view);
    out.dtype = idx.dtype;
    out.extents = idx.extents;
    slab_count = idx.slabs.size();
    std::size_t max_payload = 0;
    for (const ContainerSlab& ref : idx.slabs) {
      max_payload = std::max(max_payload, ref.bytes.size());
      max_slab_elems_est = std::max(max_slab_elems_est, ref.count);
    }
    map.max_payload = max_payload;
  } else {
    map = walk_container(src);
    out.dtype = map.header.dtype;
    out.extents = map.header.extents;
    slab_count = map.slabs.size();
    // Uniform tiling (constant thickness, short last slab) makes the mean a
    // tight estimate of the largest decoded slab for the budget model.
    max_slab_elems_est = slab_count == 0
                             ? 0
                             : (out.extents.count() + slab_count - 1) / slab_count;
  }
  esize = out.dtype == DType::kFloat32 ? sizeof(float) : sizeof(double);
  const std::size_t total = out.extents.count();

  std::size_t exec_workers = 1;
#ifdef _OPENMP
  if (cfg.parallel && !sim::in_parallel_worker()) {
    exec_workers = std::min(resolve_workers(cfg), std::max<std::size_t>(1, slab_count));
  }
#endif
  std::size_t window = std::max<std::size_t>(
      1, cfg.queue_window != 0 ? cfg.queue_window : 2 * std::max<std::size_t>(1, exec_workers));
  const std::size_t park_cost = max_slab_elems_est * esize;
  const std::size_t produce_cost = (has_view ? 0 : map.max_payload) + park_cost;
  resolve_decode_budget(cfg.memory_budget, produce_cost, park_cost, cfg.queue_window,
                        exec_workers, window);
  out.stats.workers_used = std::max<std::size_t>(1, exec_workers);
  out.stats.eb_abs = 0.0;  // per-slab bounds live in the slab archives

  const auto make_ctx = [&] { return WorkerCtx{}; };

  const auto produce = [&](WorkerCtx& ctx, std::size_t s) -> DecodedSlab {
    DecodedSlab item;
    if (has_view) {
      const ContainerSlab& ref = idx.slabs[s];
      item.d = Compressor::decompress(ref.bytes);
      item.declared_offset = ref.offset;
      const std::size_t decoded =
          idx.dtype == DType::kFloat32 ? item.d.data.size() : item.d.data_f64.size();
      if (decoded != ref.count) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                          "slab decoded to " + std::to_string(decoded) +
                              " elements, its header declared " + std::to_string(ref.count));
      }
    } else {
      const FileSlabRef& ref = map.slabs[s];
      std::vector<std::uint8_t>& buf = staging_buffer(ctx);
      sim::Timer rt;
      buf.resize(ref.payload_len);
      src.read_at(ref.payload_pos, std::span<std::uint8_t>(buf.data(), ref.payload_len));
      clock.add_read(rt.seconds());
      if (buf.capacity() > ctx.charged) {
        meter.add(buf.capacity() - ctx.charged);
        ctx.charged = buf.capacity();
      }
      item.d = Compressor::decompress(std::span<const std::uint8_t>(buf.data(), buf.size()));
      item.declared_offset = ref.field_offset;
      if (item.d.dtype != out.dtype) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                          "slab " + std::to_string(s) +
                              " element type disagrees with the container");
      }
    }
    item.resident = decoded_bytes(item.d).size();
    meter.add(item.resident);
    return item;
  };

  std::size_t covered = 0;  // touched only by the in-order packer role
  const auto consume = [&](std::size_t s, DecodedSlab&& item) {
    const std::span<const std::uint8_t> bytes = decoded_bytes(item.d);
    const std::size_t n = bytes.size() / esize;
    if (item.declared_offset != covered || covered + n > total) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " at offset " +
                            std::to_string(item.declared_offset) + " does not tile the field");
    }
    SlabInfo info;
    info.extents = item.d.extents;
    info.offset = item.declared_offset;
    out.stats.slabs.push_back(info);
    sim::Timer wt;
    sink.write(bytes);
    clock.add_write(wt.seconds());
    if (sink.retains_bytes()) meter.add(bytes.size());
    meter.sub(item.resident);
    covered += n;
  };

  const PipelineSeconds t = run_ordered_pipeline<DecodedSlab>(
      slab_count, exec_workers, window, /*interleave_serial=*/true, make_ctx, produce, consume);
  if (covered != total) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                      "slabs cover " + std::to_string(covered) + " of " + std::to_string(total) +
                          " elements");
  }
  sink.finish();

  out.stats.phases.read_seconds = clock.read;
  out.stats.phases.write_seconds = clock.write;
  out.stats.phases.compress_seconds = std::max(0.0, t.produce - clock.read);
  out.stats.phases.pack_seconds = t.consume;
  out.stats.original_bytes = sink.bytes_written();
  out.stats.ratio =
      compression_ratio(out.stats.original_bytes, out.stats.compressed_bytes);
  out.stats.peak_resident_bytes = meter.peak.load(std::memory_order_relaxed);
  return out;
}

io::SourceMode source_mode(const StreamingConfig& cfg) {
  return cfg.use_mmap ? io::SourceMode::kAuto : io::SourceMode::kRead;
}

}  // namespace

StreamingCompressed StreamingCompressor::compress(std::span<const float> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const float> data, const Extents& ext,
                                                  const StreamingConfig& cfg) const {
  return compress_impl(cfg, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data, const Extents& ext,
                                                  const StreamingConfig& cfg) const {
  return compress_impl(cfg, slab_compressor_, data, ext);
}

StreamingStats StreamingCompressor::compress_stream(io::FieldSource& src, DType dtype,
                                                    const Extents& ext,
                                                    io::ContainerSink& sink) const {
  return compress_stream(src, dtype, ext, sink, cfg_);
}

StreamingStats StreamingCompressor::compress_stream(io::FieldSource& src, DType dtype,
                                                    const Extents& ext, io::ContainerSink& sink,
                                                    const StreamingConfig& cfg) const {
  switch (dtype) {
    case DType::kFloat32:
      return compress_stream_impl<float>(cfg, slab_compressor_, src, ext, sink);
    case DType::kFloat64:
      return compress_stream_impl<double>(cfg, slab_compressor_, src, ext, sink);
  }
  throw std::invalid_argument("StreamingCompressor::compress_stream: unsupported element type");
}

StreamingStats StreamingCompressor::compress_file(const std::filesystem::path& input,
                                                  const std::filesystem::path& output,
                                                  const Extents& ext, DType dtype) const {
  return compress_file(input, output, ext, dtype, cfg_);
}

StreamingStats StreamingCompressor::compress_file(const std::filesystem::path& input,
                                                  const std::filesystem::path& output,
                                                  const Extents& ext, DType dtype,
                                                  const StreamingConfig& cfg) const {
  const auto src = io::open_field_source(input, source_mode(cfg));
  io::FileSink sink(output);
  return compress_stream(*src, dtype, ext, sink, cfg);
}

StreamingFileInfo StreamingCompressor::decompress_stream(io::FieldSource& container,
                                                         io::ContainerSink& raw) {
  return decompress_stream(container, raw, StreamingConfig{});
}

StreamingFileInfo StreamingCompressor::decompress_stream(io::FieldSource& container,
                                                         io::ContainerSink& raw,
                                                         const StreamingConfig& cfg) {
  return decode_guard("streaming container",
                      [&] { return decompress_stream_impl(container, raw, cfg); });
}

StreamingFileInfo StreamingCompressor::decompress_file(const std::filesystem::path& input,
                                                       const std::filesystem::path& output) {
  return decompress_file(input, output, StreamingConfig{});
}

StreamingFileInfo StreamingCompressor::decompress_file(const std::filesystem::path& input,
                                                       const std::filesystem::path& output,
                                                       const StreamingConfig& cfg) {
  const auto src = io::open_field_source(input, source_mode(cfg));
  io::FileSink sink(output);
  return decompress_stream(*src, sink, cfg);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const float>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const double>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::size_t StreamingCompressor::slab_count(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
    ByteReader r(container);
    return read_header(r).slabs;
  });
}

ContainerIndex StreamingCompressor::index(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] { return index_impl(container); });
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container) {
  return decompress(container, StreamingConfig{});
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container,
                                                      const StreamingConfig& cfg) {
  return decode_guard("streaming container", [&] {
    const ContainerIndex idx = index_impl(container);

    StreamingDecompressed out;
    out.extents = idx.extents;
    out.dtype = idx.dtype;
    if (idx.dtype == DType::kFloat32) {
      out.data.resize(idx.extents.count());
    } else {
      out.data_f64.resize(idx.extents.count());
    }

    // Slabs decode into their disjoint output ranges (the directory pass
    // proved the tiling), claimed dynamically by up to cfg.workers threads
    // when cfg.parallel — and genuinely serially otherwise, so a serial
    // config serializes both directions.
    const auto decode_slab = [&](std::size_t s) {
      const ContainerSlab& ref = idx.slabs[s];
      auto slab = Compressor::decompress(ref.bytes);
      // The directory pass validated offset/count tiling from the slab
      // headers; re-check against the decoded payload before the copy.
      const std::size_t decoded =
          idx.dtype == DType::kFloat32 ? slab.data.size() : slab.data_f64.size();
      if (decoded != ref.count) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                          "slab decoded to " + std::to_string(decoded) +
                              " elements, its header declared " + std::to_string(ref.count));
      }
      if (idx.dtype == DType::kFloat32) {
        std::copy(slab.data.begin(), slab.data.end(),
                  out.data.begin() + static_cast<std::ptrdiff_t>(ref.offset));
      } else {
        std::copy(slab.data_f64.begin(), slab.data_f64.end(),
                  out.data_f64.begin() + static_cast<std::ptrdiff_t>(ref.offset));
      }
    };
    if (cfg.parallel) {
      fan_out_dynamic(idx.slabs.size(), resolve_workers(cfg), decode_slab);
    } else {
      for (std::size_t s = 0; s < idx.slabs.size(); ++s) decode_slab(s);
    }
    return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(const ContainerIndex& index,
                                                           std::size_t slab_index,
                                                           SlabInfo* info_out) {
  // A bad index with a well-formed container is a caller error, not archive
  // corruption; keep its own exception type.
  if (slab_index >= index.slabs.size()) {
    throw std::out_of_range("StreamingCompressor::decompress_slab: slab index out of range");
  }
  return decode_guard("streaming container", [&] {
    const ContainerSlab& ref = index.slabs[slab_index];
    auto slab = Compressor::decompress(ref.bytes);

    StreamingDecompressed out;
    out.extents = slab.extents;
    out.dtype = index.dtype;
    out.data = std::move(slab.data);
    out.data_f64 = std::move(slab.data_f64);
    if (info_out != nullptr) {
      info_out->extents = slab.extents;
      info_out->offset = ref.offset;
    }
    return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(
    std::span<const std::uint8_t> container, std::size_t slab_index, SlabInfo* info_out) {
  return decompress_slab(index(container), slab_index, info_out);
}

}  // namespace szp
