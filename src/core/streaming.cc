#include "core/streaming.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"

namespace szp {

namespace {

constexpr std::uint32_t kContainerMagic = 0x43505A53;  // "SZPC"
constexpr std::uint16_t kContainerVersion = 1;

/// Slab partition along the slowest axis: slab thickness chosen so each
/// slab holds at most max_slab_elems.
struct SlabPlan {
  std::size_t slow_extent;      ///< the slowest axis's length
  std::size_t plane_elems;      ///< elements per unit of the slowest axis
  std::size_t thickness;        ///< slowest-axis units per slab
  std::size_t count;            ///< number of slabs
};

SlabPlan plan_slabs(const Extents& ext, std::size_t max_slab_elems) {
  SlabPlan p{};
  switch (ext.rank) {
    case 1: p.slow_extent = ext.nx; p.plane_elems = 1; break;
    case 2: p.slow_extent = ext.ny; p.plane_elems = ext.nx; break;
    case 3: p.slow_extent = ext.nz; p.plane_elems = ext.nx * ext.ny; break;
    default: throw std::invalid_argument("StreamingCompressor: rank must be 1, 2, or 3");
  }
  if (p.plane_elems > max_slab_elems) {
    throw std::invalid_argument(
        "StreamingCompressor: a single plane exceeds max_slab_elems; raise the limit");
  }
  p.thickness = std::max<std::size_t>(1, max_slab_elems / p.plane_elems);
  p.count = (p.slow_extent + p.thickness - 1) / p.thickness;
  return p;
}

Extents slab_extents(const Extents& ext, std::size_t begin, std::size_t len) {
  switch (ext.rank) {
    case 1: return Extents::d1(len);
    case 2: return Extents::d2(len, ext.nx);
    default: return Extents::d3(len, ext.ny, ext.nx);
  }
  (void)begin;
}

template <typename T>
StreamingCompressed compress_impl(const StreamingConfig& cfg, std::span<const T> data,
                                  const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  const SlabPlan plan = plan_slabs(ext, cfg.max_slab_elems);

  // Resolve a relative bound against the whole field once, so every slab
  // carries the same absolute bound.
  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("StreamingCompressor::compress: non-finite values");
  }
  CompressConfig slab_cfg = cfg.base;
  slab_cfg.eb = ErrorBound::absolute(cfg.base.eb.resolve(range.span()));
  const Compressor compressor(slab_cfg);

  StreamingCompressed out;
  out.stats.original_bytes = data.size_bytes();
  out.stats.eb_abs = slab_cfg.eb.value;

  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(
      std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<std::uint64_t>(plan.count);

  for (std::size_t s = 0; s < plan.count; ++s) {
    const std::size_t begin = s * plan.thickness;
    const std::size_t len = std::min(plan.thickness, plan.slow_extent - begin);
    const Extents sub = slab_extents(ext, begin, len);
    const std::size_t offset = begin * plan.plane_elems;

    const auto slab = compressor.compress(
        std::span<const T>(data.data() + offset, sub.count()), sub);

    SlabInfo info;
    info.extents = sub;
    info.offset = offset;
    info.ratio = slab.stats.ratio;
    info.workflow = slab.stats.workflow_used;
    out.stats.slabs.push_back(info);

    w.put<std::uint64_t>(offset);
    w.put_vector(slab.bytes);
  }

  out.bytes = w.take();
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.ratio = compression_ratio(out.stats.original_bytes, out.stats.compressed_bytes);
  return out;
}

struct ContainerHeader {
  Extents extents;
  DType dtype;
  std::size_t slabs;
};

ContainerHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kContainerMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZPC container");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kContainerVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "container version " + std::to_string(version) + ", expected " +
                          std::to_string(kContainerVersion));
  }
  ContainerHeader h{};
  h.extents.rank = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.slabs = r.get<std::uint64_t>();
  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  // Each slab entry is at least a u64 offset plus a u64 length prefix.
  if (h.slabs > r.remaining() / 16) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "slab count " + std::to_string(h.slabs) + " exceeds what " +
                          std::to_string(r.remaining()) + " remaining bytes can hold");
  }
  return h;
}

/// One validated entry of the slab directory: the byte span is a view into
/// the container, decoded only after the whole directory proves consistent.
struct SlabRef {
  std::uint64_t offset;
  std::span<const std::uint8_t> bytes;
  std::size_t count;
};

/// Walk the slab directory without decoding payloads: inspect each nested
/// archive's header and require the slabs to tile the field back-to-back,
/// exactly as the writer lays them out.  Runs *before* the output field is
/// allocated, so spliced extents cannot drive a huge resize.
std::vector<SlabRef> read_slab_directory(ByteReader& r, const ContainerHeader& h) {
  std::vector<SlabRef> slabs;
  slabs.reserve(h.slabs);
  std::uint64_t covered = 0;
  const std::uint64_t total = h.extents.count();
  for (std::size_t s = 0; s < h.slabs; ++s) {
    r.set_segment("slab directory");
    SlabRef ref{};
    ref.offset = r.get<std::uint64_t>();
    ref.bytes = r.get_bytes();
    const auto info = Compressor::inspect(ref.bytes);
    if (info.dtype != h.dtype) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " element type disagrees with the container");
    }
    ref.count = info.extents.count();
    if (ref.offset != covered || covered + ref.count > total) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " at offset " +
                            std::to_string(ref.offset) + " does not tile the field");
    }
    covered += ref.count;
    slabs.push_back(ref);
  }
  if (covered != total) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                      "slabs cover " + std::to_string(covered) + " of " + std::to_string(total) +
                          " elements");
  }
  return slabs;
}

}  // namespace

StreamingCompressed StreamingCompressor::compress(std::span<const float> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, data, ext);
}

std::size_t StreamingCompressor::slab_count(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
    ByteReader r(container);
    return read_header(r).slabs;
  });
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  const auto slabs = read_slab_directory(r, h);

  StreamingDecompressed out;
  out.extents = h.extents;
  out.dtype = h.dtype;
  if (h.dtype == DType::kFloat32) {
    out.data.resize(h.extents.count());
  } else {
    out.data_f64.resize(h.extents.count());
  }

  for (const SlabRef& ref : slabs) {
    auto slab = Compressor::decompress(ref.bytes);
    // The directory pass validated offset/count tiling from the slab
    // headers; re-check against the decoded payload before the copy.
    const std::size_t decoded =
        h.dtype == DType::kFloat32 ? slab.data.size() : slab.data_f64.size();
    if (decoded != ref.count) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab decoded to " + std::to_string(decoded) +
                            " elements, its header declared " + std::to_string(ref.count));
    }
    if (h.dtype == DType::kFloat32) {
      std::copy(slab.data.begin(), slab.data.end(),
                out.data.begin() + static_cast<std::ptrdiff_t>(ref.offset));
    } else {
      std::copy(slab.data_f64.begin(), slab.data_f64.end(),
                out.data_f64.begin() + static_cast<std::ptrdiff_t>(ref.offset));
    }
  }
  return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(
    std::span<const std::uint8_t> container, std::size_t slab_index, SlabInfo* info_out) {
  // A bad index with a well-formed container is a caller error, not archive
  // corruption; resolve the count first so it keeps its own exception type.
  if (slab_index >= slab_count(container)) {
    throw std::out_of_range("StreamingCompressor::decompress_slab: slab index out of range");
  }
  return decode_guard("streaming container", [&] {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  r.set_segment("slab directory");
  for (std::size_t s = 0; s < slab_index; ++s) {
    (void)r.get<std::uint64_t>();
    (void)r.get_bytes();  // skip (length-prefixed)
  }
  const auto offset = r.get<std::uint64_t>();
  const auto bytes = r.get_bytes();
  auto slab = Compressor::decompress(bytes);

  StreamingDecompressed out;
  out.extents = slab.extents;
  out.dtype = h.dtype;
  out.data = std::move(slab.data);
  out.data_f64 = std::move(slab.data_f64);
  if (info_out != nullptr) {
    info_out->extents = slab.extents;
    info_out->offset = offset;
  }
  return out;
  });
}

}  // namespace szp
