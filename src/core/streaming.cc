#include "core/streaming.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/error.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"
#include "sim/launch.hh"
#include "sim/timer.hh"

namespace szp {

namespace {

constexpr std::uint32_t kContainerMagic = 0x43505A53;  // "SZPC"
constexpr std::uint16_t kContainerVersion = 1;

/// Worker count for the slab pipeline: explicit config wins, then the
/// SZP_WORKERS environment variable, then the OpenMP thread budget.
/// Deliberately independent of cfg.parallel — the slab *plan* may consult
/// the worker count (auto_slab_thickness), and the plan must not differ
/// between a serial and a parallel run or their containers would diverge.
std::size_t resolve_workers(const StreamingConfig& cfg) {
  if (cfg.workers != 0) return cfg.workers;
  if (const char* env = std::getenv("SZP_WORKERS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 4096) return static_cast<std::size_t>(v);
  }
#ifdef _OPENMP
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

/// Slab partition along the slowest axis: slab thickness chosen so each
/// slab holds at most max_slab_elems.
struct SlabPlan {
  std::size_t slow_extent;      ///< the slowest axis's length
  std::size_t plane_elems;      ///< elements per unit of the slowest axis
  std::size_t thickness;        ///< slowest-axis units per slab
  std::size_t count;            ///< number of slabs
};

SlabPlan plan_slabs(const Extents& ext, const StreamingConfig& cfg, std::size_t workers) {
  SlabPlan p{};
  switch (ext.rank) {
    case 1: p.slow_extent = ext.nx; p.plane_elems = 1; break;
    case 2: p.slow_extent = ext.ny; p.plane_elems = ext.nx; break;
    case 3: p.slow_extent = ext.nz; p.plane_elems = ext.nx * ext.ny; break;
    default: throw std::invalid_argument("StreamingCompressor: rank must be 1, 2, or 3");
  }
  if (p.plane_elems > cfg.max_slab_elems) {
    throw std::invalid_argument(
        "StreamingCompressor: a single plane exceeds max_slab_elems; raise the limit");
  }
  p.thickness = std::max<std::size_t>(1, cfg.max_slab_elems / p.plane_elems);
  if (cfg.auto_slab_thickness) {
    // Aim for ~3 slabs per worker so slabs with uneven workflow-selection
    // cost load-balance across the pool, without dropping below one slow-
    // axis unit or exceeding the max_slab_elems memory cap.
    const std::size_t target_slabs = std::max<std::size_t>(1, 3 * workers);
    const std::size_t balanced =
        std::max<std::size_t>(1, (p.slow_extent + target_slabs - 1) / target_slabs);
    p.thickness = std::min(p.thickness, balanced);
  }
  p.count = (p.slow_extent + p.thickness - 1) / p.thickness;
  return p;
}

Extents slab_extents(const Extents& ext, std::size_t len) {
  switch (ext.rank) {
    case 1: return Extents::d1(len);
    case 2: return Extents::d2(len, ext.nx);
    default: return Extents::d3(len, ext.ny, ext.nx);
  }
}

/// Whole-field min/max as a block-reduce over the launch substrate: the
/// per-block loops are plain scalar code (no nested OpenMP pragma), the
/// block partials merge exactly, so the resolved bound is identical to the
/// single-pass ValueRange::of scan — but the scan now parallelizes instead
/// of running serially before any slab worker starts.
template <typename T>
ValueRange field_range_blocked(std::span<const T> data) {
  constexpr std::size_t kBlock = std::size_t{1} << 16;
  const std::size_t blocks = sim::div_ceil(data.size(), kBlock);
  std::vector<ValueRange> partial(blocks);
  sim::launch_blocks(blocks, [&](std::size_t b) {
    const std::size_t begin = b * kBlock;
    const std::size_t end = std::min(begin + kBlock, data.size());
    T lo = data[begin];
    T hi = data[begin];
    bool fin = true;
    for (std::size_t i = begin; i < end; ++i) {
      const T v = data[i];
      fin = fin && std::isfinite(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    partial[b] = ValueRange{static_cast<double>(lo), static_cast<double>(hi), fin};
  });
  ValueRange r = partial[0];
  for (std::size_t b = 1; b < blocks; ++b) {
    r.min = std::min(r.min, partial[b].min);
    r.max = std::max(r.max, partial[b].max);
    r.finite = r.finite && partial[b].finite;
  }
  return r;
}

/// Dynamic one-level fan-out: `count` independent work items claimed by up
/// to `workers` threads from a shared counter (no static pre-assignment, so
/// uneven item cost load-balances).  Exceptions are captured and the
/// lowest-index one is rethrown after every item has run, exactly like
/// sim::launch_blocks.  Used for compress_many fields and decompress slabs.
template <typename Body>
void fan_out_dynamic(std::size_t count, std::size_t workers, const Body& body) {
#ifdef _OPENMP
  if (workers > 1 && count > 1 && !sim::in_parallel_worker()) {
    std::atomic<std::size_t> next{0};
    sim::detail::FirstBlockError err;
    const int team = static_cast<int>(std::min(workers, count));
#pragma omp parallel num_threads(team)
    {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        try {
          body(i);
        } catch (...) {
          err.note(i);
        }
      }
    }
    err.rethrow_if_set();
    return;
  }
#else
  (void)workers;
#endif
  // Serial: the first fault is the lowest-index fault, so direct
  // propagation already matches the parallel path's determinism.
  for (std::size_t i = 0; i < count; ++i) body(i);
}

/// Shared state of the bounded producer/consumer slab pipeline.  Workers
/// claim slab indices from `next` (dynamic schedule); finished archives
/// park in `done` until the cooperative packer role drains them into the
/// container strictly in index order.  `next < frontier + window` bounds
/// how far compression runs ahead of packing, capping the finished-slab
/// backlog held in memory.
struct EngineState {
  std::mutex m;
  std::condition_variable cv;
  std::size_t next = 0;       ///< next slab index to claim
  std::size_t frontier = 0;   ///< next slab index to pack
  bool packing = false;       ///< a worker currently holds the packer role
  bool stop = false;          ///< error seen: stop claiming, wind down
  std::size_t err_slab = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;
  std::vector<Compressed> done;
  std::vector<char> ready;
  double compress_seconds = 0.0;  ///< summed across workers (can exceed wall)
  double pack_seconds = 0.0;
};

template <typename T>
StreamingCompressed compress_impl(const StreamingConfig& cfg, const Compressor& compressor,
                                  std::span<const T> data, const Extents& ext) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("StreamingCompressor::compress: data must match extents");
  }
  const std::size_t plan_workers = resolve_workers(cfg);
  const SlabPlan plan = plan_slabs(ext, cfg, plan_workers);

  StreamingCompressed out;
  out.stats.original_bytes = data.size_bytes();

  // Resolve a relative/PSNR bound against the whole field once, so every
  // slab carries the same absolute bound.  An absolute bound needs no field
  // scan at all — finiteness is re-validated by each slab's own compress
  // pass — which removes the serial whole-field read that used to run
  // before any worker could start.
  sim::Timer phase_timer;
  CompressConfig slab_cfg = cfg.base;
  if (cfg.base.eb.mode != EbMode::kAbsolute) {
    const ValueRange range = field_range_blocked(data);
    if (!range.finite) {
      throw std::invalid_argument("StreamingCompressor::compress: non-finite values");
    }
    slab_cfg.eb = ErrorBound::absolute(cfg.base.eb.resolve(range.span()));
  }
  out.stats.phases.range_seconds = phase_timer.seconds();
  out.stats.eb_abs = slab_cfg.eb.value;  // absolute by now, either way

  // The container header and the per-slab pack step.  pack() must be called
  // in index order by exactly one thread at a time (the serial loop below,
  // or whichever pipeline worker holds the packer role) — that keeps the
  // container bytes identical to a serial run by construction.
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(
      std::is_same_v<T, float> ? DType::kFloat32 : DType::kFloat64));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<std::uint64_t>(plan.count);

  const auto slab_span = [&](std::size_t s, Extents& sub, std::size_t& offset) {
    const std::size_t begin = s * plan.thickness;
    const std::size_t len = std::min(plan.thickness, plan.slow_extent - begin);
    sub = slab_extents(ext, len);
    offset = begin * plan.plane_elems;
    return std::span<const T>(data.data() + offset, sub.count());
  };

  const auto pack = [&](std::size_t s, const Compressed& slab) {
    Extents sub;
    std::size_t offset = 0;
    (void)slab_span(s, sub, offset);
    if (s == 0) {
      // Size the container off the first slab (offset + length prefix +
      // payload per remaining entry) so incremental packing does not pay
      // repeated reallocation-and-copy as slabs stream in.
      w.reserve(w.size() + plan.count * (slab.bytes.size() + 16));
    }
    SlabInfo info;
    info.extents = sub;
    info.offset = offset;
    info.ratio = slab.stats.ratio;
    info.workflow = slab.stats.workflow_used;
    out.stats.slabs.push_back(info);
    w.put<std::uint64_t>(offset);
    w.put_vector(slab.bytes);
  };

  // How many workers actually run: the config's parallel switch, the
  // machine, and the plan all cap it, and a compress nested under an outer
  // fan-out (compress_many) always runs single-worker so the fan-out stays
  // explicitly one-level.
  std::size_t exec_workers = 1;
#ifdef _OPENMP
  if (cfg.parallel && !sim::in_parallel_worker()) {
    exec_workers = std::min(plan_workers, plan.count);
  }
#endif
  out.stats.workers_used = std::max<std::size_t>(1, exec_workers);

  if (exec_workers <= 1) {
    // One worker: there is no concurrency to overlap, so both configs run
    // the two-phase reference schedule (compress every slab, then pack —
    // interleaving pack between compresses only costs cache locality when
    // nothing runs concurrently).  The parallel config still keeps the
    // pipeline's per-worker discipline: one workspace lease for the whole
    // run instead of a pool round-trip per slab.  Inner kernel launches
    // still parallelize either way (this is not a nested context).
    WorkspaceLease lease =
        cfg.parallel ? compressor.lease_workspace() : WorkspaceLease();
    std::vector<Compressed> slabs(plan.count);
    sim::Timer t;
    for (std::size_t s = 0; s < plan.count; ++s) {
      Extents sub;
      std::size_t offset = 0;
      const auto span = slab_span(s, sub, offset);
      slabs[s] = lease ? compressor.compress(span, sub, slab_cfg, *lease)
                       : compressor.compress(span, sub, slab_cfg);
    }
    out.stats.phases.compress_seconds = t.seconds();
    t.reset();
    for (std::size_t s = 0; s < plan.count; ++s) pack(s, slabs[s]);
    out.stats.phases.pack_seconds = t.seconds();
  } else {
#ifdef _OPENMP
    // Bounded producer/consumer pipeline (DESIGN.md §2.2).  Every worker
    // alternates between two jobs under one mutex: claim the next slab
    // index and compress it (producer), or — when the lowest unpacked slab
    // is finished and nobody else is packing — take the packer role and
    // drain consecutive finished slabs into the container (consumer).
    // Claims throttle at `frontier + window` so compression never runs
    // unboundedly ahead of packing.
    EngineState st;
    st.done.resize(plan.count);
    st.ready.assign(plan.count, 0);
    const std::size_t window =
        std::max<std::size_t>(1, cfg.queue_window != 0 ? cfg.queue_window : 2 * exec_workers);

    const auto worker = [&]() {
      try {
        auto lease = compressor.lease_workspace();
        std::unique_lock<std::mutex> lk(st.m);
        for (;;) {
          if (st.stop) return;
          if (!st.packing && st.frontier < plan.count && st.ready[st.frontier] != 0) {
            // Packer role: exclusive by the `packing` flag, in index order
            // by the frontier — so pack() needs no further synchronization.
            st.packing = true;
            while (!st.stop && st.frontier < plan.count && st.ready[st.frontier] != 0) {
              const std::size_t s = st.frontier;
              const Compressed slab = std::move(st.done[s]);
              lk.unlock();
              sim::Timer t;
              bool pack_ok = true;
              try {
                pack(s, slab);
              } catch (...) {
                pack_ok = false;
                lk.lock();
                if (s < st.err_slab) {
                  st.err_slab = s;
                  st.err = std::current_exception();
                }
                st.stop = true;
              }
              if (pack_ok) {
                const double dt = t.seconds();
                lk.lock();
                st.pack_seconds += dt;
                ++st.frontier;
              }
              st.cv.notify_all();  // the window advanced (or we are stopping)
            }
            st.packing = false;
            continue;
          }
          if (!st.stop && st.next < plan.count && st.next < st.frontier + window) {
            const std::size_t s = st.next++;
            lk.unlock();
            Extents sub;
            std::size_t offset = 0;
            const auto span = slab_span(s, sub, offset);
            sim::Timer t;
            bool ok = true;
            Compressed slab;
            try {
              slab = compressor.compress(span, sub, slab_cfg, *lease);
            } catch (...) {
              ok = false;
              lk.lock();
              // Keep the lowest-index fault: claims are monotonic, so every
              // slab below a faulting one was claimed and ran to completion
              // — the winner is deterministic regardless of interleaving.
              if (s < st.err_slab) {
                st.err_slab = s;
                st.err = std::current_exception();
              }
              st.stop = true;
            }
            if (ok) {
              const double dt = t.seconds();
              lk.lock();
              st.compress_seconds += dt;
              st.done[s] = std::move(slab);
              st.ready[s] = 1;
            }
            st.cv.notify_all();
            continue;
          }
          if (st.frontier >= plan.count) return;  // everything packed
          st.cv.wait(lk, [&] {
            return st.stop || st.frontier >= plan.count ||
                   (!st.packing && st.ready[st.frontier] != 0) ||
                   (st.next < plan.count && st.next < st.frontier + window);
          });
        }
      } catch (...) {
        // Lease acquisition (or another pre-loop step) failed; surface it
        // unless a slab already recorded a more specific fault.
        const std::lock_guard<std::mutex> lk(st.m);
        if (!st.err) st.err = std::current_exception();
        st.stop = true;
        st.cv.notify_all();
      }
    };

#pragma omp parallel num_threads(static_cast<int>(exec_workers))
    { worker(); }

    if (st.err) std::rethrow_exception(st.err);
    out.stats.phases.compress_seconds = st.compress_seconds;
    out.stats.phases.pack_seconds = st.pack_seconds;
#endif
  }

  out.bytes = w.take();
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.ratio = compression_ratio(out.stats.original_bytes, out.stats.compressed_bytes);
  return out;
}

template <typename T>
std::vector<StreamingCompressed> compress_many_impl(const StreamingConfig& cfg,
                                                    const Compressor& compressor,
                                                    std::span<const std::span<const T>> fields,
                                                    std::span<const Extents> exts) {
  if (fields.size() != exts.size()) {
    throw std::invalid_argument(
        "StreamingCompressor::compress_many: one extents entry per field required");
  }
  std::vector<StreamingCompressed> out(fields.size());
  const auto compress_field = [&](std::size_t f) {
    out[f] = compress_impl(cfg, compressor, fields[f], exts[f]);
  };
  if (cfg.parallel) {
    // Fields fan out across workers; each nested compress_impl detects the
    // active outer region and runs single-worker (stats.workers_used == 1),
    // so the fan-out is explicitly one-level regardless of the OpenMP
    // runtime's nesting default.
    fan_out_dynamic(fields.size(), resolve_workers(cfg), compress_field);
  } else {
    for (std::size_t f = 0; f < fields.size(); ++f) compress_field(f);
  }
  return out;
}

struct ContainerHeader {
  Extents extents;
  DType dtype;
  std::size_t slabs;
};

ContainerHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kContainerMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZPC container");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kContainerVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "container version " + std::to_string(version) + ", expected " +
                          std::to_string(kContainerVersion));
  }
  ContainerHeader h{};
  h.extents.rank = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.slabs = r.get<std::uint64_t>();
  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  // Each slab entry is at least a u64 offset plus a u64 length prefix.
  if (h.slabs > r.remaining() / 16) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "slab count " + std::to_string(h.slabs) + " exceeds what " +
                          std::to_string(r.remaining()) + " remaining bytes can hold");
  }
  return h;
}

/// Walk the slab directory without decoding payloads: inspect each nested
/// archive's header and require the slabs to tile the field back-to-back,
/// exactly as the writer lays them out.  Runs *before* the output field is
/// allocated, so spliced extents cannot drive a huge resize.
ContainerIndex index_impl(std::span<const std::uint8_t> container) {
  ByteReader r(container);
  const ContainerHeader h = read_header(r);
  ContainerIndex idx;
  idx.extents = h.extents;
  idx.dtype = h.dtype;
  idx.slabs.reserve(h.slabs);
  std::uint64_t covered = 0;
  const std::uint64_t total = h.extents.count();
  for (std::size_t s = 0; s < h.slabs; ++s) {
    r.set_segment("slab directory");
    ContainerSlab ref{};
    ref.offset = r.get<std::uint64_t>();
    ref.bytes = r.get_bytes();
    const auto info = Compressor::inspect(ref.bytes);
    if (info.dtype != h.dtype) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " element type disagrees with the container");
    }
    ref.count = info.extents.count();
    if (ref.offset != covered || covered + ref.count > total) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                        "slab " + std::to_string(s) + " at offset " +
                            std::to_string(ref.offset) + " does not tile the field");
    }
    covered += ref.count;
    idx.slabs.push_back(ref);
  }
  if (covered != total) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                      "slabs cover " + std::to_string(covered) + " of " + std::to_string(total) +
                          " elements");
  }
  return idx;
}

}  // namespace

StreamingCompressed StreamingCompressor::compress(std::span<const float> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data,
                                                  const Extents& ext) const {
  return compress_impl(cfg_, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const float> data, const Extents& ext,
                                                  const StreamingConfig& cfg) const {
  return compress_impl(cfg, slab_compressor_, data, ext);
}

StreamingCompressed StreamingCompressor::compress(std::span<const double> data, const Extents& ext,
                                                  const StreamingConfig& cfg) const {
  return compress_impl(cfg, slab_compressor_, data, ext);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const float>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::vector<StreamingCompressed> StreamingCompressor::compress_many(
    std::span<const std::span<const double>> fields, std::span<const Extents> exts) const {
  return compress_many_impl(cfg_, slab_compressor_, fields, exts);
}

std::size_t StreamingCompressor::slab_count(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] {
    ByteReader r(container);
    return read_header(r).slabs;
  });
}

ContainerIndex StreamingCompressor::index(std::span<const std::uint8_t> container) {
  return decode_guard("streaming container", [&] { return index_impl(container); });
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container) {
  return decompress(container, StreamingConfig{});
}

StreamingDecompressed StreamingCompressor::decompress(std::span<const std::uint8_t> container,
                                                      const StreamingConfig& cfg) {
  return decode_guard("streaming container", [&] {
    const ContainerIndex idx = index_impl(container);

    StreamingDecompressed out;
    out.extents = idx.extents;
    out.dtype = idx.dtype;
    if (idx.dtype == DType::kFloat32) {
      out.data.resize(idx.extents.count());
    } else {
      out.data_f64.resize(idx.extents.count());
    }

    // Slabs decode into their disjoint output ranges (the directory pass
    // proved the tiling), claimed dynamically by up to cfg.workers threads
    // when cfg.parallel — and genuinely serially otherwise, so a serial
    // config serializes both directions.
    const auto decode_slab = [&](std::size_t s) {
      const ContainerSlab& ref = idx.slabs[s];
      auto slab = Compressor::decompress(ref.bytes);
      // The directory pass validated offset/count tiling from the slab
      // headers; re-check against the decoded payload before the copy.
      const std::size_t decoded =
          idx.dtype == DType::kFloat32 ? slab.data.size() : slab.data_f64.size();
      if (decoded != ref.count) {
        throw DecodeError(DecodeErrorKind::kCorruptStream, "slab directory",
                          "slab decoded to " + std::to_string(decoded) +
                              " elements, its header declared " + std::to_string(ref.count));
      }
      if (idx.dtype == DType::kFloat32) {
        std::copy(slab.data.begin(), slab.data.end(),
                  out.data.begin() + static_cast<std::ptrdiff_t>(ref.offset));
      } else {
        std::copy(slab.data_f64.begin(), slab.data_f64.end(),
                  out.data_f64.begin() + static_cast<std::ptrdiff_t>(ref.offset));
      }
    };
    if (cfg.parallel) {
      fan_out_dynamic(idx.slabs.size(), resolve_workers(cfg), decode_slab);
    } else {
      for (std::size_t s = 0; s < idx.slabs.size(); ++s) decode_slab(s);
    }
    return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(const ContainerIndex& index,
                                                           std::size_t slab_index,
                                                           SlabInfo* info_out) {
  // A bad index with a well-formed container is a caller error, not archive
  // corruption; keep its own exception type.
  if (slab_index >= index.slabs.size()) {
    throw std::out_of_range("StreamingCompressor::decompress_slab: slab index out of range");
  }
  return decode_guard("streaming container", [&] {
    const ContainerSlab& ref = index.slabs[slab_index];
    auto slab = Compressor::decompress(ref.bytes);

    StreamingDecompressed out;
    out.extents = slab.extents;
    out.dtype = index.dtype;
    out.data = std::move(slab.data);
    out.data_f64 = std::move(slab.data_f64);
    if (info_out != nullptr) {
      info_out->extents = slab.extents;
      info_out->offset = ref.offset;
    }
    return out;
  });
}

StreamingDecompressed StreamingCompressor::decompress_slab(
    std::span<const std::uint8_t> container, std::size_t slab_index, SlabInfo* info_out) {
  return decompress_slab(index(container), slab_index, info_out);
}

}  // namespace szp
