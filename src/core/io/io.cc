#include "core/io/io.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define SZP_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SZP_HAVE_POSIX_IO 0
#endif

namespace szp::io {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& name) {
  throw std::runtime_error(what + ": " + name);
}

[[noreturn]] void fail_errno(const std::string& what, const std::string& name) {
  throw std::runtime_error(what + ": " + name + ": " + std::strerror(errno));
}

}  // namespace

void SpanFieldSource::read_at(std::size_t offset, std::span<std::uint8_t> out) const {
  if (offset > bytes_.size() || out.size() > bytes_.size() - offset) {
    fail("read past end of source", name());
  }
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
}

FileFieldSource::FileFieldSource(const std::filesystem::path& path) : path_(path.string()) {
  std::error_code ec;
  const auto sz = std::filesystem::file_size(path, ec);
  if (ec) fail("cannot stat file", path_);
  size_ = static_cast<std::size_t>(sz);
#if SZP_HAVE_POSIX_IO
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) fail_errno("cannot open file", path_);
#else
  stream_.open(path, std::ios::binary);
  if (!stream_) fail("cannot open file", path_);
#endif
}

FileFieldSource::~FileFieldSource() {
#if SZP_HAVE_POSIX_IO
  if (fd_ >= 0) ::close(fd_);
#endif
}

void FileFieldSource::read_at(std::size_t offset, std::span<std::uint8_t> out) const {
  if (offset > size_ || out.size() > size_ - offset) {
    fail("read past end of file", name());
  }
#if SZP_HAVE_POSIX_IO
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read failed", name());
    }
    if (n == 0) fail("short read (file truncated underneath us?)", name());
    got += static_cast<std::size_t>(n);
  }
#else
  const std::lock_guard<std::mutex> lk(stream_mutex_);
  stream_.clear();
  stream_.seekg(static_cast<std::streamoff>(offset));
  stream_.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
  if (stream_.gcount() != static_cast<std::streamsize>(out.size())) {
    fail("short read", name());
  }
#endif
}

MmapFieldSource::MmapFieldSource(const std::filesystem::path& path) : path_(path.string()) {
#if SZP_HAVE_POSIX_IO
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) fail_errno("cannot open file", path_);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail_errno("cannot stat file", path_);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap of length 0 is unspecified; an empty mapping serves no reads.
    ::close(fd);
    fail("cannot mmap an empty file", path_);
  }
  map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    fail_errno("mmap failed", path_);
  }
#else
  fail("mmap is unavailable on this platform", path_);
#endif
}

MmapFieldSource::~MmapFieldSource() {
#if SZP_HAVE_POSIX_IO
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

void MmapFieldSource::read_at(std::size_t offset, std::span<std::uint8_t> out) const {
  if (offset > size_ || out.size() > size_ - offset) {
    fail("read past end of mapping", name());
  }
  std::memcpy(out.data(), static_cast<const std::uint8_t*>(map_) + offset, out.size());
}

bool MmapFieldSource::supported() { return SZP_HAVE_POSIX_IO != 0; }

std::unique_ptr<FieldSource> open_field_source(const std::filesystem::path& path,
                                               SourceMode mode) {
  switch (mode) {
    case SourceMode::kMmap:
      return std::make_unique<MmapFieldSource>(path);
    case SourceMode::kRead:
      return std::make_unique<FileFieldSource>(path);
    case SourceMode::kAuto:
    default:
      if (MmapFieldSource::supported()) {
        std::error_code ec;
        const auto sz = std::filesystem::file_size(path, ec);
        if (!ec && sz > 0) {
          try {
            return std::make_unique<MmapFieldSource>(path);
          } catch (const std::runtime_error&) {
            // e.g. a filesystem that refuses mappings — degrade to reads
          }
        }
      }
      return std::make_unique<FileFieldSource>(path);
  }
}

FileSink::FileSink(const std::filesystem::path& path)
    : path_(path.string()), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) fail("cannot open output file", path_);
}

void FileSink::write(std::span<const std::uint8_t> bytes) {
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) fail("write failed", path_);
  written_ += bytes.size();
}

void FileSink::finish() {
  out_.flush();
  if (!out_) fail("flush failed", path_);
}

}  // namespace szp::io
