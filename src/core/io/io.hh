// szp::io — the byte-source / byte-sink seam under out-of-core streaming.
//
// The slab pipeline (core/streaming.*) never touches files directly: it
// reads its input through a FieldSource (positional, thread-safe reads so
// concurrent slab workers can ingest disjoint ranges) and emits its output
// through a ContainerSink (strictly sequential appends, driven by the
// in-order packer role).  Three source implementations cover the memory
// spectrum:
//
//   * SpanFieldSource — an in-memory field; view() exposes it zero-copy, so
//     the classic compress(span) entry points lose nothing by routing
//     through the seam.
//   * FileFieldSource — a plain file read with positional pread(2)-style
//     calls into caller-owned buffers; the only implementation whose
//     resident cost is exactly the buffers the pipeline chooses to hold,
//     so it is what the memory-budget tests meter.
//   * MmapFieldSource — the file mapped read-only; view() exposes the
//     mapping, giving zero-copy slab spans while the kernel's page cache
//     handles residency (the huawei-competition repo's ingest idiom).
//
// Sinks mirror the split: VectorSink retains the container in memory (the
// classic API), FileSink appends to disk so finished slabs leave RAM as
// soon as they are packed.  Sources and sinks throw std::runtime_error on
// I/O failure; the pipeline's ordered-drain engine turns a mid-slab fault
// into the deterministic lowest-index error, same as a compute fault.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace szp::io {

/// Random-access byte source (a raw field being compressed, or a container
/// being decompressed).  read_at() must be safe to call from concurrent
/// threads on disjoint or overlapping ranges.
class FieldSource {
 public:
  FieldSource() = default;
  FieldSource(const FieldSource&) = delete;
  FieldSource& operator=(const FieldSource&) = delete;
  virtual ~FieldSource() = default;

  [[nodiscard]] virtual std::size_t size_bytes() const = 0;

  /// Fill `out` from byte offset `offset`.  Throws std::runtime_error on a
  /// short read, a range past the end, or an I/O failure.
  virtual void read_at(std::size_t offset, std::span<std::uint8_t> out) const = 0;

  /// Optional zero-copy view of the whole source (in-memory spans, mmap).
  /// Empty when the source cannot expose one; callers must then read_at()
  /// into their own buffers.
  [[nodiscard]] virtual std::span<const std::uint8_t> view() const { return {}; }

  /// Human-readable origin for error messages ("<memory>", a file path).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Sequential byte sink (a container being packed, or a raw field being
/// written back out).  write() is only ever called by one thread at a time
/// — the pipeline's in-order packer role serializes it by construction.
class ContainerSink {
 public:
  ContainerSink() = default;
  ContainerSink(const ContainerSink&) = delete;
  ContainerSink& operator=(const ContainerSink&) = delete;
  virtual ~ContainerSink() = default;

  /// Append bytes.  Throws std::runtime_error on failure.
  virtual void write(std::span<const std::uint8_t> bytes) = 0;

  /// Capacity hint: roughly `more` further bytes are expected.  Retaining
  /// sinks may pre-reserve; streaming sinks ignore it.
  virtual void reserve_hint(std::size_t more) { (void)more; }

  /// Bytes accepted so far.
  [[nodiscard]] virtual std::size_t bytes_written() const = 0;

  /// Whether written bytes stay resident in host memory (true for the
  /// in-memory sink).  The streaming pipeline charges retained bytes
  /// against its residency meter; streamed-to-disk bytes cost nothing.
  [[nodiscard]] virtual bool retains_bytes() const { return false; }

  /// Flush and surface any deferred write error.  Called once by the
  /// pipeline after the final slab is packed.
  virtual void finish() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// In-memory source over caller-owned bytes (kept alive by the caller).
class SpanFieldSource final : public FieldSource {
 public:
  explicit SpanFieldSource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t size_bytes() const override { return bytes_.size(); }
  void read_at(std::size_t offset, std::span<std::uint8_t> out) const override;
  [[nodiscard]] std::span<const std::uint8_t> view() const override { return bytes_; }
  [[nodiscard]] std::string name() const override { return "<memory>"; }

 private:
  std::span<const std::uint8_t> bytes_;
};

/// Plain-file source with positional reads (pread(2) where available, a
/// mutex-serialized seek+read fallback elsewhere).  No view: every byte the
/// pipeline holds is a buffer the pipeline chose to allocate.
class FileFieldSource final : public FieldSource {
 public:
  explicit FileFieldSource(const std::filesystem::path& path);
  ~FileFieldSource() override;

  [[nodiscard]] std::size_t size_bytes() const override { return size_; }
  void read_at(std::size_t offset, std::span<std::uint8_t> out) const override;
  [[nodiscard]] std::string name() const override { return path_; }

 private:
  std::string path_;
  std::size_t size_ = 0;
  int fd_ = -1;                    ///< POSIX descriptor (pread path)
  mutable std::ifstream stream_;   ///< portable fallback
  mutable std::mutex stream_mutex_;
};

/// Read-only mmap of a whole file; view() exposes the mapping.  Falls back
/// is the caller's job: open_field_source() prefers mmap and degrades to
/// FileFieldSource when mapping is unavailable.
class MmapFieldSource final : public FieldSource {
 public:
  explicit MmapFieldSource(const std::filesystem::path& path);
  ~MmapFieldSource() override;

  [[nodiscard]] std::size_t size_bytes() const override { return size_; }
  void read_at(std::size_t offset, std::span<std::uint8_t> out) const override;
  [[nodiscard]] std::span<const std::uint8_t> view() const override {
    return {static_cast<const std::uint8_t*>(map_), size_};
  }
  [[nodiscard]] std::string name() const override { return path_; }

  /// Whether this build can mmap at all (POSIX).
  [[nodiscard]] static bool supported();

 private:
  std::string path_;
  std::size_t size_ = 0;
  void* map_ = nullptr;
};

/// How open_field_source() should back a file.
enum class SourceMode {
  kAuto,  ///< mmap when supported and the file is non-empty, else pread
  kMmap,  ///< mmap or throw
  kRead,  ///< positional reads only (bounded-residency ingest)
};

/// Open a file as a FieldSource.  Throws std::runtime_error when the file
/// cannot be opened (or mapped, for kMmap).
[[nodiscard]] std::unique_ptr<FieldSource> open_field_source(
    const std::filesystem::path& path, SourceMode mode = SourceMode::kAuto);

/// In-memory sink: the classic API's container buffer.
class VectorSink final : public ContainerSink {
 public:
  void write(std::span<const std::uint8_t> bytes) override {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void reserve_hint(std::size_t more) override { buf_.reserve(buf_.size() + more); }
  [[nodiscard]] std::size_t bytes_written() const override { return buf_.size(); }
  [[nodiscard]] bool retains_bytes() const override { return true; }
  [[nodiscard]] std::string name() const override { return "<memory>"; }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Streaming file sink: packed bytes leave host memory immediately.
class FileSink final : public ContainerSink {
 public:
  explicit FileSink(const std::filesystem::path& path);

  void write(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::size_t bytes_written() const override { return written_; }
  void finish() override;
  [[nodiscard]] std::string name() const override { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t written_ = 0;
};

}  // namespace szp::io
