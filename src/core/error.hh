// szp — structured error taxonomy for the decode side.
//
// Archives are untrusted input: they arrive truncated, bit-flipped, spliced,
// or maliciously crafted.  Every decode path reports such damage as a
// DecodeError carrying a machine-checkable kind plus the archive segment
// (header / codebook / bitstream / outliers / …) where parsing failed, so
// callers can distinguish corrupt input (recoverable, exit code 4 in the
// CLI) from usage errors and genuine bugs — and operators can localize the
// corruption.  DESIGN.md §9 documents the taxonomy and the mutation-fuzz
// harness that enforces it.
#pragma once

#include <new>
#include <stdexcept>
#include <string>
#include <utility>

namespace szp {

/// What kind of damage the decoder detected.
enum class DecodeErrorKind {
  kTruncated,         ///< stream ended before a required field/payload
  kBadMagic,          ///< leading magic does not identify a known format
  kBadVersion,        ///< known format, unsupported version
  kLengthOverflow,    ///< a length/offset field exceeds the remaining bytes
  kChecksumMismatch,  ///< CRC-32 over a segment or archive does not match
  kCorruptStream,     ///< structurally invalid content (codes, counts, state)
};

[[nodiscard]] constexpr const char* decode_error_kind_name(DecodeErrorKind k) {
  switch (k) {
    case DecodeErrorKind::kTruncated: return "truncated";
    case DecodeErrorKind::kBadMagic: return "bad-magic";
    case DecodeErrorKind::kBadVersion: return "bad-version";
    case DecodeErrorKind::kLengthOverflow: return "length-overflow";
    case DecodeErrorKind::kChecksumMismatch: return "checksum-mismatch";
    case DecodeErrorKind::kCorruptStream: return "corrupt-stream";
  }
  return "?";
}

/// Thrown by every decode path on damaged input.  Derives from
/// std::runtime_error so legacy catch sites keep working; the what() string
/// is "<kind> in <segment>: <detail>".
class DecodeError : public std::runtime_error {
 public:
  DecodeError(DecodeErrorKind kind, std::string segment, const std::string& detail)
      : std::runtime_error(std::string(decode_error_kind_name(kind)) + " in " + segment + ": " +
                           detail),
        kind_(kind),
        segment_(std::move(segment)) {}

  [[nodiscard]] DecodeErrorKind kind() const { return kind_; }
  [[nodiscard]] const std::string& segment() const { return segment_; }

 private:
  DecodeErrorKind kind_;
  std::string segment_;
};

/// A caller configuration refusal (e.g. a memory budget too small to hold
/// even one slab).  Still an invalid_argument for callers that catch by the
/// standard hierarchy, but decode_guard passes it through untranslated: it
/// describes the caller's config, not the stream, so it must never be
/// reported as corrupt data.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Backstop for public decode entry points: translate the standard-library
/// exceptions a crafted stream can still provoke (length_error/bad_alloc from
/// implausible allocations, invalid_argument/out_of_range from constructor
/// preconditions hit with decoded values) into DecodeError, so the caller
/// contract is "corrupt input throws DecodeError, nothing else".
template <typename Fn>
auto decode_guard(const char* segment, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const DecodeError&) {
    throw;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::bad_alloc&) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, segment,
                      "allocation beyond plausible archive contents");
  } catch (const std::length_error& e) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, segment, e.what());
  } catch (const std::logic_error& e) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, segment, e.what());
  }
}

}  // namespace szp
