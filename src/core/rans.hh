// szp — byte-renormalized range ANS (rANS) entropy coder.
//
// The table-variant ANS family is what Zstandard's FSE implements; rANS is
// the arithmetic variant of the same construction (Duda 2013).  This is the
// entropy stage of lzr.cc, the repository's Zstd stand-in (cuSZ's Step-9
// dictionary encoder runs Zstd on the host, paper §II-A).
//
// Model: symbol frequencies normalized to 2^12; encoding walks the symbol
// stream backwards and emits bytes, decoding walks forwards — the classic
// LIFO ANS arrangement.  Fractional-bit coding means skewed alphabets beat
// Huffman's 1-bit-per-symbol floor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/serialize.hh"

namespace szp {

/// Normalized symbol model (total frequency = 2^kProbBits).
class RansModel {
 public:
  static constexpr unsigned kProbBits = 12;
  static constexpr std::uint32_t kProbScale = 1u << kProbBits;

  /// Build from raw counts.  Every symbol that occurs keeps frequency >= 1
  /// after normalization.  Throws if all counts are zero or the alphabet
  /// exceeds 2^16.
  static RansModel build(std::span<const std::uint64_t> counts);

  [[nodiscard]] std::size_t alphabet_size() const { return freq_.size(); }
  [[nodiscard]] std::uint32_t freq(std::size_t s) const { return freq_[s]; }
  [[nodiscard]] std::uint32_t cum(std::size_t s) const { return cum_[s]; }

  /// Symbol owning probability slot `slot` (< kProbScale).
  [[nodiscard]] std::uint16_t symbol_at(std::uint32_t slot) const { return slot_to_symbol_[slot]; }

  void serialize(ByteWriter& w) const;
  static RansModel deserialize(ByteReader& r);

 private:
  void finalize();  // build cum_ and the slot table from freq_

  std::vector<std::uint32_t> freq_;
  std::vector<std::uint32_t> cum_;
  std::vector<std::uint16_t> slot_to_symbol_;
};

/// Encode a symbol stream.  Output is just the byte stream (the caller
/// stores the symbol count and model).
[[nodiscard]] std::vector<std::uint8_t> rans_encode(std::span<const std::uint16_t> symbols,
                                                    const RansModel& model);

/// Decode `count` symbols.
[[nodiscard]] std::vector<std::uint16_t> rans_decode(std::span<const std::uint8_t> bytes,
                                                     std::size_t count, const RansModel& model);

}  // namespace szp
