#include "core/archive.hh"

#include <cmath>
#include <cstring>
#include <string>

#include "core/checksum.hh"
#include "core/error.hh"

namespace szp::archive {

void write_header(ByteWriter& w, const ArchiveHeader& h) {
  w.put(kMagic);
  // Emit the lowest format version that can express the workflow tag, so
  // archives using the original four workflows stay byte-identical to
  // pre-v3 writers.
  const bool legacy = static_cast<std::uint8_t>(h.workflow) <=
                      static_cast<std::uint8_t>(Workflow::kRans);
  w.put(legacy ? kVersion : kVersionCodec);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(h.extents.rank));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(h.workflow));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(h.dtype));
  w.put<std::uint64_t>(h.extents.nx);
  w.put<std::uint64_t>(h.extents.ny);
  w.put<std::uint64_t>(h.extents.nz);
  w.put<double>(h.eb_abs);
  w.put<std::uint32_t>(h.capacity);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(h.predictor));
}

ArchiveHeader read_header(ByteReader& r) {
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an szp archive");
  }
  const auto version = r.get<std::uint16_t>();
  if (version != kVersion && version != kVersionCodec) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "header",
                      "archive version " + std::to_string(version) + ", expected " +
                          std::to_string(kVersion) + " or " + std::to_string(kVersionCodec));
  }
  ArchiveHeader h;
  h.extents.rank = r.get<std::uint8_t>();
  const auto wf = r.get<std::uint8_t>();
  const auto dt = r.get<std::uint8_t>();
  h.extents.nx = r.get<std::uint64_t>();
  h.extents.ny = r.get<std::uint64_t>();
  h.extents.nz = r.get<std::uint64_t>();
  h.eb_abs = r.get<double>();
  h.capacity = r.get<std::uint32_t>();
  const auto pred = r.get<std::uint8_t>();

  if (h.extents.rank < 1 || h.extents.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(h.extents.rank) + " outside [1, 3]");
  }
  // v2 can only carry the original four workflow tags; v3 extends the slot
  // to the LZ codec family.  Anything else is a bad codec id.
  const auto max_wf = version == kVersion ? static_cast<std::uint8_t>(Workflow::kRans)
                                          : static_cast<std::uint8_t>(Workflow::kLzr);
  if (wf > max_wf || static_cast<Workflow>(wf) == Workflow::kAuto) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown workflow tag " + std::to_string(wf) + " for archive version " +
                          std::to_string(version));
  }
  h.workflow = static_cast<Workflow>(wf);
  if (static_cast<DType>(dt) != DType::kFloat32 && static_cast<DType>(dt) != DType::kFloat64) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown element-type tag " + std::to_string(dt));
  }
  h.dtype = static_cast<DType>(dt);
  if (h.extents.nx == 0 || h.extents.ny == 0 || h.extents.nz == 0 ||
      (h.extents.rank < 2 && h.extents.ny != 1) || (h.extents.rank < 3 && h.extents.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(h.extents.nx, h.extents.ny, &count) ||
      __builtin_mul_overflow(count, h.extents.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  if (!(h.eb_abs > 0.0) || !std::isfinite(h.eb_abs)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "error bound is not a finite positive value");
  }
  if (h.capacity < 2) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "quantizer capacity " + std::to_string(h.capacity) + " below 2");
  }
  if (pred > static_cast<std::uint8_t>(PredictorKind::kInterpolation)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "unknown predictor tag " + std::to_string(pred));
  }
  h.predictor = static_cast<PredictorKind>(pred);
  return h;
}

std::span<const std::uint8_t> checked_body(std::span<const std::uint8_t> archive) {
  if (archive.size() < 4) {
    throw DecodeError(DecodeErrorKind::kTruncated, "archive",
                      "too small to hold the trailing checksum");
  }
  const auto body = archive.subspan(0, archive.size() - 4);
  std::uint32_t stored = 0;
  std::memcpy(&stored, archive.data() + archive.size() - 4, 4);
  if (crc32(body) != stored) {
    throw DecodeError(DecodeErrorKind::kChecksumMismatch, "archive",
                      "trailing CRC-32 does not match the archive body");
  }
  return body;
}

void append_crc32(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t crc = crc32(bytes);
  ByteWriter tail;
  tail.put(crc);
  const auto tail_bytes = tail.take();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
}

}  // namespace szp::archive
